"""Execution-engine overhead and payoff on the matmul space.

Not a paper experiment: these benchmarks track the machinery added by
``repro.tuning.engine`` — the wall-time cost of a full exploration
through the shared cache, the near-zero cost of re-running a strategy
against a warmed engine, and (on multi-core hosts) the wall-time
reduction from fanning the simulations out across a process pool.
"""

from __future__ import annotations

import os

from repro.apps import MatMul
from repro.tuning import ExecutionEngine, full_exploration, pareto_search


def test_full_exploration_cold_engine(benchmark):
    """Baseline: one static pass + one simulation per valid config."""
    app = MatMul()
    configs = app.space().configurations()

    def cold_run():
        app.clear_caches()
        with ExecutionEngine.for_app(app) as engine:
            return full_exploration(configs, engine=engine)

    result = benchmark.pedantic(cold_run, rounds=3, iterations=1)
    assert result.timed_count == result.valid_count


def test_strategies_on_warm_engine(benchmark, matmul_experiment):
    """The shared-cache payoff: a second strategy costs microseconds.

    After the exhaustive pass, the Pareto search should be pure cache
    hits — no static evaluation, no simulation.
    """
    app = matmul_experiment.app
    configs = app.space().configurations()
    with ExecutionEngine.for_app(app) as engine:
        full_exploration(configs, engine=engine)  # warm it
        warm_sims = engine.stats.simulations

        result = benchmark.pedantic(
            lambda: pareto_search(configs, engine=engine),
            rounds=5, iterations=1,
        )
        assert engine.stats.simulations == warm_sims  # zero new measurements
    assert result.timed_count < result.valid_count


def test_parallel_full_exploration_matches_serial(benchmark):
    """workers=N is bit-identical to serial; on multi-core hosts it is
    also measurably faster (REPRO_BENCH_WORKERS, default 4)."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4") or "4")
    serial_app = MatMul()
    configs = serial_app.space().configurations()
    with ExecutionEngine.for_app(serial_app, workers=1) as engine:
        serial = full_exploration(configs, engine=engine)

    def parallel_run():
        app = MatMul()
        with ExecutionEngine.for_app(app, workers=workers) as engine:
            return full_exploration(configs, engine=engine)

    parallel = benchmark.pedantic(parallel_run, rounds=3, iterations=1)
    assert [e.seconds for e in parallel.timed] == [
        e.seconds for e in serial.timed
    ]
    assert parallel.best.config == serial.best.config
    assert parallel.measured_seconds == serial.measured_seconds
