"""Ablation — screening bandwidth-bound points before the curve.

Section 5.3: "the Pareto-optimal curve is more likely to miss a
near-optimal configuration when a factor other than instruction count
and latency overlap is a significant performance bottleneck.  One
should screen away such points prior to defining the curve."

For matmul the unscreened curve is full of bandwidth-bound 8x8 points
that can never win; screening them shrinks the subset that must be
timed without losing the optimum.
"""

from repro.tuning import pareto_search


def test_bandwidth_screen_shrinks_matmul_selection(benchmark, matmul_experiment):
    app = matmul_experiment.app
    configs = app.space().configurations()

    unscreened = pareto_search(configs, app.evaluate, app.simulate)
    screened = benchmark.pedantic(
        lambda: pareto_search(configs, app.evaluate, app.simulate,
                              screen_bandwidth_bound=True),
        rounds=1, iterations=1,
    )

    print(f"\nunscreened selection: {unscreened.timed_count}, "
          f"screened: {screened.timed_count}")
    for entry in screened.timed:
        print("  kept:", dict(entry.config), f"{entry.seconds * 1e3:.3f} ms")

    # Screening removes the 8x8 filler points ...
    assert screened.timed_count <= unscreened.timed_count
    assert all(e.config["tile"] == 16 for e in screened.timed)
    # ... and still finds the optimum.
    assert screened.best.config == matmul_experiment.exhaustive.best.config


def test_screen_does_not_hurt_compute_bound_apps(cp_experiment):
    app = cp_experiment.app
    configs = app.space().configurations()
    screened = pareto_search(configs, app.evaluate, app.simulate,
                             screen_bandwidth_bound=True)
    assert screened.best.config == cp_experiment.exhaustive.best.config
