"""Figure 5 — CP metrics versus performance over the tiling sweep.

Shape from Section 5.1: "efficiency improves monotonically while
utilization worsens monotonically with increasing tiling factor, and
the optimum configuration balances both metrics"; 1/Efficiency tracks
execution time closely through tiling factor 8, and at 16 the
utilization collapse cancels further efficiency gains.
"""

from repro.harness import figure5_series


def test_figure5_cp_metrics_vs_performance(benchmark, cp_experiment):
    series = benchmark.pedantic(
        lambda: figure5_series(cp_experiment.app), rounds=1, iterations=1
    )

    print("\ntiling  time(ms)  1/eff(norm)  1/util(norm)")
    for row in series:
        print(f"{row['tiling']:>6}  {row['time_s'] * 1e3:8.3f}  "
              f"{row['inv_efficiency_norm']:11.3f}  "
              f"{row['inv_utilization_norm']:12.3f}")

    inv_eff = [row["inv_efficiency_norm"] for row in series]
    inv_util = [row["inv_utilization_norm"] for row in series]
    times = [row["time_s"] for row in series]

    # Monotone metric trends.
    assert inv_eff == sorted(inv_eff, reverse=True)
    assert inv_util == sorted(inv_util)

    # 1/Efficiency tracks time through tiling factors 1..8.
    for i in range(3):
        assert times[i] > times[i + 1]
        assert inv_eff[i] > inv_eff[i + 1]

    # At 16, the utilization collapse cancels the efficiency gain:
    # the 8 -> 16 time step is far smaller than any earlier step.
    earlier_steps = [times[i] - times[i + 1] for i in range(3)]
    last_step = times[3] - times[4]
    assert abs(last_step) < min(earlier_steps) / 2


def test_figure5_correlation(cp_experiment):
    """Quantified 'closely follows': rank correlation between
    1/efficiency and time across tilings 1..8 is perfect."""
    series = figure5_series(cp_experiment.app)[:4]
    by_eff = sorted(series, key=lambda r: r["inv_efficiency_norm"])
    by_time = sorted(series, key=lambda r: r["time_s"])
    assert [r["tiling"] for r in by_eff] == [r["tiling"] for r in by_time]
