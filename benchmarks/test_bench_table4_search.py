"""Table 4 — parameter search properties.

Paper values per kernel:
  matmul: 93 configurations, 11 selected, 88% reduction
  cp:     38 configurations, 10 selected, 74% reduction
  sad:   908 configurations, 16 selected, 98% reduction
  mri:   175 configurations, 30 selected, 77% reduction

The timed quantity is the Pareto search itself over warmed metric
caches — the cost a developer pays for pruning, versus the exhaustive
evaluation time reported in the table.
"""

import pytest

from repro.harness import format_table, table4_rows
from repro.tuning import pareto_search

PAPER_BAND = {
    # kernel: (space size, reduction percent band)
    "matmul": (93, (85, 95)),
    "cp": (38, (68, 80)),
    "sad": (908, (93, 99)),
    "mri-fhd": (175, (70, 85)),
}


def test_table4_search_properties(benchmark, suite):
    experiments = [suite[name] for name in ("matmul", "cp", "sad", "mri-fhd")]
    rows = table4_rows(experiments)
    print("\n" + format_table(
        rows,
        ["kernel", "configurations", "paper_configurations",
         "evaluation_time_s", "selected", "paper_selected",
         "space_reduction_percent", "paper_reduction_percent",
         "selected_evaluation_time_s", "optimum_on_curve"],
    ))

    for row in rows:
        size, (low, high) = PAPER_BAND[row["kernel"]]
        assert row["valid_configurations"] == pytest.approx(size, rel=0.12)
        assert low <= row["space_reduction_percent"] <= high
        assert row["optimum_on_curve"] is True
        assert row["selected_evaluation_time_s"] < row["evaluation_time_s"]

    # Time the pruning step itself (metrics cached, like -ptx/-cubin
    # output reuse): it must be orders of magnitude below exhaustive
    # evaluation.
    app = suite["cp"].app
    configs = app.space().configurations()
    result = benchmark.pedantic(
        lambda: pareto_search(configs, app.evaluate, app.simulate),
        rounds=3, iterations=1,
    )
    assert result.timed_count < len(configs)


def test_mri_worst_versus_best(suite):
    """Section 1: the MRI space spans a wide performance range.

    The paper reports 235% worst-over-best on hardware; our simulated
    spread is narrower (the launch-overhead and occupancy effects are
    the only modeled penalties) but must still be visible.
    """
    experiment = suite["mri-fhd"]
    assert experiment.worst_over_best > 1.1
