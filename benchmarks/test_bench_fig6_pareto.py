"""Figure 6 — searching by Pareto-optimal performance metrics.

One panel per application: normalized efficiency/utilization scatter,
the Pareto subset, and the exhaustive-search optimum.  The assertions
are the paper's:

  * the optimum lies on the curve for every application (5.2);
  * the matmul curve is populated mostly by 8x8 points even though
    every 8x8 point loses on wall clock (5.3);
  * the MRI plot collapses into clusters of seven (5.2).
"""

from repro.harness import ascii_scatter, figure6_data


def test_figure6_all_applications(benchmark, suite):
    panels = benchmark.pedantic(
        lambda: {
            name: figure6_data(suite[name])
            for name in ("matmul", "cp", "sad", "mri-fhd")
        },
        rounds=1, iterations=1,
    )
    for name, data in panels.items():
        print(f"\n--- Figure 6: {name} ---")
        print(ascii_scatter(data.points, data.pareto, data.optimal))
        print(f"pareto={len(data.pareto)}/{len(data.points)} "
              f"optimum_on_curve={data.optimum_on_curve}")
        assert data.optimum_on_curve, name


def test_figure6a_matmul_curve_is_mostly_8x8(matmul_experiment):
    """Section 5.3: "all of the configurations on it except the
    optimum are 8x8 tile size configurations"."""
    data = figure6_data(matmul_experiment)
    tiles = [data.configs[i]["tile"] for i in data.pareto]
    assert tiles.count(8) >= len(tiles) / 2
    assert data.configs[data.optimal]["tile"] == 16


def test_figure6b_mri_clusters_of_seven(mri_experiment):
    data = figure6_data(mri_experiment)
    from collections import Counter

    cluster_sizes = Counter(Counter(data.points).values())
    assert cluster_sizes == {7: 25}


def test_figure6_pareto_sets_are_small(suite):
    for name in ("matmul", "cp", "sad", "mri-fhd"):
        data = figure6_data(suite[name])
        assert len(data.pareto) <= 0.3 * len(data.points)
