"""Ablation — the Section 5.3 MRI data-layout anecdote.

"A preliminary version of the MRI-FHD kernel had steadily decreasing
performance as the tiling factor increased, although efficiency and
utilization metrics remained constant ... Changing the data layout
yielded a kernel that is insensitive to changes in the tiling factor
and 17% faster than the previous best configuration."

The conflicted (array-of-structures) layout thrashes the single-ported
constant cache more the deeper the unrolling; the metrics cannot see
it.  This is the documented failure mode of the method — discrepancies
between predicted trends and measurements diagnose the bottleneck.
"""

from repro.apps import MriFhd
from repro.apps.mri_fhd import CONFLICTED_LAYOUT, GOOD_LAYOUT
from repro.tuning import Configuration

UNROLLS = (1, 2, 4, 8, 16)


def _sweep(app):
    times = {}
    for unroll in UNROLLS:
        config = Configuration({"block": 256, "unroll": unroll,
                                "invocations": 4})
        times[unroll] = app.simulate(config)
    return times


def test_mri_layout_ablation(benchmark):
    bad = MriFhd(layout=CONFLICTED_LAYOUT)
    good = MriFhd(layout=GOOD_LAYOUT)

    bad_times = benchmark.pedantic(lambda: _sweep(bad), rounds=1, iterations=1)
    good_times = _sweep(good)

    print("\nunroll  conflicted(ms)  fixed(ms)")
    for unroll in UNROLLS:
        print(f"{unroll:>6}  {bad_times[unroll] * 1e3:14.3f}  "
              f"{good_times[unroll] * 1e3:9.3f}")

    # Conflicted layout: performance degrades as the factor increases.
    assert bad_times[16] > bad_times[4] > bad_times[1]

    # The metrics stay blind to it: for the conflicted layout they
    # still claim deeper unrolling should help.
    def efficiencies(app):
        return [
            app.evaluate(Configuration({
                "block": 256, "unroll": u, "invocations": 4,
            })).efficiency
            for u in UNROLLS
        ]

    blind = efficiencies(bad)
    assert blind == sorted(blind)

    # The fixed layout is insensitive-to-better and clearly faster at
    # the deep-unroll end (the paper measured 17% on its best point).
    assert good_times[16] <= good_times[1]
    improvement = bad_times[16] / good_times[16] - 1.0
    assert improvement > 0.15
