"""Table 3 — speedup over single-thread CPU.

Paper values: MatMul 6.98x, CP 647x, SAD 5.51x, MRI-FHD 228x.
The CPU baseline is a calibrated model (DESIGN.md, Substitutions);
the asserted shape is the ordering and the order of magnitude.
"""

from repro.harness import format_table, table3_rows


def test_table3_speedups(benchmark, suite):
    experiments = [suite[name] for name in ("matmul", "cp", "sad", "mri-fhd")]

    rows = benchmark.pedantic(
        lambda: table3_rows(experiments), rounds=1, iterations=1
    )
    print("\n" + format_table(
        rows,
        ["application", "speedup", "paper_speedup", "gpu_best_ms",
         "cpu_model_ms"],
    ))

    speedup = {row["application"]: row["speedup"] for row in rows}
    # Ordering: CP >> MRI >> MatMul ~ SAD.
    assert speedup["cp"] > speedup["mri-fhd"]
    assert speedup["mri-fhd"] > speedup["matmul"]
    assert speedup["mri-fhd"] > speedup["sad"]
    # Magnitudes within 2x of the paper's.
    for row in rows:
        assert 0.5 < row["speedup"] / row["paper_speedup"] < 2.0
