"""Shared state for the benchmark suite.

The full experiments (every valid configuration of every application,
simulated) are computed once per session and shared by all benchmark
modules; individual benchmarks then time the searches against the
warmed caches, which is exactly the comparison the paper makes — the
static metric evaluation and pruning are cheap, the measurements are
not.

Each experiment runs on a shared :class:`ExecutionEngine`, so the
three strategies perform one static pass and one measurement per
configuration between them.  Set ``REPRO_WORKERS=N`` to fan the
simulations out across an ``N``-process pool (results are
bit-identical to a serial run).
"""

from __future__ import annotations

import pytest

from repro.apps import all_applications
from repro.harness import run_experiment

_SUITE = {}


def experiment_for(name: str):
    if name not in _SUITE:
        app = next(a for a in all_applications() if a.name == name)
        # workers=None defers to the REPRO_WORKERS environment variable
        _SUITE[name] = run_experiment(app, include_random=True, workers=None)
    return _SUITE[name]


@pytest.fixture(scope="session")
def suite():
    """All four experiments, lazily computed and cached."""
    for name in ("matmul", "cp", "sad", "mri-fhd"):
        experiment_for(name)
    return dict(_SUITE)


@pytest.fixture(scope="session")
def matmul_experiment():
    return experiment_for("matmul")


@pytest.fixture(scope="session")
def cp_experiment():
    return experiment_for("cp")


@pytest.fixture(scope="session")
def sad_experiment():
    return experiment_for("sad")


@pytest.fixture(scope="session")
def mri_experiment():
    return experiment_for("mri-fhd")
