"""Ablation — the explicit scheduler versus manual prefetching.

Section 3.1 observes that intra-thread latency hiding "is primarily
the jurisdiction of the instruction schedulers of the compiler and
runtime."  This bench quantifies how much of manual prefetching's win
a dependence-limited scheduler can recover on its own: the answer is
*almost none* for the tile-streaming loop, because the barrier fences
the loads — only the cross-iteration motion that prefetching performs
(which changes the program, not just the order) moves them past it.
"""

from repro.transforms import COMPLETE, schedule_loads_early, standard_cleanup, unroll
from repro.sim import simulate_kernel
from tests.conftest import build_tiled_matmul


def _variants(n=512):
    from repro.transforms import prefetch_global_loads

    base = standard_cleanup(unroll(build_tiled_matmul(n=n), COMPLETE,
                                   label="inner"))
    return {
        "base": base,
        "scheduled": schedule_loads_early(base),
        "prefetched": standard_cleanup(prefetch_global_loads(
            unroll(build_tiled_matmul(n=n), COMPLETE, label="inner"),
            label="ktile",
        )),
    }


def test_scheduler_versus_prefetch(benchmark):
    variants = _variants()
    times = benchmark.pedantic(
        lambda: {name: simulate_kernel(k).seconds
                 for name, k in variants.items()},
        rounds=1, iterations=1,
    )
    print("\nvariant     time(ms)")
    for name, seconds in times.items():
        print(f"{name:10s} {seconds * 1e3:9.3f}")

    # Scheduling alone cannot cross the barrier: its win is marginal.
    assert times["scheduled"] <= times["base"] * 1.001
    scheduling_gain = times["base"] - times["scheduled"]
    prefetch_gain = times["base"] - times["prefetched"]
    assert prefetch_gain > 0
    assert scheduling_gain < 0.5 * prefetch_gain
