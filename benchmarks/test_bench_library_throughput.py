"""Throughput of the library's own hot paths.

Not a paper experiment: these benchmarks track the cost of the
reproduction's machinery itself — kernel generation + transforms,
static metric evaluation (-ptx/-cubin analogue), one timing
simulation, and the two interpreters — so performance regressions in
the toolchain show up in CI history.
"""

import numpy as np

from repro.metrics import evaluate_kernel
from repro.sim import simulate_kernel
from repro.tuning import Configuration
from tests.conftest import build_tiled_matmul


def test_kernel_generation_and_transforms(benchmark):
    from repro.apps import MatMul

    app = MatMul()
    config = Configuration({
        "tile": 16, "rect": 4, "unroll": "complete",
        "prefetch": False, "spill": False,
    })
    kernel = benchmark(app.build_kernel, config)
    assert kernel.threads_per_block == 256


def test_static_metric_evaluation(benchmark):
    kernel = build_tiled_matmul(n=256)
    report = benchmark(evaluate_kernel, kernel)
    assert report.regions == 3 * 16 + 1


def test_timing_simulation(benchmark):
    kernel = build_tiled_matmul(n=256)
    result = benchmark(simulate_kernel, kernel)
    assert result.cycles > 0


def test_scalar_interpreter(benchmark):
    from repro.interp import launch

    n = 32
    kernel = build_tiled_matmul(n=n)
    rng = np.random.default_rng(0)
    a = rng.standard_normal(n * n).astype(np.float32)
    b = rng.standard_normal(n * n).astype(np.float32)

    def run():
        buffers = {"A": a.copy(), "B": b.copy(),
                   "C": np.zeros(n * n, dtype=np.float32)}
        launch(kernel, buffers)
        return buffers["C"]

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.any()


def test_vectorized_interpreter(benchmark):
    from repro.interp import launch_vectorized

    n = 64
    kernel = build_tiled_matmul(n=n)
    rng = np.random.default_rng(0)
    a = rng.standard_normal(n * n).astype(np.float32)
    b = rng.standard_normal(n * n).astype(np.float32)

    def run():
        buffers = {"A": a.copy(), "B": b.copy(),
                   "C": np.zeros(n * n, dtype=np.float32)}
        launch_vectorized(kernel, buffers)
        return buffers["C"]

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.any()
