"""Simulator hot-path benchmark: optimized pipeline versus reference.

Times the full matmul configuration space through two pipelines:

* **reference** — the straightforward path: per-configuration kernel
  build, compile pass, flat O(dynamic-instructions) trace build, and
  the simple heap-driven replay of :mod:`repro.sim.reference` (the
  shape of the original implementation);
* **optimized** — ``Application.simulate``: loop-compressed segment
  walking, the compiled flat-trace replay engine, and the
  content-addressed compile/trace/SM cache.

Two speedups are measured, both gated against
``baselines/sim_hotpath.json``:

* **exact** — both pipelines sample ``simulated_waves`` waves and must
  produce bit-identical per-configuration seconds (the replays are
  differentially tested; this re-checks end to end), so the comparison
  is pure wall clock;
* **fidelity-matched** (the headline ``speedup_vs_reference``) — the
  reference pipeline samples ``convergence_max_waves`` waves exactly,
  while the optimized pipeline runs in convergence mode
  (``wave_convergence_rtol = 0.05``): it replays waves only until the
  steady-state predicate fires, then extrapolates the remaining
  blocks.  Both sides answer the same question — "what does the
  steady-state wave cost?" — so the ratio compares equal fidelity,
  and every extrapolated time is asserted to be within the rtol of
  the deep exact reference.

Because both pipelines run in the same process on the same machine,
the ratios are largely machine-independent, making them meaningful CI
regression gates where absolute seconds are not.  A run whose speedup
falls below ``allowed_fraction`` of the committed baseline fails.

After the timed sweeps, a separately-timed *static pass* runs the
compile stage over the space, so the compile-tier counters in the
report reflect real traffic (they used to read 0 — the sweep phases
only ever called ``app.simulate``, which never touches the compile
tier; pinned by tests/tuning/test_compile_telemetry.py).  It runs
after the gated cold sweeps on purpose: evaluating first would seed
the resource tier and quietly flatter the gated ratios.

A *warm* phase re-runs the space on a fresh application that shares
the first sweep's populated ``SimulationCache``: every configuration
resolves through the fingerprint tiers without building a single
trace, measuring pure cache-hit throughput.

Finally a *cross-process warm-start* phase flushes the populated cache
into a persistent :class:`~repro.store.ResultStore` and re-runs the
sweep in a **fresh Python process** attached to that store: the child
bulk-rehydrates its cache up front (``preload_from_store`` — one
``list_keys`` + ``load_many`` pass per tier, timed separately as
``preload_seconds``), recomputes nothing (zero events replayed), must
produce bit-identical times (compared through JSON, which round-trips
doubles exactly), and its sweep must beat this process's cold sweep by
the gated ``warm_process_speedup_vs_cold`` ratio — the payoff the
store exists to provide.

Results are also written to ``BENCH_sim_hotpath.json`` at the repo
root for inspection.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import shutil
import subprocess
import sys
import tempfile
import time

from repro.apps import MatMul
from repro.arch.occupancy import LaunchError
from repro.cubin.resources import cubin_info
from repro.sim.config import DEFAULT_SIM_CONFIG
from repro.sim.reference import build_trace_reference, simulate_sm_reference
from repro.store import ResultStore
from repro.tuning.engine import config_key

HERE = os.path.dirname(__file__)
BASELINE_PATH = os.path.join(HERE, "baselines", "sim_hotpath.json")
RESULT_PATH = os.path.join(HERE, os.pardir, "BENCH_sim_hotpath.json")

#: rtol for the convergence-mode sweep of the fidelity-matched phase.
CONVERGENCE_RTOL = 0.05

#: Run in a fresh interpreter against a populated store: sweep the full
#: matmul space and report per-config times, wall time, and counters.
WARM_PROCESS_SCRIPT = """\
import json, sys, time
from repro.apps import MatMul
from repro.store import ResultStore
from repro.tuning.engine import config_key

store_dir, out_path = sys.argv[1], sys.argv[2]
app = MatMul()
app.sim_cache.attach_store(ResultStore(store_dir), write_back=False)
started = time.perf_counter()
preloaded = app.sim_cache.preload_from_store()
preload_seconds = time.perf_counter() - started
started = time.perf_counter()
times = {}
for config in app.space():
    try:
        times[config_key(config)] = app.simulate(config)
    except Exception:
        times[config_key(config)] = None
seconds = time.perf_counter() - started
with open(out_path, "w") as handle:
    json.dump({"times": times, "sweep_seconds": seconds,
               "preload_seconds": preload_seconds, "preloaded": preloaded,
               "counters": app.sim_cache.counters()}, handle)
"""


def _reference_sweep(app, waves=None):
    """The pre-optimization pipeline, one configuration at a time.

    ``waves`` overrides ``simulated_waves`` (the fidelity-matched
    phase samples ``convergence_max_waves`` waves exactly).
    """
    times = {}
    for config in app.space():
        try:
            kernel = app.build_kernel(config)
            resources = cubin_info(kernel)
            sim_config = app.sim_config(config)
            if waves is not None:
                sim_config = dataclasses.replace(
                    sim_config, simulated_waves=waves
                )
            occupancy = resources.occupancy(sim_config.device)
            trace = build_trace_reference(kernel, sim_config)
            blocks_per_sm_total = math.ceil(
                kernel.num_blocks / sim_config.device.num_sms
            )
            blocks_to_sample = min(
                blocks_per_sm_total,
                occupancy.blocks_per_sm * sim_config.simulated_waves,
            )
            sm = simulate_sm_reference(
                trace,
                warps_per_block=occupancy.warps_per_block,
                blocks_resident=occupancy.blocks_per_sm,
                total_blocks=blocks_to_sample,
                config=sim_config,
            )
            cycles = sm.cycles_per_block * blocks_per_sm_total
            times[config] = sim_config.device.cycles_to_seconds(cycles)
        except Exception:
            times[config] = None
    return times


def _optimized_sweep(app):
    times = {}
    for config in app.space():
        try:
            times[config] = app.simulate(config)
        except Exception:
            times[config] = None
    return times


def _static_pass(app):
    """The compile stage over the space (invalid configs recorded)."""
    evaluated = 0
    for config in app.space():
        try:
            app.evaluate(config)
            evaluated += 1
        except LaunchError:
            pass
    return evaluated


def _run_warm_process(store_dir):
    """Sweep the space in a fresh interpreter warmed only by the store."""
    out_path = os.path.join(store_dir, "warm_process_result.json")
    src = os.path.join(HERE, os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    subprocess.run(
        [sys.executable, "-c", WARM_PROCESS_SCRIPT, store_dir, out_path],
        env=env, check=True, timeout=600,
    )
    with open(out_path) as handle:
        return json.load(handle)


def test_matmul_full_space_speedup_vs_baseline():
    # ------------------------------------------------------------------
    # Exact phase: both pipelines at simulated_waves, bit-identical.
    started = time.perf_counter()
    reference_app = MatMul()
    reference_times = _reference_sweep(reference_app)
    reference_seconds = time.perf_counter() - started

    started = time.perf_counter()
    optimized_app = MatMul()
    optimized_times = _optimized_sweep(optimized_app)
    optimized_seconds = time.perf_counter() - started

    # Identical semantics, end to end.
    assert optimized_times == reference_times

    # ------------------------------------------------------------------
    # Fidelity-matched phase (the headline gate): reference samples
    # convergence_max_waves waves exactly; the optimized sweep runs in
    # convergence mode and extrapolates once the wave cost settles.
    deep_waves = DEFAULT_SIM_CONFIG.convergence_max_waves
    started = time.perf_counter()
    deep_reference_times = _reference_sweep(MatMul(), waves=deep_waves)
    deep_reference_seconds = time.perf_counter() - started

    convergence_app = MatMul()
    convergence_app.sim_overrides = {
        "wave_convergence_rtol": CONVERGENCE_RTOL
    }
    started = time.perf_counter()
    convergence_times = _optimized_sweep(convergence_app)
    convergence_seconds = time.perf_counter() - started

    convergence_counters = dict(convergence_app.sim_cache.counters())
    # The whole point of round two: extrapolation actually fires.
    assert convergence_counters["blocks_extrapolated"] > 0
    # ... and what it reports stays within rtol of the deep exact
    # reference, configuration by configuration.
    assert set(convergence_times) == set(deep_reference_times)
    for config, seconds in convergence_times.items():
        expected_seconds = deep_reference_times[config]
        if seconds is None or expected_seconds is None:
            assert seconds == expected_seconds
            continue
        assert math.isclose(
            seconds, expected_seconds, rel_tol=CONVERGENCE_RTOL
        ), (
            f"convergence sweep drifted at {config}: "
            f"{seconds} vs exact {expected_seconds}"
        )

    # Static pass (separately timed, after the gated sweeps): the
    # compile tier sees real traffic, so the reported counters can
    # never silently read 0 again.
    started = time.perf_counter()
    static_evaluated = _static_pass(optimized_app)
    static_seconds = time.perf_counter() - started
    cold_counters = dict(optimized_app.sim_cache.counters())
    assert static_evaluated > 0
    assert cold_counters["compile_evaluations"] > 0

    # Warm phase: a fresh app sharing the populated cache — every
    # configuration must resolve through the fingerprint tiers alone.
    warm_app = MatMul()
    warm_app.sim_cache = optimized_app.sim_cache
    started = time.perf_counter()
    warm_times = _optimized_sweep(warm_app)
    warm_static = _static_pass(warm_app)
    warm_seconds = time.perf_counter() - started
    assert warm_times == optimized_times
    assert warm_static == static_evaluated
    warm_delta = {
        name: value - cold_counters[name]
        for name, value in warm_app.sim_cache.counters().items()
    }
    # Pure reuse: hits grew, real replay/compile work did not.
    assert warm_delta["events_replayed"] == 0
    assert warm_delta["waves_simulated"] == 0
    assert warm_delta["fingerprint_sm_hits"] > 0
    assert warm_delta["compile_hits"] > 0
    assert warm_delta["compile_evaluations"] == 0

    # Cross-process warm start: flush the populated cache to a store,
    # then sweep again in a brand-new interpreter that has only the
    # store to go on.  Bit-identical results, nothing recomputed, and
    # a gated speedup over this process's cold sweep.
    store_dir = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        entries_flushed = optimized_app.sim_cache.flush_to_store(
            ResultStore(store_dir)
        )
        warm_process = _run_warm_process(store_dir)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    expected_times = {
        config_key(config): seconds
        for config, seconds in optimized_times.items()
    }
    # JSON round-trips IEEE doubles exactly, so == is bit-equivalence.
    assert warm_process["times"] == json.loads(json.dumps(expected_times))
    assert warm_process["counters"]["events_replayed"] == 0
    assert warm_process["counters"]["waves_simulated"] == 0
    assert warm_process["counters"]["store_hits"] > 0
    # The child rehydrated through the bulk path (one load_many per
    # tier), not per-entry read-through.
    assert warm_process["preloaded"] == entries_flushed
    assert warm_process["counters"]["store_bulk_reads"] >= 4
    warm_process_seconds = warm_process["sweep_seconds"]
    store_speedup = optimized_seconds / warm_process_seconds

    exact_speedup = reference_seconds / optimized_seconds
    speedup = deep_reference_seconds / convergence_seconds
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    expected = baseline["matmul_full_space"]["speedup_vs_reference"]
    expected_exact = baseline["matmul_full_space"][
        "exact_speedup_vs_reference"
    ]
    expected_store = baseline["matmul_full_space"]["warm_process_speedup_vs_cold"]
    allowed_fraction = baseline["allowed_fraction"]

    payload = {
        "benchmark": "sim_hotpath",
        "space": "matmul full (96 configurations)",
        # Headline fidelity-matched phase: deep exact reference vs
        # convergence-mode optimized sweep at equal answer fidelity.
        "reference_sweep_seconds": round(deep_reference_seconds, 3),
        "optimized_sweep_seconds": round(convergence_seconds, 3),
        "speedup_vs_reference": round(speedup, 2),
        "baseline_speedup": expected,
        "reference_waves": deep_waves,
        "convergence_rtol": CONVERGENCE_RTOL,
        "gate": f"speedup >= {allowed_fraction} * baseline",
        # Exact phase: both pipelines at simulated_waves, bit-identical
        # per-configuration seconds — pure interpreter wall clock.
        "exact": {
            "reference_sweep_seconds": round(reference_seconds, 3),
            "optimized_sweep_seconds": round(optimized_seconds, 3),
            "speedup_vs_reference": round(exact_speedup, 2),
            "baseline_speedup": expected_exact,
        },
        # Convergence-mode counters: extrapolation must be live.
        "convergence_counters": {
            "waves_simulated": convergence_counters["waves_simulated"],
            "blocks_replayed": convergence_counters["blocks_replayed"],
            "blocks_extrapolated": convergence_counters[
                "blocks_extrapolated"
            ],
        },
        # Static pass over the space (run after the gated cold sweeps
        # so it cannot flatter the ratios): compile-tier traffic is real.
        "static_pass": {
            "evaluated": static_evaluated,
            "pass_seconds": round(static_seconds, 3),
        },
        # Cold phase counters: real simulation + compile work plus
        # within-sweep reuse.
        "fingerprint_cache": cold_counters,
        # Warm sweep: a second pass over the same space through the
        # shared cache — wall time and the counter delta it added
        # (hits only; zero new waves/events/compiles by construction).
        "warm_sweep": {
            "sweep_seconds": round(warm_seconds, 3),
            "speedup_vs_cold": round(optimized_seconds / warm_seconds, 2),
            "counter_delta": warm_delta,
        },
        # Fresh interpreter warmed only by the persistent store:
        # bit-identical times, zero recomputation, gated speedup.
        "warm_process": {
            "entries_flushed": entries_flushed,
            "preloaded": warm_process["preloaded"],
            "preload_seconds": round(warm_process["preload_seconds"], 3),
            "sweep_seconds": round(warm_process_seconds, 3),
            "speedup_vs_cold": round(store_speedup, 2),
            "baseline_speedup": expected_store,
            "counters": warm_process["counters"],
        },
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    assert speedup >= allowed_fraction * expected, (
        f"fidelity-matched simulator hot path regressed: {speedup:.2f}x vs "
        f"baseline {expected}x (allowed fraction {allowed_fraction})"
    )
    assert exact_speedup >= allowed_fraction * expected_exact, (
        f"exact simulator hot path regressed: {exact_speedup:.2f}x vs "
        f"baseline {expected_exact}x (allowed fraction {allowed_fraction})"
    )
    assert store_speedup >= allowed_fraction * expected_store, (
        f"store-backed warm start regressed: {store_speedup:.2f}x vs "
        f"baseline {expected_store}x (allowed fraction {allowed_fraction})"
    )
