"""Simulator hot-path benchmark: optimized pipeline versus reference.

Times the full matmul configuration space through two pipelines:

* **reference** — the straightforward path: per-configuration kernel
  build, compile pass, flat O(dynamic-instructions) trace build, and
  the simple heap-driven replay of :mod:`repro.sim.reference` (the
  shape of the original implementation);
* **optimized** — ``Application.simulate``: loop-compressed segment
  walking, the rewritten SM event loop, and the content-addressed
  compile/trace/SM cache.

Both pipelines must produce bit-identical per-configuration seconds
(the replays are differentially tested; this re-checks end to end),
so the comparison is pure wall clock.

The *speedup ratio* is gated against ``baselines/sim_hotpath.json``:
because both pipelines run in the same process on the same machine,
the ratio is largely machine-independent, making it a meaningful CI
regression gate where absolute seconds are not.  A run whose speedup
falls below ``allowed_fraction`` of the committed baseline fails.

A second, *warm* sweep re-runs the space on a fresh application that
shares the first sweep's populated ``SimulationCache``: every
configuration resolves through the fingerprint tiers without building
a single trace, measuring pure cache-hit throughput.  The JSON output
reports the cold and warm phases separately — ``fingerprint_cache``
holds the cold sweep's counters (real simulation work plus
within-sweep reuse), ``warm_sweep`` holds the warm pass's wall time
and the counter *delta* it added (hits only, no new waves or events).

Results are also written to ``BENCH_sim_hotpath.json`` at the repo
root for inspection.
"""

from __future__ import annotations

import json
import math
import os
import time

from repro.apps import MatMul
from repro.cubin.resources import cubin_info
from repro.sim.reference import build_trace_reference, simulate_sm_reference

HERE = os.path.dirname(__file__)
BASELINE_PATH = os.path.join(HERE, "baselines", "sim_hotpath.json")
RESULT_PATH = os.path.join(HERE, os.pardir, "BENCH_sim_hotpath.json")


def _reference_sweep(app):
    """The pre-optimization pipeline, one configuration at a time."""
    times = {}
    for config in app.space():
        try:
            kernel = app.build_kernel(config)
            resources = cubin_info(kernel)
            sim_config = app.sim_config(config)
            occupancy = resources.occupancy(sim_config.device)
            trace = build_trace_reference(kernel, sim_config)
            blocks_per_sm_total = math.ceil(
                kernel.num_blocks / sim_config.device.num_sms
            )
            blocks_to_sample = min(
                blocks_per_sm_total,
                occupancy.blocks_per_sm * sim_config.simulated_waves,
            )
            sm = simulate_sm_reference(
                trace,
                warps_per_block=occupancy.warps_per_block,
                blocks_resident=occupancy.blocks_per_sm,
                total_blocks=blocks_to_sample,
                config=sim_config,
            )
            cycles = sm.cycles_per_block * blocks_per_sm_total
            times[config] = sim_config.device.cycles_to_seconds(cycles)
        except Exception:
            times[config] = None
    return times


def _optimized_sweep(app):
    times = {}
    for config in app.space():
        try:
            times[config] = app.simulate(config)
        except Exception:
            times[config] = None
    return times


def test_matmul_full_space_speedup_vs_baseline():
    started = time.perf_counter()
    reference_app = MatMul()
    reference_times = _reference_sweep(reference_app)
    reference_seconds = time.perf_counter() - started

    started = time.perf_counter()
    optimized_app = MatMul()
    optimized_times = _optimized_sweep(optimized_app)
    optimized_seconds = time.perf_counter() - started

    # Identical semantics, end to end.
    assert optimized_times == reference_times

    # Warm phase: a fresh app sharing the populated cache — every
    # configuration must resolve through the fingerprint tiers alone.
    cold_counters = dict(optimized_app.sim_cache.counters())
    warm_app = MatMul()
    warm_app.sim_cache = optimized_app.sim_cache
    started = time.perf_counter()
    warm_times = _optimized_sweep(warm_app)
    warm_seconds = time.perf_counter() - started
    assert warm_times == optimized_times
    warm_delta = {
        name: value - cold_counters[name]
        for name, value in warm_app.sim_cache.counters().items()
    }
    # Pure reuse: hits grew, real replay work did not.
    assert warm_delta["events_replayed"] == 0
    assert warm_delta["waves_simulated"] == 0
    assert warm_delta["fingerprint_sm_hits"] > 0

    speedup = reference_seconds / optimized_seconds
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    expected = baseline["matmul_full_space"]["speedup_vs_reference"]
    allowed_fraction = baseline["allowed_fraction"]

    payload = {
        "benchmark": "sim_hotpath",
        "space": "matmul full (96 configurations)",
        "reference_sweep_seconds": round(reference_seconds, 3),
        "optimized_sweep_seconds": round(optimized_seconds, 3),
        "speedup_vs_reference": round(speedup, 2),
        "baseline_speedup": expected,
        "gate": f"speedup >= {allowed_fraction} * baseline",
        # Cold sweep: real simulation work + within-sweep reuse.
        "fingerprint_cache": cold_counters,
        # Warm sweep: a second pass over the same space through the
        # shared cache — wall time and the counter delta it added
        # (hits only; zero new waves/events by construction).
        "warm_sweep": {
            "sweep_seconds": round(warm_seconds, 3),
            "speedup_vs_cold": round(optimized_seconds / warm_seconds, 2),
            "counter_delta": warm_delta,
        },
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    assert speedup >= allowed_fraction * expected, (
        f"simulator hot path regressed: {speedup:.2f}x vs "
        f"baseline {expected}x (allowed fraction {allowed_fraction})"
    )
