"""Tuning-daemon warm-path throughput: fast lane versus executor path.

Not a paper experiment: this benchmark gates the PR 9 service fast
lane.  Two daemons run in-process over the same persistent store on
the real matmul space:

* **engine daemon** (``fastlane=False``) — every sweep dispatches to
  the runtime's single-thread executor, exactly the PR 8 warm path;
* **fastlane daemon** — warm re-submits are probed against the
  resident memo and answered on the event loop.

Each daemon pays one cold sweep to warm its resident memo (the second
daemon's cold sweep is already store-warm — that is the store doing
its job, not the lane under test).  Then ``WARM_REQUESTS`` identical
re-submits run against each over a keep-alive connection with a tight
poll interval.  Two latency views come out of that:

* **server-side sweep latency** — ``finished - started`` from the
  job's own status payload: the time the daemon spent actually
  serving the sweep (executor handoff + warm ``run_sweep`` on the
  engine path; the chunked memo serve on the lane).  This is the
  gated number (``fastlane_speedup``, engine warm min over fastlane
  warm min — timeit-style minimums, since the scheduler noise a
  shared machine adds to either lane only ever inflates samples):
  ``speedup >= max(2.0, allowed_fraction * baseline)``.  p50/p99 and
  submit-to-done (``finished - created``) are reported alongside.
* **end-to-end client latency** — submit + poll + results over HTTP,
  reported (p50/p99/req-sec) but not gated: on localhost it is
  dominated by JSON round trips and the poll cadence, which both
  lanes pay identically.

All payloads — cold, warm, both daemons — must be bit-identical and
the warm fast-lane phase must dispatch nothing to the executor
(counter deltas).

A final *concurrency* phase measures the fast lane's real scheduling
win: warm sweeps no longer queue behind cold tuning work on their
runtime's serial executor.  Each daemon warms a small ``cp`` sampling
sweep, then its cp executor is occupied with a larger cold cp sample
(the blocker — a fresh seed, so its configs need real simulation),
and ``CONCURRENT_CLIENTS`` warm re-submits of the small sweep run
while the blocker grinds.  On the engine daemon they head-of-line
block behind the cold job on the runtime's single executor thread;
on the fastlane daemon every one rides the lane straight past it.
``concurrency_scaling`` is the engine daemon's wall clock for those
warm sweeps over the fastlane daemon's.

Results are written to ``BENCH_service_throughput.json`` at the repo
root; nightly CI uploads it next to the other ``BENCH_*`` artifacts.
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import tempfile
import time

from repro.apps import CoulombicPotential, MatMul
from repro.service.client import ServiceClient

from tests.service.conftest import RunningService

HERE = os.path.dirname(__file__)
BASELINE_PATH = os.path.join(HERE, "baselines", "service_throughput.json")
RESULT_PATH = os.path.join(HERE, os.pardir, "BENCH_service_throughput.json")

REQUEST = {"app": "matmul", "strategy": "exhaustive"}
WARM_REQUESTS = 25
CONCURRENT_CLIENTS = 4
#: the small cp sweep the concurrency phase re-submits warm
CP_WARM_REQUEST = {
    "app": "cp", "strategy": "random", "sample_size": 12, "seed": 1,
}
#: cold cp sampling sweep that occupies the cp runtime's executor for
#: the concurrency phase (~40ms per cold config: comfortably outlasts
#: the warm sweeps riding the lane past it, without dominating the run)
BLOCKER_SAMPLE_SIZE = 40
#: tight polling so measured latency reflects the daemon, not the
#: client's default 200ms poll interval.  Not *too* tight: the fast
#: lane serves on the event loop and yields at chunk boundaries, so a
#: sub-sweep poll cadence would splice poll handling into the lane's
#: own started->finished window (the executor path runs off-loop and
#: is immune), skewing the comparison against the lane.
POLL_INTERVAL = 0.005


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def timed_sweep(client: ServiceClient, request=REQUEST,
                timeout: float = 300.0):
    """One submit -> poll -> results round trip; (seconds, payload)."""
    started = time.perf_counter()
    job = client.submit(request)
    deadline = time.monotonic() + timeout
    status = client.status(job["id"])
    while status["state"] in ("queued", "running"):
        if time.monotonic() >= deadline:
            raise TimeoutError(f"sweep {job['id']} still {status['state']}")
        time.sleep(POLL_INTERVAL)
        status = client.status(job["id"])
    assert status["state"] == "done", status
    payload = client.results(job["id"])
    return time.perf_counter() - started, payload, status


def warm_phase(daemon, count: int):
    """``count`` identical warm re-submits.

    Returns (client latencies, sweep latencies, submit-to-done
    latencies, last payload) — sweep latency is ``finished - started``
    from the job's status payload (the daemon's own account of serving
    the sweep), submit-to-done is ``finished - created``.
    """
    client = ServiceClient(
        f"http://{daemon.client.host}:{daemon.client.port}",
        timeout=60, keep_alive=True,
    )
    client_latencies, sweep_latencies, total_latencies = [], [], []
    payload = None
    try:
        for _ in range(count):
            seconds, payload, status = timed_sweep(client)
            client_latencies.append(seconds)
            sweep_latencies.append(status["finished"] - status["started"])
            total_latencies.append(status["finished"] - status["created"])
    finally:
        client.close()
    return client_latencies, sweep_latencies, total_latencies, payload


def percentile(latencies, fraction: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _warm_wall_under_blocker(daemon, seed: int):
    """Wall clock of warm ``CP_WARM_REQUEST`` re-submits while a cold
    cp sampling sweep holds the cp runtime's executor.  Submitted
    first, the blocker owns the runtime's single executor thread for
    its whole run — on the engine daemon the warm sweeps head-of-line
    block behind it; on the fastlane daemon they ride the lane
    straight past it."""
    blocker = daemon.client.submit({
        "app": "cp", "strategy": "random",
        "sample_size": BLOCKER_SAMPLE_SIZE, "seed": seed,
    })
    client = ServiceClient(
        f"http://{daemon.client.host}:{daemon.client.port}",
        timeout=300, keep_alive=True,
    )
    outcomes = []
    started = time.perf_counter()
    try:
        for _ in range(CONCURRENT_CLIENTS):
            _, payload, status = timed_sweep(client, CP_WARM_REQUEST)
            outcomes.append((payload, status))
    finally:
        client.close()
    wall = time.perf_counter() - started
    blocker_status = daemon.client.wait(blocker["id"], timeout=300)
    assert blocker_status["state"] == "done", blocker_status
    return wall, outcomes


def service_deltas(daemon, before):
    after = daemon.service.counters.as_dict()
    return {
        name: after.get(name, 0) - before.get(name, 0)
        for name in set(after) | set(before)
    }


def test_warm_sweep_fastlane_throughput():
    store_dir = tempfile.mkdtemp(prefix="repro-store-service-bench-")
    engine_daemon = fastlane_daemon = None
    try:
        # ------------------------------------------------------------------
        # PR 8 baseline: the executor path, memo-warm.
        engine_daemon = RunningService(
            [MatMul(), CoulombicPotential()], workers=1, store=store_dir,
            fastlane=False, keep_alive=True,
        )
        cold_started = time.perf_counter()
        cold = engine_daemon.client.sweep(REQUEST, timeout=600)
        cold_seconds = time.perf_counter() - cold_started
        (engine_client_lat, engine_sweep_lat, engine_total_lat,
         engine_payload) = warm_phase(engine_daemon, WARM_REQUESTS)
        assert canonical(engine_payload["result"]) == canonical(
            cold["result"]
        )
        assert engine_payload["stats"]["simulations"] == 0

        # ------------------------------------------------------------------
        # The fast lane, over the same store (its cold sweep is
        # store-warm: the executor runs once, simulating nothing).
        fastlane_daemon = RunningService(
            [MatMul(), CoulombicPotential()], workers=1, store=store_dir,
            keep_alive=True,
        )
        seed = fastlane_daemon.client.sweep(REQUEST, timeout=600)
        assert fastlane_daemon.client.status(seed["id"])["lane"] == "engine"
        before = fastlane_daemon.service.counters.as_dict()
        (fastlane_client_lat, fastlane_sweep_lat, fastlane_total_lat,
         fastlane_payload) = warm_phase(fastlane_daemon, WARM_REQUESTS)
        deltas = service_deltas(fastlane_daemon, before)
        # Every warm re-submit rode the lane; the executor sat idle.
        assert deltas["fastlane_sweeps"] == WARM_REQUESTS
        assert deltas.get("executor_dispatches", 0) == 0
        assert deltas.get("keepalive_reuses", 0) > 0
        assert fastlane_payload["stats"]["simulations"] == 0
        assert fastlane_payload["stats"]["events_replayed"] == 0
        # Bit-identity across paths, daemons, and the cold run.
        assert canonical(fastlane_payload["result"]) == canonical(
            cold["result"]
        )

        # ------------------------------------------------------------------
        # Concurrency: warm the small cp sweep on each daemon, occupy
        # each cp executor with a cold cp sample (distinct seeds, so
        # neither blocker replays the other's store entries
        # config-for-config), and run the warm re-submits against it.
        cp_seed = engine_daemon.client.sweep(CP_WARM_REQUEST, timeout=600)
        serial_seconds, engine_under_load = _warm_wall_under_blocker(
            engine_daemon, seed=3
        )
        for payload, status in engine_under_load:
            assert canonical(payload["result"]) == canonical(
                cp_seed["result"]
            )

        lane_cp_seed = fastlane_daemon.client.sweep(
            CP_WARM_REQUEST, timeout=600
        )
        assert canonical(lane_cp_seed["result"]) == canonical(
            cp_seed["result"]
        )
        concurrent_seconds, lane_under_load = _warm_wall_under_blocker(
            fastlane_daemon, seed=4
        )
        for payload, status in lane_under_load:
            assert status["lane"] == "fastlane"
            assert canonical(payload["result"]) == canonical(
                cp_seed["result"]
            )
        concurrency_scaling = serial_seconds / concurrent_seconds
    finally:
        for daemon in (engine_daemon, fastlane_daemon):
            if daemon is not None:
                daemon.close()
        shutil.rmtree(store_dir, ignore_errors=True)

    fastlane_speedup = min(engine_sweep_lat) / min(fastlane_sweep_lat)

    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    expected_speedup = baseline["matmul_exhaustive"]["fastlane_speedup"]
    expected_scaling = baseline["matmul_exhaustive"]["concurrency_scaling"]
    allowed_fraction = baseline["allowed_fraction"]

    def latency_block(sweep, total, client):
        return {
            "sweep_min_ms": round(min(sweep) * 1e3, 3),
            "sweep_p50_ms": round(statistics.median(sweep) * 1e3, 3),
            "sweep_p99_ms": round(percentile(sweep, 0.99) * 1e3, 3),
            "submit_to_done_p50_ms": round(
                statistics.median(total) * 1e3, 3
            ),
            "client_p50_ms": round(statistics.median(client) * 1e3, 2),
            "client_p99_ms": round(percentile(client, 0.99) * 1e3, 2),
            "requests_per_second": round(len(client) / sum(client), 1),
        }

    payload = {
        "benchmark": "service_throughput",
        "request": REQUEST,
        "warm_requests": WARM_REQUESTS,
        "cold_sweep_seconds": round(cold_seconds, 3),
        "engine_path": latency_block(
            engine_sweep_lat, engine_total_lat, engine_client_lat
        ),
        "fastlane": latency_block(
            fastlane_sweep_lat, fastlane_total_lat, fastlane_client_lat
        ),
        "fastlane_speedup": round(fastlane_speedup, 2),
        "baseline_speedup": expected_speedup,
        "concurrency": {
            "warm_sweeps": CONCURRENT_CLIENTS,
            "blocker": {
                "app": "cp", "strategy": "random",
                "sample_size": BLOCKER_SAMPLE_SIZE,
            },
            "engine_under_load_seconds": round(serial_seconds, 3),
            "fastlane_under_load_seconds": round(concurrent_seconds, 3),
            "scaling": round(concurrency_scaling, 2),
            "baseline_scaling": expected_scaling,
        },
        "gate": (
            f"fastlane_speedup (min/min) >= "
            f"max(2.0, {allowed_fraction} * baseline) "
            f"and scaling >= {allowed_fraction} * baseline_scaling"
        ),
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    floor = max(2.0, allowed_fraction * expected_speedup)
    assert fastlane_speedup >= floor, (
        f"warm fast lane regressed: {fastlane_speedup:.2f}x over the "
        f"executor path vs required {floor:.2f}x "
        f"(baseline {expected_speedup}x, fraction {allowed_fraction})"
    )
    assert concurrency_scaling >= allowed_fraction * expected_scaling, (
        f"concurrent warm sweeps regressed: {concurrency_scaling:.2f}x "
        f"vs baseline {expected_scaling}x "
        f"(allowed fraction {allowed_fraction})"
    )
