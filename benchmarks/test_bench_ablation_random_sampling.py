"""Ablation — Pareto pruning versus random sampling.

Section 7 names this comparison as future work: "we will compare the
effectiveness of our method to random sampling of the optimization
space."  We run it: random samples of the same budget as the Pareto
subset, across many seeds, and measure how often and how badly random
sampling misses the optimum.
"""

import statistics

from repro.tuning import random_search

SEEDS = range(20)


def test_random_sampling_versus_pareto(benchmark, suite):
    report_lines = ["\napp      budget  pareto_gap  random_hit%  random_mean_gap"]
    for name in ("matmul", "cp", "sad", "mri-fhd"):
        experiment = suite[name]
        app = experiment.app
        configs = app.space().configurations()
        budget = experiment.pareto.timed_count
        optimum = experiment.exhaustive.best.seconds

        gaps = []
        hits = 0
        for seed in SEEDS:
            result = random_search(configs, app.evaluate, app.simulate,
                                   sample_size=budget, seed=seed)
            gap = result.best.seconds / optimum - 1.0
            gaps.append(gap)
            if gap < 1e-12:
                hits += 1

        pareto_gap = experiment.pruned_best_gap
        mean_gap = statistics.mean(gaps)
        report_lines.append(
            f"{name:8s} {budget:6d}  {pareto_gap * 100:9.2f}%  "
            f"{hits / len(list(SEEDS)) * 100:10.0f}%  {mean_gap * 100:14.2f}%"
        )

        # The Pareto search finds the optimum; equal-budget random
        # sampling misses it in most draws and is worse on average.
        assert pareto_gap == 0.0
        assert hits < len(list(SEEDS))
        assert mean_gap > 0.0

    print("\n".join(report_lines))

    # Time one random search round for the record.
    app = suite["cp"].app
    configs = app.space().configurations()
    benchmark.pedantic(
        lambda: random_search(configs, app.evaluate, app.simulate,
                              sample_size=suite["cp"].pareto.timed_count,
                              seed=0),
        rounds=3, iterations=1,
    )
