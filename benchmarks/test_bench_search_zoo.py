"""Gated benchmark: the search-strategy zoo's budget-versus-quality.

The claim being pinned (see ISSUE 10 / ROADMAP item 2): every adaptive
strategy — simulated annealing, genetic, particle swarm, basin
hopping, surrogate — reaches within 5% of the full-exploration optimum
on at least one application while spending at most 25% of the
full-space evaluations, and does so deterministically under a pinned
seed.  Per-strategy counts of solved apps are pinned in
``baselines/search_zoo.json``; a strategy dropping below its pinned
count (or below the 1-app acceptance floor) fails the gate.

A second gate pins the execution contract: a seeded zoo run is
bit-identical serial versus pooled (the engine's pooled timing is
bit-identical, and no strategy draws randomness in a timing-dependent
order).

Everything runs against the session ``suite`` fixture's warm
app-level caches, so the zoo's measurements are cache replays — the
benchmark times search *quality*, not the simulator.

Emits ``BENCH_search_zoo.json`` (uploaded from CI) with per-app ×
strategy gaps, budgets, and evaluations-to-within-5%.
"""

from __future__ import annotations

import json
import os

from repro.harness.payload import search_result_payload
from repro.tuning.engine import ExecutionEngine
from repro.tuning.strategies import adaptive_strategy_names, build_strategy

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "baselines", "search_zoo.json")
RESULT_PATH = os.path.join(HERE, os.pardir, "BENCH_search_zoo.json")

APP_NAMES = ("matmul", "cp", "sad", "mri-fhd")


def _zoo_run(app, name, *, seed, budget, workers=1, restrict="full"):
    """One strategy run on a fresh engine over the app's warm caches."""
    engine = ExecutionEngine.for_app(app, workers=workers)
    try:
        return build_strategy(name).run(
            app.space().configurations(), engine,
            seed=seed, budget=budget, restrict=restrict,
        )
    finally:
        engine.close()


def test_every_strategy_beats_the_budget_quality_gate(suite):
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    seed = baseline["seed"]
    budget_fraction = baseline["budget_fraction"]
    within = baseline["within_fraction"]
    floor = baseline["min_apps_within_5pct"]
    pinned = baseline["apps_within_5pct"]

    strategies = adaptive_strategy_names()
    assert set(pinned) == set(strategies), (
        "baselines/search_zoo.json must pin every registered strategy: "
        f"pinned {sorted(pinned)} vs registry {sorted(strategies)}"
    )

    details = []
    counts = {name: 0 for name in strategies}
    for app_name in APP_NAMES:
        experiment = suite[app_name]
        app = experiment.app
        optimum = experiment.exhaustive.best.seconds
        valid = experiment.exhaustive.valid_count
        budget = max(1, round(budget_fraction * valid))
        for name in strategies:
            result = _zoo_run(app, name, seed=seed, budget=budget)
            assert result.timed_count <= budget, (
                f"{name} on {app_name}: timed {result.timed_count} "
                f"configurations, over the budget of {budget}"
            )
            gap = result.best.seconds / optimum - 1.0
            hit = result.best.seconds <= optimum * (1.0 + within)
            if hit:
                counts[name] += 1
            details.append({
                "app": app_name,
                "strategy": name,
                "valid_space": valid,
                "budget": budget,
                "timed": result.timed_count,
                "best_seconds": result.best.seconds,
                "optimum_seconds": optimum,
                "gap_percent": round(gap * 100.0, 3),
                "within_5pct": hit,
                "evals_to_5pct": result.evaluations_to_within(
                    within, optimum
                ),
            })

    payload = {
        "benchmark": "search_zoo",
        "gate": (
            f"per strategy: apps_within_5pct >= pinned baseline and >= "
            f"{floor}; budget = {budget_fraction} of the valid space; "
            f"seed = {seed}"
        ),
        "apps_within_5pct": counts,
        "baseline_apps_within_5pct": pinned,
        "runs": details,
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    for name in strategies:
        assert counts[name] >= floor, (
            f"{name}: within 5% of the optimum on {counts[name]} apps at "
            f"a {budget_fraction:.0%} budget — below the acceptance floor "
            f"of {floor}"
        )
        assert counts[name] >= pinned[name], (
            f"{name}: within 5% on {counts[name]} apps, regressed from "
            f"the pinned {pinned[name]} (baselines/search_zoo.json)"
        )


def test_seeded_zoo_run_is_bit_identical_serial_vs_pooled(suite):
    app = suite["matmul"].app
    serial = _zoo_run(app, "genetic", seed=7, budget=16, workers=1)
    pooled = _zoo_run(app, "genetic", seed=7, budget=16, workers=2)
    serial_bytes = json.dumps(search_result_payload(serial), sort_keys=True)
    pooled_bytes = json.dumps(search_result_payload(pooled), sort_keys=True)
    assert serial_bytes == pooled_bytes, (
        "a seeded genetic run diverged between serial and 2-worker "
        "pooled execution — the zoo's determinism contract is broken"
    )


def test_pareto_restriction_stays_on_budget(suite):
    """The composed mode: searching only the Pareto subset can never
    cost more than the subset itself."""
    for app_name in APP_NAMES:
        experiment = suite[app_name]
        pareto_size = experiment.pareto.timed_count
        result = _zoo_run(
            experiment.app, "anneal", seed=0, budget=10_000,
            restrict="pareto",
        )
        assert result.pool_size == pareto_size
        assert result.timed_count <= pareto_size
