"""Figure 4 — the SAD optimization space.

"The number of possible configurations is much larger than matrix
multiplication and the response of performance to optimizations even
more complex."  The assertions capture that shape: hundreds of valid
configurations, a wide min-max spread at fixed thread counts (the
vertical scatter of the figure's lines), and no simple monotone
relation between threads per block and performance.
"""

from repro.harness import figure4_series


def test_figure4_sad_space(benchmark, sad_experiment):
    rows = benchmark.pedantic(
        lambda: figure4_series(sad_experiment), rounds=1, iterations=1
    )
    by_threads = {}
    for row in rows:
        by_threads.setdefault(row["threads_per_block"], []).append(row["time_ms"])

    print("\nthreads/block  configs  min(ms)  median(ms)  max(ms)")
    for threads in sorted(by_threads):
        times = sorted(by_threads[threads])
        print(f"{threads:>13}  {len(times):>7}  {times[0]:7.3f}  "
              f"{times[len(times) // 2]:10.3f}  {times[-1]:7.3f}")

    assert len(rows) > 700
    assert len(by_threads) >= 6

    # Vertical scatter: at some thread count the slowest configuration
    # is at least 2x the fastest (the figure's overlapping lines).
    spreads = [max(v) / min(v) for v in by_threads.values() if len(v) > 10]
    assert max(spreads) > 2.0

    # Non-monotone response: the per-thread-count minima do not simply
    # improve with more threads.
    minima = [min(by_threads[t]) for t in sorted(by_threads)]
    assert minima != sorted(minima)
    assert minima != sorted(minima, reverse=True)


def test_figure4_optimum_matches_experiment(sad_experiment):
    rows = figure4_series(sad_experiment)
    best = min(rows, key=lambda r: r["time_ms"])
    assert best["time_ms"] * 1e-3 == sad_experiment.gpu_best_seconds
