"""Ablation — robustness to the runtime's register-allocation jitter.

Section 3.2: "Since the mechanism by which the CUDA runtime performs
scheduling and register allocation is not visible to the application
developer, we do not have a clear explanation for this non-uniform
behavior"; Section 2.3 calls it "an uncontrollable element during
program optimization."

Our allocator exposes that nondeterminism as a seedable perturbation.
This bench re-derives the metric plot under many perturbed allocations
and measures how often Pareto pruning still captures a near-optimal
configuration — the pruning method must be robust to the jitter the
paper could not control.
"""

from repro.arch import LaunchError
from repro.metrics.model import evaluate_kernel
from repro.tuning import pareto_indices

SEEDS = range(1, 13)


def _pruned_gap(app, seed, times):
    entries = []
    for config in app.space():
        kernel = app.kernel(config)
        try:
            report = evaluate_kernel(kernel, reschedule_seed=seed)
        except LaunchError:
            continue
        entries.append((config, report))
    points = [(r.efficiency, r.utilization) for _, r in entries]
    front = pareto_indices(points)
    pruned_best = min(times[entries[i][0]] for i in front)
    true_best = min(times.values())
    return pruned_best / true_best - 1.0


def test_pruning_robust_to_register_jitter(benchmark, cp_experiment):
    app = cp_experiment.app
    times = {
        entry.config: entry.seconds
        for entry in cp_experiment.exhaustive.timed
    }

    def sweep():
        return {seed: _pruned_gap(app, seed, times) for seed in SEEDS}

    gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nseed  pruned_gap")
    for seed, gap in gaps.items():
        print(f"{seed:>4}  {gap * 100:9.2f}%")

    # Under every perturbed allocation the pruned search still lands
    # within a few percent of the true optimum.
    assert max(gaps.values()) < 0.10
    # And in most runs it finds the optimum exactly.
    exact = sum(1 for gap in gaps.values() if gap < 1e-12)
    assert exact >= len(list(SEEDS)) // 2
