"""Ablation — cluster sampling on top of Pareto pruning (Section 5.2).

"When several configurations have identical or nearly identical
metrics, it may be sufficient to randomly select a single
configuration from that cluster."  On MRI-FHD the Pareto subset
collapses 7-fold, and the chosen representative stays within the
paper's 7.1% intra-cluster bound of the true optimum.
"""

from repro.tuning import pareto_cluster_search


def test_cluster_sampling_on_mri(benchmark, mri_experiment):
    app = mri_experiment.app
    configs = app.space().configurations()

    clustered = benchmark.pedantic(
        lambda: pareto_cluster_search(configs, app.evaluate, app.simulate),
        rounds=1, iterations=1,
    )
    plain_count = mri_experiment.pareto.timed_count
    optimum = mri_experiment.exhaustive.best.seconds
    gap = clustered.best.seconds / optimum - 1.0

    print(f"\nplain Pareto subset: {plain_count} configurations timed")
    print(f"cluster-sampled:     {clustered.timed_count} configurations timed")
    print(f"gap to true optimum: {gap * 100:.2f}% (paper cluster spread: "
          f"up to 7.1%)")

    assert clustered.timed_count == plain_count // 7
    assert gap < 0.075
    assert clustered.measured_seconds < mri_experiment.pareto.measured_seconds
