"""Ablation — the "more detailed cost model" (Section 4 future work).

The closed-form analytical model produces one time estimate per
configuration from the same static inputs as the metrics.  This bench
measures how well it ranks configurations against the discrete-event
simulator, per application — the obvious question being whether a
single cost function could replace the two-metric Pareto machinery
("We have found that the metrics are not detailed enough to combine
into a single robust cost function", Section 5.1; the analytical model
is the paper's proposed way past that).
"""

from scipy.stats import spearmanr

from repro.arch import LaunchError
from repro.metrics import analytical_estimate


def _rank_quality(experiment):
    app = experiment.app
    modeled = []
    simulated = []
    for entry in experiment.exhaustive.timed:
        try:
            estimate = analytical_estimate(app.kernel(entry.config),
                                           app.sim_config(entry.config))
        except LaunchError:
            continue
        modeled.append(estimate.seconds)
        simulated.append(entry.seconds)
    rho, _ = spearmanr(modeled, simulated)
    best_by_model = min(range(len(modeled)), key=lambda i: modeled[i])
    model_pick_gap = simulated[best_by_model] / min(simulated) - 1.0
    return rho, model_pick_gap


def test_analytical_model_ranking(benchmark, suite):
    results = benchmark.pedantic(
        lambda: {
            name: _rank_quality(suite[name])
            for name in ("matmul", "cp", "sad", "mri-fhd")
        },
        rounds=1, iterations=1,
    )

    print("\napp      spearman_rho  model_pick_gap")
    for name, (rho, gap) in results.items():
        print(f"{name:8s} {rho:12.3f}  {gap * 100:13.2f}%")

    # The model ranks the single-launch applications well.  MRI-FHD's
    # configurations differ mainly by launch-overhead noise the
    # per-launch model cannot see, so its rank correlation is
    # meaningless there — but its pick is still near-optimal.
    for name in ("matmul", "cp", "sad"):
        assert results[name][0] > 0.55, name
    # The top pick is near-optimal everywhere — though not guaranteed
    # optimal, which is why the paper prunes to a Pareto *set* instead
    # of trusting one cost function.
    for name, (_, gap) in results.items():
        assert gap < 0.10, name
