"""Static-stage benchmark: overhauled pipeline versus reference.

Times the full static sweep (kernel generation -> cleanup pipeline ->
compile -> Section 4 metrics) over the matmul full space (96
configurations) and the Coulombic-potential full space through two
pipelines:

* **reference** — the pre-overhaul path: ``standard_cleanup`` detects
  convergence by re-emitting and string-comparing the PTX after every
  round, ``count_regions`` feeds the fully expanded dynamic stream
  through the region state machine one instruction at a time, and
  every configuration is evaluated from scratch with no compile cache;
* **optimized** — ``ExecutionEngine.evaluate_all``: change-driven
  fixpoint (no PTX emission on the convergence path), loop-compressed
  region counting, and the content-addressed compile tier sharing
  whole static reports across configurations whose post-transform
  kernels coincide.

Both pipelines must produce bit-identical metric reports, the same
invalid set, and the same Pareto-optimal subset — the comparison is
pure wall clock.  The *speedup ratio* is gated against
``baselines/static_pipeline.json`` (ratios of two in-process sweeps
are largely machine-independent, unlike absolute seconds).

A micro-benchmark section also reports ``Configuration`` key-lookup
throughput: the O(1) cached-dict ``__getitem__`` against the linear
tuple scan it replaced (lookups dominate ``build_kernel`` argument
plumbing across a sweep).

Results are written to ``BENCH_static_pipeline.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

from repro.apps import CoulombicPotential, MatMul
from repro.arch.occupancy import LaunchError
from repro.metrics.model import evaluate_kernel
from repro.ptx import analysis
from repro.transforms import pipeline as pipeline_module
from repro.tuning import pareto_indices
from repro.tuning.engine import ExecutionEngine

HERE = os.path.dirname(__file__)
BASELINE_PATH = os.path.join(HERE, "baselines", "static_pipeline.json")
RESULT_PATH = os.path.join(HERE, os.pardir, "BENCH_static_pipeline.json")

#: the application modules that bind ``standard_cleanup`` by name
_APP_MODULES = (
    "repro.apps.matmul",
    "repro.apps.cp",
    "repro.apps.mri_fhd",
    "repro.apps.sad",
)


def _reference_sweep(app, monkeypatch):
    """The pre-overhaul static stage, one configuration at a time.

    Restores the original drivers (PTX-string fixpoint detection,
    expansion-based region counting) and evaluates every kernel from
    scratch — no compile tier, no engine.
    """
    times = {}
    with monkeypatch.context() as patched:
        for module in _APP_MODULES:
            patched.setattr(
                f"{module}.standard_cleanup",
                pipeline_module.standard_cleanup_reference,
            )
        patched.setattr(
            analysis, "count_regions", analysis.count_regions_reference
        )
        for config in app.space():
            try:
                times[config] = (evaluate_kernel(app.build_kernel(config)), None)
            except LaunchError as error:
                times[config] = (None, str(error))
    return times


def _optimized_sweep(app):
    with ExecutionEngine.for_app(app, workers=1) as engine:
        entries = engine.evaluate_all(list(app.space()))
        stats = engine.stats
    return (
        {e.config: (e.metrics, e.invalid_reason) for e in entries},
        stats,
    )


def _pareto(results):
    ordered = [
        (config, metrics)
        for config, (metrics, reason) in results.items()
        if reason is None
    ]
    indices = pareto_indices(
        [(m.efficiency, m.utilization) for _, m in ordered]
    )
    return [ordered[i][0] for i in indices]


def _lookup_microbench(configs, repeats=2000):
    """O(1) cached-dict lookup vs. the linear tuple scan it replaced."""
    keys = list(dict(configs[0]))

    def linear_lookup(config, key):
        # the replaced implementation: scan the sorted items tuple
        for name, value in config._items:
            if name == key:
                return value
        raise KeyError(key)

    started = time.perf_counter()
    for _ in range(repeats):
        for config in configs:
            for key in keys:
                config[key]
    constant_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(repeats):
        for config in configs:
            for key in keys:
                linear_lookup(config, key)
    linear_seconds = time.perf_counter() - started

    lookups = repeats * len(configs) * len(keys)
    return {
        "lookups": lookups,
        "cached_dict_seconds": round(constant_seconds, 4),
        "linear_scan_seconds": round(linear_seconds, 4),
        "speedup_vs_linear_scan": round(linear_seconds / constant_seconds, 2),
    }


def test_static_full_space_speedup_vs_baseline(monkeypatch):
    apps = {"matmul": MatMul, "cp": CoulombicPotential}

    reference_seconds = 0.0
    optimized_seconds = 0.0
    per_app = {}
    compile_counters = {}
    for name, factory in apps.items():
        started = time.perf_counter()
        reference_results = _reference_sweep(factory(), monkeypatch)
        app_reference = time.perf_counter() - started

        started = time.perf_counter()
        optimized_results, stats = _optimized_sweep(factory())
        app_optimized = time.perf_counter() - started

        # Identical semantics: reports, invalid set, Pareto subset.
        assert optimized_results == reference_results
        assert _pareto(optimized_results) == _pareto(reference_results)

        reference_seconds += app_reference
        optimized_seconds += app_optimized
        per_app[name] = {
            "configurations": len(reference_results),
            "reference_seconds": round(app_reference, 3),
            "optimized_seconds": round(app_optimized, 3),
        }
        compile_counters[name] = {
            "compile_evaluations": stats.compile_evaluations,
            "compile_hits": stats.compile_hits,
            "static_evaluations": stats.static_evaluations,
        }

    speedup = reference_seconds / optimized_seconds
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    expected = baseline["full_space_static"]["speedup_vs_reference"]
    allowed_fraction = baseline["allowed_fraction"]

    payload = {
        "benchmark": "static_pipeline",
        "space": "matmul full (96) + cp full static sweeps",
        "reference_sweep_seconds": round(reference_seconds, 3),
        "optimized_sweep_seconds": round(optimized_seconds, 3),
        "speedup_vs_reference": round(speedup, 2),
        "baseline_speedup": expected,
        "gate": f"speedup >= {allowed_fraction} * baseline",
        "per_app": per_app,
        "compile_tier": compile_counters,
        "configuration_lookup": _lookup_microbench(
            list(MatMul().space())[:8]
        ),
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    assert speedup >= allowed_fraction * expected, (
        f"static pipeline regressed: {speedup:.2f}x vs "
        f"baseline {expected}x (allowed fraction {allowed_fraction})"
    )
