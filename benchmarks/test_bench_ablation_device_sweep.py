"""Ablation — does the method survive a different device?

Section 1 motivates the work with architectural churn: "successive
generations of architectures require a complete reapplication of the
optimization process."  The method should transfer: on variants of the
8800 (halved bandwidth, a doubled register file) the Pareto subset of
the *re-evaluated* metrics must still contain each variant's optimum —
even though the optimum itself may move.
"""

import dataclasses

from repro.arch import GEFORCE_8800_GTX, LaunchError
from repro.metrics.model import evaluate_kernel
from repro.sim import SimConfig, simulate_kernel
from repro.tuning import pareto_indices

VARIANTS = {
    "stock-8800": GEFORCE_8800_GTX,
    "half-bandwidth": dataclasses.replace(
        GEFORCE_8800_GTX, global_memory_bandwidth_gbps=43.2
    ),
    "double-registers": dataclasses.replace(
        GEFORCE_8800_GTX, registers_per_sm=16384
    ),
}


def _run_on(device, app):
    sim_config = SimConfig(device=device)
    entries = []
    for config in app.space():
        kernel = app.kernel(config)
        try:
            report = evaluate_kernel(kernel, device=device)
            seconds = simulate_kernel(kernel, sim_config).seconds
        except LaunchError:
            continue
        entries.append((config, report, seconds))
    points = [(r.efficiency, r.utilization) for _, r, _ in entries]
    front = set(pareto_indices(points))
    optimal = min(range(len(entries)), key=lambda i: entries[i][2])
    return entries, front, optimal


def test_method_transfers_across_devices(benchmark, matmul_experiment):
    app = matmul_experiment.app

    def sweep():
        return {name: _run_on(device, app)
                for name, device in VARIANTS.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nvariant           valid  pareto  on_curve  pruned_gap  best_config")
    gaps = {}
    for name, (entries, front, optimal) in results.items():
        on_curve = optimal in front
        best_time = entries[optimal][2]
        pruned_best = min(entries[i][2] for i in front)
        gaps[name] = pruned_best / best_time - 1.0
        print(f"{name:16s} {len(entries):6d} {len(front):7d}  "
              f"{str(on_curve):8s}  {gaps[name] * 100:9.2f}%  "
              f"{dict(entries[optimal][0])}")

    # Stock and bandwidth-starved variants: optimum on the curve.
    for name in ("stock-8800", "half-bandwidth"):
        _, front, optimal = results[name]
        assert optimal in front, name

    # The double-register variant legalizes the prefetched 1x4 kernel
    # the stock device rejects; prefetching is invisible to the
    # metrics (the paper's Section 5.3 caveat), so the pruned search
    # lands on the non-prefetched twin — within a few percent of the
    # new optimum, but off the curve.  Architectural churn changes
    # which blind spots matter.
    stock_valid = len(results["stock-8800"][0])
    doubled_valid = len(results["double-registers"][0])
    assert doubled_valid > stock_valid
    assert gaps["double-registers"] < 0.10
