"""Ablation — coalescing-aware metrics (Section 7 future work).

"we wish to account for factors such as memory access coalescing ...
so that they may be more effective predictors of performance."

On matmul the plain curve is mostly bandwidth-crippled 8x8 points
(Section 5.3); pricing coalescing into Efficiency removes them,
shrinking the set that must be timed while keeping the optimum.
"""

from repro.metrics import adjusted_point
from repro.tuning import pareto_indices


def test_coalescing_aware_pruning(benchmark, matmul_experiment):
    timed = matmul_experiment.exhaustive.timed

    def fronts():
        raw_points = [
            (e.metrics.efficiency, e.metrics.utilization) for e in timed
        ]
        adjusted_points = [adjusted_point(e.metrics) for e in timed]
        return pareto_indices(raw_points), pareto_indices(adjusted_points)

    raw_front, adjusted_front = benchmark.pedantic(
        fronts, rounds=1, iterations=1
    )

    def describe(front, label):
        tiles = [timed[i].config["tile"] for i in front]
        print(f"{label}: {len(front)} selected, "
              f"{tiles.count(8)} of them 8x8")
        return tiles

    print()
    raw_tiles = describe(raw_front, "plain metrics     ")
    adjusted_tiles = describe(adjusted_front, "coalescing-aware  ")

    optimal = min(range(len(timed)), key=lambda i: timed[i].seconds)

    # The 5.3 phenomenon with plain metrics...
    assert raw_tiles.count(8) > 0
    assert optimal in set(raw_front)
    # ...fixed by the coalescing-aware variant without losing the
    # optimum.
    assert adjusted_tiles.count(8) < raw_tiles.count(8)
    assert optimal in set(adjusted_front)
    assert len(adjusted_front) <= len(raw_front)
