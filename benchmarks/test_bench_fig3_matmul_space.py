"""Figure 3 — matrix multiplication across the abbreviated space.

Shape assertions from Section 3.2:
  * every valid 8x8 configuration is slower than every 16x16 one
    (memory bandwidth bottleneck);
  * the optimum is the 1x4 16x16 configuration running one thread
    block per SM;
  * the far-right configuration (1x4, complete unroll, prefetch) is an
    invalid executable.
"""

from repro.harness import figure3_series


def test_figure3_matmul_space(benchmark, matmul_experiment):
    app = matmul_experiment.app
    rows = benchmark.pedantic(
        lambda: figure3_series(app), rounds=1, iterations=1
    )

    print("\ntile rect unroll    normal(ms) prefetch(ms)")
    paired = {}
    for row in rows:
        paired.setdefault((row["tile"], row["rect"], row["unroll"]), {})[
            row["prefetch"]] = row["time_ms"]
    for (tile, rect, unroll), times in sorted(paired.items(), key=str):
        normal = times.get(False)
        prefetch = times.get(True)
        fmt = lambda t: "   invalid" if t is None else f"{t:10.3f}"
        print(f"{tile:>3}x{tile:<2} 1x{rect} {unroll:<9}{fmt(normal)} {fmt(prefetch)}")

    valid = [r for r in rows if r["time_ms"] is not None]
    eights = [r["time_ms"] for r in valid if r["tile"] == 8]
    sixteens = [r["time_ms"] for r in valid if r["tile"] == 16]
    assert max(sixteens) < min(eights), "16x16 must dominate 8x8 (bandwidth)"

    best = min(valid, key=lambda r: r["time_ms"])
    assert best["tile"] == 16 and best["rect"] == 4
    assert best["unroll"] == "complete"

    far_right = [r for r in rows if r["time_ms"] is None]
    assert far_right, "the far-right prefetch configuration must be invalid"
    assert all(
        r["prefetch"] and r["rect"] == 4 and r["unroll"] == "complete"
        for r in far_right
    )


def test_figure3_unrolling_helps(matmul_experiment):
    """Deeper unrolling monotonically improves the 16x16 1x1 family."""
    app = matmul_experiment.app
    rows = {
        (r["unroll"], r["prefetch"]): r["time_ms"]
        for r in figure3_series(app)
        if r["tile"] == 16 and r["rect"] == 1
    }
    assert rows[("complete", False)] < rows[("4", False)]
    assert rows[("4", False)] < rows[("1", False)]
