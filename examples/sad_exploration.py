#!/usr/bin/env python
"""Figure 4 territory: exploring the SAD optimization space.

SAD has by far the largest space of the suite (hundreds of valid
configurations over five parameters).  This example contrasts three
ways of spending a measurement budget on it:

  * exhaustive search (the ground truth, and the cost ceiling);
  * Pareto pruning (the paper's method);
  * random sampling with the same budget as Pareto (the paper's
    named future-work comparison).

All three strategies share one ExecutionEngine, so the space is
evaluated statically once and every configuration is simulated at most
once — the 20-seed random study below is pure cache hits.  Set
REPRO_WORKERS=4 to fan the exhaustive pass out across a process pool
(results are bit-identical).

Run:  python examples/sad_exploration.py      (takes ~30s)
"""

import statistics

from repro.apps import SumOfAbsoluteDifferences
from repro.tuning import full_exploration, pareto_search, random_search


def main() -> None:
    app = SumOfAbsoluteDifferences()
    configs = app.space().configurations()
    print(f"SAD: {app.width}x{app.height} frames, "
          f"{app.search_width}x{app.search_width} search area, "
          f"{len(configs)} configurations")
    print("running exhaustive search (this is the expensive part)...")

    with app.search_engine(workers=None) as engine:
        exhaustive = full_exploration(configs, engine=engine)
        print(f"  optimum {dict(exhaustive.best.config)}")
        print(f"  at {exhaustive.best.seconds * 1e3:.3f} ms; total simulated "
              f"evaluation time {exhaustive.measured_seconds:.3f} s\n")

        pruned = pareto_search(configs, engine=engine)
        found = pruned.best.config == exhaustive.best.config
        print(f"Pareto pruning: timed {pruned.timed_count} configurations "
              f"({pruned.space_reduction * 100:.1f}% reduction)")
        print(f"  found the optimum: {found}")
        print(f"  simulated evaluation time {pruned.measured_seconds:.4f} s\n")

        budget = pruned.timed_count
        gaps = []
        hits = 0
        for seed in range(20):
            result = random_search(configs, sample_size=budget, seed=seed,
                                   engine=engine)
            gap = result.best.seconds / exhaustive.best.seconds - 1.0
            gaps.append(gap)
            hits += gap < 1e-12
        print(f"random sampling, same budget ({budget}), 20 seeds:")
        print(f"  found the optimum in {hits}/20 runs")
        print(f"  mean gap to optimum {statistics.mean(gaps) * 100:.1f}%, "
              f"worst {max(gaps) * 100:.1f}%")
        print(f"\nengine telemetry: {engine.stats.summary()}")


if __name__ == "__main__":
    main()
