#!/usr/bin/env python
"""Figure 6(b) in ASCII: Pareto pruning on the MRI-FHD space.

Evaluates all 175 MRI-FHD configurations, draws the normalized
efficiency/utilization scatter, highlights the Pareto subset and the
true optimum, and demonstrates the cluster structure (groups of seven
configurations with indistinguishable metrics).

Run:  python examples/mri_pareto_pruning.py        (takes ~15s)
"""

from repro.apps import MriFhd
from repro.harness import ascii_scatter, figure6_data, run_experiment
from repro.tuning import cluster_by_metrics


def main() -> None:
    app = MriFhd()
    print(f"MRI-FHD: {len(app.space())} configurations "
          f"({app.num_voxels} voxels, {app.num_samples} k-space samples)")
    print("running exhaustive + Pareto searches...\n")
    experiment = run_experiment(app)
    data = figure6_data(experiment)

    print(ascii_scatter(data.points, data.pareto, data.optimal))
    print(f"\nPareto subset: {len(data.pareto)} of {len(data.points)} "
          f"({experiment.space_reduction_percent:.0f}% pruned)")
    print(f"optimum on curve: {data.optimum_on_curve}")
    print(f"optimum: {dict(experiment.exhaustive.best.config)} at "
          f"{experiment.gpu_best_seconds * 1e3:.2f} ms")

    clusters = cluster_by_metrics(experiment.exhaustive.timed)
    sizes = sorted({len(c) for c in clusters})
    print(f"\nmetric clusters: {len(clusters)} groups, sizes {sizes}")
    example = max(clusters, key=len)
    times = sorted(e.seconds for e in example)
    print("one cluster's configurations (identical metrics, near-identical"
          " times):")
    for entry in sorted(example, key=lambda e: e.config["invocations"]):
        print(f"  invocations={entry.config['invocations']:>2}  "
              f"{entry.seconds * 1e3:8.3f} ms")
    print(f"intra-cluster spread: {(times[-1] / times[0] - 1) * 100:.1f}% "
          f"(paper: at most 7.1%)")


if __name__ == "__main__":
    main()
