#!/usr/bin/env python
"""Walk the paper's Section 3.2: hand-tuning matrix multiplication.

Reproduces the story of Figures 2 and 3 step by step — tiling choice,
rectangular thread tiling, unrolling, prefetching, register spilling —
showing for each step the compiler-visible facts (-ptx instruction
count, Regions, -cubin registers, occupancy) and the simulated time.

Run:  python examples/matmul_tuning.py
"""

from repro.apps import MatMul
from repro.arch import LaunchError
from repro.tuning import Configuration

STEPS = [
    ("8x8 tiles, naive",
     {"tile": 8, "rect": 1, "unroll": 1, "prefetch": False, "spill": False}),
    ("16x16 tiles (dodges the bandwidth wall)",
     {"tile": 16, "rect": 1, "unroll": 1, "prefetch": False, "spill": False}),
    ("1x2 rectangular thread tiling (Figure 2b)",
     {"tile": 16, "rect": 2, "unroll": 1, "prefetch": False, "spill": False}),
    ("complete unroll (Figure 2c)",
     {"tile": 16, "rect": 2, "unroll": "complete", "prefetch": False,
      "spill": False}),
    ("1x4 tiling + complete unroll (the paper's optimum)",
     {"tile": 16, "rect": 4, "unroll": "complete", "prefetch": False,
      "spill": False}),
    ("...adding prefetching (Figure 2d) — the far-right point",
     {"tile": 16, "rect": 4, "unroll": "complete", "prefetch": True,
      "spill": False}),
    ("...rescued by proactive spilling?",
     {"tile": 16, "rect": 4, "unroll": "complete", "prefetch": True,
      "spill": True}),
]


def main() -> None:
    app = MatMul()
    print(f"matrix multiplication, {app.n}x{app.n} "
          f"(paper used 4096; shape is size-invariant)\n")
    header = (f"{'step':52s} {'instr':>7} {'regions':>7} {'regs':>4} "
              f"{'B_SM':>4} {'time(ms)':>9}")
    print(header)
    print("-" * len(header))
    for label, params in STEPS:
        config = Configuration(params)
        try:
            report = app.evaluate(config)
            seconds = app.simulate(config)
            print(f"{label:52s} {report.instructions:7.0f} "
                  f"{report.regions:7d} "
                  f"{report.resources.registers_per_thread:4d} "
                  f"{report.blocks_per_sm:4d} {seconds * 1e3:9.3f}")
        except LaunchError as error:
            print(f"{label:52s} {'INVALID EXECUTABLE':>35}  ({error})")

    print("\nThe prefetched 1x4 kernel exceeds the register file — the")
    print("paper's 'invalid executable' — so the best valid configuration")
    print("is the plain completely-unrolled 1x4 kernel, despite running a")
    print("single 256-thread block per SM.")


if __name__ == "__main__":
    main()
