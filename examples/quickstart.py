#!/usr/bin/env python
"""Quickstart: prune an optimization space with the paper's metrics.

Takes the Coulombic Potential benchmark (the fastest of the suite),
evaluates the static metrics for all 40 configurations, prunes to the
Pareto-optimal subset, simulates only those, and compares against an
exhaustive search — the end-to-end workflow of Ryoo et al. (CGO 2008).

Run:  python examples/quickstart.py
"""

from repro.apps import CoulombicPotential
from repro.tuning import full_exploration, pareto_search


def main() -> None:
    app = CoulombicPotential()
    configs = app.space().configurations()
    print(f"{app.name}: {len(configs)} configurations "
          f"({app.space().raw_size} raw)")

    # One engine owns the space: both searches below share its static
    # metrics and measured times, so nothing is ever computed twice.
    with app.search_engine() as engine:
        # The paper's method: metrics everywhere, wall clock only on
        # the Pareto subset.
        pruned = pareto_search(configs, engine=engine)
        print(f"\nPareto subset: {pruned.timed_count} of {pruned.valid_count} "
              f"valid configurations "
              f"({pruned.space_reduction * 100:.0f}% of the space never timed)")
        for entry in pruned.timed:
            marker = " <-- best" if entry is pruned.best else ""
            print(f"  {dict(entry.config)}  {entry.seconds * 1e3:7.3f} ms{marker}")

        # Ground truth: time everything (the Pareto measurements above
        # are reused from the engine's cache).
        exhaustive = full_exploration(configs, engine=engine)
        print(f"\nexhaustive optimum: {dict(exhaustive.best.config)} "
              f"at {exhaustive.best.seconds * 1e3:.3f} ms")
        print(f"pruned search found the same optimum: "
              f"{pruned.best.config == exhaustive.best.config}")
        print(f"measurement cost: exhaustive {exhaustive.measured_seconds:.3f}s "
              f"of simulated kernel time vs pruned "
              f"{pruned.measured_seconds:.3f}s")


if __name__ == "__main__":
    main()
