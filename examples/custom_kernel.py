#!/usr/bin/env python
"""Bring your own kernel: the library as a CUDA-1.0-era toolchain.

Builds a small stencil kernel with the IR builder, then runs the whole
paper workflow on it by hand:

  1. emit PTX (-ptx) and read the resource usage (-cubin);
  2. compute Instr, Regions, Efficiency, Utilization;
  3. check correctness in the functional interpreter against numpy;
  4. compare optimization variants in the timing simulator.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.cubin import cubin_info
from repro.interp import launch
from repro.ir import DataType, Dim3, KernelBuilder
from repro.ir.builder import CTAID_X, TID_X
from repro.ir.validate import validate
from repro.metrics import evaluate_kernel
from repro.ptx import emit_ptx
from repro.sim import simulate_kernel
from repro.transforms import COMPLETE, standard_cleanup, unroll

WIDTH = 4096
BLOCK = 256
TAPS = 5


def build_stencil(unroll_factor, width=WIDTH) -> "Kernel":
    """out[i] = sum of in[i..i+4], staged through shared memory."""
    builder = KernelBuilder(
        f"stencil_u{unroll_factor}",
        block_dim=Dim3(BLOCK),
        grid_dim=Dim3(width // BLOCK),
    )
    source = builder.param_ptr("src", DataType.F32)
    sink = builder.param_ptr("dst", DataType.F32)
    halo = builder.shared("halo", DataType.F32, (BLOCK + TAPS - 1,))

    gid = builder.mad(CTAID_X, BLOCK, TID_X)
    builder.st(halo, TID_X, builder.ld(source, gid))
    # A few threads fetch the halo cells past the block edge.
    from repro.ir import CmpOp

    is_edge = builder.setp(CmpOp.LT, TID_X, TAPS - 1)
    with builder.if_(is_edge, taken_fraction=(TAPS - 1) / BLOCK):
        builder.st(
            halo,
            builder.add(TID_X, BLOCK),
            builder.ld(source, builder.add(gid, BLOCK)),
        )
    builder.bar()

    total = builder.mov(0.0)
    with builder.loop(0, TAPS, label="taps") as tap:
        value = builder.ld(halo, builder.add(TID_X, tap))
        builder.add(total, value, dest=total)
    builder.st(sink, gid, total)

    kernel = builder.finish()
    kernel = standard_cleanup(unroll(kernel, unroll_factor, label="taps"))
    validate(kernel)
    return kernel


def main() -> None:
    base = build_stencil(1)
    print("=== PTX (-ptx) for the baseline ===")
    print(emit_ptx(base))

    print("\n=== variants ===")
    print(f"{'variant':>10} {'instr':>7} {'regions':>7} {'regs':>4} "
          f"{'B_SM':>4} {'util':>8} {'time(us)':>9}")
    for factor in (1, 2, COMPLETE):
        kernel = build_stencil(factor)
        resources = cubin_info(kernel)
        report = evaluate_kernel(kernel)
        result = simulate_kernel(kernel)
        print(f"{str(factor):>10} {report.instructions:7.0f} "
              f"{report.regions:7d} {resources.registers_per_thread:4d} "
              f"{report.blocks_per_sm:4d} {report.utilization:8.1f} "
              f"{result.seconds * 1e6:9.2f}")

    # Correctness oracle at a reduced size.
    small_width = 1024
    kernel = build_stencil(COMPLETE, width=small_width)
    rng = np.random.default_rng(3)
    src = rng.standard_normal(small_width + BLOCK, dtype=np.float32)
    dst = np.zeros(small_width, dtype=np.float32)
    launch(kernel, {"src": src, "dst": dst})
    expected = sum(
        src[i:small_width + i] for i in range(TAPS)
    ).astype(np.float32)
    print("\ninterpreter matches numpy:",
          np.allclose(dst, expected, rtol=1e-5, atol=1e-5))


if __name__ == "__main__":
    main()
