"""Live intervals, loop widening, pipelining pressure."""

from repro.cubin import (
    analyze_liveness,
    live_intervals,
    max_pressure,
    pipeline_register_pressure,
)
from repro.cubin.liveness import LiveInterval
from repro.ir import DataType, Dim3, KernelBuilder, VirtualRegister
from repro.ir.builder import TID_X
from tests.conftest import build_tiled_matmul

F32 = DataType.F32


def builder():
    return KernelBuilder("k", block_dim=Dim3(32), grid_dim=Dim3(1))


def interval_of(kernel, name):
    for interval in live_intervals(kernel):
        if interval.register.name == name:
            return interval
    raise AssertionError(f"no interval for {name}")


class TestStraightLine:
    def test_chain_has_unit_pressure_per_stage(self):
        b = builder()
        x = b.param_ptr("x", F32)
        a = b.ld(x, TID_X)
        c = b.add(a, 1.0)
        d = b.add(c, 1.0)
        b.st(x, TID_X, d)
        intervals = live_intervals(b.finish())
        # a dies when c is defined, etc.: max two values overlap at
        # each definition point.
        assert max_pressure(intervals) == 2

    def test_parallel_values_overlap(self):
        b = builder()
        x = b.param_ptr("x", F32)
        values = [b.ld(x, TID_X, offset=i) for i in range(6)]
        total = values[0]
        for value in values[1:]:
            total = b.add(total, value)
        b.st(x, TID_X, total)
        # At the first add: the five remaining loads, the two operands
        # (dying at that position — endpoints are inclusive) and the
        # new sum are simultaneously live.
        assert max_pressure(live_intervals(b.finish())) == 7


class TestLoopWidening:
    def test_value_used_inside_loop_lives_through_it(self):
        b = builder()
        x = b.param_ptr("x", F32)
        base = b.ld(x, TID_X)             # defined before the loop
        acc = b.mov(0.0)
        with b.loop(0, 4):
            b.add(acc, base, dest=acc)    # read every iteration
        b.st(x, TID_X, acc)
        kernel = b.finish()
        info = analyze_liveness(kernel)
        loop_start, loop_end = info.loops[0]
        for name in ("v", "t"):
            pass
        base_interval = interval_of(kernel, base.name)
        assert base_interval.start <= loop_start
        assert base_interval.end >= loop_end

    def test_loop_local_temp_stays_local(self):
        b = builder()
        x = b.param_ptr("x", F32)
        acc = b.mov(0.0)
        with b.loop(0, 4) as i:
            temp = b.cvt(i, F32)
            b.add(acc, temp, dest=acc)
        b.st(x, TID_X, acc)
        kernel = b.finish()
        info = analyze_liveness(kernel)
        loop_start, loop_end = info.loops[0]
        temp_interval = interval_of(kernel, temp.name)
        assert temp_interval.start > loop_start
        assert temp_interval.end < loop_end

    def test_loop_carried_value_spans_loop(self):
        # Read-before-write inside the body = carried across the back
        # edge = live for the whole loop.
        b = builder()
        x = b.param_ptr("x", F32)
        rotating = b.mov(1.0)
        with b.loop(0, 4):
            b.mul(rotating, 2.0, dest=rotating)
        b.st(x, TID_X, rotating)
        kernel = b.finish()
        info = analyze_liveness(kernel)
        loop_start, loop_end = info.loops[0]
        interval = interval_of(kernel, rotating.name)
        assert interval.start <= loop_start
        assert interval.end >= loop_end

    def test_predicates_excluded_by_default(self):
        from repro.ir import CmpOp

        b = builder()
        x = b.param_ptr("x", F32)
        pred = b.setp(CmpOp.LT, TID_X, 4)
        value = b.selp(pred, 1.0, 2.0)
        b.st(x, TID_X, value)
        kernel = b.finish()
        names = {iv.register.name for iv in live_intervals(kernel)}
        assert pred.name not in names
        names_with = {
            iv.register.name
            for iv in live_intervals(kernel, include_predicates=True)
        }
        assert pred.name in names_with


class TestOverlap:
    def test_interval_overlap(self):
        r1 = VirtualRegister("a", F32)
        r2 = VirtualRegister("b", F32)
        assert LiveInterval(r1, 0, 5).overlaps(LiveInterval(r2, 5, 9))
        assert not LiveInterval(r1, 0, 4).overlaps(LiveInterval(r2, 5, 9))


class TestPipelinePressure:
    def test_no_barrier_no_pressure(self):
        b = builder()
        x = b.param_ptr("x", F32)
        acc = b.mov(0.0)
        with b.loop(0, 8):
            value = b.ld(x, TID_X)
            b.add(acc, value, dest=acc)
        b.st(x, TID_X, acc)
        assert pipeline_register_pressure(b.finish()) == 0

    def test_barrier_loop_without_inflight_loads_unpiped(self):
        # The plain (non-prefetched) tile loop: loads complete within
        # their own iteration, so the scheduler has nothing to pipeline.
        assert pipeline_register_pressure(build_tiled_matmul()) == 0

    def test_nested_loop_fences_pipelining(self):
        from repro.apps import MatMul
        from repro.tuning import Configuration

        app = MatMul()
        partially_unrolled = app.kernel(Configuration({
            "tile": 16, "rect": 4, "unroll": 4, "prefetch": True, "spill": False,
        }))
        assert pipeline_register_pressure(partially_unrolled) == 0

    def test_prefetched_straightline_loop_is_pipelined(self):
        from repro.apps import MatMul
        from repro.tuning import Configuration

        app = MatMul()
        kernel = app.kernel(Configuration({
            "tile": 16, "rect": 4, "unroll": "complete",
            "prefetch": True, "spill": False,
        }))
        pressure = pipeline_register_pressure(kernel)
        # 5 in-flight global values (x2) + accumulators/induction (+1).
        assert pressure >= 5 * 2 + 4
