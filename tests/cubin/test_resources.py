"""The -cubin resource report."""

import pytest

from repro.arch import LaunchError
from repro.cubin import (
    RESERVED_REGISTERS,
    SHARED_MEMORY_RUNTIME_BYTES,
    cubin_info,
)
from tests.conftest import build_saxpy, build_tiled_matmul


class TestCubinInfo:
    def test_shared_memory_includes_runtime_overhead(self):
        info = cubin_info(build_tiled_matmul())
        # Two 16x16 f32 tiles + the runtime's parameter area: the
        # paper's worked example reports 2088 bytes.
        assert info.shared_memory_per_block == 2048 + SHARED_MEMORY_RUNTIME_BYTES
        assert info.shared_memory_per_block == 2088

    def test_registers_include_reserve(self):
        info = cubin_info(build_saxpy())
        assert info.registers_per_thread >= RESERVED_REGISTERS + 1

    def test_occupancy_from_resources(self):
        info = cubin_info(build_tiled_matmul())
        occupancy = info.occupancy()
        assert occupancy.blocks_per_sm == 2      # register limited
        assert occupancy.warps_per_block == 8
        assert info.is_launchable()

    def test_unlaunchable_configuration(self):
        from repro.cubin.resources import ResourceUsage

        info = ResourceUsage(
            registers_per_thread=33,
            shared_memory_per_block=128,
            threads_per_block=256,
        )
        assert not info.is_launchable()
        with pytest.raises(LaunchError):
            info.occupancy()

    def test_matmul_registers_in_paper_band(self):
        # The worked example's B_SM = 2 requires 11..16 registers at
        # 256 threads/block.
        info = cubin_info(build_tiled_matmul())
        assert 11 <= info.registers_per_thread <= 16
