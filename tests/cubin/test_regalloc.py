"""Linear-scan register allocation.

Includes a hypothesis property: linear scan colors interval graphs
optimally, so the register count must always equal the maximum number
of simultaneously-live intervals.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.cubin import allocate, linear_scan, max_pressure
from repro.cubin.liveness import LiveInterval
from repro.ir import DataType, VirtualRegister
from tests.conftest import build_tiled_matmul

F32 = DataType.F32


def make_intervals(ranges):
    return [
        LiveInterval(VirtualRegister(f"r{i}", F32), start, end)
        for i, (start, end) in enumerate(ranges)
    ]


class TestLinearScan:
    def test_disjoint_intervals_share_a_register(self):
        allocation = linear_scan(make_intervals([(0, 1), (2, 3), (4, 5)]))
        assert allocation.registers_used == 1
        assert len(set(allocation.assignment.values())) == 1

    def test_overlapping_intervals_get_distinct_registers(self):
        allocation = linear_scan(make_intervals([(0, 5), (1, 6), (2, 7)]))
        assert allocation.registers_used == 3
        physical = list(allocation.assignment.values())
        assert len(set(physical)) == 3

    def test_adjacent_endpoints_conflict(self):
        # Both endpoints are occupied, so [0,2] and [2,4] overlap.
        allocation = linear_scan(make_intervals([(0, 2), (2, 4)]))
        assert allocation.registers_used == 2

    def test_empty(self):
        assert linear_scan([]).registers_used == 0

    @given(st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
            lambda pair: (min(pair), max(pair))
        ),
        max_size=40,
    ))
    def test_optimal_for_interval_graphs(self, ranges):
        intervals = make_intervals(ranges)
        allocation = linear_scan(intervals)
        assert allocation.registers_used == max_pressure(intervals)

    @given(st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
            lambda pair: (min(pair), max(pair))
        ),
        max_size=40,
    ))
    def test_no_two_overlapping_intervals_share(self, ranges):
        intervals = make_intervals(ranges)
        allocation = linear_scan(intervals)
        for i, first in enumerate(intervals):
            for second in intervals[i + 1:]:
                if first.overlaps(second):
                    assert (
                        allocation.physical(first.register)
                        != allocation.physical(second.register)
                    )


class TestAllocate:
    def test_matmul_allocation_is_deterministic(self):
        kernel = build_tiled_matmul()
        assert (
            allocate(kernel).registers_used == allocate(kernel).registers_used
        )

    def test_reschedule_seed_perturbs(self):
        # The "uncontrollable runtime" hook can change the count.
        kernel = build_tiled_matmul()
        baseline = allocate(kernel).registers_used
        perturbed = {
            allocate(kernel, reschedule_seed=seed).registers_used
            for seed in range(16)
        }
        assert all(count >= baseline for count in perturbed)
        assert max(perturbed) > baseline
