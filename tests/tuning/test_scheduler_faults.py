"""Chaos suite: the sweep scheduler under deterministic injected faults.

The acceptance bar for the fault-tolerance layer is not "it usually
recovers" — it is that under injected crashes, hangs, and worker
kills the sweep completes with results **bit-identical** to the serial
engine, and that the retry/timeout/quarantine counters in
``EngineStats`` match the injected :class:`FaultPlan` exactly.

Faults are applied only inside pool workers (the parent's serial path
never consults the plan), so the recovery invariant is structural:
whatever the pool fails to finish, the parent finishes with the same
deterministic callables.
"""

import logging

import pytest

from repro.obs.faults import Fault, FaultPlan, SIMULATE_STAGE
from repro.tuning import ExecutionEngine, RetryPolicy, cartesian
from repro.tuning.scheduler import SweepScheduler

pytestmark = pytest.mark.fast


class SweepApp:
    """Synthetic deterministic app; module-level so forked workers
    share the definitions cleanly."""

    def __init__(self):
        self.configs = cartesian({"e": [1, 2, 3, 4], "u": [1, 2, 3, 4]})

    def evaluate(self, config):
        return None

    def simulate(self, config):
        return 1.0 / (config["e"] + config["u"])

    def expected_seconds(self):
        return [1.0 / (c["e"] + c["u"]) for c in self.configs]


def _engine(app, plan, **policy_overrides):
    policy = RetryPolicy(
        timeout_seconds=policy_overrides.pop("timeout_seconds", 0.5),
        backoff_base=0.01,
        backoff_cap=0.05,
        **policy_overrides,
    )
    return ExecutionEngine(
        app.evaluate,
        app.simulate,
        workers=2,
        retry_policy=policy,
        fault_spec=plan.to_spec() if plan is not None else None,
    )


class TestMixedFaultRecovery:
    def test_counters_match_the_plan_exactly(self):
        """One raise, one kill, one hang — every recovery path in one
        sweep, each counted exactly once, zero serial fallbacks."""
        app = SweepApp()
        plan = FaultPlan(
            [
                Fault("raise", index=2),
                Fault("kill", index=5),
                Fault("hang", index=9, stage=SIMULATE_STAGE),
            ],
            hang_seconds=30.0,
        )
        injected = plan.expected(SIMULATE_STAGE, len(app.configs))
        assert injected == {"raise": [2], "hang": [9], "kill": [5]}

        # Quarantine threshold high enough that single failures never
        # retire a slot — this case is about per-task recovery.
        with _engine(app, plan, max_worker_failures=10) as engine:
            seconds = engine.seconds_for(app.configs)

        assert seconds == app.expected_seconds()
        stats = engine.stats
        assert stats.task_errors == len(injected["raise"])
        assert stats.worker_crashes == len(injected["kill"])
        assert stats.task_timeouts == len(injected["hang"])
        total_faults = sum(len(v) for v in injected.values())
        assert stats.task_retries == total_faults
        assert stats.fault_recoveries == total_faults
        assert stats.backoff_seconds > 0.0
        # Every faulted task succeeded on retry inside the pool.
        assert stats.serial_fallback_tasks == 0
        assert stats.workers_quarantined == 0
        assert stats.pool_fallbacks == 0
        # Each config was measured exactly once (faults fire before
        # any work, so failed attempts contribute nothing).
        assert stats.simulations == len(app.configs)

    def test_results_bit_identical_to_serial(self):
        serial_app = SweepApp()
        with ExecutionEngine(serial_app.evaluate, serial_app.simulate,
                             workers=1) as serial:
            serial_seconds = serial.seconds_for(serial_app.configs)

        faulted_app = SweepApp()
        plan = FaultPlan(
            [Fault("raise", index=0), Fault("kill", index=7),
             Fault("hang", index=15)],
            hang_seconds=30.0,
        )
        with _engine(faulted_app, plan, max_worker_failures=10) as faulted:
            faulted_seconds = faulted.seconds_for(faulted_app.configs)

        assert faulted_seconds == serial_seconds
        assert faulted.stats.simulations == serial.stats.simulations


class TestRetryExhaustion:
    def test_persistent_fault_falls_back_to_serial_for_that_task_only(
        self, caplog
    ):
        app = SweepApp()
        # Fault on every attempt: the pool can never finish task 3.
        plan = FaultPlan([Fault("raise", index=3, attempts=999)])
        with caplog.at_level(logging.WARNING, logger="repro.tuning.engine"):
            with _engine(app, plan, max_worker_failures=10) as engine:
                seconds = engine.seconds_for(app.configs)

        # The parent never consults the plan, so the sweep still
        # completes bit-identically.
        assert seconds == app.expected_seconds()
        stats = engine.stats
        assert stats.task_errors == 3          # one per attempt
        assert stats.task_retries == 2         # budget is 3 attempts
        assert stats.serial_fallback_tasks == 1
        assert stats.pool_fallbacks == 0       # the pool itself is fine
        assert stats.simulations == len(app.configs)
        assert any("exhausted the scheduler's retries" in r.getMessage()
                   for r in caplog.records)


class TestQuarantineAndCollapse:
    def test_total_collapse_degrades_to_serial_with_exact_accounting(
        self, caplog
    ):
        app = SweepApp()
        # Every dispatch kills its worker: each of the two slots
        # accumulates failures to the quarantine threshold, the pool
        # collapses, and the whole sweep degrades to the serial path.
        plan = FaultPlan(
            [Fault("kill", index=i, attempts=999)
             for i in range(len(app.configs))]
        )
        with caplog.at_level(logging.WARNING):
            with _engine(app, plan, max_worker_failures=3) as engine:
                seconds = engine.seconds_for(app.configs)

        assert seconds == app.expected_seconds()
        stats = engine.stats
        # Exactly max_worker_failures crashes per slot, then quarantine.
        assert stats.worker_crashes == 2 * 3
        assert stats.workers_quarantined == 2
        assert stats.pool_fallbacks == 1
        assert "quarantined" in stats.pool_fallback_reason
        assert stats.simulations == len(app.configs)
        # After the collapse the engine never rebuilds a pool.
        assert engine._pool_broken
        assert engine._scheduler is None
        assert any("quarantined" in r.getMessage() for r in caplog.records)

    def test_collapsed_engine_stays_serial_for_later_batches(self):
        app = SweepApp()
        plan = FaultPlan(
            [Fault("kill", index=i, attempts=999)
             for i in range(len(app.configs))]
        )
        with _engine(app, plan, max_worker_failures=1) as engine:
            engine.seconds_for(app.configs)
            assert engine.stats.pool_fallbacks == 1
            engine._seconds.clear()
            engine.seconds_for(app.configs)
            # Serial from the start this time: no new fallback event,
            # no resurrected scheduler.
            assert engine.stats.pool_fallbacks == 1
            assert engine._scheduler is None


class TestStaticStageFaults:
    def test_static_sweep_recovers_and_matches_serial(self):
        serial_app = SweepApp()
        with ExecutionEngine(serial_app.evaluate, serial_app.simulate,
                             workers=1) as serial:
            serial_entries = serial.evaluate_all(serial_app.configs)

        app = SweepApp()
        plan = FaultPlan([
            Fault("kill", index=0, stage="static"),
            Fault("raise", index=1, stage="static"),
        ])
        with _engine(app, plan, max_worker_failures=10) as engine:
            entries = engine.evaluate_all(app.configs)

        assert [(e.metrics, e.invalid_reason) for e in entries] == [
            (e.metrics, e.invalid_reason) for e in serial_entries
        ]
        assert engine.stats.worker_crashes == 1
        assert engine.stats.task_errors == 1
        assert engine.stats.task_retries == 2
        assert engine.stats.static_evaluations == len(app.configs)


class TestRealAppUnderFaults:
    def test_matmul_results_and_counters_bit_identical(self):
        """Full pipeline through real compile + simulate under faults:
        reports, times, and the partition-independent counter set all
        equal the serial run's."""
        from tests.tuning.test_static_pool import (
            COMPARED_COUNTERS, _matmul_configs,
        )

        chosen = _matmul_configs()

        from repro.apps import MatMul

        serial_app = MatMul().test_instance()
        with serial_app.search_engine(workers=1) as serial:
            serial_entries = serial.evaluate_all(chosen)
            serial_seconds = serial.seconds_for(chosen)

        plan = FaultPlan(
            [Fault("raise", index=1), Fault("kill", index=3)]
        )
        faulted_app = MatMul().test_instance()
        with faulted_app.search_engine(
            workers=2,
            retry_policy=RetryPolicy(timeout_seconds=60.0,
                                     backoff_base=0.01,
                                     max_worker_failures=10),
            fault_spec=plan.to_spec(),
        ) as faulted:
            faulted_entries = faulted.evaluate_all(chosen)
            faulted_seconds = faulted.seconds_for(chosen)

        assert faulted_seconds == serial_seconds
        assert [(e.metrics, e.invalid_reason) for e in faulted_entries] == [
            (e.metrics, e.invalid_reason) for e in serial_entries
        ]
        for name in COMPARED_COUNTERS:
            assert getattr(faulted.stats, name) == getattr(
                serial.stats, name
            ), name
        # Both stages saw the injected faults (stageless plan).
        assert faulted.stats.worker_crashes == 2
        assert faulted.stats.task_errors == 2
        assert faulted.stats.task_retries == 4


class TestFaultsFromEnvironment:
    def test_engine_reads_repro_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise:2")
        app = SweepApp()
        engine = ExecutionEngine(app.evaluate, app.simulate, workers=2)
        try:
            assert engine.fault_spec == "raise:2"
            seconds = engine.seconds_for(app.configs)
        finally:
            engine.close()
        assert seconds == app.expected_seconds()
        assert engine.stats.task_errors == 1
        assert engine.stats.task_retries == 1

    def test_malformed_spec_fails_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "explode:1")
        app = SweepApp()
        with pytest.raises(ValueError, match="explode"):
            ExecutionEngine(app.evaluate, app.simulate, workers=2)


class TestSchedulerDeterminism:
    def test_backoff_schedule_is_reproducible(self):
        policy = RetryPolicy(seed=42)
        first = [policy.backoff_seconds(f"sim:{i}", a)
                 for i in range(20) for a in (1, 2, 3)]
        second = [policy.backoff_seconds(f"sim:{i}", a)
                  for i in range(20) for a in (1, 2, 3)]
        assert first == second
        # Jitter de-synchronizes tasks: not all delays identical.
        assert len(set(first)) > 1
        # And the exponential envelope holds.
        assert max(first) <= policy.backoff_cap * (1 + policy.jitter)

    def test_backoff_cap_bounds_the_jittered_delay(self):
        """Regression: the cap was applied to the pre-jitter base, so
        jitter could stretch the sleep up to cap * (1 + jitter) — the
        cap must bound the *final* delay."""
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_cap=1.5, jitter=1.0, seed=0)
        delays = [policy.backoff_seconds(f"sim:{i}", attempt)
                  for i in range(50) for attempt in (1, 2, 3, 4)]
        assert max(delays) <= policy.backoff_cap
        # deep attempts saturate at exactly the cap
        assert policy.backoff_seconds("sim:0", 4) == policy.backoff_cap
        # small early delays keep their jitter spread below the cap
        early = [policy.backoff_seconds(f"sim:{i}", 1) for i in range(50)]
        assert len(set(early)) > 1
        assert all(1.0 <= delay <= 1.5 for delay in early)

    def test_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "5")
        policy = RetryPolicy.from_env()
        assert policy.timeout_seconds == 12.5
        assert policy.max_attempts == 5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "none")
        assert RetryPolicy.from_env().timeout_seconds is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_TASK_TIMEOUT"):
            RetryPolicy.from_env()
        monkeypatch.delenv("REPRO_TASK_TIMEOUT")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "many")
        with pytest.raises(ValueError, match="REPRO_TASK_RETRIES"):
            RetryPolicy.from_env()

    def test_scheduler_streams_results_in_completion_order(self):
        app = SweepApp()
        seen = []
        scheduler = SweepScheduler(
            2, app.simulate, app.evaluate,
            policy=RetryPolicy(timeout_seconds=30.0),
        )
        try:
            abandoned = scheduler.run(
                "sim", app.configs,
                lambda index, result, delta: seen.append((index, result)),
            )
        finally:
            scheduler.close()
        assert abandoned == []
        assert sorted(i for i, _ in seen) == list(range(len(app.configs)))
        expected = app.expected_seconds()
        for index, result in seen:
            assert result == expected[index]
