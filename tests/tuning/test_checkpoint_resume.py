"""Checkpoint robustness: corrupt files and mid-sweep resume edges.

Two classes of contract:

* a truncated or corrupt checkpoint must never crash the sweep — the
  engine detects it, warns, counts it (``checkpoint_corrupt``), and
  restarts fresh; only *well-formed* files with the wrong version or
  label are still refused loudly (that is a user error, not damage);
* ``--resume`` mid-sweep edge cases are bit-identical to a fresh run:
  a checkpoint written between the static and simulation stages, and
  a checkpoint produced under a different worker count, both resume
  to the same reports, seconds, and search results.
"""

import json
import logging
import os

import pytest

from repro.tuning import ExecutionEngine, cartesian
from tests.tuning.test_static_pool import _matmul_configs

pytestmark = pytest.mark.fast


class PlainApp:
    def __init__(self):
        self.configs = cartesian({"e": [1, 2], "u": [1, 2]})
        self.simulated = []

    def evaluate(self, config):
        return None

    def simulate(self, config):
        self.simulated.append(config)
        return 1.0 / (config["e"] + config["u"])


def _fresh_matmul_run(chosen, workers=1, checkpoint_path=None):
    from repro.apps import MatMul

    app = MatMul().test_instance()
    with app.search_engine(workers=workers,
                           checkpoint_path=checkpoint_path) as engine:
        entries = engine.evaluate_all(chosen)
        seconds = engine.seconds_for(chosen)
    keyed = [(e.metrics, e.invalid_reason) for e in entries]
    return keyed, seconds, engine.stats


class TestCorruptCheckpoint:
    @pytest.mark.parametrize("payload", [
        "",                                   # empty file
        "{\"version\": 2, \"times\": {",      # truncated mid-write
        "not json at all",                    # garbage
        "[1, 2, 3]",                          # wrong top-level type
        "{\"times\": {}}",                    # missing version marker
        "{\"version\": 2, \"times\": []}",    # malformed times table
        "{\"version\": 2, \"times\": {\"k\": \"soon\"}}",  # bad value
        "{\"version\": 2, \"static\": {\"k\": 3}}",        # bad entry
    ])
    def test_corrupt_file_warns_and_restarts_fresh(
        self, tmp_path, caplog, payload
    ):
        path = tmp_path / "sweep.json"
        path.write_text(payload)
        app = PlainApp()
        with caplog.at_level(logging.WARNING, logger="repro.tuning.engine"):
            with ExecutionEngine(app.evaluate, app.simulate,
                                 checkpoint_path=str(path)) as engine:
                seconds = engine.seconds_for(app.configs)

        assert seconds == [1.0 / (c["e"] + c["u"]) for c in app.configs]
        assert engine.stats.checkpoint_corrupt == 1
        assert engine.stats.checkpoint_hits == 0
        assert engine.stats.simulations == len(app.configs)
        assert any("corrupt" in r.getMessage() for r in caplog.records)
        # The rewritten checkpoint is valid again and resumes normally.
        data = json.loads(path.read_text())
        assert data["version"] == 2
        resumed = PlainApp()
        with ExecutionEngine(resumed.evaluate, resumed.simulate,
                             checkpoint_path=str(path)) as again:
            assert again.seconds_for(resumed.configs) == seconds
        assert again.stats.checkpoint_hits == len(app.configs)
        assert resumed.simulated == []

    def test_binary_garbage_is_survivable(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_bytes(b"\xff\xfe\x00garbage\x00")
        app = PlainApp()
        with ExecutionEngine(app.evaluate, app.simulate,
                             checkpoint_path=str(path)) as engine:
            engine.seconds_for(app.configs)
        assert engine.stats.checkpoint_corrupt == 1

    def test_wellformed_wrong_version_still_refused(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"version": 99, "times": {}}))
        app = PlainApp()
        with pytest.raises(ValueError, match="unsupported version"):
            ExecutionEngine(app.evaluate, app.simulate,
                            checkpoint_path=str(path))

    def test_wellformed_wrong_label_still_refused(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(
            {"version": 2, "label": "other-app", "times": {}}
        ))
        app = PlainApp()
        with pytest.raises(ValueError, match="other-app"):
            ExecutionEngine(app.evaluate, app.simulate,
                            checkpoint_path=str(path), label="this-app")


class TestMidSweepResume:
    def test_checkpoint_between_static_and_simulation_stages(self, tmp_path):
        """A run killed after the static stage but before any
        simulation resumes to a bit-identical full result."""
        from repro.apps import MatMul

        chosen = _matmul_configs()
        path = str(tmp_path / "sweep.json")

        first = MatMul().test_instance()
        with first.search_engine(workers=1, checkpoint_path=path) as engine:
            engine.evaluate_all(chosen)  # static only, then "killed"
        payload = json.loads(open(path).read())
        assert payload["static"] and not payload["times"]

        resumed_entries, resumed_seconds, resumed_stats = _fresh_matmul_run(
            chosen, checkpoint_path=path
        )
        fresh_entries, fresh_seconds, _ = _fresh_matmul_run(chosen)

        assert resumed_entries == fresh_entries
        assert resumed_seconds == fresh_seconds
        # The static stage replayed from disk; only simulation ran.
        assert resumed_stats.static_evaluations == 0
        assert resumed_stats.checkpoint_static_hits == len(chosen)
        assert resumed_stats.simulations == len(chosen)

    @pytest.mark.parametrize("writer_workers,resumer_workers", [
        (2, 1),
        (1, 2),
    ])
    def test_resume_across_worker_counts(self, tmp_path, writer_workers,
                                         resumer_workers):
        """A checkpoint written under one worker count resumes under
        another with bit-identical results and zero re-simulation."""
        chosen = _matmul_configs()
        path = str(tmp_path / "sweep.json")

        _, written_seconds, _ = _fresh_matmul_run(
            chosen, workers=writer_workers, checkpoint_path=path
        )
        resumed_entries, resumed_seconds, resumed_stats = _fresh_matmul_run(
            chosen, workers=resumer_workers, checkpoint_path=path
        )
        fresh_entries, fresh_seconds, _ = _fresh_matmul_run(chosen)

        assert resumed_seconds == written_seconds == fresh_seconds
        assert resumed_entries == fresh_entries
        assert resumed_stats.simulations == 0
        assert resumed_stats.static_evaluations == 0
        assert resumed_stats.checkpoint_hits == len(chosen)
        assert resumed_stats.checkpoint_static_hits == len(chosen)


class TestStreamingCheckpoints:
    def test_pooled_sweep_flushes_incrementally(self, monkeypatch):
        """Results stream into the checkpoint as they complete: with
        interval K, a batch of N configs rewrites the file ~N/K times
        *during* the batch, not once at the end."""
        app = PlainApp()
        app.configs = cartesian({"e": [1, 2, 3, 4], "u": [1, 2, 3, 4]})
        saves = []
        engine = ExecutionEngine(
            app.evaluate, app.simulate, workers=2,
            checkpoint_path=os.devnull, checkpoint_interval=4,
        )
        monkeypatch.setattr(
            engine, "_save_checkpoint", lambda: saves.append(True)
        )
        try:
            engine.seconds_for(app.configs)
        finally:
            engine.close()
        # 16 results / interval 4 -> >= 4 mid-batch flushes plus the
        # end-of-batch save.
        assert len(saves) >= 4
