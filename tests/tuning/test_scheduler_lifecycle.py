"""Satellite 2: request-boundary lifecycle on a resident scheduler.

A daemon keeps one SweepScheduler alive across unrelated sweeps;
``begin_request`` must reset per-request slot health, reap workers
that died idle, refill quarantined/lost slots, and never leak pipe
descriptors when a (re)spawn fails.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.tuning.engine import ExecutionEngine
from repro.tuning.scheduler import SchedulerError, SweepScheduler

pytestmark = pytest.mark.fast


def _noop_sim(config):  # module-level: forked workers import cleanly
    return 0.0


def make_scheduler(workers: int = 2) -> SweepScheduler:
    return SweepScheduler(workers, _noop_sim)


def test_begin_request_resets_slot_health():
    scheduler = make_scheduler()
    scheduler.start()
    try:
        pids = sorted(w.process.pid for w in scheduler._workers)
        for worker in scheduler._workers:
            worker.failures = 2
            worker.inflight = 7
            worker.deadline = time.monotonic() + 99
        scheduler.last_failure = "request N's flaky task"
        scheduler.begin_request()
        assert scheduler.active_workers == 2
        # Healthy workers are retained as-is (same processes) with
        # their per-request history wiped.
        assert sorted(w.process.pid for w in scheduler._workers) == pids
        assert all(w.failures == 0 for w in scheduler._workers)
        assert all(w.inflight is None for w in scheduler._workers)
        assert all(w.deadline is None for w in scheduler._workers)
        assert scheduler.last_failure is None
    finally:
        scheduler.close()


def test_begin_request_reaps_dead_workers_and_respawns():
    scheduler = make_scheduler()
    scheduler.start()
    try:
        victim = scheduler._workers[0]
        survivor_pid = scheduler._workers[1].process.pid
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10)
        assert not victim.process.is_alive()
        scheduler.begin_request()
        assert scheduler.active_workers == 2
        assert all(w.process.is_alive() for w in scheduler._workers)
        pids = [w.process.pid for w in scheduler._workers]
        assert victim.process.pid not in pids
        assert survivor_pid in pids
    finally:
        scheduler.close()


def test_begin_request_refills_quarantined_slots():
    scheduler = make_scheduler()
    scheduler.start()
    try:
        scheduler._remove_worker(scheduler._workers[0], respawn=False)
        assert scheduler.active_workers == 1
        assert scheduler.stats.workers_quarantined == 1
        scheduler.begin_request()
        assert scheduler.active_workers == 2
        assert all(w.process.is_alive() for w in scheduler._workers)
        # Lifetime telemetry is untouched by the boundary.
        assert scheduler.stats.workers_quarantined == 1
    finally:
        scheduler.close()


def test_begin_request_is_noop_before_start_and_after_close():
    scheduler = make_scheduler()
    scheduler.begin_request()  # never started: nothing to do
    assert scheduler.active_workers == 0
    assert not scheduler._started
    scheduler.start()
    scheduler.close()
    scheduler.begin_request()  # closed: must not resurrect the pool
    assert scheduler.active_workers == 0


class _TrackingContext:
    """A multiprocessing context whose pipes are recorded and whose
    processes refuse to start — the spawn-failure harness."""

    def __init__(self, fail_pipe_on_call=None):
        self._real = multiprocessing.get_context("fork")
        self.connections = []
        self._pipe_calls = 0
        self._fail_pipe_on_call = fail_pipe_on_call

    def Pipe(self, duplex=True):
        self._pipe_calls += 1
        if self._pipe_calls == self._fail_pipe_on_call:
            raise OSError(24, "too many open files")
        reader, writer = self._real.Pipe(duplex=duplex)
        self.connections.extend((reader, writer))
        return reader, writer

    def Process(self, *args, **kwargs):
        process = self._real.Process(*args, **kwargs)

        def failing_start():
            raise OSError(11, "resource temporarily unavailable")

        process.start = failing_start
        return process


def test_failed_process_start_closes_all_four_pipe_ends():
    ctx = _TrackingContext()
    scheduler = SweepScheduler(1, _noop_sim, context=ctx)
    with pytest.raises(SchedulerError):
        scheduler.start()
    assert len(ctx.connections) == 4
    assert all(conn.closed for conn in ctx.connections)


def test_failed_second_pipe_closes_the_first_pair():
    ctx = _TrackingContext(fail_pipe_on_call=2)
    scheduler = SweepScheduler(1, _noop_sim, context=ctx)
    with pytest.raises(SchedulerError):
        scheduler.start()
    assert len(ctx.connections) == 2  # only the task pipe was created
    assert all(conn.closed for conn in ctx.connections)


def test_respawn_failure_during_begin_request_does_not_raise():
    scheduler = make_scheduler()
    scheduler.start()
    try:
        os.kill(scheduler._workers[0].process.pid, signal.SIGKILL)
        scheduler._workers[0].process.join(timeout=10)

        def failing_spawn(failures=0):
            raise OSError(11, "resource temporarily unavailable")

        scheduler._spawn_worker = failing_spawn
        scheduler.begin_request()  # degrades instead of raising
        assert scheduler.active_workers == 1
    finally:
        del scheduler._spawn_worker
        scheduler.close()


# ----------------------------------------------------------------------
# The engine-level boundary.


class _StubScheduler:
    def __init__(self):
        self.begin_requests = 0

    def begin_request(self):
        self.begin_requests += 1


def _evaluate(config):
    return None


def test_engine_begin_request_resets_pool_and_snapshots():
    engine = ExecutionEngine(_evaluate, _noop_sim, workers=1)
    try:
        stub = _StubScheduler()
        engine._scheduler = stub
        engine._pool_broken = True
        engine.stats.simulations = 5
        before = engine.begin_request()
        assert engine._pool_broken is False
        assert stub.begin_requests == 1
        # The baseline is a detached copy: later counting does not
        # disturb it.
        engine.stats.simulations = 9
        assert before.simulations == 5
    finally:
        engine._scheduler = None
        engine.close()


def test_engine_delta_since_diffs_counters_and_carries_state():
    engine = ExecutionEngine(_evaluate, _noop_sim, workers=1)
    try:
        engine.stats.simulations = 3
        engine.stats.workers = 4
        before = engine.begin_request()
        engine.stats.simulations = 10
        engine.stats.simulation_cache_hits = 2
        engine.stats.pool_fallback_reason = "pool broke"
        delta = engine.stats.delta_since(before)
        assert delta["simulations"] == 7
        assert delta["simulation_cache_hits"] == 2
        assert delta["cache_hits"] == 2  # derived sums diff linearly
        assert delta["workers"] == 4  # current state, not a diff
        assert delta["pool_fallback_reason"] == "pool broke"
    finally:
        engine.close()
