"""The strategy registry is the single source of truth — no drift."""

from __future__ import annotations

import pytest

from repro.tuning.search import STRATEGIES, select_timed
from repro.tuning.strategies import (
    ADAPTIVE_FIELDS,
    SPECS,
    SearchStrategy,
    StrategyError,
    adaptive_strategy_names,
    build_strategy,
    get_spec,
    request_kwargs,
    selection_strategy_names,
    strategy_names,
)

pytestmark = pytest.mark.fast


def test_search_strategies_derive_from_the_registry():
    assert STRATEGIES == selection_strategy_names()


def test_select_timed_accepts_exactly_the_selection_strategies():
    # an entry in the registry that select_timed cannot dispatch (or
    # vice versa) is the drift this registry exists to prevent
    for name in selection_strategy_names():
        kwargs = {"sample_size": 1} if name == "random" else {}
        assert select_timed(name, [], **kwargs) == []
    with pytest.raises(ValueError):
        select_timed("no-such-strategy", [])
    # adaptive names must NOT silently fall into the selection path
    for name in adaptive_strategy_names():
        with pytest.raises(ValueError):
            select_timed(name, [])


def test_every_adaptive_spec_builds_its_strategy():
    for name in adaptive_strategy_names():
        strategy = build_strategy(name)
        assert isinstance(strategy, SearchStrategy)
        assert strategy.name == name


def test_adaptive_specs_declare_the_common_fields():
    for spec in SPECS:
        if spec.is_adaptive:
            assert set(ADAPTIVE_FIELDS) <= set(spec.fields)
            assert spec.loader and ":" in spec.loader


def test_names_are_unique_and_partitioned():
    names = strategy_names()
    assert len(names) == len(set(names))
    assert set(names) == (
        set(selection_strategy_names()) | set(adaptive_strategy_names())
    )


def test_get_spec_rejects_unknown_names():
    with pytest.raises(StrategyError, match="no-such"):
        get_spec("no-such")


def test_build_strategy_rejects_selection_names():
    with pytest.raises(StrategyError, match="selection strategy"):
        build_strategy("pareto")


def test_adaptive_request_kwargs_validate():
    spec = get_spec("genetic")
    kwargs = request_kwargs(
        spec, {"seed": 3, "budget": 10, "restrict": "pareto",
               "population": 4},
    )
    assert kwargs == {
        "seed": 3, "budget": 10, "restrict": "pareto", "population": 4,
    }
    # defaults: seed 0, full composition, budget left to the strategy
    assert request_kwargs(spec, {}) == {"seed": 0, "restrict": "full"}
    with pytest.raises(StrategyError, match="budget"):
        request_kwargs(spec, {"budget": 0})
    with pytest.raises(StrategyError, match="restrict"):
        request_kwargs(spec, {"restrict": "everything"})
    with pytest.raises(StrategyError, match="population"):
        request_kwargs(spec, {"population": 1})


def test_selection_request_kwargs_match_the_legacy_validation():
    assert request_kwargs(get_spec("exhaustive"), {}) == {}
    assert request_kwargs(get_spec("pareto"), {}) == {
        "screen_bandwidth_bound": False,
    }
    assert request_kwargs(
        get_spec("pareto+cluster"), {"seed": 2},
    ) == {"relative_tolerance": 1e-9, "seed": 2}
    with pytest.raises(StrategyError, match="sample_size"):
        request_kwargs(get_spec("random"), {})
