"""Pool-worker telemetry: exact aggregation and loud degradation.

PR 2 left a documented hole: with ``workers > 1`` the pool's forked
processes kept their simulator-cache counters to themselves, so
``EngineStats`` silently undercounted (usually to ~0) in exactly the
pooled configuration CI runs.  Workers now return a counter *delta*
with every result and the engine aggregates them — these tests pin:

* pooled-vs-serial equivalence — same workload, ``workers=1`` versus
  ``workers=2``, identical fingerprint/wave/event counters;
* worker-crash recovery — a task that keeps killing its worker burns
  its retry budget in the pool, runs once in-process, and every other
  result (and counter delta) is kept: nothing is re-simulated, the
  crashes are counted, and the pool survives for later batches;
* scheduler-creation failure — loud fallback, not a silent serial run;
* ``resolve_workers`` — actionable errors for malformed
  ``REPRO_WORKERS``.
"""

import logging
import multiprocessing
import os

import pytest

from repro.tuning import (
    ExecutionEngine,
    SweepScheduler,
    cartesian,
    resolve_workers,
)

pytestmark = pytest.mark.fast

#: the EngineStats fields mirrored from simulator-cache counters
COUNTER_FIELDS = (
    "fingerprint_resource_hits",
    "fingerprint_trace_hits",
    "fingerprint_sm_hits",
    "waves_simulated",
    "blocks_replayed",
    "blocks_extrapolated",
    "events_replayed",
)


def _counter_stats(stats):
    return {name: getattr(stats, name) for name in COUNTER_FIELDS}


class FakeSimCache:
    """Counter-only stand-in for ``repro.sim.fingerprint.SimulationCache``."""

    def __init__(self):
        self.values = {name: 0 for name in COUNTER_FIELDS}

    def counters(self):
        return dict(self.values)

    def add(self, name, amount):
        self.values[name] += amount


class CountingApp:
    """Synthetic app whose simulate records config-deterministic work
    on a fake simulator cache — the work each config contributes is
    independent of which process (or cache state) runs it, so the
    aggregated totals must be identical for any worker partition.

    Module-level class so instances survive pickling into pool workers.
    """

    def __init__(self):
        self.configs = cartesian({"e": [1, 2, 3, 4], "u": [1, 2, 3, 4]})
        self.sim_cache = FakeSimCache()

    def expected_counters(self, configs):
        totals = {name: 0 for name in COUNTER_FIELDS}
        for config in configs:
            e, u = config["e"], config["u"]
            totals["waves_simulated"] += e
            totals["blocks_replayed"] += e * 3
            totals["blocks_extrapolated"] += u
            totals["events_replayed"] += e * u * 10
            if e == 1:
                totals["fingerprint_trace_hits"] += 1
        return totals

    def evaluate(self, config):
        return None

    def simulate(self, config):
        e, u = config["e"], config["u"]
        self.sim_cache.add("waves_simulated", e)
        self.sim_cache.add("blocks_replayed", e * 3)
        self.sim_cache.add("blocks_extrapolated", u)
        self.sim_cache.add("events_replayed", e * u * 10)
        if e == 1:
            self.sim_cache.add("fingerprint_trace_hits", 1)
        return 1.0 / (e + u)


class PoisonApp(CountingApp):
    """Kills its pool worker on the last configuration; harmless when
    the same configuration is simulated in the parent process."""

    def simulate(self, config):
        if (config["e"] == 4 and config["u"] == 4
                and multiprocessing.parent_process() is not None):
            os._exit(1)
        return super().simulate(config)


class TestPooledTelemetryEquivalence:
    def test_synthetic_workload_counters_bit_identical(self):
        serial_app = CountingApp()
        with ExecutionEngine(serial_app.evaluate, serial_app.simulate,
                             workers=1, sim_cache=serial_app.sim_cache) as serial:
            serial_seconds = serial.seconds_for(serial_app.configs)

        pooled_app = CountingApp()
        with ExecutionEngine(pooled_app.evaluate, pooled_app.simulate,
                             workers=2, sim_cache=pooled_app.sim_cache) as pooled:
            pooled_seconds = pooled.seconds_for(pooled_app.configs)

        assert pooled_seconds == serial_seconds
        expected = serial_app.expected_counters(serial_app.configs)
        assert _counter_stats(serial.stats) == expected
        assert _counter_stats(pooled.stats) == expected
        # The parent-process cache saw none of the pooled work — the
        # exact totals above came entirely from worker deltas.
        assert pooled_app.sim_cache.counters()["events_replayed"] == 0
        assert pooled.stats.pool_batches == 1
        assert pooled.stats.pool_fallbacks == 0

    def test_real_app_counters_bit_identical(self):
        """MatMul test instance, configs chosen (self-validatingly) to
        have pairwise-distinct fingerprints, so per-config simulator
        work is partition-independent and the pooled counters must
        equal the serial ones exactly."""
        from repro.apps import MatMul
        from repro.arch import LaunchError
        from repro.sim.fingerprint import kernel_fingerprint

        scout = MatMul().test_instance()
        chosen, seen = [], set()
        for config in scout.space():
            try:
                scout.evaluate(config)
            except LaunchError:
                continue
            fingerprint = kernel_fingerprint(
                scout.kernel(config), scout.sim_config(config)
            )
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            chosen.append(config)
            if len(chosen) == 6:
                break
        assert len(chosen) > 1

        serial_app = MatMul().test_instance()
        with serial_app.search_engine(workers=1) as serial:
            serial_seconds = serial.seconds_for(chosen)

        pooled_app = MatMul().test_instance()
        with pooled_app.search_engine(workers=2) as pooled:
            pooled_seconds = pooled.seconds_for(chosen)

        assert pooled_seconds == serial_seconds
        assert _counter_stats(pooled.stats) == _counter_stats(serial.stats)
        assert pooled.stats.events_replayed > 0
        assert pooled.stats.waves_simulated > 0
        # ...and again: the parent cache did none of that work.
        assert pooled_app.sim_cache.counters()["events_replayed"] == 0


class TestWorkerCrashRecovery:
    def test_crashing_task_recovers_exact_and_loud(self, caplog):
        app = PoisonApp()
        with caplog.at_level(logging.WARNING):
            with ExecutionEngine(app.evaluate, app.simulate, workers=2,
                                 sim_cache=app.sim_cache) as engine:
                seconds = engine.seconds_for(app.configs)

        # Every configuration still got measured — the poison config
        # exhausted its pool retries and ran in the parent, where the
        # poison is inert.
        assert seconds == [1.0 / (c["e"] + c["u"]) for c in app.configs]
        # Each config was recorded exactly once across pool + fallback.
        assert engine.stats.simulations == len(app.configs)

        # The scheduler saw every injected crash: one per attempt of
        # the retry budget, after which the task fell back to serial.
        assert engine.stats.worker_crashes == 3
        assert engine.stats.task_retries == 2
        assert engine.stats.serial_fallback_tasks == 1
        assert engine.stats.fault_recoveries == 3
        # The crashes never broke the pool itself.
        assert engine.stats.pool_fallbacks == 0
        assert "crashes=3" in engine.stats.summary()
        assert any("running them in-process" in r.getMessage()
                   for r in caplog.records)

        # Telemetry stays exact through the recovery: deltas from
        # pooled results, parent-cache counters for the in-process
        # fallback (crashed attempts die before touching the cache).
        assert _counter_stats(engine.stats) == app.expected_counters(app.configs)

    def test_pool_survives_crashes_for_later_batches(self):
        app = PoisonApp()
        with ExecutionEngine(app.evaluate, app.simulate, workers=2) as engine:
            engine.seconds_for(app.configs)
            assert engine.stats.pool_fallbacks == 0
            # A later batch reuses the same (still-healthy) scheduler.
            engine._seconds.clear()
            engine.seconds_for(app.configs[:4])
            assert engine.stats.pool_fallbacks == 0
            assert engine._scheduler is not None
            assert engine._scheduler.active_workers >= 1


class TestPoolCreationFailure:
    def test_creation_failure_is_loud_and_counted(self, monkeypatch, caplog):
        def refuse(self):
            raise OSError("no forks today")

        monkeypatch.setattr(SweepScheduler, "start", refuse)
        app = CountingApp()
        with caplog.at_level(logging.WARNING, logger="repro.tuning.engine"):
            with ExecutionEngine(app.evaluate, app.simulate, workers=4,
                                 sim_cache=app.sim_cache) as engine:
                seconds = engine.seconds_for(app.configs)

        assert len(seconds) == len(app.configs)
        assert engine.stats.pool_fallbacks == 1
        assert "could not start" in engine.stats.pool_fallback_reason
        assert "no forks today" in engine.stats.pool_fallback_reason
        assert any("falling back" in r.getMessage() for r in caplog.records)
        # The serial fallback still reports exact telemetry.
        assert _counter_stats(engine.stats) == app.expected_counters(app.configs)


class TestResolveWorkersDiagnostics:
    def test_malformed_env_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "four")
        with pytest.raises(ValueError, match=r"REPRO_WORKERS='four'"):
            resolve_workers(None)

    def test_negative_explicit_count_clamped_with_warning(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.tuning.engine"):
            assert resolve_workers(-2) == 1
        assert any("clamping to 1" in r.getMessage() for r in caplog.records)

    def test_negative_env_count_clamped_with_warning(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_WORKERS", "-3")
        with caplog.at_level(logging.WARNING, logger="repro.tuning.engine"):
            assert resolve_workers(None) == 1
        assert any("REPRO_WORKERS" in r.getMessage() for r in caplog.records)
