"""Compile-tier telemetry must be nonzero whenever the static stage runs.

Regression for the benchmark report that showed ``compile_hits`` and
``compile_evaluations`` both 0: the sim-hotpath benchmark never ran the
static stage (it only called ``app.simulate``), so the counters were
*correctly* zero there — but nothing pinned that an engine-driven
static pass produces nonzero compile telemetry.  These tests do.
"""

from __future__ import annotations

from repro.apps.matmul import MatMul


def test_static_pass_counts_compile_evaluations():
    app = MatMul().test_instance()
    engine = app.search_engine(workers=1)
    configs = list(app.space())[:8]
    entries = engine.evaluate_all(configs)
    assert any(entry.is_valid for entry in entries)
    assert engine.stats.compile_evaluations > 0
    assert engine.stats.compile_evaluations == app.sim_cache.compile_evaluations


def test_fingerprint_sharing_counts_compile_hits():
    """Two apps over the same space share nothing; one app evaluated
    through two engines shares the compile tier — the second engine's
    static pass must be all compile hits, not recompiles."""
    app = MatMul().test_instance()
    configs = list(app.space())[:8]
    first = app.search_engine(workers=1)
    first.evaluate_all(configs)
    evaluations = app.sim_cache.compile_evaluations
    assert evaluations > 0

    second = app.search_engine(workers=1)
    second.evaluate_all(configs)
    assert app.sim_cache.compile_evaluations == evaluations  # no recompiles
    assert second.stats.compile_hits > 0


def test_simulation_only_sweep_legitimately_reports_zero():
    """The flip side, pinned so the benchmark diagnosis stays honest:
    a measurement-only sweep never touches the compile tier."""
    app = MatMul().test_instance()
    for config in list(app.space())[:4]:
        app.simulate(config)
    assert app.sim_cache.compile_evaluations == 0
    assert app.sim_cache.compile_hits == 0
