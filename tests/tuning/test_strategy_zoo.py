"""Property tests for every adaptive (zoo) search strategy.

Parameterized over the registry, so a strategy added there is tested
here automatically: budget never exceeded, no configuration measured
twice within a run, seeded runs reproduce exactly, serial and pooled
runs are bit-identical, trajectories are monotone, and Pareto
restriction confines the search to the Pareto subset.
"""

from __future__ import annotations

import pytest

from repro.arch.occupancy import LaunchError
from repro.harness.payload import search_result_payload
from repro.metrics.model import MetricReport
from repro.tuning.engine import ExecutionEngine
from repro.tuning.search import select_timed
from repro.tuning.space import cartesian
from repro.tuning.strategies import (
    adaptive_strategy_names,
    build_strategy,
)

pytestmark = pytest.mark.fast

ZOO = adaptive_strategy_names()


class SyntheticApp:
    """time = 1/(eff + util + w/2); e=4,u=4 invalid."""

    def __init__(self):
        self.configs = cartesian({
            "e": [1, 2, 3, 4], "u": [1, 2, 3, 4], "w": [1, 2],
        })
        self.simulated = []

    def evaluate(self, config):
        if config["e"] == 4 and config["u"] == 4:
            raise LaunchError("synthetic register overflow")
        report = MetricReport.__new__(MetricReport)
        object.__setattr__(report, "efficiency", float(config["e"]))
        object.__setattr__(report, "utilization", float(config["u"]))
        return report

    def simulate(self, config):
        self.simulated.append(config)
        return 1.0 / (config["e"] + config["u"] + 0.5 * config["w"])


@pytest.fixture
def app():
    return SyntheticApp()


def run_zoo(name, app, *, workers=None, **kwargs):
    engine = ExecutionEngine(app.evaluate, app.simulate, workers=workers)
    try:
        result = build_strategy(name).run(app.configs, engine, **kwargs)
    finally:
        engine.close()
    return result, engine


@pytest.mark.parametrize("name", ZOO)
def test_budget_is_never_exceeded(name, app):
    result, _ = run_zoo(name, app, seed=1, budget=7)
    assert result.budget == 7
    assert result.timed_count <= 7
    assert len(app.simulated) <= 7


@pytest.mark.parametrize("name", ZOO)
def test_no_config_measured_twice(name, app):
    result, engine = run_zoo(name, app, seed=2, budget=12)
    configs = [entry.config for entry in result.timed]
    assert len(configs) == len(set(configs))
    # dedupe happens above the engine: every simulation was a distinct
    # config, and nothing was served from the measurement memo
    assert engine.stats.simulations == result.timed_count
    assert engine.stats.simulation_cache_hits == 0
    assert len(app.simulated) == result.timed_count


@pytest.mark.parametrize("name", ZOO)
def test_seeded_runs_reproduce_exactly(name, app):
    first, _ = run_zoo(name, app, seed=9, budget=10)
    second, _ = run_zoo(name, SyntheticApp(), seed=9, budget=10)
    assert search_result_payload(first) == search_result_payload(second)
    different, _ = run_zoo(name, SyntheticApp(), seed=10, budget=10)
    # a different seed is allowed to coincide, but across the zoo at
    # least the measurement order should generally differ; assert only
    # on the deterministic part to keep this property strict
    assert [e.config for e in first.timed] == [
        e.config for e in second.timed
    ]
    assert different.budget == first.budget


@pytest.mark.parametrize("name", ZOO)
def test_serial_and_pooled_runs_are_bit_identical(name, app):
    serial, _ = run_zoo(name, app, seed=4, budget=10)
    pooled, _ = run_zoo(name, SyntheticApp(), workers=2, seed=4, budget=10)
    assert search_result_payload(serial) == search_result_payload(pooled)


@pytest.mark.parametrize("name", ZOO)
def test_trajectory_tracks_every_measurement(name, app):
    result, _ = run_zoo(name, app, seed=5, budget=9)
    assert len(result.trajectory) == result.timed_count
    counts = [count for count, _ in result.trajectory]
    assert counts == list(range(1, result.timed_count + 1))
    bests = [seconds for _, seconds in result.trajectory]
    assert all(b <= a for a, b in zip(bests, bests[1:]))
    assert bests[-1] == result.best.seconds


@pytest.mark.parametrize("name", ZOO)
def test_pareto_restriction_confines_the_search(name, app):
    result, engine = run_zoo(name, app, seed=6, budget=20, restrict="pareto")
    evaluated = ExecutionEngine(
        app.evaluate, app.simulate
    ).evaluate_all(app.configs)
    pareto = {entry.config for entry in select_timed("pareto", evaluated)}
    assert result.restrict == "pareto"
    assert result.pool_size == len(pareto)
    assert {entry.config for entry in result.timed} <= pareto
    # the budget clamps to the pool
    assert result.budget == min(20, len(pareto))


@pytest.mark.parametrize("name", ZOO)
def test_default_budget_is_a_quarter_of_the_valid_space(name, app):
    result, _ = run_zoo(name, app, seed=7)
    valid = sum(1 for e in result.evaluated if e.is_valid)
    assert result.budget == max(1, round(0.25 * valid))


@pytest.mark.parametrize("name", ZOO)
def test_budget_larger_than_pool_measures_everything_once(name, app):
    result, _ = run_zoo(name, app, seed=8, budget=10_000)
    valid = sum(1 for e in result.evaluated if e.is_valid)
    assert result.budget == valid
    assert result.timed_count == valid
    configs = [entry.config for entry in result.timed]
    assert len(configs) == len(set(configs))


@pytest.mark.parametrize("name", ZOO)
def test_progress_fires_at_batch_boundaries(name, app):
    engine = ExecutionEngine(app.evaluate, app.simulate)
    seen = []
    build_strategy(name).run(
        app.configs, engine, seed=3, budget=8,
        progress=lambda done, total: seen.append((done, total)),
    )
    engine.close()
    assert seen[0] == (0, 8)
    assert seen[-1][0] == 8
    dones = [done for done, _ in seen]
    assert dones == sorted(dones)
    assert all(total == 8 for _, total in seen)
