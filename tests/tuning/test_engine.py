"""ExecutionEngine regression suite: caching, parallelism, checkpoints.

The engine's contract is "one static pass, at most one simulation per
configuration, regardless of strategies or workers" — every test here
pins a piece of that contract with spy callables over a synthetic
space (fast, fully controlled, picklable for the process pool).
"""

import json
import math

import pytest

from repro.arch import LaunchError
from repro.metrics.model import MetricReport
from repro.tuning import (
    ExecutionEngine,
    cartesian,
    config_key,
    full_exploration,
    pareto_cluster_search,
    pareto_search,
    random_search,
    resolve_workers,
)

pytestmark = pytest.mark.fast


def _report(efficiency, utilization):
    report = MetricReport.__new__(MetricReport)
    object.__setattr__(report, "efficiency", float(efficiency))
    object.__setattr__(report, "utilization", float(utilization))
    return report


class SyntheticApp:
    """time = 1/(eff + util); one config invalid; calls are counted.

    Module-level class so instances (and their bound methods) survive
    pickling into process-pool workers.
    """

    def __init__(self):
        self.configs = cartesian({"e": [1, 2, 3, 4], "u": [1, 2, 3, 4]})
        self.evaluated = []
        self.simulated = []

    def evaluate(self, config):
        self.evaluated.append(config)
        if config["e"] == 4 and config["u"] == 4:
            raise LaunchError("synthetic register overflow")
        return _report(config["e"], config["u"])

    def simulate(self, config):
        self.simulated.append(config)
        return 1.0 / (config["e"] + config["u"])


@pytest.fixture
def app():
    return SyntheticApp()


@pytest.fixture
def engine(app):
    with ExecutionEngine(app.evaluate, app.simulate) as engine:
        yield engine


class TestStaticCache:
    def test_single_underlying_pass(self, app, engine):
        first = engine.evaluate_all(app.configs)
        second = engine.evaluate_all(app.configs)
        assert len(app.evaluated) == 16
        assert engine.stats.static_evaluations == 16
        assert engine.stats.static_cache_hits == 16
        assert [e.is_valid for e in first] == [e.is_valid for e in second]

    def test_invalids_cached_too(self, app, engine):
        for _ in range(3):
            entries = engine.evaluate_all(app.configs)
        invalid = [e for e in entries if not e.is_valid]
        assert len(invalid) == 1
        assert "register overflow" in invalid[0].invalid_reason
        assert len(app.evaluated) == 16

    def test_fresh_wrappers_per_call(self, app, engine):
        first = engine.evaluate_all(app.configs)
        second = engine.evaluate_all(app.configs)
        first[0].seconds = 123.0
        assert second[0].seconds is None


class TestSimulationCache:
    def test_at_most_one_simulation_per_config(self, app, engine):
        entries = engine.evaluate_all(app.configs)
        valid = [e for e in entries if e.is_valid]
        engine.time_entries(valid)
        engine.time_entries(valid)
        engine.time_entries(valid[:5])
        assert len(app.simulated) == 15
        assert engine.stats.simulations == 15
        assert engine.stats.simulation_cache_hits == 20

    def test_deterministic_order(self, app, engine):
        seconds = engine.seconds_for(list(app.configs[:4]))
        again = engine.seconds_for(list(reversed(app.configs[:4])))
        assert seconds == list(reversed(again))

    def test_duplicates_in_one_request_simulated_once(self, app, engine):
        config = app.configs[0]
        seconds = engine.seconds_for([config, config, config])
        assert len(app.simulated) == 1
        assert seconds[0] == seconds[1] == seconds[2]


class TestSharedEngineAcrossStrategies:
    def test_no_duplicate_work_across_strategies(self, app, engine):
        full_exploration(app.configs, engine=engine)
        pareto_search(app.configs, engine=engine)
        pareto_cluster_search(app.configs, engine=engine)
        random_search(app.configs, sample_size=5, seed=1, engine=engine)
        assert len(app.evaluated) == 16           # one static pass
        assert len(app.simulated) == 15           # nothing measured twice
        assert engine.stats.simulation_cache_hits > 0

    def test_shared_engine_matches_private_engines(self, app, engine):
        shared_full = full_exploration(app.configs, engine=engine)
        shared_pareto = pareto_search(app.configs, engine=engine)
        solo = SyntheticApp()
        solo_full = full_exploration(solo.configs, solo.evaluate, solo.simulate)
        solo_pareto = pareto_search(solo.configs, solo.evaluate, solo.simulate)
        assert [e.seconds for e in shared_full.timed] == [
            e.seconds for e in solo_full.timed
        ]
        assert [dict(e.config) for e in shared_pareto.timed] == [
            dict(e.config) for e in solo_pareto.timed
        ]
        assert shared_full.measured_seconds == solo_full.measured_seconds


class TestParallelWorkers:
    def test_workers_bit_identical_to_serial(self):
        serial_app = SyntheticApp()
        with ExecutionEngine(serial_app.evaluate, serial_app.simulate,
                             workers=1) as serial:
            serial_result = full_exploration(serial_app.configs, engine=serial)

        parallel_app = SyntheticApp()
        with ExecutionEngine(parallel_app.evaluate, parallel_app.simulate,
                             workers=4) as parallel:
            parallel_result = full_exploration(parallel_app.configs,
                                               engine=parallel)

        assert [dict(e.config) for e in parallel_result.timed] == [
            dict(e.config) for e in serial_result.timed
        ]
        assert [e.seconds for e in parallel_result.timed] == [
            e.seconds for e in serial_result.timed
        ]
        assert parallel_result.best.config == serial_result.best.config
        assert parallel_result.best.seconds == serial_result.best.seconds
        assert parallel_result.measured_seconds == serial_result.measured_seconds

    def test_pool_reported_in_stats(self):
        app = SyntheticApp()
        with ExecutionEngine(app.evaluate, app.simulate, workers=2) as engine:
            entries = engine.evaluate_all(app.configs)
            engine.time_entries([e for e in entries if e.is_valid])
            assert engine.stats.workers == 2
            assert engine.stats.simulations == 15

    def test_single_missing_config_stays_in_process(self):
        app = SyntheticApp()
        with ExecutionEngine(app.evaluate, app.simulate, workers=4) as engine:
            engine.seconds_for([app.configs[0]])
            # one missing config is not worth a pool round-trip; the
            # parent-process spy observed the call directly
            assert app.simulated == [app.configs[0]]

    def test_resolve_workers(self, monkeypatch):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == 1
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(None) == 7
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 1


class TestCheckpoint:
    def test_resume_equals_cold_run(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        cold_app = SyntheticApp()
        with ExecutionEngine(cold_app.evaluate, cold_app.simulate,
                             checkpoint_path=path, label="synthetic") as cold:
            cold_result = full_exploration(cold_app.configs, engine=cold)
        assert json.loads(open(path).read())["label"] == "synthetic"

        warm_app = SyntheticApp()
        with ExecutionEngine(warm_app.evaluate, warm_app.simulate,
                             checkpoint_path=path, label="synthetic") as warm:
            warm_result = full_exploration(warm_app.configs, engine=warm)
            assert warm_app.simulated == []              # zero re-simulations
            assert warm.stats.simulations == 0
            assert warm.stats.checkpoint_hits == 15
        assert [e.seconds for e in warm_result.timed] == [
            e.seconds for e in cold_result.timed
        ]
        assert warm_result.best.config == cold_result.best.config
        assert warm_result.measured_seconds == cold_result.measured_seconds

    def test_partial_checkpoint_fills_the_gap(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        first = SyntheticApp()
        with ExecutionEngine(first.evaluate, first.simulate,
                             checkpoint_path=path) as engine:
            engine.seconds_for(list(first.configs[:6]))  # interrupted early

        second = SyntheticApp()
        with ExecutionEngine(second.evaluate, second.simulate,
                             checkpoint_path=path) as engine:
            entries = engine.evaluate_all(second.configs)
            engine.time_entries([e for e in entries if e.is_valid])
            assert engine.stats.checkpoint_hits == 6
            assert engine.stats.simulations == 9

    def test_interrupt_mid_batch_preserves_progress(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        app = SyntheticApp()

        def exploding_simulate(config):
            if len(app.simulated) == 7:
                raise KeyboardInterrupt
            return app.simulate(config)

        with pytest.raises(KeyboardInterrupt):
            with ExecutionEngine(app.evaluate, exploding_simulate,
                                 checkpoint_path=path,
                                 checkpoint_interval=3) as engine:
                entries = engine.evaluate_all(app.configs)
                engine.time_entries([e for e in entries if e.is_valid])

        # saved after measurements 3 and 6; the interrupt at 8 lost at
        # most checkpoint_interval measurements
        saved = json.loads(open(path).read())["times"]
        assert len(saved) == 6

        resumed = SyntheticApp()
        with ExecutionEngine(resumed.evaluate, resumed.simulate,
                             checkpoint_path=path) as engine:
            entries = engine.evaluate_all(resumed.configs)
            engine.time_entries([e for e in entries if e.is_valid])
            assert engine.stats.checkpoint_hits == 6
            assert engine.stats.simulations == 9

    def test_label_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        app = SyntheticApp()
        with ExecutionEngine(app.evaluate, app.simulate,
                             checkpoint_path=path, label="cp") as engine:
            engine.seconds_for([app.configs[0]])
        with pytest.raises(ValueError, match="belongs to 'cp'"):
            ExecutionEngine(app.evaluate, app.simulate,
                            checkpoint_path=path, label="matmul")

    def test_version_mismatch_refused(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"version": 99, "times": {}}))
        app = SyntheticApp()
        with pytest.raises(ValueError, match="unsupported version"):
            ExecutionEngine(app.evaluate, app.simulate,
                            checkpoint_path=str(path))

    def test_config_key_stable_and_order_free(self):
        from repro.tuning import Configuration

        a = Configuration({"x": 1, "y": True})
        b = Configuration({"y": True, "x": 1})
        assert config_key(a) == config_key(b)
        assert json.loads(config_key(a)) == {"x": 1, "y": True}


class TestSearchResultGuards:
    def test_space_reduction_nan_for_all_invalid_space(self):
        from repro.tuning import EvaluatedConfig, SearchResult

        entries = [
            EvaluatedConfig(config=c, invalid_reason="no fit")
            for c in cartesian({"e": [1, 2]})
        ]
        result = SearchResult(
            strategy="exhaustive", evaluated=entries, timed=[],
            best=entries[0], measured_seconds=0.0,
        )
        assert math.isnan(result.space_reduction)

    def test_random_search_records_requested_sample_size(self, app, caplog):
        with caplog.at_level("WARNING", logger="repro.tuning.search"):
            result = random_search(app.configs, app.evaluate, app.simulate,
                                   sample_size=999, seed=0)
        assert result.requested_sample_size == 999
        assert result.timed_count == 15
        assert result.sample_shortfall == 984
        assert any("exceeds the valid space" in r.message for r in caplog.records)

    def test_random_search_exact_sample_not_logged(self, app, caplog):
        with caplog.at_level("WARNING", logger="repro.tuning.search"):
            result = random_search(app.configs, app.evaluate, app.simulate,
                                   sample_size=5, seed=0)
        assert result.requested_sample_size == 5
        assert result.sample_shortfall == 0
        assert not caplog.records
