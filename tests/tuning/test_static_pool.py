"""Pooled static stage: equivalence, recovery, and checkpoint v2.

The static stage now fans out through the same process pool as the
measurement stage and persists its results in the version-2 checkpoint.
These tests pin the contract:

* ``evaluate_all`` with ``workers=2`` is bit-identical to ``workers=1``
  — reports, invalid reasons, *and* the EngineStats counters (compile
  and fingerprint telemetry rides back as per-task deltas);
* a worker death mid-batch costs retries (counted exactly), not the
  pool: only the task that exhausts its budget runs in-process, and
  every configuration is evaluated exactly once;
* a checkpointed sweep resumes its static results from disk
  (``checkpoint_static_hits``) without re-running ``evaluate``, and the
  resumed reports — and the Pareto subset computed from them — are
  bit-identical to the cold run's;
* version-1 checkpoints (times only) still load.
"""

import json
import multiprocessing
import os

import pytest

from repro.arch import LaunchError
from repro.metrics.model import MetricReport, report_from_json, report_to_json
from repro.tuning import ExecutionEngine, cartesian, pareto_indices

pytestmark = pytest.mark.fast

#: every EngineStats counter that must be partition-independent
COMPARED_COUNTERS = (
    "static_evaluations",
    "static_cache_hits",
    "simulations",
    "simulation_cache_hits",
    "checkpoint_hits",
    "checkpoint_static_hits",
    "compile_hits",
    "compile_evaluations",
    "fingerprint_resource_hits",
    "fingerprint_trace_hits",
    "fingerprint_sm_hits",
    "waves_simulated",
    "blocks_replayed",
    "blocks_extrapolated",
    "blocks_resident",
    "events_replayed",
)


def _counter_stats(stats):
    return {name: getattr(stats, name) for name in COMPARED_COUNTERS}


def _report(efficiency, utilization):
    report = MetricReport.__new__(MetricReport)
    object.__setattr__(report, "efficiency", float(efficiency))
    object.__setattr__(report, "utilization", float(utilization))
    return report


class StaticApp:
    """Synthetic app with one invalid configuration; module-level so
    instances survive pickling into pool workers."""

    def __init__(self):
        self.configs = cartesian({"e": [1, 2, 3, 4], "u": [1, 2, 3, 4]})
        self.evaluated = []

    def evaluate(self, config):
        self.evaluated.append(config)
        if config["e"] == 4 and config["u"] == 4:
            raise LaunchError("synthetic register overflow")
        return _report(config["e"], config["u"])

    def simulate(self, config):
        return 1.0 / (config["e"] + config["u"])


class PoisonStaticApp(StaticApp):
    """Kills its pool worker on the last configuration; harmless when
    the same configuration is evaluated in the parent process."""

    def evaluate(self, config):
        if (config["e"] == 4 and config["u"] == 4
                and multiprocessing.parent_process() is not None):
            os._exit(1)
        return super().evaluate(config)


def _matmul_configs(count=8):
    """MatMul test-instance configs with pairwise-distinct kernel
    fingerprints, so per-config compile work is partition-independent
    and pooled counters must equal serial ones exactly."""
    from repro.apps import MatMul
    from repro.sim.fingerprint import kernel_fingerprint

    scout = MatMul().test_instance()
    chosen, seen = [], set()
    for config in scout.space():
        fingerprint = kernel_fingerprint(
            scout.kernel(config), scout.sim_config(config)
        )
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        chosen.append(config)
        if len(chosen) == count:
            break
    assert len(chosen) > 1
    return chosen


def _entry_key(entry):
    return (entry.metrics, entry.invalid_reason)


class TestPooledStaticEquivalence:
    def test_synthetic_entries_bit_identical(self):
        serial_app = StaticApp()
        with ExecutionEngine(serial_app.evaluate, serial_app.simulate,
                             workers=1) as serial:
            serial_entries = serial.evaluate_all(serial_app.configs)

        pooled_app = StaticApp()
        with ExecutionEngine(pooled_app.evaluate, pooled_app.simulate,
                             workers=2) as pooled:
            pooled_entries = pooled.evaluate_all(pooled_app.configs)

        assert [e.invalid_reason for e in pooled_entries] == [
            e.invalid_reason for e in serial_entries
        ]
        assert [
            (e.metrics.efficiency, e.metrics.utilization)
            for e in pooled_entries if e.is_valid
        ] == [
            (e.metrics.efficiency, e.metrics.utilization)
            for e in serial_entries if e.is_valid
        ]
        # The static work ran in the workers, not the parent process.
        assert pooled_app.evaluated == []
        assert serial_app.evaluated == list(serial_app.configs)
        assert _counter_stats(pooled.stats) == _counter_stats(serial.stats)
        assert pooled.stats.pool_batches == 1

    def test_repeat_requests_count_like_serial(self):
        serial_app, pooled_app = StaticApp(), StaticApp()
        with ExecutionEngine(serial_app.evaluate, serial_app.simulate,
                             workers=1) as serial, \
             ExecutionEngine(pooled_app.evaluate, pooled_app.simulate,
                             workers=2) as pooled:
            for engine, app in ((serial, serial_app), (pooled, pooled_app)):
                engine.evaluate_all(app.configs)
                engine.evaluate_all(app.configs[:5])
            assert _counter_stats(pooled.stats) == _counter_stats(serial.stats)
            assert serial.stats.static_evaluations == 16
            assert serial.stats.static_cache_hits == 5

    def test_real_app_reports_and_counters_bit_identical(self):
        from repro.apps import MatMul

        chosen = _matmul_configs()

        serial_app = MatMul().test_instance()
        with serial_app.search_engine(workers=1) as serial:
            serial_entries = serial.evaluate_all(chosen)

        pooled_app = MatMul().test_instance()
        with pooled_app.search_engine(workers=2) as pooled:
            pooled_entries = pooled.evaluate_all(chosen)

        assert [_entry_key(e) for e in pooled_entries] == [
            _entry_key(e) for e in serial_entries
        ]
        assert _counter_stats(pooled.stats) == _counter_stats(serial.stats)
        assert pooled.stats.compile_evaluations == len(chosen)
        # The parent-process compile tier saw none of the pooled work —
        # the counters above came entirely from worker deltas.
        assert pooled_app.sim_cache.counters()["compile_evaluations"] == 0

    def test_single_missing_config_stays_in_process(self):
        app = StaticApp()
        with ExecutionEngine(app.evaluate, app.simulate, workers=4) as engine:
            engine.evaluate_all([app.configs[0]])
            # one missing config is not worth a pool round-trip; the
            # parent-process spy observed the call directly
            assert app.evaluated == [app.configs[0]]


class TestStaticWorkerCrashRecovery:
    def test_crashing_task_recovers_exact_and_loud(self):
        app = PoisonStaticApp()
        with ExecutionEngine(app.evaluate, app.simulate, workers=2) as engine:
            entries = engine.evaluate_all(app.configs)
            # The crashes cost worker processes, never the pool itself.
            assert not engine._pool_broken
            assert engine._scheduler is not None
            assert engine._scheduler.active_workers >= 1

        assert len(entries) == len(app.configs)
        invalid = [e for e in entries if not e.is_valid]
        assert len(invalid) == 1
        assert "register overflow" in invalid[0].invalid_reason
        # The poison config burned its whole retry budget in workers,
        # then ran in-process, where its LaunchError is an ordinary
        # invalid verdict.
        assert engine.stats.worker_crashes == 3
        assert engine.stats.task_retries == 2
        assert engine.stats.serial_fallback_tasks == 1
        assert engine.stats.pool_fallbacks == 0
        # Every configuration was evaluated exactly once across
        # pool results + in-process fallback.
        assert engine.stats.static_evaluations == len(app.configs)
        assert engine.stats.static_cache_hits == 0


class TestCheckpointV2Static:
    def test_resume_skips_static_stage_and_is_bit_identical(self, tmp_path):
        from repro.apps import MatMul

        chosen = _matmul_configs()
        path = str(tmp_path / "sweep.json")

        cold_app = MatMul().test_instance()
        with cold_app.search_engine(workers=1, checkpoint_path=path) as cold:
            cold_entries = cold.evaluate_all(chosen)
            cold.seconds_for(chosen)
            assert cold.stats.static_evaluations == len(chosen)

        payload = json.loads(open(path).read())
        assert payload["version"] == 2
        assert len(payload["static"]) == len(chosen)

        warm_app = MatMul().test_instance()
        with warm_app.search_engine(workers=1, checkpoint_path=path) as warm:
            warm_entries = warm.evaluate_all(chosen)
            warm_seconds = warm.seconds_for(chosen)
            assert warm.stats.static_evaluations == 0
            assert warm.stats.checkpoint_static_hits == len(chosen)
            assert warm.stats.checkpoint_hits == len(chosen)
            # evaluate() never ran: the app's compile tier is untouched
            assert warm_app.sim_cache.counters()["compile_evaluations"] == 0

        assert [_entry_key(e) for e in warm_entries] == [
            _entry_key(e) for e in cold_entries
        ]
        assert warm_seconds == [cold._seconds[c] for c in chosen]

        def front(entries):
            valid = [e for e in entries if e.is_valid]
            return pareto_indices(
                [(e.metrics.efficiency, e.metrics.utilization) for e in valid]
            )

        assert front(warm_entries) == front(cold_entries)

    def test_evaluate_config_claims_from_checkpoint(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        from repro.apps import MatMul

        chosen = _matmul_configs(count=3)
        cold_app = MatMul().test_instance()
        with cold_app.search_engine(workers=1, checkpoint_path=path) as cold:
            cold.evaluate_all(chosen)

        warm_app = MatMul().test_instance()
        with warm_app.search_engine(workers=1, checkpoint_path=path) as warm:
            entry = warm.evaluate_config(chosen[0])
            assert entry.is_valid
            assert warm.stats.checkpoint_static_hits == 1
            assert warm.stats.static_evaluations == 0
            # A second request is an ordinary in-memory cache hit.
            warm.evaluate_config(chosen[0])
            assert warm.stats.static_cache_hits == 1

    def test_invalid_reasons_survive_the_round_trip(self, tmp_path):
        path = str(tmp_path / "sweep.json")
        cold_app = StaticApp()
        with ExecutionEngine(cold_app.evaluate, cold_app.simulate,
                             checkpoint_path=path) as cold:
            cold.evaluate_all(cold_app.configs)

        # Synthetic reports are not serializable, but the invalid
        # entry (metrics=None + reason) must persist.
        payload = json.loads(open(path).read())
        entries = list(payload["static"].values())
        assert len(entries) == 1
        assert entries[0]["metrics"] is None
        assert "register overflow" in entries[0]["invalid"]

        warm_app = StaticApp()
        with ExecutionEngine(warm_app.evaluate, warm_app.simulate,
                             checkpoint_path=path) as warm:
            warm_entries = warm.evaluate_all(warm_app.configs)
            assert warm.stats.checkpoint_static_hits == 1
            assert warm.stats.static_evaluations == 15
        invalid = [e for e in warm_entries if not e.is_valid]
        assert len(invalid) == 1
        assert "register overflow" in invalid[0].invalid_reason

    def test_version_1_checkpoint_still_loads(self, tmp_path):
        path = tmp_path / "sweep.json"
        app = StaticApp()
        key_source = ExecutionEngine(app.evaluate, app.simulate)
        from repro.tuning import config_key

        del key_source
        path.write_text(json.dumps({
            "version": 1,
            "label": None,
            "times": {config_key(app.configs[0]): 0.125},
        }))
        with ExecutionEngine(app.evaluate, app.simulate,
                             checkpoint_path=str(path)) as engine:
            seconds = engine.seconds_for([app.configs[0]])
            assert seconds == [0.125]
            assert engine.stats.checkpoint_hits == 1
            assert engine.stats.simulations == 0


class TestReportJsonRoundTrip:
    def test_real_report_round_trips_bit_exact(self):
        from repro.apps import MatMul

        app = MatMul().test_instance()
        report = app.evaluate(app.default_configuration())
        wire = json.loads(json.dumps(report_to_json(report)))
        restored = report_from_json(wire)
        assert restored == report
        assert restored.efficiency == report.efficiency
        assert restored.utilization == report.utilization
        assert restored.profile.mix == report.profile.mix
        assert restored.bandwidth == report.bandwidth
