"""Configuration spaces."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tuning import ConfigSpace, Configuration, cartesian


class TestConfiguration:
    def test_mapping_interface(self):
        config = Configuration({"a": 1, "b": "x"})
        assert config["a"] == 1
        assert set(config) == {"a", "b"}
        assert len(config) == 2
        assert dict(config) == {"a": 1, "b": "x"}

    def test_hash_and_equality_order_independent(self):
        first = Configuration({"a": 1, "b": 2})
        second = Configuration({"b": 2, "a": 1})
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_missing_key(self):
        with pytest.raises(KeyError):
            Configuration({"a": 1})["b"]

    def test_replace(self):
        config = Configuration({"a": 1, "b": 2})
        updated = config.replace(b=3)
        assert updated["b"] == 3
        assert config["b"] == 2

    def test_repr_readable(self):
        assert "a=1" in repr(Configuration({"a": 1}))

    @given(st.dictionaries(st.sampled_from("abcdef"),
                           st.integers(), min_size=1))
    def test_round_trips_dict(self, values):
        assert dict(Configuration(values)) == values


class TestConfigSpace:
    def test_cross_product(self):
        space = ConfigSpace({"a": [1, 2], "b": [10, 20, 30]})
        assert space.raw_size == 6
        assert len(space) == 6
        assert len(space.configurations()) == 6

    def test_validity_filter(self):
        space = ConfigSpace(
            {"a": [1, 2, 3], "b": [1, 2, 3]},
            is_valid=lambda c: c["a"] * c["b"] <= 4,
        )
        # (1,1) (1,2) (1,3) (2,1) (2,2) (3,1) pass the filter.
        assert len(space) == 6
        assert space.raw_size == 9
        assert all(c["a"] * c["b"] <= 4 for c in space)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace({})
        with pytest.raises(ValueError):
            ConfigSpace({"a": []})

    def test_cartesian_helper(self):
        configs = cartesian({"x": [1, 2]})
        assert len(configs) == 2
        assert all(isinstance(c, Configuration) for c in configs)

    def test_iteration_is_deterministic(self):
        space = ConfigSpace({"a": [2, 1], "b": ["y", "x"]})
        assert space.configurations() == space.configurations()
