"""Pareto-optimal subset selection, with hypothesis properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.tuning import dominates, pareto_front, pareto_indices

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1, allow_nan=False),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


class TestDominates:
    def test_strictly_better(self):
        assert dominates((2, 2), (1, 1))

    def test_better_on_one_axis(self):
        assert dominates((2, 1), (1, 1))
        assert dominates((1, 2), (1, 1))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_tradeoff_points_incomparable(self):
        assert not dominates((2, 1), (1, 2))
        assert not dominates((1, 2), (2, 1))


class TestParetoIndices:
    def test_single_point(self):
        assert pareto_indices([(0.5, 0.5)]) == [0]

    def test_dominated_point_excluded(self):
        assert pareto_indices([(1, 1), (0.5, 0.5)]) == [0]

    def test_staircase_all_kept(self):
        points = [(1, 0), (0.5, 0.5), (0, 1)]
        assert pareto_indices(points) == [0, 1, 2]

    def test_ties_all_kept(self):
        # Identical metric pairs (the MRI clusters) stand together.
        points = [(1, 1), (1, 1), (0.5, 0.5)]
        assert pareto_indices(points) == [0, 1]

    def test_same_x_different_y(self):
        points = [(1, 0.5), (1, 1)]
        assert pareto_indices(points) == [1]

    def test_same_y_different_x(self):
        points = [(0.5, 1), (1, 1)]
        assert pareto_indices(points) == [1]

    def test_matches_paper_visual_rule(self):
        # "each point in this set has no other point both above and to
        # the right of it"
        points = [(0.9, 0.1), (0.1, 0.9), (0.5, 0.5), (0.4, 0.4)]
        assert pareto_indices(points) == [0, 1, 2]

    @given(points_strategy)
    def test_agrees_with_quadratic_reference(self, points):
        def reference(pts):
            kept = []
            for i, p in enumerate(pts):
                if not any(dominates(q, p) for q in pts):
                    kept.append(i)
            return kept

        assert pareto_indices(points) == reference(points)

    @given(points_strategy)
    def test_never_empty(self, points):
        assert pareto_indices(points)

    @given(points_strategy)
    def test_no_survivor_dominated(self, points):
        survivors = pareto_indices(points)
        for index in survivors:
            assert not any(dominates(q, points[index]) for q in points)

    @given(points_strategy)
    def test_maxima_always_selected(self, points):
        survivors = {points[i] for i in pareto_indices(points)}
        best_x = max(points, key=lambda p: (p[0], p[1]))
        best_y = max(points, key=lambda p: (p[1], p[0]))
        assert best_x in survivors
        assert best_y in survivors


NAN = float("nan")

coordinate_or_nan = st.one_of(
    st.floats(min_value=0, max_value=1, allow_nan=False),
    st.just(NAN),
)
points_with_nan_strategy = st.lists(
    st.tuples(coordinate_or_nan, coordinate_or_nan),
    min_size=1,
    max_size=60,
)


def _naive_pareto(pts):
    """The O(n^2) dominates-filter the sweep must agree with."""
    return [
        i for i, p in enumerate(pts)
        if not any(dominates(q, p) for q in pts)
    ]


class TestEdgeCases:
    def test_all_identical_points_all_kept(self):
        points = [(0.5, 0.5)] * 7
        assert pareto_indices(points) == list(range(7))

    def test_nan_points_never_dominate(self):
        assert not dominates((5.0, NAN), (4.0, 1.0))
        assert not dominates((NAN, 5.0), (1.0, 4.0))
        assert not dominates((NAN, NAN), (0.0, 0.0))

    def test_nan_points_never_dominated(self):
        assert not dominates((6.0, 1.0), (5.0, NAN))
        assert not dominates((1.0, 6.0), (NAN, 5.0))
        assert not dominates((1.0, 1.0), (NAN, NAN))

    def test_nan_points_survive_alongside_finite_front(self):
        points = [(5.0, NAN), (4.0, 1.0), (6.0, 1.0), (NAN, NAN)]
        # (4, 1) is dominated by (6, 1); both NaN points are
        # incomparable and stand.
        assert pareto_indices(points) == [0, 2, 3]

    def test_all_nan_all_kept(self):
        points = [(NAN, NAN), (NAN, 0.5), (0.5, NAN)]
        assert pareto_indices(points) == [0, 1, 2]

    @given(points_with_nan_strategy)
    def test_nan_inputs_agree_with_quadratic_reference(self, points):
        assert pareto_indices(points) == _naive_pareto(points)

    @given(points_with_nan_strategy)
    def test_nan_inputs_never_empty(self, points):
        assert pareto_indices(points)


class TestParetoFront:
    def test_sorted_by_first_coordinate(self):
        points = [(0.1, 0.9), (0.9, 0.1), (0.5, 0.5)]
        front = pareto_front(points)
        assert front == sorted(front)
