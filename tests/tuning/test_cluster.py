"""Metric clustering (the Figure 6(b) groups)."""

from repro.metrics.model import MetricReport
from repro.tuning import (
    Configuration,
    cluster_by_metrics,
    cluster_representatives,
)
from repro.tuning.search import EvaluatedConfig


def entry(eff, util, **params):
    report = MetricReport.__new__(MetricReport)
    object.__setattr__(report, "efficiency", eff)
    object.__setattr__(report, "utilization", util)
    return EvaluatedConfig(config=Configuration(params), metrics=report)


class TestClustering:
    def test_identical_metrics_cluster(self):
        entries = [entry(1e-9, 100.0, i=i) for i in range(7)]
        entries.append(entry(2e-9, 50.0, i=99))
        clusters = cluster_by_metrics(entries)
        assert sorted(len(c) for c in clusters) == [1, 7]

    def test_near_identical_metrics_cluster_with_tolerance(self):
        entries = [
            entry(1e-9, 100.0, i=0),
            entry(1e-9 * (1 + 1e-12), 100.0, i=1),
        ]
        clusters = cluster_by_metrics(entries, relative_tolerance=1e-6)
        assert len(clusters) == 1

    def test_distinct_metrics_do_not_cluster(self):
        entries = [entry(1e-9, 100.0, i=0), entry(3e-9, 100.0, i=1)]
        assert len(cluster_by_metrics(entries)) == 2

    def test_invalid_entries_skipped(self):
        bad = EvaluatedConfig(config=Configuration({"i": 0}),
                              invalid_reason="overflow")
        entries = [bad, entry(1e-9, 100.0, i=1)]
        clusters = cluster_by_metrics(entries)
        assert sum(len(c) for c in clusters) == 1

    def test_representatives_one_per_cluster(self):
        entries = [entry(1e-9, 100.0, i=i) for i in range(7)]
        entries.extend(entry(2e-9, 50.0, i=10 + i) for i in range(3))
        representatives = cluster_representatives(entries, seed=0)
        assert len(representatives) == 2

    def test_representatives_deterministic_per_seed(self):
        entries = [entry(1e-9, 100.0, i=i) for i in range(7)]
        first = cluster_representatives(entries, seed=5)
        second = cluster_representatives(entries, seed=5)
        assert [e.config for e in first] == [e.config for e in second]


class TestMriClusters:
    def test_mri_space_forms_clusters_of_invocation_splits(self):
        """Figure 6(b): configurations cluster in groups of seven."""
        from repro.apps import MriFhd
        from repro.tuning import evaluate_all

        app = MriFhd()
        entries = evaluate_all(app.space().configurations(), app.evaluate)
        clusters = cluster_by_metrics(entries)
        assert len(clusters) == 25           # 5 blocks x 5 unrolls
        assert all(len(c) == 7 for c in clusters)
