"""Search strategies over a synthetic, fully-controlled space.

Using a synthetic application keeps these tests fast and lets us
construct spaces where the relationships between metrics and time are
known exactly.
"""

import pytest

from repro.arch import LaunchError
from repro.metrics.model import MetricReport
from repro.tuning import (
    cartesian,
    evaluate_all,
    full_exploration,
    pareto_search,
    random_search,
)


class SyntheticApp:
    """time = 1/(eff + util) + noise; some configs invalid."""

    def __init__(self):
        self.configs = cartesian({"e": [1, 2, 3, 4], "u": [1, 2, 3, 4]})
        self.simulated = []

    def evaluate(self, config):
        if config["e"] == 4 and config["u"] == 4:
            raise LaunchError("synthetic register overflow")
        report = MetricReport.__new__(MetricReport)
        object.__setattr__(report, "efficiency", float(config["e"]))
        object.__setattr__(report, "utilization", float(config["u"]))
        return report

    def simulate(self, config):
        self.simulated.append(config)
        return 1.0 / (config["e"] + config["u"])


@pytest.fixture
def app():
    return SyntheticApp()


class TestEvaluateAll:
    def test_invalids_recorded_not_dropped(self, app):
        entries = evaluate_all(app.configs, app.evaluate)
        assert len(entries) == 16
        invalid = [e for e in entries if not e.is_valid]
        assert len(invalid) == 1
        assert "register overflow" in invalid[0].invalid_reason


class TestFullExploration:
    def test_times_every_valid_config(self, app):
        result = full_exploration(app.configs, app.evaluate, app.simulate)
        assert result.timed_count == 15
        assert result.space_reduction == 0.0
        assert len(app.simulated) == 15

    def test_finds_true_optimum(self, app):
        result = full_exploration(app.configs, app.evaluate, app.simulate)
        assert dict(result.best.config) in ({"e": 4, "u": 3}, {"e": 3, "u": 4})

    def test_measured_seconds_sums(self, app):
        result = full_exploration(app.configs, app.evaluate, app.simulate)
        assert result.measured_seconds == pytest.approx(
            sum(e.seconds for e in result.timed)
        )


class TestParetoSearch:
    def test_prunes_dominated_configs(self, app):
        result = pareto_search(app.configs, app.evaluate, app.simulate)
        # Surviving points: (4,3) and (3,4) — everything else is
        # dominated once (4,4) is invalid.
        assert result.timed_count == 2
        assert result.space_reduction == pytest.approx(1 - 2 / 15)

    def test_finds_optimum_when_on_curve(self, app):
        pruned = pareto_search(app.configs, app.evaluate, app.simulate)
        exhaustive = full_exploration(app.configs, app.evaluate, app.simulate)
        assert pruned.best.seconds == exhaustive.best.seconds

    def test_only_selected_configs_timed(self, app):
        pareto_search(app.configs, app.evaluate, app.simulate)
        assert len(app.simulated) == 2

    def test_bandwidth_screen_flag(self, app):
        # The synthetic reports carry no bandwidth estimate: screening
        # must not crash when disabled (the default).
        result = pareto_search(app.configs, app.evaluate, app.simulate,
                               screen_bandwidth_bound=False)
        assert result.strategy == "pareto"


class TestRandomSearch:
    def test_sample_size_respected(self, app):
        result = random_search(app.configs, app.evaluate, app.simulate,
                               sample_size=5, seed=1)
        assert result.timed_count == 5

    def test_deterministic_per_seed(self, app):
        first = random_search(app.configs, app.evaluate, app.simulate,
                              sample_size=5, seed=42)
        app2 = SyntheticApp()
        second = random_search(app2.configs, app2.evaluate, app2.simulate,
                               sample_size=5, seed=42)
        assert [dict(e.config) for e in first.timed] == [
            dict(e.config) for e in second.timed
        ]

    def test_oversized_sample_clamped(self, app):
        result = random_search(app.configs, app.evaluate, app.simulate,
                               sample_size=999, seed=0)
        assert result.timed_count == 15

    def test_random_can_miss_optimum(self, app):
        result = random_search(app.configs, app.evaluate, app.simulate,
                               sample_size=2, seed=3)
        exhaustive = full_exploration(
            SyntheticApp().configs, app.evaluate, app.simulate
        )
        assert result.best.seconds >= exhaustive.best.seconds
