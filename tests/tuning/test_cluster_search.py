"""Pareto + cluster-sampling search (Section 5.2's refinement)."""

import pytest

from repro.apps import MriFhd
from repro.tuning import (
    full_exploration,
    pareto_cluster_search,
    pareto_search,
)


@pytest.fixture(scope="module")
def mri():
    return MriFhd()


@pytest.fixture(scope="module")
def configs(mri):
    return mri.space().configurations()


class TestClusterSearch:
    def test_times_fewer_configs_than_plain_pareto(self, mri, configs):
        plain = pareto_search(configs, mri.evaluate, mri.simulate)
        clustered = pareto_cluster_search(configs, mri.evaluate, mri.simulate)
        assert clustered.timed_count < plain.timed_count
        # The MRI curve collapses 7-fold.
        assert clustered.timed_count == plain.timed_count // 7

    def test_stays_near_optimal(self, mri, configs):
        """Intra-cluster spread is bounded by launch overhead, so the
        representative's time is within the paper's 7.1% bound."""
        clustered = pareto_cluster_search(configs, mri.evaluate, mri.simulate,
                                          seed=3)
        exhaustive = full_exploration(configs, mri.evaluate, mri.simulate)
        gap = clustered.best.seconds / exhaustive.best.seconds - 1.0
        assert gap < 0.075

    def test_strategy_label(self, mri, configs):
        result = pareto_cluster_search(configs, mri.evaluate, mri.simulate)
        assert result.strategy == "pareto+cluster"

    def test_deterministic_per_seed(self, mri, configs):
        first = pareto_cluster_search(configs, mri.evaluate, mri.simulate,
                                      seed=9)
        second = pareto_cluster_search(configs, mri.evaluate, mri.simulate,
                                       seed=9)
        assert [e.config for e in first.timed] == [
            e.config for e in second.timed
        ]
