"""Scalar type vocabulary."""

from repro.ir import CmpOp, DataType


class TestDataType:
    def test_sizes(self):
        assert DataType.F32.size_bytes == 4
        assert DataType.S32.size_bytes == 4
        assert DataType.U32.size_bytes == 4
        assert DataType.PRED.size_bytes == 1

    def test_classification(self):
        assert DataType.F32.is_float
        assert not DataType.F32.is_integer
        assert DataType.S32.is_integer
        assert DataType.U32.is_integer
        assert not DataType.PRED.is_integer
        assert not DataType.PRED.is_float

    def test_str(self):
        assert str(DataType.F32) == "f32"
        assert str(DataType.PRED) == "pred"


class TestCmpOp:
    def test_all_six_comparisons(self):
        assert {op.value for op in CmpOp} == {"lt", "le", "gt", "ge", "eq", "ne"}

    def test_str(self):
        assert str(CmpOp.LT) == "lt"
