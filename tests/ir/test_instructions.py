"""Instruction construction invariants."""

import pytest

from repro.arch import MemorySpace
from repro.ir import (
    CmpOp,
    DataType,
    Instruction,
    MemRef,
    Opcode,
    Param,
    SharedArray,
    VirtualRegister,
    imm,
)

F32 = DataType.F32
REG = VirtualRegister("r", F32)
A = VirtualRegister("a", F32)
B = VirtualRegister("b", F32)
PTR = Param("data", F32, is_pointer=True)
SHARED = SharedArray("As", F32, (4,))


class TestArity:
    def test_add_requires_two_operands(self):
        with pytest.raises(ValueError, match="takes 2"):
            Instruction(Opcode.ADD, dest=REG, srcs=(A,))

    def test_mad_requires_three(self):
        with pytest.raises(ValueError, match="takes 3"):
            Instruction(Opcode.MAD, dest=REG, srcs=(A, B))

    def test_alu_requires_destination(self):
        with pytest.raises(ValueError, match="destination"):
            Instruction(Opcode.ADD, srcs=(A, B))

    def test_alu_rejects_memory_operand(self):
        with pytest.raises(ValueError, match="no memory operand"):
            Instruction(Opcode.ADD, dest=REG, srcs=(A, B),
                        mem=MemRef(PTR, imm(0)))


class TestSetp:
    def test_requires_comparison(self):
        pred = VirtualRegister("p", DataType.PRED)
        with pytest.raises(ValueError, match="comparison"):
            Instruction(Opcode.SETP, dest=pred, srcs=(A, B))

    def test_other_opcodes_reject_comparison(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, dest=REG, srcs=(A, B), cmp=CmpOp.LT)


class TestMemoryOps:
    def test_load_requires_memref_and_dest(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LD, dest=REG)
        with pytest.raises(ValueError):
            Instruction(Opcode.LD, mem=MemRef(PTR, imm(0)))

    def test_store_takes_one_source_no_dest(self):
        store = Instruction(Opcode.ST, srcs=(A,), mem=MemRef(PTR, imm(0)))
        assert store.dest is None
        with pytest.raises(ValueError):
            Instruction(Opcode.ST, dest=REG, srcs=(A,), mem=MemRef(PTR, imm(0)))

    def test_store_to_constant_rejected(self):
        constant = Param("lut", F32, is_pointer=True, space=MemorySpace.CONSTANT)
        with pytest.raises(ValueError, match="read-only"):
            Instruction(Opcode.ST, srcs=(A,), mem=MemRef(constant, imm(0)))

    def test_memref_space(self):
        assert MemRef(PTR, imm(0)).space is MemorySpace.GLOBAL
        assert MemRef(SHARED, imm(0)).space is MemorySpace.SHARED

    def test_memref_offset_rendering(self):
        assert "data[0+4]" in str(MemRef(PTR, imm(0), offset=4))


class TestBarrier:
    def test_takes_no_operands(self):
        bar = Instruction(Opcode.BAR)
        assert bar.opcode.is_barrier
        with pytest.raises(ValueError):
            Instruction(Opcode.BAR, srcs=(A,))


class TestClassificationProperties:
    def test_long_latency_loads_only(self):
        global_load = Instruction(Opcode.LD, dest=REG, mem=MemRef(PTR, imm(0)))
        assert global_load.is_long_latency
        shared_load = Instruction(Opcode.LD, dest=REG, mem=MemRef(SHARED, imm(0)))
        assert not shared_load.is_long_latency
        # Stores never block the issuing warp (Section 4).
        global_store = Instruction(Opcode.ST, srcs=(A,), mem=MemRef(PTR, imm(0)))
        assert not global_store.is_long_latency

    def test_sfu_classification(self):
        assert Opcode.RSQRT.is_sfu
        assert Opcode.SIN.is_sfu
        assert not Opcode.MAD.is_sfu

    def test_reads_include_memory_index(self):
        index = VirtualRegister("i", DataType.S32)
        load = Instruction(Opcode.LD, dest=REG, mem=MemRef(PTR, index))
        assert index in load.reads

    def test_reads_include_store_value(self):
        store = Instruction(Opcode.ST, srcs=(A,), mem=MemRef(PTR, imm(0)))
        assert A in store.reads

    def test_str_round_trips_key_content(self):
        add = Instruction(Opcode.ADD, dest=REG, srcs=(A, B))
        assert "add" in str(add)
        assert "%r" in str(add)
