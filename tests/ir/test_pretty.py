"""Pseudocode rendering."""

from repro.ir import format_kernel
from tests.conftest import build_saxpy, build_tiled_matmul


class TestFormatKernel:
    def test_saxpy_renders(self):
        text = format_kernel(build_saxpy())
        assert "__global__ void saxpy" in text
        assert "mad" in text
        assert "grid=(4, 1, 1)" in text

    def test_matmul_shows_structure(self):
        text = format_kernel(build_tiled_matmul())
        assert "__shared__ f32 As[16x16]" in text
        assert "for (" in text
        assert "trips=2" in text          # 32/16 outer iterations
        assert "bar.sync" in text
        assert text.count("{") == text.count("}")

    def test_indentation_nests(self):
        text = format_kernel(build_tiled_matmul())
        lines = text.splitlines()
        inner_loads = [l for l in lines if "ld %" in l or "ld.shared" in l]
        # Inner-loop shared loads are indented deeper than prologue.
        assert any(line.startswith("      ") for line in lines)
