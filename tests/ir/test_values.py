"""Operand kinds: registers, immediates, params, arrays."""

import pytest

from repro.arch import MemorySpace
from repro.ir import (
    DataType,
    Immediate,
    LocalArray,
    Param,
    SharedArray,
    SpecialRegister,
    VirtualRegister,
    imm,
    value_dtype,
)


class TestVirtualRegister:
    def test_identity_by_name_and_type(self):
        assert VirtualRegister("a", DataType.F32) == VirtualRegister("a", DataType.F32)
        assert VirtualRegister("a", DataType.F32) != VirtualRegister("a", DataType.S32)

    def test_hashable(self):
        registers = {VirtualRegister("a", DataType.F32)}
        assert VirtualRegister("a", DataType.F32) in registers

    def test_str(self):
        assert str(VirtualRegister("t1", DataType.F32)) == "%t1"


class TestImmediate:
    def test_integer_immediate_rejects_float(self):
        with pytest.raises(TypeError):
            Immediate(1.5, DataType.S32)

    def test_imm_infers_types(self):
        assert imm(3).dtype is DataType.S32
        assert imm(3.0).dtype is DataType.F32
        assert imm(3, DataType.U32).dtype is DataType.U32


class TestSpecialRegister:
    def test_all_are_s32(self):
        for special in SpecialRegister:
            assert special.dtype is DataType.S32

    def test_str(self):
        assert str(SpecialRegister.TID_X) == "%tid.x"
        assert str(SpecialRegister.CTAID_Y) == "%ctaid.y"


class TestParam:
    def test_scalar_param_rejects_space(self):
        with pytest.raises(ValueError):
            Param("n", DataType.S32, is_pointer=False, space=MemorySpace.CONSTANT)

    def test_pointer_spaces(self):
        pointer = Param("data", DataType.F32, is_pointer=True,
                        space=MemorySpace.TEXTURE)
        assert pointer.space is MemorySpace.TEXTURE


class TestSharedArray:
    def test_size_bytes(self):
        array = SharedArray("As", DataType.F32, (16, 16))
        assert array.num_elements == 256
        assert array.size_bytes == 1024

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            SharedArray("bad", DataType.F32, ())

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            SharedArray("bad", DataType.F32, (4, 0))


class TestLocalArray:
    def test_size(self):
        array = LocalArray("__spill", DataType.F32, 3)
        assert array.size_bytes == 12

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            LocalArray("bad", DataType.F32, 0)


class TestValueDtype:
    def test_covers_all_kinds(self):
        assert value_dtype(VirtualRegister("a", DataType.F32)) is DataType.F32
        assert value_dtype(imm(1)) is DataType.S32
        assert value_dtype(SpecialRegister.TID_X) is DataType.S32
        assert value_dtype(Param("n", DataType.U32)) is DataType.U32
