"""KernelBuilder authoring API."""

import pytest

from repro.arch import MemorySpace
from repro.ir import CmpOp, DataType, Dim3, ForLoop, If, KernelBuilder, Opcode
from repro.ir.builder import TID_X
from repro.ir.validate import validate


def fresh_builder():
    return KernelBuilder("k", block_dim=Dim3(64), grid_dim=Dim3(4))


class TestDeclarations:
    def test_params_and_arrays(self):
        builder = fresh_builder()
        builder.param_ptr("x", DataType.F32)
        builder.param_ptr("lut", DataType.F32, space=MemorySpace.CONSTANT)
        builder.param_scalar("n", DataType.S32)
        builder.shared("As", DataType.F32, (8, 8))
        builder.local("spill", DataType.F32, 2)
        kernel = builder.finish()
        assert [p.name for p in kernel.params] == ["x", "lut", "n"]
        assert kernel.shared_arrays[0].num_elements == 64
        assert kernel.local_arrays[0].length == 2

    def test_fresh_registers_unique(self):
        builder = fresh_builder()
        names = {builder.fresh(DataType.F32).name for _ in range(100)}
        assert len(names) == 100


class TestCoercion:
    def test_python_numbers_become_immediates(self):
        builder = fresh_builder()
        result = builder.add(TID_X, 3)
        kernel = builder.finish()
        instr = kernel.body[0]
        assert instr.srcs[1].value == 3
        assert result.dtype is DataType.S32

    def test_float_inference(self):
        builder = fresh_builder()
        result = builder.mul(2.0, 3.0)
        assert result.dtype is DataType.F32

    def test_bool_rejected(self):
        builder = fresh_builder()
        with pytest.raises(TypeError):
            builder.add(True, 1)

    def test_sfu_requires_f32(self):
        builder = fresh_builder()
        with pytest.raises(TypeError):
            builder.rsqrt(TID_X)


class TestControlFlow:
    def test_loop_context(self):
        builder = fresh_builder()
        with builder.loop(0, 8, label="outer") as i:
            builder.add(i, 1)
        kernel = builder.finish()
        loop = kernel.body[0]
        assert isinstance(loop, ForLoop)
        assert loop.trip_count == 8
        assert loop.label == "outer"
        assert len(loop.body) == 1

    def test_if_else_context(self):
        builder = fresh_builder()
        pred = builder.setp(CmpOp.LT, TID_X, 16)
        with builder.if_(pred, taken_fraction=0.25) as branch:
            builder.add(1, 2)
        with branch.orelse():
            builder.add(3, 4)
        kernel = builder.finish()
        conditional = kernel.body[1]
        assert isinstance(conditional, If)
        assert conditional.taken_fraction == 0.25
        assert len(conditional.then_body) == 1
        assert len(conditional.else_body) == 1

    def test_nested_loops(self):
        builder = fresh_builder()
        with builder.loop(0, 4) as i:
            with builder.loop(0, 8) as j:
                builder.mad(i, 8, j)
        kernel = builder.finish()
        outer = kernel.body[0]
        inner = outer.body[0]
        assert isinstance(inner, ForLoop)
        assert inner.trip_count == 8

    def test_unbalanced_contexts_detected(self):
        builder = fresh_builder()
        context = builder.loop(0, 4)
        context.__enter__()
        with pytest.raises(RuntimeError, match="unbalanced"):
            builder.finish()


class TestAccumulatorPattern:
    def test_dest_reuse(self):
        builder = fresh_builder()
        acc = builder.mov(0.0)
        with builder.loop(0, 4):
            builder.add(acc, 1.0, dest=acc)
        kernel = builder.finish()
        validate(kernel)
        assert kernel.body[1].body[0].dest == acc


class TestMemoryHelpers:
    def test_load_store_offsets(self):
        builder = fresh_builder()
        x = builder.param_ptr("x", DataType.F32)
        value = builder.ld(x, TID_X, offset=4, coalesced=False)
        builder.st(x, TID_X, value, offset=8)
        kernel = builder.finish()
        load, store = kernel.body
        assert load.mem.offset == 4
        assert not load.coalesced
        assert store.mem.offset == 8
        assert store.opcode is Opcode.ST

    def test_validates(self):
        builder = fresh_builder()
        x = builder.param_ptr("x", DataType.F32)
        value = builder.ld(x, TID_X)
        doubled = builder.add(value, value)
        builder.st(x, TID_X, doubled)
        validate(builder.finish())
