"""IR verifier: def-before-use, ownership, typing."""

import pytest

from repro.ir import (
    CmpOp,
    DataType,
    Dim3,
    Instruction,
    Kernel,
    MemRef,
    Opcode,
    Param,
    SharedArray,
    ValidationError,
    VirtualRegister,
    imm,
    validate,
)
from repro.ir.statements import ForLoop, If

F32 = DataType.F32
S32 = DataType.S32


def kernel_with(body, params=None, shared=None):
    return Kernel(
        name="k",
        params=params or [],
        block_dim=Dim3(32),
        grid_dim=Dim3(1),
        shared_arrays=shared or [],
        body=body,
    )


class TestDefBeforeUse:
    def test_read_before_definition(self):
        ghost = VirtualRegister("ghost", F32)
        out = VirtualRegister("out", F32)
        body = [Instruction(Opcode.ADD, dest=out, srcs=(ghost, imm(1.0)))]
        with pytest.raises(ValidationError, match="before definition"):
            validate(kernel_with(body))

    def test_straight_line_ok(self):
        a = VirtualRegister("a", F32)
        b = VirtualRegister("b", F32)
        body = [
            Instruction(Opcode.MOV, dest=a, srcs=(imm(1.0),)),
            Instruction(Opcode.ADD, dest=b, srcs=(a, a)),
        ]
        validate(kernel_with(body))

    def test_loop_counter_is_defined_inside(self):
        i = VirtualRegister("i", S32)
        x = VirtualRegister("x", S32)
        loop = ForLoop(i, imm(0), imm(4), imm(1), body=[
            Instruction(Opcode.ADD, dest=x, srcs=(i, imm(1))),
        ])
        validate(kernel_with([loop]))


class TestOwnership:
    def test_foreign_parameter(self):
        foreign = Param("other", F32, is_pointer=True)
        out = VirtualRegister("v", F32)
        body = [Instruction(Opcode.LD, dest=out, mem=MemRef(foreign, imm(0)))]
        with pytest.raises(ValidationError, match="foreign parameter"):
            validate(kernel_with(body))

    def test_foreign_shared_array(self):
        foreign = SharedArray("ghost", F32, (4,))
        out = VirtualRegister("v", F32)
        body = [Instruction(Opcode.LD, dest=out, mem=MemRef(foreign, imm(0)))]
        with pytest.raises(ValidationError, match="foreign shared"):
            validate(kernel_with(body))

    def test_pointer_used_as_scalar(self):
        pointer = Param("x", F32, is_pointer=True)
        out = VirtualRegister("v", F32)
        body = [Instruction(Opcode.ADD, dest=out, srcs=(pointer, imm(1.0)))]
        with pytest.raises(ValidationError, match="used as a scalar"):
            validate(kernel_with(body, params=[pointer]))

    def test_scalar_dereferenced(self):
        scalar = Param("n", S32)
        out = VirtualRegister("v", S32)
        body = [Instruction(Opcode.LD, dest=out, mem=MemRef(scalar, imm(0)))]
        with pytest.raises(ValidationError, match="dereferenced"):
            validate(kernel_with(body, params=[scalar]))


class TestTyping:
    def test_mixed_int_float_arithmetic(self):
        a = VirtualRegister("a", F32)
        out = VirtualRegister("o", F32)
        body = [
            Instruction(Opcode.MOV, dest=a, srcs=(imm(1.0),)),
            Instruction(Opcode.ADD, dest=out, srcs=(a, imm(1))),
        ]
        with pytest.raises(ValidationError, match="mixed"):
            validate(kernel_with(body))

    def test_if_condition_must_be_predicate(self):
        x = VirtualRegister("x", S32)
        body = [
            Instruction(Opcode.MOV, dest=x, srcs=(imm(1),)),
            If(cond=x),
        ]
        with pytest.raises(ValidationError, match="not a predicate"):
            validate(kernel_with(body))

    def test_memory_index_must_be_integer(self):
        f = VirtualRegister("f", F32)
        out = VirtualRegister("v", F32)
        pointer = Param("x", F32, is_pointer=True)
        body = [
            Instruction(Opcode.MOV, dest=f, srcs=(imm(1.0),)),
            Instruction(Opcode.LD, dest=out, mem=MemRef(pointer, f)),
        ]
        with pytest.raises(ValidationError, match="must be integer"):
            validate(kernel_with(body, params=[pointer]))

    def test_load_type_must_match_register(self):
        pointer = Param("x", F32, is_pointer=True)
        out = VirtualRegister("v", S32)
        body = [Instruction(Opcode.LD, dest=out, mem=MemRef(pointer, imm(0)))]
        with pytest.raises(ValidationError, match="loading f32"):
            validate(kernel_with(body, params=[pointer]))

    def test_setp_operand_types_must_match(self):
        a = VirtualRegister("a", F32)
        p = VirtualRegister("p", DataType.PRED)
        body = [
            Instruction(Opcode.MOV, dest=a, srcs=(imm(1.0),)),
            Instruction(Opcode.SETP, dest=p, srcs=(a, imm(1)), cmp=CmpOp.LT),
        ]
        with pytest.raises(ValidationError, match="comparing"):
            validate(kernel_with(body))

    def test_errors_are_aggregated(self):
        ghost1 = VirtualRegister("g1", F32)
        ghost2 = VirtualRegister("g2", F32)
        out = VirtualRegister("o", F32)
        body = [
            Instruction(Opcode.ADD, dest=out, srcs=(ghost1, ghost2)),
        ]
        with pytest.raises(ValidationError) as excinfo:
            validate(kernel_with(body))
        assert "g1" in str(excinfo.value)
        assert "g2" in str(excinfo.value)
