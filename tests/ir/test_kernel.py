"""Kernel container and launch geometry."""

import pytest

from repro.ir import (
    DataType,
    Dim3,
    Kernel,
    Param,
    SharedArray,
    flatten_thread_index,
    warp_assignment,
)


class TestDim3:
    def test_count(self):
        assert Dim3(16, 16).count == 256
        assert Dim3(4, 4, 2).count == 32

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Dim3(0)

    def test_str(self):
        assert str(Dim3(2, 3)) == "(2, 3, 1)"


class TestKernel:
    def _kernel(self, **overrides):
        defaults = dict(
            name="k",
            params=[Param("x", DataType.F32, is_pointer=True)],
            block_dim=Dim3(256),
            grid_dim=Dim3(64),
        )
        defaults.update(overrides)
        return Kernel(**defaults)

    def test_thread_accounting(self):
        kernel = self._kernel()
        assert kernel.threads_per_block == 256
        assert kernel.num_blocks == 64
        assert kernel.total_threads == 256 * 64

    def test_shared_memory_bytes(self):
        kernel = self._kernel(shared_arrays=[
            SharedArray("As", DataType.F32, (16, 16)),
            SharedArray("Bs", DataType.F32, (16, 16)),
        ])
        assert kernel.shared_memory_bytes == 2048

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self._kernel(
                params=[Param("x", DataType.F32, is_pointer=True)],
                shared_arrays=[SharedArray("x", DataType.F32, (4,))],
            )

    def test_param_lookup(self):
        kernel = self._kernel()
        assert kernel.param("x").name == "x"
        with pytest.raises(KeyError):
            kernel.param("missing")

    def test_shared_lookup(self):
        kernel = self._kernel(shared_arrays=[SharedArray("As", DataType.F32, (4,))])
        assert kernel.shared("As").num_elements == 4
        with pytest.raises(KeyError):
            kernel.shared("missing")

    def test_check_launch_rejects_oversized_block(self):
        kernel = self._kernel(block_dim=Dim3(32, 32))  # 1024 threads
        with pytest.raises(ValueError, match="threads/block"):
            kernel.check_launch()

    def test_check_launch_rejects_oversized_shared(self):
        kernel = self._kernel(shared_arrays=[
            SharedArray("big", DataType.F32, (4097,)),
        ])
        with pytest.raises(ValueError, match="shared memory"):
            kernel.check_launch()


class TestThreadIndexing:
    def test_flatten_x_fastest(self):
        block = Dim3(16, 16)
        assert flatten_thread_index((0, 0, 0), block) == 0
        assert flatten_thread_index((1, 0, 0), block) == 1
        assert flatten_thread_index((0, 1, 0), block) == 16
        assert flatten_thread_index((0, 0, 1), block) == 256

    def test_warp_assignment(self):
        warps = warp_assignment(Dim3(64))
        assert warps[0] == 0
        assert warps[31] == 0
        assert warps[32] == 1
        assert warps[63] == 1
