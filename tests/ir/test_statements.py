"""Structured control flow: loops, conditionals, traversal."""

import pytest

from repro.ir import (
    DataType,
    ForLoop,
    If,
    Instruction,
    Opcode,
    VirtualRegister,
    imm,
    instructions,
    walk,
)

S32 = DataType.S32


def counter(name="i"):
    return VirtualRegister(name, S32)


class TestForLoop:
    def test_static_trip_count(self):
        loop = ForLoop(counter(), imm(0), imm(16), imm(1))
        assert loop.trip_count == 16

    def test_strided_trip_count_rounds_up(self):
        loop = ForLoop(counter(), imm(0), imm(10), imm(4))
        assert loop.trip_count == 3

    def test_zero_trips(self):
        loop = ForLoop(counter(), imm(5), imm(5), imm(1))
        assert loop.trip_count == 0

    def test_dynamic_bounds_need_annotation(self):
        bound = VirtualRegister("n", S32)
        loop = ForLoop(counter(), imm(0), bound, imm(1))
        assert loop.trip_count is None
        with pytest.raises(ValueError, match="trip_count annotation"):
            loop.annotated_trips

    def test_dynamic_bounds_accept_annotation(self):
        bound = VirtualRegister("n", S32)
        loop = ForLoop(counter(), imm(0), bound, imm(1), trip_count=64)
        assert loop.annotated_trips == 64

    def test_annotation_must_match_static_bounds(self):
        with pytest.raises(ValueError, match="contradicts"):
            ForLoop(counter(), imm(0), imm(16), imm(1), trip_count=8)

    def test_nonpositive_step_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ForLoop(counter(), imm(0), imm(16), imm(0))

    def test_counter_must_be_s32(self):
        with pytest.raises(TypeError):
            ForLoop(VirtualRegister("f", DataType.F32), imm(0), imm(4), imm(1))

    def test_label(self):
        loop = ForLoop(counter(), imm(0), imm(4), imm(1), label="inner")
        assert loop.label == "inner"


class TestIf:
    def test_taken_fraction_bounds(self):
        pred = VirtualRegister("p", DataType.PRED)
        If(cond=pred, taken_fraction=0.5)
        with pytest.raises(ValueError):
            If(cond=pred, taken_fraction=1.5)
        with pytest.raises(ValueError):
            If(cond=pred, taken_fraction=-0.1)


class TestTraversal:
    def _nested(self):
        reg = VirtualRegister("x", S32)
        inner = Instruction(Opcode.ADD, dest=reg, srcs=(imm(1), imm(2)))
        loop = ForLoop(counter(), imm(0), imm(4), imm(1), body=[inner])
        pred = VirtualRegister("p", DataType.PRED)
        setp = Instruction(Opcode.SETP, dest=pred, srcs=(imm(1), imm(2)),
                           cmp=__import__("repro.ir", fromlist=["CmpOp"]).CmpOp.LT)
        branch = If(cond=pred, then_body=[loop])
        return [setp, branch], {setp, inner}

    def test_walk_reaches_nested_statements(self):
        body, expected_instrs = self._nested()
        visited = list(walk(body))
        assert len(visited) == 4  # setp, if, loop, add

    def test_instructions_filters(self):
        body, expected_instrs = self._nested()
        assert set(instructions(body)) == expected_instrs
