"""Scalar semantics: 32-bit wrapping, f32 rounding, comparisons.

Includes hypothesis property tests, since these semantics back both
the interpreter and the constant folder — they must agree by
construction, but each must also be internally consistent.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import CmpOp, DataType, Opcode
from repro.ir.semantics import coerce_scalar, eval_compare, eval_op

S32 = DataType.S32
U32 = DataType.U32
F32 = DataType.F32

int32s = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_subnormal=False, width=32)


class TestCoercion:
    def test_s32_wraps(self):
        assert coerce_scalar(2 ** 31, S32) == -(2 ** 31)
        assert coerce_scalar(-(2 ** 31) - 1, S32) == 2 ** 31 - 1

    def test_u32_wraps(self):
        assert coerce_scalar(2 ** 32 + 5, U32) == 5
        assert coerce_scalar(-1, U32) == 2 ** 32 - 1

    def test_f32_rounds_to_single(self):
        value = coerce_scalar(1.0 + 2 ** -30, F32)
        assert value == 1.0  # not representable in f32

    @given(int32s)
    def test_s32_identity_in_range(self, value):
        assert coerce_scalar(value, S32) == value

    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63))
    def test_s32_always_in_range(self, value):
        wrapped = coerce_scalar(value, S32)
        assert -(2 ** 31) <= wrapped <= 2 ** 31 - 1
        assert (wrapped - value) % (2 ** 32) == 0


class TestIntegerOps:
    def test_div_truncates_toward_zero(self):
        assert eval_op(Opcode.DIV, S32, (-7, 2)) == -3
        assert eval_op(Opcode.DIV, S32, (7, -2)) == -3
        assert eval_op(Opcode.DIV, S32, (7, 2)) == 3

    def test_rem_sign_follows_dividend(self):
        assert eval_op(Opcode.REM, S32, (-7, 2)) == -1
        assert eval_op(Opcode.REM, S32, (7, -2)) == 1

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            eval_op(Opcode.DIV, S32, (1, 0))

    @given(int32s, st.integers(min_value=1, max_value=2 ** 31 - 1))
    def test_div_rem_identity(self, a, b):
        q = eval_op(Opcode.DIV, S32, (a, b))
        r = eval_op(Opcode.REM, S32, (a, b))
        assert q * b + r == a
        assert abs(r) < b

    def test_shifts_mask_amount(self):
        assert eval_op(Opcode.SHL, S32, (1, 33)) == 2  # 33 & 31 == 1
        assert eval_op(Opcode.SHR, S32, (4, 1)) == 2

    def test_bitwise(self):
        assert eval_op(Opcode.AND, S32, (0b1100, 0b1010)) == 0b1000
        assert eval_op(Opcode.OR, S32, (0b1100, 0b1010)) == 0b1110
        assert eval_op(Opcode.XOR, S32, (0b1100, 0b1010)) == 0b0110

    @given(int32s, int32s)
    def test_mul_wraps_like_numpy(self, a, b):
        ours = eval_op(Opcode.MUL, S32, (a, b))
        with np.errstate(over="ignore"):
            theirs = int(np.int32(a) * np.int32(b))
        assert ours == theirs


class TestFloatOps:
    def test_mad(self):
        assert eval_op(Opcode.MAD, F32, (2.0, 3.0, 1.0)) == 7.0

    def test_abs_neg_min_max(self):
        assert eval_op(Opcode.ABS, F32, (-2.5,)) == 2.5
        assert eval_op(Opcode.NEG, F32, (2.5,)) == -2.5
        assert eval_op(Opcode.MIN, F32, (1.0, 2.0)) == 1.0
        assert eval_op(Opcode.MAX, F32, (1.0, 2.0)) == 2.0

    @given(floats)
    def test_results_are_f32_representable(self, value):
        result = eval_op(Opcode.MUL, F32, (value, 1.0000001))
        assert result == float(np.float32(result))

    def test_sfu_ops(self):
        assert eval_op(Opcode.RSQRT, F32, (4.0,)) == pytest.approx(0.5)
        assert eval_op(Opcode.RCP, F32, (4.0,)) == pytest.approx(0.25)
        assert eval_op(Opcode.SQRT, F32, (9.0,)) == pytest.approx(3.0)
        assert eval_op(Opcode.SIN, F32, (0.0,)) == 0.0
        assert eval_op(Opcode.COS, F32, (0.0,)) == 1.0
        assert eval_op(Opcode.EX2, F32, (3.0,)) == 8.0
        assert eval_op(Opcode.LG2, F32, (8.0,)) == 3.0

    def test_cvt(self):
        assert eval_op(Opcode.CVT, F32, (3,)) == 3.0
        assert eval_op(Opcode.CVT, S32, (3.7,)) == 3


class TestPredicates:
    @given(int32s, int32s)
    def test_comparisons_consistent(self, a, b):
        assert eval_compare(CmpOp.LT, a, b) == (a < b)
        assert eval_compare(CmpOp.GE, a, b) == (not eval_compare(CmpOp.LT, a, b))
        assert eval_compare(CmpOp.EQ, a, b) == (a == b)
        assert eval_compare(CmpOp.NE, a, b) == (a != b)

    def test_selp(self):
        assert eval_op(Opcode.SELP, S32, (True, 1, 2)) == 1
        assert eval_op(Opcode.SELP, S32, (False, 1, 2)) == 2

    def test_setp_via_eval_op(self):
        assert eval_op(Opcode.SETP, DataType.PRED, (1, 2), cmp=CmpOp.LT) is True
