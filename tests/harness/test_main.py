"""The ``python -m repro.harness`` entry point."""

import json

from repro.harness.__main__ import main, parse_args


class TestParseArgs:
    def test_defaults(self):
        options = parse_args(["prog"])
        assert options.output == "EXPERIMENTS.md"
        assert options.apps is None
        assert not options.no_random

    def test_custom(self):
        options = parse_args(["prog", "out.md", "--apps", "cp,matmul",
                              "--no-random"])
        assert options.output == "out.md"
        assert options.apps == "cp,matmul"
        assert options.no_random

    def test_engine_flags_default_off(self):
        options = parse_args(["prog"])
        assert options.workers is None
        assert options.resume is None
        assert options.trace is None
        assert options.profile is None

    def test_engine_flags(self):
        options = parse_args(["prog", "--workers", "4",
                              "--resume", "ckpt_dir"])
        assert options.workers == 4
        assert options.resume == "ckpt_dir"


class TestMain:
    def test_subset_run_writes_report(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        code = main(["prog", str(output), "--apps", "cp", "--no-random"])
        assert code == 0
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "cp" in capsys.readouterr().out

    def test_unknown_app_rejected(self, tmp_path):
        code = main(["prog", str(tmp_path / "x.md"), "--apps", "nonesuch"])
        assert code == 2

    def test_trace_flag_writes_chrome_trace(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        trace = tmp_path / "trace.json"
        code = main(["prog", str(output), "--apps", "cp", "--no-random",
                     "--trace", str(trace)])
        assert code == 0
        # the tracer is global state; main() must turn it back off
        from repro.obs import tracing_enabled

        assert not tracing_enabled()

        data = json.loads(trace.read_text())
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        assert events
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        names = {event["name"] for event in events}
        assert "harness.experiment" in names
        assert "engine.simulate_batch" in names
        assert "sm.replay" in names
        # the report gains the per-stage breakdown table
        assert "Per-stage timing" in output.read_text()
        assert str(trace) in capsys.readouterr().out

    def test_profile_flag_dumps_pstats(self, tmp_path, capsys):
        import pstats

        output = tmp_path / "report.md"
        profile = tmp_path / "sweep.pstats"
        code = main(["prog", str(output), "--apps", "cp", "--no-random",
                     "--profile", str(profile)])
        assert code == 0
        stats = pstats.Stats(str(profile))
        # the sweep really ran under the profiler: the SM replay loop
        # must appear in the collected call stats
        functions = {func for _, _, func in stats.stats}
        assert any("simulate_sm" in name for name in functions)
        assert str(profile) in capsys.readouterr().out

    def test_resume_writes_then_reuses_checkpoint(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        resume = tmp_path / "ckpt"
        args = ["prog", str(output), "--apps", "cp", "--no-random",
                "--resume", str(resume)]
        assert main(args) == 0
        checkpoint = resume / "cp.json"
        assert checkpoint.exists()
        # measured numbers are deterministic; only the telemetry
        # section carries run-dependent wall times
        def measured(text):
            return text.split("## Search engine telemetry")[0]

        first_report = output.read_text()
        capsys.readouterr()
        # second run resumes: no new simulations, identical measurements
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "sims=0" in out
        assert measured(output.read_text()) == measured(first_report)
