"""The ``python -m repro.harness`` entry point."""

import pytest

from repro.harness.__main__ import main, parse_args


class TestParseArgs:
    def test_defaults(self):
        options = parse_args(["prog"])
        assert options.output == "EXPERIMENTS.md"
        assert options.apps is None
        assert not options.no_random

    def test_custom(self):
        options = parse_args(["prog", "out.md", "--apps", "cp,matmul",
                              "--no-random"])
        assert options.output == "out.md"
        assert options.apps == "cp,matmul"
        assert options.no_random


class TestMain:
    def test_subset_run_writes_report(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        code = main(["prog", str(output), "--apps", "cp", "--no-random"])
        assert code == 0
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "cp" in capsys.readouterr().out

    def test_unknown_app_rejected(self, tmp_path):
        code = main(["prog", str(tmp_path / "x.md"), "--apps", "nonesuch"])
        assert code == 2
