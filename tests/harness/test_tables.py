"""Table renderers."""

import pytest

from repro.apps import CoulombicPotential
from repro.harness import format_table, run_experiment, table3_rows, table4_rows


@pytest.fixture(scope="module")
def experiments():
    return [run_experiment(CoulombicPotential())]


class TestTable3:
    def test_rows(self, experiments):
        rows = table3_rows(experiments)
        assert len(rows) == 1
        row = rows[0]
        assert row["application"] == "cp"
        assert row["paper_speedup"] == 647.0
        assert row["speedup"] > 1.0
        assert row["gpu_best_ms"] > 0


class TestTable4:
    def test_rows(self, experiments):
        rows = table4_rows(experiments)
        row = rows[0]
        assert row["kernel"] == "cp"
        assert row["configurations"] == 40
        assert row["valid_configurations"] == 38
        assert row["paper_configurations"] == 38
        assert row["selected"] < row["valid_configurations"]
        assert row["optimum_on_curve"] is True
        assert 0 < row["selected_evaluation_time_s"] < row["evaluation_time_s"]
        assert "per-thread tiling" in row["parameters"]


class TestFormatTable:
    def test_renders_columns(self, experiments):
        text = format_table(table3_rows(experiments),
                            ["application", "speedup"])
        lines = text.splitlines()
        assert lines[0].startswith("application")
        assert len(lines) == 3      # header, ruler, one row

    def test_empty(self):
        assert format_table([], ["a"]) == "(no rows)"

    def test_floats_formatted(self, experiments):
        text = format_table(table3_rows(experiments), ["speedup"])
        assert "." in text.splitlines()[2]
