"""Experiment driver on the fastest application (CP)."""

import pytest

from repro.apps import CoulombicPotential
from repro.harness import run_experiment


@pytest.fixture(scope="module")
def experiment():
    return run_experiment(CoulombicPotential(), include_random=True,
                          random_seed=7)


class TestRunExperiment:
    def test_both_searches_ran(self, experiment):
        assert experiment.exhaustive.strategy == "exhaustive"
        assert experiment.pareto.strategy == "pareto"
        assert experiment.random.strategy == "random"

    def test_optimum_on_curve(self, experiment):
        assert experiment.optimum_on_curve

    def test_space_reduction_in_paper_band(self, experiment):
        assert 60.0 <= experiment.space_reduction_percent <= 99.0

    def test_pruned_search_is_cheaper(self, experiment):
        assert (
            experiment.pareto.measured_seconds
            < experiment.exhaustive.measured_seconds
        )

    def test_pruned_gap_zero_when_on_curve(self, experiment):
        assert experiment.pruned_best_gap == pytest.approx(0.0, abs=1e-12)

    def test_speedup_positive(self, experiment):
        assert experiment.speedup_over_cpu > 1.0

    def test_random_sample_matches_pareto_budget(self, experiment):
        assert experiment.random.timed_count == experiment.pareto.timed_count

    def test_worst_over_best(self, experiment):
        assert experiment.worst_over_best > 1.0
