"""run_experiment through the shared engine: the no-wasted-work contract.

The acceptance criterion for the engine refactor: a multi-strategy
experiment performs exactly one static-metric pass and zero duplicate
simulations, asserted with spy callables wrapped around a real
application.
"""

import math

import pytest

from repro.apps import CoulombicPotential
from repro.arch import LaunchError
from repro.harness import format_percent, run_experiment
from repro.harness.tables import format_table
from repro.tuning import Configuration, EvaluatedConfig, SearchResult


class SpiedApp:
    """Wraps an Application, counting evaluate/simulate calls."""

    def __init__(self, app):
        self.app = app
        self.evaluate_calls = []
        self.simulate_calls = []
        # run_experiment reads these through the app protocol
        self.name = app.name
        self.space = app.space
        self.default_configuration = app.default_configuration
        self.cpu_time_model_seconds = app.cpu_time_model_seconds

    def evaluate(self, config):
        self.evaluate_calls.append(config)
        return self.app.evaluate(config)

    def simulate(self, config):
        self.simulate_calls.append(config)
        return self.app.simulate(config)


@pytest.fixture(scope="module")
def spied_experiment():
    spy = SpiedApp(CoulombicPotential())
    experiment = run_experiment(spy, include_random=True, random_seed=7,
                                workers=1)
    return spy, experiment


class TestNoWastedWork:
    def test_one_static_pass(self, spied_experiment):
        spy, experiment = spied_experiment
        configs = spy.space().configurations()
        # exactly once per configuration, across three strategies
        assert len(spy.evaluate_calls) == len(configs)
        assert len(set(spy.evaluate_calls)) == len(configs)

    def test_zero_duplicate_simulations(self, spied_experiment):
        spy, experiment = spied_experiment
        assert len(spy.simulate_calls) == len(set(spy.simulate_calls))
        # pareto and random are served entirely from the exhaustive pass
        assert len(spy.simulate_calls) == experiment.exhaustive.valid_count

    def test_strategies_still_complete(self, spied_experiment):
        _, experiment = spied_experiment
        assert experiment.exhaustive.strategy == "exhaustive"
        assert experiment.pareto.strategy == "pareto"
        assert experiment.random.strategy == "random"
        assert experiment.optimum_on_curve

    def test_stats_surface_the_sharing(self, spied_experiment):
        _, experiment = spied_experiment
        stats = experiment.engine_stats
        assert stats is not None
        assert stats.simulations == experiment.exhaustive.valid_count
        assert stats.simulation_cache_hits >= (
            experiment.pareto.timed_count + experiment.random.timed_count
        )
        assert stats.static_cache_hits >= 2 * experiment.exhaustive.space_size

    def test_random_sample_size_recorded(self, spied_experiment):
        _, experiment = spied_experiment
        assert (experiment.random.requested_sample_size
                == experiment.pareto.timed_count)
        assert experiment.random.sample_shortfall == 0


# ----------------------------------------------------------------------
# Satellite bug guards (synthetic AppExperiments; no simulation).


def _entry(seconds, **params):
    return EvaluatedConfig(config=Configuration(params), seconds=seconds)


def _result(strategy, timed):
    return SearchResult(strategy=strategy, evaluated=list(timed),
                        timed=list(timed), best=min(timed, key=lambda e: e.seconds),
                        measured_seconds=sum(e.seconds for e in timed))


class _DefaultInvalidApp:
    """default_configuration() is outside the timed set and cannot launch."""

    name = "stub"

    def default_configuration(self):
        return Configuration({"tile": 99})

    def simulate(self, config):
        raise LaunchError("stub: default configuration does not fit")


class TestHandOptimizedGuard:
    def test_invalid_default_yields_nan_not_crash(self):
        from repro.harness import AppExperiment

        timed = [_entry(2.0, tile=8), _entry(1.0, tile=16)]
        experiment = AppExperiment(
            app=_DefaultInvalidApp(),
            exhaustive=_result("exhaustive", timed),
            pareto=_result("pareto", timed[1:]),
        )
        assert math.isnan(experiment.hand_optimized_over_best)

    def test_nan_renders_as_na(self):
        assert format_percent(float("nan")).strip() == "n/a"
        assert format_percent(17.25).strip() == "17.2%"
        table = format_table([{"x": float("nan"), "y": 1.5}], ["x", "y"])
        assert "n/a" in table and "nan" not in table
