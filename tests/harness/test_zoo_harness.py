"""The strategy zoo through the harness: experiment driver, report
tables, and budget-vs-best curves (on CP, the fastest app)."""

from __future__ import annotations

import pytest

from repro.apps import CoulombicPotential
from repro.harness import render_report, run_experiment
from repro.harness.tables import (
    best_so_far,
    zoo_curve_rows,
    zoo_restriction_rows,
    zoo_rows,
)
from repro.tuning.strategies import adaptive_strategy_names


@pytest.fixture(scope="module")
def experiment():
    return run_experiment(
        CoulombicPotential(),
        zoo_strategies=adaptive_strategy_names(),
        random_seed=3,
    )


class TestZooExperiment:
    def test_every_strategy_ran_in_both_compositions(self, experiment):
        seen = {(r.strategy, r.restrict) for r in experiment.zoo}
        expected = {
            (name, restrict)
            for name in adaptive_strategy_names()
            for restrict in ("full", "pareto")
        }
        assert seen == expected

    def test_zoo_runs_cost_no_extra_simulations(self, experiment):
        # the exhaustive pass measured the whole valid space; every zoo
        # measurement must have been a cache replay
        assert (
            experiment.engine_stats.simulations
            == experiment.exhaustive.valid_count
        )

    def test_budget_is_a_quarter_of_the_valid_space(self, experiment):
        expected = max(1, round(0.25 * experiment.exhaustive.valid_count))
        for result in experiment.zoo:
            if result.restrict == "full":
                assert result.budget == expected
            else:
                assert result.budget == min(
                    expected, experiment.pareto.timed_count
                )

    def test_zoo_rows_cover_every_run(self, experiment):
        rows = zoo_rows([experiment])
        assert len(rows) == len(experiment.zoo)
        for row in rows:
            assert row["gap_vs_opt_percent"] >= 0.0
            assert row["timed"] <= row["budget"]

    def test_curve_rows_march_toward_the_optimum(self, experiment):
        rows = zoo_curve_rows(experiment)
        assert rows
        assert rows[0]["evaluations"] == 1
        for name in adaptive_strategy_names():
            series = [float(row[name]) for row in rows if row[name] != "-"]
            assert all(b <= a for a, b in zip(series, series[1:]))

    def test_best_so_far_walks_the_trajectory(self, experiment):
        result = experiment.zoo[0]
        assert best_so_far(result.trajectory, 0) is None
        assert (
            best_so_far(result.trajectory, result.timed_count)
            == result.best.seconds
        )

    def test_restriction_rows_aggregate_per_strategy(self, experiment):
        rows = zoo_restriction_rows([experiment])
        assert {row["strategy"] for row in rows} == set(
            adaptive_strategy_names()
        )
        for row in rows:
            assert row["apps"] == 1
            assert 0 <= row["full_within_5pct"] <= 1
            assert 0 <= row["pareto_within_5pct"] <= 1

    def test_report_carries_the_zoo_sections(self, experiment):
        text = render_report([experiment])
        assert "## Search-strategy zoo" in text
        assert "### Budget versus best configuration" in text
        assert "### Does Pareto restriction help?" in text
        for name in adaptive_strategy_names():
            assert name in text
