"""EXPERIMENTS.md renderer."""

import pytest

from repro.apps import CoulombicPotential
from repro.harness import render_report, run_experiment, write_report


@pytest.fixture(scope="module")
def experiments():
    return [run_experiment(CoulombicPotential())]


class TestRenderReport:
    def test_sections_present(self, experiments):
        text = render_report(experiments, preamble="Reduced-size run.")
        assert "# EXPERIMENTS" in text
        assert "Reduced-size run." in text
        assert "## Table 3" in text
        assert "## Table 4" in text
        assert "## Figure 5" in text
        assert "## Figure 6" in text
        assert "Headline claim" in text

    def test_headline_reflects_results(self, experiments):
        text = render_report(experiments)
        assert "**True**" in text

    def test_write_report(self, experiments, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        write_report(str(path), experiments)
        assert path.read_text().startswith("# EXPERIMENTS")
