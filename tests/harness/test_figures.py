"""Figure data generators."""

import pytest

from repro.apps import CoulombicPotential
from repro.harness import (
    ascii_scatter,
    figure5_series,
    figure6_data,
    run_experiment,
)


@pytest.fixture(scope="module")
def cp_experiment():
    return run_experiment(CoulombicPotential())


class TestFigure5:
    def test_series_structure(self):
        series = figure5_series()
        assert [row["tiling"] for row in series] == [1, 2, 4, 8, 16]
        assert all(0 < row["inv_efficiency_norm"] <= 1 for row in series)
        assert all(0 < row["inv_utilization_norm"] <= 1 for row in series)

    def test_reciprocal_efficiency_decreases(self):
        """Lower is better: efficiency improves monotonically with
        tiling, so its reciprocal falls."""
        series = figure5_series()
        values = [row["inv_efficiency_norm"] for row in series]
        assert values == sorted(values, reverse=True)

    def test_reciprocal_utilization_increases(self):
        series = figure5_series()
        values = [row["inv_utilization_norm"] for row in series]
        assert values == sorted(values)


class TestFigure6:
    def test_data(self, cp_experiment):
        data = figure6_data(cp_experiment)
        assert data.name == "cp"
        assert len(data.points) == 38
        assert max(p[0] for p in data.points) == pytest.approx(1.0)
        assert max(p[1] for p in data.points) == pytest.approx(1.0)
        assert data.optimum_on_curve

    def test_pareto_points_undominated(self, cp_experiment):
        from repro.tuning import dominates

        data = figure6_data(cp_experiment)
        for index in data.pareto:
            assert not any(
                dominates(other, data.points[index]) for other in data.points
            )


class TestAsciiScatter:
    def test_renders_markers(self, cp_experiment):
        data = figure6_data(cp_experiment)
        art = ascii_scatter(data.points, data.pareto, data.optimal)
        assert "@" in art
        assert "o" in art
        assert art.count("\n") > 10
