"""Property test: the optimization pipeline preserves semantics.

Hypothesis generates random integer kernels (straight-line programs,
optionally wrapped in accumulation loops); each is executed in the
functional interpreter before and after the full cleanup pipeline and
after unrolling, and the outputs must match bit for bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import launch
from repro.ir import DataType, Dim3, KernelBuilder, validate
from repro.ir.builder import CTAID_X, TID_X
from repro.transforms import COMPLETE, standard_cleanup, unroll

S32 = DataType.S32

# (opcode-name, arity) pool — all total functions on s32.
_BINARY = ["add", "sub", "mul", "min", "max", "and_", "or_", "xor"]


@st.composite
def straight_line_program(draw):
    """A random DAG of integer arithmetic feeding one store."""
    op_count = draw(st.integers(min_value=1, max_value=12))
    operations = []
    for _ in range(op_count):
        name = draw(st.sampled_from(_BINARY + ["mad"]))
        operations.append((
            name,
            draw(st.integers(-3, 5)),          # value-pool index or imm
            draw(st.integers(-3, 5)),
            draw(st.integers(-3, 5)),
        ))
    return operations


@st.composite
def looped_program(draw):
    body = draw(straight_line_program())
    trips = draw(st.integers(min_value=0, max_value=7))
    start = draw(st.integers(min_value=0, max_value=3))
    step = draw(st.integers(min_value=1, max_value=3))
    return body, trips, start, step


def _materialize(builder, operations, pool):
    def pick(token):
        if token < 0:
            return token * 7 + 1      # a small immediate
        return pool[token % len(pool)]

    for name, a, b, c in operations:
        if name == "mad":
            value = builder.mad(pick(a), pick(b), pick(c))
        else:
            value = getattr(builder, name)(pick(a), pick(b))
        pool.append(value)
    return pool[-1]


def _build_straight_line(operations):
    builder = KernelBuilder("prop", block_dim=Dim3(16), grid_dim=Dim3(2))
    out = builder.param_ptr("out", S32)
    pool = [builder.mov(TID_X, dtype=S32), builder.mad(CTAID_X, 16, TID_X)]
    result = _materialize(builder, operations, pool)
    index = builder.mad(CTAID_X, 16, TID_X)
    builder.st(out, index, result)
    return builder.finish()


def _build_looped(body_ops, trips, start, step):
    builder = KernelBuilder("prop_loop", block_dim=Dim3(16), grid_dim=Dim3(1))
    out = builder.param_ptr("out", S32)
    total = builder.mov(0, dtype=S32)
    with builder.loop(start, start + trips * step, step=step,
                      label="main") as counter:
        pool = [builder.mov(TID_X, dtype=S32), counter, total]
        result = _materialize(builder, body_ops, pool)
        builder.add(total, result, dest=total)
    builder.st(out, TID_X, total)
    return builder.finish()


def _run(kernel, size):
    buffer = np.zeros(size, dtype=np.int32)
    launch(kernel, {"out": buffer})
    return buffer


class TestCleanupPreservesSemantics:
    @settings(max_examples=60, deadline=None)
    @given(straight_line_program())
    def test_straight_line(self, operations):
        kernel = _build_straight_line(operations)
        validate(kernel)
        cleaned = standard_cleanup(kernel)
        validate(cleaned)
        np.testing.assert_array_equal(_run(kernel, 32), _run(cleaned, 32))

    @settings(max_examples=40, deadline=None)
    @given(looped_program())
    def test_loops(self, program):
        kernel = _build_looped(*program)
        validate(kernel)
        cleaned = standard_cleanup(kernel)
        validate(cleaned)
        np.testing.assert_array_equal(_run(kernel, 16), _run(cleaned, 16))


@st.composite
def memory_program(draw):
    """Random interleavings of arithmetic, loads and stores."""
    steps = []
    for _ in range(draw(st.integers(min_value=2, max_value=10))):
        kind = draw(st.sampled_from(["alu", "load", "store"]))
        steps.append((
            kind,
            draw(st.sampled_from(_BINARY)),
            draw(st.integers(-3, 5)),
            draw(st.integers(-3, 5)),
            draw(st.integers(0, 15)),     # memory offset
        ))
    return steps


def _build_memory_program(steps):
    builder = KernelBuilder("mem", block_dim=Dim3(16), grid_dim=Dim3(1))
    data = builder.param_ptr("data", S32)
    pool = [builder.mov(TID_X, dtype=S32)]

    def pick(token):
        if token < 0:
            return token * 5 + 2
        return pool[token % len(pool)]

    for kind, op, a, b, offset in steps:
        if kind == "alu":
            pool.append(getattr(builder, op)(pick(a), pick(b)))
        elif kind == "load":
            pool.append(builder.ld(data, TID_X, offset=offset))
        else:
            builder.st(data, TID_X, pick(a), offset=offset)
    builder.st(data, TID_X, pool[-1], offset=16)
    return builder.finish()


class TestSchedulePreservesSemantics:
    @settings(max_examples=60, deadline=None)
    @given(memory_program())
    def test_memory_interleavings(self, steps):
        from repro.transforms import schedule_loads_early

        kernel = _build_memory_program(steps)
        validate(kernel)
        scheduled = schedule_loads_early(kernel)
        validate(scheduled)
        first = np.arange(64, dtype=np.int32)
        second = first.copy()
        launch(kernel, {"data": first})
        launch(scheduled, {"data": second})
        np.testing.assert_array_equal(first, second)


class TestStrengthReductionPreservesSemantics:
    @settings(max_examples=40, deadline=None)
    @given(straight_line_program())
    def test_straight_line(self, operations):
        from repro.transforms import reduce_strength

        kernel = _build_straight_line(operations)
        reduced = reduce_strength(kernel)
        validate(reduced)
        np.testing.assert_array_equal(_run(kernel, 32), _run(reduced, 32))


class TestSpillPreservesSemantics:
    @settings(max_examples=30, deadline=None)
    @given(looped_program(), st.integers(min_value=1, max_value=3))
    def test_spilling_any_register_set(self, program, count):
        from repro.transforms import SpillError, spill_registers

        kernel = _build_looped(*program)
        try:
            spilled = spill_registers(kernel, count)
        except SpillError:
            return  # nothing spillable in this program
        validate(spilled)
        np.testing.assert_array_equal(_run(kernel, 16), _run(spilled, 16))

    @settings(max_examples=20, deadline=None)
    @given(looped_program())
    def test_spill_then_cleanup(self, program):
        from repro.transforms import SpillError, spill_registers

        kernel = _build_looped(*program)
        try:
            spilled = standard_cleanup(spill_registers(kernel, 2))
        except SpillError:
            return
        validate(spilled)
        np.testing.assert_array_equal(_run(kernel, 16), _run(spilled, 16))


class TestUnrollPreservesSemantics:
    @settings(max_examples=40, deadline=None)
    @given(looped_program(), st.sampled_from([2, 3, 4, COMPLETE]))
    def test_any_factor(self, program, factor):
        kernel = _build_looped(*program)
        unrolled = unroll(kernel, factor, label="main")
        validate(unrolled)
        np.testing.assert_array_equal(_run(kernel, 16), _run(unrolled, 16))

    @settings(max_examples=25, deadline=None)
    @given(looped_program(), st.sampled_from([2, 4, COMPLETE]))
    def test_unroll_then_cleanup(self, program, factor):
        kernel = _build_looped(*program)
        transformed = standard_cleanup(unroll(kernel, factor, label="main"))
        validate(transformed)
        np.testing.assert_array_equal(_run(kernel, 16), _run(transformed, 16))
