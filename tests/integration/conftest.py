"""Shared session state for the expensive integration experiments."""

from __future__ import annotations

import pytest

from repro.apps import all_applications
from repro.harness import run_experiment

_CACHE = {}


def experiment_for(name: str):
    """One AppExperiment per application, computed once per session."""
    if name not in _CACHE:
        app = next(a for a in all_applications() if a.name == name)
        _CACHE[name] = run_experiment(app)
    return _CACHE[name]


@pytest.fixture(scope="session")
def experiments():
    return experiment_for
