"""The paper's headline claim, per application.

"For all benchmarks, the Pareto-optimal subset contains the best
configuration found by exhaustive search."  (Section 5.2)

This is the full experiment at default workload sizes: every valid
configuration is simulated, then the search is repeated with only the
metric-selected subset.
"""

import pytest

from tests.integration.conftest import experiment_for


@pytest.mark.parametrize("name", ["matmul", "cp", "sad", "mri-fhd"])
class TestHeadlineClaim:
    def test_optimum_on_pareto_curve(self, name):
        assert experiment_for(name).optimum_on_curve

    def test_pruned_search_finds_the_optimum(self, name):
        experiment = experiment_for(name)
        assert experiment.pareto.best.config == experiment.exhaustive.best.config

    def test_space_reduction_in_paper_band(self, name):
        """Paper: 74% to 98% across the suite."""
        reduction = experiment_for(name).space_reduction_percent
        assert 70.0 <= reduction <= 99.0

    def test_pruned_evaluation_much_cheaper(self, name):
        experiment = experiment_for(name)
        assert (
            experiment.pareto.measured_seconds
            < 0.5 * experiment.exhaustive.measured_seconds
        )


class TestTable3Ordering:
    def test_speedups_ordered_like_the_paper(self):
        """CP >> MRI-FHD >> MatMul ~ SAD."""
        speedups = {
            name: experiment_for(name).speedup_over_cpu
            for name in ("matmul", "cp", "sad", "mri-fhd")
        }
        assert speedups["cp"] > speedups["mri-fhd"] > speedups["matmul"]
        assert speedups["cp"] > speedups["mri-fhd"] > speedups["sad"]
        assert speedups["cp"] > 100
        assert 1 < speedups["matmul"] < 50
        assert 1 < speedups["sad"] < 50


class TestSection1Motivation:
    def test_hand_optimized_gap(self):
        """Section 1: hand-optimized vs optimal was 17% for MRI; every
        app's sensible hand configuration leaves real performance on
        the table."""
        for name in ("matmul", "cp", "sad", "mri-fhd"):
            experiment = experiment_for(name)
            assert experiment.hand_optimized_over_best >= 1.0

    def test_worst_configurations_are_much_slower(self):
        for name in ("matmul", "cp", "sad"):
            assert experiment_for(name).worst_over_best > 2.0
