"""Golden regression lock for the headline experiment.

The whole pipeline — kernel generation, transforms, register
allocation, trace building, simulation, metrics, pruning — is
deterministic, so the end-to-end numbers can be pinned.  If a refactor
moves any of these, that is a behaviour change and must be a conscious
decision (update the constants AND the EXPERIMENTS.md narrative).
"""

import pytest

from tests.integration.conftest import experiment_for

GOLDEN = {
    "matmul": dict(
        valid=94, pareto=8, best_ms=16.164124,
        best={"prefetch": False, "rect": 4, "spill": False,
              "tile": 16, "unroll": "complete"},
    ),
    "cp": dict(
        valid=38, pareto=10, best_ms=0.923556,
        best={"block": 64, "coalesce_output": True, "tiling": 8},
    ),
    "sad": dict(
        valid=808, pareto=27, best_ms=1.140438,
        best={"positions_per_block": 512, "tiling": 8, "unroll_cols": 4,
              "unroll_rows": 4, "unroll_search": 8},
    ),
    "mri-fhd": dict(
        valid=175, pareto=35, best_ms=140.464933,
        best={"block": 64, "invocations": 1, "unroll": 16},
    ),
}


@pytest.mark.parametrize("name", list(GOLDEN))
def test_golden_results(name):
    golden = GOLDEN[name]
    experiment = experiment_for(name)

    assert experiment.exhaustive.valid_count == golden["valid"]
    assert experiment.pareto.timed_count == golden["pareto"]
    assert dict(experiment.exhaustive.best.config) == golden["best"]
    assert experiment.exhaustive.best.seconds * 1e3 == pytest.approx(
        golden["best_ms"], rel=1e-4
    )
    assert experiment.pareto.best.config == experiment.exhaustive.best.config
