"""Section 4's worked example, end to end.

The paper computes, for the completely-unrolled 16x16 matmul kernel on
4k x 4k matrices: 13 registers, 2088 bytes of shared memory, B_SM = 2,
W_TB = 8, Instr = 15150, Regions = 769, Threads = 2^24, Efficiency =
3.93e-12, Utilization = 227.  We rebuild that kernel at the paper's
size and check every step of the calculation.
"""

import pytest

from repro.apps import MatMul
from repro.metrics import efficiency, utilization
from repro.tuning import Configuration

PAPER_INSTR = 15150
PAPER_REGIONS = 769
PAPER_THREADS = 2 ** 24


@pytest.fixture(scope="module")
def report():
    app = MatMul(n=4096)
    config = Configuration({
        "tile": 16, "rect": 1, "unroll": "complete",
        "prefetch": False, "spill": False,
    })
    return app.evaluate(config)


class TestPaperArithmetic:
    """Equations 1-2 with the paper's published inputs."""

    def test_efficiency(self):
        assert efficiency(PAPER_INSTR, PAPER_THREADS) == pytest.approx(
            3.93e-12, rel=1e-2
        )

    def test_utilization(self):
        assert utilization(PAPER_INSTR, PAPER_REGIONS, 8, 2) == pytest.approx(
            227, rel=5e-3
        )


class TestOurKernel:
    """The same quantities from our compiler pipeline."""

    def test_threads(self, report):
        assert report.threads == PAPER_THREADS

    def test_regions_exact(self, report):
        # 2 barriers + 1 load unit per tile iteration, 256 iterations.
        assert report.regions == PAPER_REGIONS

    def test_instructions_within_one_percent(self, report):
        assert report.instructions == pytest.approx(PAPER_INSTR, rel=0.01)

    def test_occupancy(self, report):
        assert report.warps_per_block == 8
        assert report.blocks_per_sm == 2
        assert report.occupancy.limiting_resource == "registers"

    def test_shared_memory_exact(self, report):
        assert report.resources.shared_memory_per_block == 2088

    def test_registers_in_bsm2_band(self, report):
        # The paper reports 13; anything in 11..16 yields B_SM = 2.
        assert 11 <= report.resources.registers_per_thread <= 16

    def test_efficiency_matches_paper_within_two_percent(self, report):
        assert report.efficiency == pytest.approx(3.93e-12, rel=0.02)

    def test_utilization_matches_paper_within_two_percent(self, report):
        assert report.utilization == pytest.approx(227, rel=0.02)
