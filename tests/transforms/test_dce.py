"""Dead code elimination."""

from repro.ir import DataType, Dim3, KernelBuilder, Opcode
from repro.ir.builder import TID_X
from repro.ir.statements import ForLoop, If, instructions, walk
from repro.transforms import eliminate_dead_code

F32 = DataType.F32
S32 = DataType.S32


def builder():
    return KernelBuilder("k", block_dim=Dim3(16), grid_dim=Dim3(1))


def ops(kernel):
    return [i.opcode for i in instructions(kernel.body)]


class TestSweeping:
    def test_unused_pure_instruction_removed(self):
        b = builder()
        out = b.param_ptr("out", S32)
        b.add(1, 2)                      # dead
        b.st(out, TID_X, 7)
        assert ops(eliminate_dead_code(b.finish())) == [Opcode.ST]

    def test_transitive_chains_removed(self):
        b = builder()
        out = b.param_ptr("out", S32)
        a = b.add(1, 2)
        c = b.mul(a, 3)                  # only user of a, itself dead
        b.st(out, TID_X, 7)
        assert ops(eliminate_dead_code(b.finish())) == [Opcode.ST]

    def test_unread_load_removed(self):
        b = builder()
        out = b.param_ptr("out", S32)
        b.ld(out, TID_X)                 # result never read
        b.st(out, TID_X, 7)
        assert ops(eliminate_dead_code(b.finish())) == [Opcode.ST]

    def test_stores_and_barriers_kept(self):
        b = builder()
        out = b.param_ptr("out", S32)
        b.bar()
        b.st(out, TID_X, 7)
        assert ops(eliminate_dead_code(b.finish())) == [Opcode.BAR, Opcode.ST]

    def test_live_code_untouched(self):
        b = builder()
        out = b.param_ptr("out", S32)
        value = b.add(TID_X, 1)
        b.st(out, TID_X, value)
        assert ops(eliminate_dead_code(b.finish())) == [Opcode.ADD, Opcode.ST]


class TestControlFlow:
    def test_emptied_loop_removed(self):
        b = builder()
        out = b.param_ptr("out", S32)
        with b.loop(0, 4):
            b.add(1, 2)                  # dead
        b.st(out, TID_X, 7)
        kernel = eliminate_dead_code(b.finish())
        assert not [s for s in walk(kernel.body) if isinstance(s, ForLoop)]

    def test_loop_with_live_accumulator_kept(self):
        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4):
            b.add(total, 1, dest=total)
        b.st(out, TID_X, total)
        kernel = eliminate_dead_code(b.finish())
        assert [s for s in walk(kernel.body) if isinstance(s, ForLoop)]

    def test_loop_with_store_kept(self):
        b = builder()
        out = b.param_ptr("out", S32)
        with b.loop(0, 4) as i:
            b.st(out, i, 1)
        kernel = eliminate_dead_code(b.finish())
        assert [s for s in walk(kernel.body) if isinstance(s, ForLoop)]

    def test_emptied_conditional_removed(self):
        from repro.ir import CmpOp

        b = builder()
        out = b.param_ptr("out", S32)
        pred = b.setp(CmpOp.LT, TID_X, 8)
        with b.if_(pred):
            b.add(1, 2)                  # dead
        b.st(out, TID_X, 7)
        kernel = eliminate_dead_code(b.finish())
        assert not [s for s in walk(kernel.body) if isinstance(s, If)]
        # The setp itself dies once the conditional is gone.
        assert Opcode.SETP not in ops(kernel)
