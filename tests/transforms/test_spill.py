"""Proactive register spilling (resource balancing)."""

import numpy as np
import pytest

from repro.arch import MemorySpace
from repro.cubin import cubin_info
from repro.ir import DataType, Dim3, KernelBuilder, Opcode, validate
from repro.ir.builder import TID_X
from repro.ir.statements import instructions
from repro.transforms import (
    COMPLETE,
    SpillError,
    choose_spill_candidates,
    spill_registers,
    standard_cleanup,
    unroll,
)
from tests.conftest import build_tiled_matmul, run_matmul_kernel

S32 = DataType.S32


def local_ops(kernel):
    return [
        i for i in instructions(kernel.body)
        if i.mem is not None and i.mem.space is MemorySpace.LOCAL
    ]


class TestMechanics:
    def test_spill_creates_local_array_and_traffic(self):
        kernel = spill_registers(build_tiled_matmul(), 1)
        validate(kernel)
        assert kernel.local_arrays
        accesses = local_ops(kernel)
        assert any(a.opcode is Opcode.ST for a in accesses)
        assert any(a.opcode is Opcode.LD for a in accesses)

    def test_candidates_are_longest_lived(self):
        kernel = build_tiled_matmul()
        candidates = choose_spill_candidates(kernel, 2)
        assert len(candidates) == 2
        from repro.cubin import live_intervals

        lengths = {iv.register: iv.length for iv in live_intervals(kernel)}
        chosen = {lengths[c] for c in candidates}
        spillable_max = max(
            length for register, length in lengths.items()
        )
        assert max(chosen) <= spillable_max

    def test_loop_counters_never_spilled(self):
        kernel = build_tiled_matmul()
        from repro.ir.statements import ForLoop, walk

        counters = {
            s.counter for s in walk(kernel.body) if isinstance(s, ForLoop)
        }
        candidates = choose_spill_candidates(kernel, 10)
        assert not counters & set(candidates)

    def test_spilling_adds_instructions(self):
        from repro.ptx import count_instructions

        base, _ = count_instructions(build_tiled_matmul())
        spilled, _ = count_instructions(spill_registers(build_tiled_matmul(), 2))
        assert spilled > base

    def test_empty_kernel_raises(self):
        builder = KernelBuilder("empty", block_dim=Dim3(32), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        builder.st(out, TID_X, 1)
        with pytest.raises(SpillError):
            spill_registers(builder.finish(), 1)


class TestSemantics:
    def test_matmul_results_unchanged(self):
        kernel = spill_registers(build_tiled_matmul(n=32), 2)
        validate(kernel)
        result, reference = run_matmul_kernel(kernel, 32)
        np.testing.assert_allclose(result, reference, rtol=1e-4, atol=1e-4)

    def test_composes_with_unrolling(self):
        kernel = spill_registers(
            standard_cleanup(unroll(build_tiled_matmul(n=32), COMPLETE,
                                    label="inner")),
            2,
        )
        validate(kernel)
        result, reference = run_matmul_kernel(kernel, 32)
        np.testing.assert_allclose(result, reference, rtol=1e-4, atol=1e-4)


class TestResourceEffect:
    def test_register_pressure_can_drop(self):
        # Spill the pipelined prefetch kernel: the whole point of the
        # optimization is to win back a resident block.
        from repro.apps import MatMul
        from repro.tuning import Configuration

        app = MatMul()
        heavy = app.kernel(Configuration({
            "tile": 16, "rect": 4, "unroll": 1,
            "prefetch": True, "spill": False,
        }))
        spilled = spill_registers(heavy, 2)
        assert (
            cubin_info(spilled).registers_per_thread
            < cubin_info(heavy).registers_per_thread
        )
