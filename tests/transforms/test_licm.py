"""Loop-invariant code motion."""

import numpy as np

from repro.ir import DataType, Dim3, KernelBuilder, Opcode
from repro.ir.builder import TID_X
from repro.ir.statements import ForLoop, instructions, walk
from repro.transforms import hoist_loop_invariants

S32 = DataType.S32


def builder():
    return KernelBuilder("k", block_dim=Dim3(16), grid_dim=Dim3(1))


def in_loop_ops(kernel):
    result = []
    for stmt in kernel.body:
        if isinstance(stmt, ForLoop):
            result.extend(i.opcode for i in instructions(stmt.body))
    return result


class TestHoisting:
    def test_invariant_moves_out(self):
        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4):
            invariant = b.mul(TID_X, 3)
            b.add(total, invariant, dest=total)
        b.st(out, TID_X, total)
        kernel = hoist_loop_invariants(b.finish())
        assert Opcode.MUL not in in_loop_ops(kernel)

    def test_counter_dependent_stays(self):
        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4) as i:
            varying = b.mul(i, 3)
            b.add(total, varying, dest=total)
        b.st(out, TID_X, total)
        kernel = hoist_loop_invariants(b.finish())
        assert Opcode.MUL in in_loop_ops(kernel)

    def test_chains_hoist_to_fixpoint(self):
        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4):
            first = b.mul(TID_X, 3)
            second = b.add(first, 7)      # depends on another invariant
            b.add(total, second, dest=total)
        b.st(out, TID_X, total)
        kernel = hoist_loop_invariants(b.finish())
        assert Opcode.MUL not in in_loop_ops(kernel)
        assert in_loop_ops(kernel).count(Opcode.ADD) == 1  # only the acc update

    def test_loads_never_hoisted(self):
        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4):
            value = b.ld(out, TID_X)
            b.add(total, value, dest=total)
        b.st(out, TID_X, total)
        kernel = hoist_loop_invariants(b.finish())
        assert Opcode.LD in in_loop_ops(kernel)

    def test_accumulator_updates_stay(self):
        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4):
            b.add(total, 1, dest=total)
        b.st(out, TID_X, total)
        kernel = hoist_loop_invariants(b.finish())
        assert Opcode.ADD in in_loop_ops(kernel)

    def test_inner_loop_invariant_escapes_both_loops(self):
        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 2):
            with b.loop(0, 2):
                deep = b.mul(TID_X, 9)
                b.add(total, deep, dest=total)
        b.st(out, TID_X, total)
        kernel = hoist_loop_invariants(b.finish())
        loops = [s for s in walk(kernel.body) if isinstance(s, ForLoop)]
        for loop in loops:
            assert Opcode.MUL not in [
                i.opcode for i in instructions(loop.body)
            ]

    def test_semantics_preserved(self):
        from repro.interp import launch

        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 5):
            invariant = b.mad(TID_X, 2, 1)
            b.add(total, invariant, dest=total)
        b.st(out, TID_X, total)
        kernel = hoist_loop_invariants(b.finish())
        buffer = np.zeros(16, dtype=np.int32)
        launch(kernel, {"out": buffer})
        expected = np.array([5 * (2 * t + 1) for t in range(16)], dtype=np.int32)
        np.testing.assert_array_equal(buffer, expected)
