"""Common subexpression elimination."""

import numpy as np

from repro.ir import DataType, Dim3, KernelBuilder, Opcode
from repro.ir.builder import TID_X
from repro.ir.statements import instructions
from repro.transforms import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
)

S32 = DataType.S32


def builder():
    return KernelBuilder("k", block_dim=Dim3(16), grid_dim=Dim3(1))


def cse(kernel):
    return eliminate_dead_code(eliminate_common_subexpressions(kernel))


def count(kernel, opcode):
    return sum(1 for i in instructions(kernel.body) if i.opcode is opcode)


class TestSharing:
    def test_duplicate_expression_collapses(self):
        b = builder()
        out = b.param_ptr("out", S32)
        first = b.mul(TID_X, 4)
        second = b.mul(TID_X, 4)
        b.st(out, first, second)
        kernel = cse(b.finish())
        assert count(kernel, Opcode.MUL) == 1

    def test_different_operands_not_shared(self):
        b = builder()
        out = b.param_ptr("out", S32)
        first = b.mul(TID_X, 4)
        second = b.mul(TID_X, 8)
        b.st(out, first, second)
        kernel = cse(b.finish())
        assert count(kernel, Opcode.MUL) == 2

    def test_semantics_preserved(self):
        from repro.interp import launch

        b = builder()
        out = b.param_ptr("out", S32)
        first = b.mad(TID_X, 3, 1)
        second = b.mad(TID_X, 3, 1)
        total = b.add(first, second)
        b.st(out, TID_X, total)
        kernel = cse(b.finish())
        buffer = np.zeros(16, dtype=np.int32)
        launch(kernel, {"out": buffer})
        expected = np.array([2 * (3 * t + 1) for t in range(16)], dtype=np.int32)
        np.testing.assert_array_equal(buffer, expected)


class TestScoping:
    def test_outer_expression_available_inside_loop(self):
        b = builder()
        out = b.param_ptr("out", S32)
        outer = b.mul(TID_X, 4)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4):
            again = b.mul(TID_X, 4)      # same as outer
            b.add(total, again, dest=total)
        b.st(out, outer, total)
        kernel = cse(b.finish())
        assert count(kernel, Opcode.MUL) == 1

    def test_loop_expression_not_available_after_loop(self):
        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4) as i:
            inside = b.mul(TID_X, 4)
            b.add(total, inside, dest=total)
        after = b.mul(TID_X, 4)
        b.st(out, after, total)
        kernel = cse(b.finish())
        # Conservative: the post-loop occurrence is recomputed.
        assert count(kernel, Opcode.MUL) == 2

    def test_counter_dependent_expressions_not_shared_across_scopes(self):
        from repro.interp import launch

        b = builder()
        out = b.param_ptr("out", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4) as i:
            a = b.mul(i, 2)
            c = b.mul(i, 2)     # same iteration: sharable
            b.add(total, b.add(a, c), dest=total)
        b.st(out, TID_X, total)
        kernel = cse(b.finish())
        assert count(kernel, Opcode.MUL) == 1
        buffer = np.zeros(16, dtype=np.int32)
        launch(kernel, {"out": buffer})
        np.testing.assert_array_equal(buffer, np.full(16, 24, dtype=np.int32))


class TestIneligibility:
    def test_accumulators_never_shared(self):
        b = builder()
        out = b.param_ptr("out", S32)
        acc = b.mov(0, dtype=S32)
        b.add(acc, 1, dest=acc)
        b.add(acc, 1, dest=acc)          # same key, but multi-def dest
        b.st(out, TID_X, acc)
        kernel = cse(b.finish())
        assert count(kernel, Opcode.ADD) == 2

    def test_loads_never_shared(self):
        b = builder()
        out = b.param_ptr("out", S32)
        first = b.ld(out, TID_X)
        b.st(out, TID_X, b.add(first, 1))
        second = b.ld(out, TID_X)        # memory changed in between
        b.st(out, TID_X, b.add(second, 1))
        kernel = cse(b.finish())
        assert count(kernel, Opcode.LD) == 2
