"""The standard cleanup pipeline."""

import numpy as np

from repro.ptx import count_instructions, emit_ptx
from repro.transforms import COMPLETE, standard_cleanup, unroll
from tests.conftest import build_tiled_matmul, run_matmul_kernel


class TestStandardCleanup:
    def test_idempotent(self):
        once = standard_cleanup(build_tiled_matmul())
        twice = standard_cleanup(once)
        assert emit_ptx(once) == emit_ptx(twice)

    def test_never_increases_instructions(self):
        kernel = unroll(build_tiled_matmul(), COMPLETE, label="inner")
        before, _ = count_instructions(kernel)
        after, _ = count_instructions(standard_cleanup(kernel))
        assert after <= before

    def test_unrolled_addresses_fold_into_offsets(self):
        text = emit_ptx(standard_cleanup(
            unroll(build_tiled_matmul(), COMPLETE, label="inner")
        ))
        # The paper's observation: unrolled shared loads use constant
        # offsets from a single base register.
        assert "+15]" in text

    def test_semantics_preserved(self):
        kernel = standard_cleanup(
            unroll(build_tiled_matmul(n=32), 4, label="inner")
        )
        result, reference = run_matmul_kernel(kernel, 32)
        np.testing.assert_allclose(result, reference, rtol=1e-4, atol=1e-4)

    def test_original_kernel_not_mutated(self):
        kernel = build_tiled_matmul()
        fingerprint = emit_ptx(kernel)
        standard_cleanup(kernel)
        assert emit_ptx(kernel) == fingerprint
