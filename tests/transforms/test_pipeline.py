"""The standard cleanup pipeline."""

import numpy as np

from repro.ptx import count_instructions, emit_ptx
from repro.transforms import COMPLETE, standard_cleanup, unroll
from tests.conftest import build_tiled_matmul, run_matmul_kernel


class TestStandardCleanup:
    def test_idempotent(self):
        once = standard_cleanup(build_tiled_matmul())
        twice = standard_cleanup(once)
        assert emit_ptx(once) == emit_ptx(twice)

    def test_never_increases_instructions(self):
        kernel = unroll(build_tiled_matmul(), COMPLETE, label="inner")
        before, _ = count_instructions(kernel)
        after, _ = count_instructions(standard_cleanup(kernel))
        assert after <= before

    def test_unrolled_addresses_fold_into_offsets(self):
        text = emit_ptx(standard_cleanup(
            unroll(build_tiled_matmul(), COMPLETE, label="inner")
        ))
        # The paper's observation: unrolled shared loads use constant
        # offsets from a single base register.
        assert "+15]" in text

    def test_semantics_preserved(self):
        kernel = standard_cleanup(
            unroll(build_tiled_matmul(n=32), 4, label="inner")
        )
        result, reference = run_matmul_kernel(kernel, 32)
        np.testing.assert_allclose(result, reference, rtol=1e-4, atol=1e-4)

    def test_original_kernel_not_mutated(self):
        kernel = build_tiled_matmul()
        fingerprint = emit_ptx(kernel)
        standard_cleanup(kernel)
        assert emit_ptx(kernel) == fingerprint


class TestChangedVariants:
    """Every pass reports change as an exact structural fact."""

    def test_unchanged_pass_returns_same_object(self):
        from repro.transforms import (
            constant_fold_changed,
            eliminate_common_subexpressions_changed,
            eliminate_dead_code_changed,
            hoist_loop_invariants_changed,
        )

        settled = standard_cleanup(
            unroll(build_tiled_matmul(), 4, label="inner")
        )
        for run_pass in (
            constant_fold_changed,
            eliminate_common_subexpressions_changed,
            hoist_loop_invariants_changed,
            eliminate_dead_code_changed,
        ):
            result, changed = run_pass(settled)
            assert changed is False
            assert result is settled  # no clone, no emit, no allocation

    def test_changing_pass_reports_true(self):
        from repro.transforms import eliminate_common_subexpressions_changed

        kernel = unroll(build_tiled_matmul(), 4, label="inner")
        shared, changed = eliminate_common_subexpressions_changed(kernel)
        assert changed is True
        assert shared is not kernel

    def test_changed_flag_matches_emitted_ptx(self):
        from repro.transforms import (
            constant_fold_changed,
            eliminate_common_subexpressions_changed,
            eliminate_dead_code_changed,
            hoist_loop_invariants_changed,
        )

        kernel = unroll(build_tiled_matmul(), COMPLETE, label="inner")
        for run_pass in (
            constant_fold_changed,
            eliminate_common_subexpressions_changed,
            hoist_loop_invariants_changed,
            eliminate_dead_code_changed,
        ):
            result, changed = run_pass(kernel)
            assert changed == (emit_ptx(result) != emit_ptx(kernel))
            kernel = result


class TestDifferentialAgainstReference:
    """standard_cleanup must match the PTX-string-comparison oracle."""

    def _sample_kernels(self):
        from repro.apps import all_applications

        for app in all_applications():
            small = app.test_instance()
            configs = list(small.space())
            step = max(1, len(configs) // 8)
            for config in configs[::step]:
                try:
                    yield small.build_kernel(config)
                except Exception:
                    continue

    def test_app_kernels_bit_identical_to_reference(self):
        from repro.transforms import standard_cleanup_reference

        checked = 0
        for kernel in self._sample_kernels():
            # build_kernel already ran standard_cleanup; rerunning both
            # drivers from the settled kernel checks the converged case,
            # and re-unrolling checks a kernel with real work left.
            assert emit_ptx(standard_cleanup(kernel)) == emit_ptx(
                standard_cleanup_reference(kernel)
            )
            checked += 1
        assert checked >= 20

    def test_unconverged_kernel_bit_identical_to_reference(self):
        from repro.transforms import standard_cleanup_reference

        for factor in (2, 4, COMPLETE):
            kernel = unroll(build_tiled_matmul(), factor, label="inner")
            assert emit_ptx(standard_cleanup(kernel)) == emit_ptx(
                standard_cleanup_reference(kernel)
            )
