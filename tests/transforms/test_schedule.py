"""List scheduling (the explicit runtime scheduler)."""

import numpy as np

from repro.ir import DataType, Dim3, KernelBuilder, Opcode, validate
from repro.ir.builder import TID_X
from repro.ir.statements import instructions
from repro.sim import simulate_kernel
from repro.transforms import schedule_loads_early
from tests.conftest import build_tiled_matmul, run_matmul_kernel

F32 = DataType.F32
S32 = DataType.S32


def builder():
    return KernelBuilder("k", block_dim=Dim3(32), grid_dim=Dim3(1))


def opcodes(kernel):
    return [i.opcode for i in instructions(kernel.body)]


class TestReordering:
    def test_load_hoists_above_independent_compute(self):
        b = builder()
        x = b.param_ptr("x", F32)
        a = b.add(1.0, 2.0)
        c = b.mul(a, 3.0)
        value = b.ld(x, TID_X)
        b.st(x, TID_X, b.add(value, c))
        scheduled = schedule_loads_early(b.finish())
        assert opcodes(scheduled)[0] is Opcode.LD

    def test_load_cannot_cross_its_address_def(self):
        b = builder()
        x = b.param_ptr("x", S32)
        index = b.add(TID_X, 4)
        value = b.ld(x, index)
        b.st(x, TID_X, value)
        scheduled = schedule_loads_early(b.finish())
        sequence = opcodes(scheduled)
        assert sequence.index(Opcode.ADD) < sequence.index(Opcode.LD)

    def test_load_cannot_cross_store_to_same_array(self):
        b = builder()
        x = b.param_ptr("x", S32)
        b.st(x, TID_X, 1)
        value = b.ld(x, TID_X)          # must see the store
        b.st(x, b.add(TID_X, 32), value)
        scheduled = schedule_loads_early(b.finish())
        sequence = opcodes(scheduled)
        assert sequence.index(Opcode.ST) < sequence.index(Opcode.LD)

    def test_load_may_cross_store_to_other_array(self):
        b = builder()
        x = b.param_ptr("x", S32)
        y = b.param_ptr("y", S32)
        b.st(y, TID_X, 1)
        value = b.ld(x, TID_X)
        b.st(y, b.add(TID_X, 32), value)
        scheduled = schedule_loads_early(b.finish())
        assert opcodes(scheduled)[0] is Opcode.LD

    def test_barrier_fences_scheduling(self):
        b = builder()
        x = b.param_ptr("x", F32)
        b.shared("s", F32, (32,))
        b.add(1.0, 2.0)
        b.bar()
        value = b.ld(x, TID_X)
        b.st(x, TID_X, value)
        scheduled = schedule_loads_early(b.finish())
        sequence = opcodes(scheduled)
        assert sequence.index(Opcode.BAR) < sequence.index(Opcode.LD)

    def test_accumulator_order_preserved(self):
        b = builder()
        x = b.param_ptr("x", S32)
        acc = b.mov(1, dtype=S32)
        b.add(acc, 2, dest=acc)
        b.mul(acc, 3, dest=acc)
        b.st(x, TID_X, acc)
        scheduled = schedule_loads_early(b.finish())
        assert opcodes(scheduled) == [Opcode.MOV, Opcode.ADD, Opcode.MUL,
                                      Opcode.ST]


class TestSemanticsAndEffect:
    def test_matmul_semantics_preserved(self):
        kernel = schedule_loads_early(build_tiled_matmul(n=32))
        validate(kernel)
        result, reference = run_matmul_kernel(kernel, 32)
        np.testing.assert_allclose(result, reference, rtol=1e-4, atol=1e-4)

    def test_scheduling_never_slows_a_load_use_kernel(self):
        b = builder()
        x = b.param_ptr("x", F32)
        filler = b.add(1.0, 2.0)
        for _ in range(20):
            filler = b.mad(filler, 1.0001, 0.5)
        value = b.ld(x, TID_X)
        b.st(x, TID_X, b.add(value, filler))
        kernel = b.finish()
        baseline = simulate_kernel(kernel).cycles
        scheduled = simulate_kernel(schedule_loads_early(kernel)).cycles
        assert scheduled <= baseline

    def test_idempotent(self):
        from repro.ptx import emit_ptx

        once = schedule_loads_early(build_tiled_matmul())
        twice = schedule_loads_early(once)
        assert emit_ptx(once) == emit_ptx(twice)
