"""Global-load prefetching (Figure 2(d))."""

import numpy as np
import pytest

from repro.ir import Opcode, validate
from repro.ir.statements import ForLoop, Instruction, instructions
from repro.ptx import count_regions, profile_kernel
from repro.transforms import (
    COMPLETE,
    PrefetchError,
    prefetch_global_loads,
    standard_cleanup,
    unroll,
)
from tests.conftest import build_saxpy, build_tiled_matmul, run_matmul_kernel


def tile_loop(kernel):
    return next(s for s in kernel.body if isinstance(s, ForLoop))


class TestStructure:
    def test_prologue_loads_created(self):
        kernel = prefetch_global_loads(build_tiled_matmul(), label="ktile")
        validate(kernel)
        prologue = [
            s for s in kernel.body
            if isinstance(s, Instruction) and s.opcode is Opcode.LD
        ]
        assert len(prologue) == 2        # A and B tiles

    def test_loads_move_after_barrier(self):
        kernel = prefetch_global_loads(build_tiled_matmul(), label="ktile")
        body = tile_loop(kernel).body
        first_bar = next(
            i for i, s in enumerate(body)
            if isinstance(s, Instruction) and s.opcode is Opcode.BAR
        )
        load_positions = [
            i for i, s in enumerate(body)
            if isinstance(s, Instruction) and s.opcode is Opcode.LD
            and s.is_global_access
        ]
        assert all(position > first_bar for position in load_positions)

    def test_load_count_preserved_inside_loop(self):
        base_loads = sum(
            1 for i in instructions(tile_loop(build_tiled_matmul()).body)
            if i.opcode is Opcode.LD and i.is_global_access
        )
        kernel = prefetch_global_loads(build_tiled_matmul(), label="ktile")
        prefetched_loads = sum(
            1 for i in instructions(tile_loop(kernel).body)
            if i.opcode is Opcode.LD and i.is_global_access
        )
        assert prefetched_loads == base_loads

    def test_regions_gain_only_prologue_unit(self):
        base = count_regions(build_tiled_matmul())
        prefetched = count_regions(
            prefetch_global_loads(build_tiled_matmul(), label="ktile")
        )
        assert prefetched == base + 1


class TestSemantics:
    def test_matmul_results_unchanged(self):
        kernel = standard_cleanup(
            prefetch_global_loads(build_tiled_matmul(n=32), label="ktile")
        )
        validate(kernel)
        result, reference = run_matmul_kernel(kernel, 32)
        np.testing.assert_allclose(result, reference, rtol=1e-4, atol=1e-4)

    def test_composes_with_unrolling(self):
        kernel = standard_cleanup(prefetch_global_loads(
            unroll(build_tiled_matmul(n=32), COMPLETE, label="inner"),
            label="ktile",
        ))
        validate(kernel)
        result, reference = run_matmul_kernel(kernel, 32)
        np.testing.assert_allclose(result, reference, rtol=1e-4, atol=1e-4)


class TestRegisterCost:
    def test_prefetching_increases_register_usage(self):
        from repro.cubin import cubin_info

        base = cubin_info(build_tiled_matmul()).registers_per_thread
        prefetched = cubin_info(
            prefetch_global_loads(build_tiled_matmul(), label="ktile")
        ).registers_per_thread
        assert prefetched > base


class TestErrors:
    def test_missing_label(self):
        with pytest.raises(PrefetchError, match="no loop labelled"):
            prefetch_global_loads(build_tiled_matmul(), label="nonexistent")

    def test_pattern_mismatch_reported(self):
        # saxpy has no loop at all, but targeting a kernel whose loop
        # has no barrier must fail cleanly too.
        from repro.ir import DataType, Dim3, KernelBuilder
        from repro.ir.builder import TID_X

        builder = KernelBuilder("nobar", block_dim=Dim3(32), grid_dim=Dim3(1))
        x = builder.param_ptr("x", DataType.F32)
        acc = builder.mov(0.0)
        with builder.loop(0, 4, label="plain"):
            value = builder.ld(x, TID_X)
            builder.add(acc, value, dest=acc)
        builder.st(x, TID_X, acc)
        with pytest.raises(PrefetchError, match="does not match"):
            prefetch_global_loads(builder.finish(), label="plain")

    def test_unlabelled_mode_leaves_nonmatching_loops(self):
        kernel = prefetch_global_loads(build_saxpy())
        validate(kernel)
        assert profile_kernel(kernel).instructions == 5
