"""Strength reduction."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import DataType, Dim3, KernelBuilder, Opcode
from repro.ir.builder import TID_X
from repro.ir.statements import instructions
from repro.transforms import reduce_strength

S32 = DataType.S32
U32 = DataType.U32


def builder():
    return KernelBuilder("k", block_dim=Dim3(16), grid_dim=Dim3(1))


def opcodes(kernel):
    return [i.opcode for i in instructions(kernel.body)]


class TestRewrites:
    def test_mul_by_power_of_two_becomes_shift(self):
        b = builder()
        out = b.param_ptr("out", S32)
        b.st(out, TID_X, b.mul(TID_X, 8))
        kernel = reduce_strength(b.finish())
        assert Opcode.SHL in opcodes(kernel)
        assert Opcode.MUL not in opcodes(kernel)

    def test_mul_commuted_operand(self):
        b = builder()
        out = b.param_ptr("out", S32)
        value = b.mov(TID_X, dtype=S32)
        b.st(out, TID_X, b.mul(16, value))
        kernel = reduce_strength(b.finish())
        assert Opcode.SHL in opcodes(kernel)

    def test_non_power_untouched(self):
        b = builder()
        out = b.param_ptr("out", S32)
        b.st(out, TID_X, b.mul(TID_X, 6))
        kernel = reduce_strength(b.finish())
        assert Opcode.MUL in opcodes(kernel)

    def test_float_untouched(self):
        b = builder()
        out = b.param_ptr("out", DataType.F32)
        b.st(out, TID_X, b.mul(2.0, 4.0))
        kernel = reduce_strength(b.finish())
        assert Opcode.MUL in opcodes(kernel)

    def test_unsigned_div_rem(self):
        b = builder()
        out = b.param_ptr("out", U32)
        value = b.cvt(TID_X, U32)
        b.st(out, TID_X, b.div(value, b.mov(32, dtype=U32)))
        b.st(out, TID_X, b.rem(value, b.mov(32, dtype=U32)))
        # Feed immediates directly for the rewrite to see them.
        from repro.ir import Immediate, Instruction

        b2 = builder()
        out2 = b2.param_ptr("out", U32)
        v = b2.cvt(TID_X, U32)
        q = b2.fresh(U32)
        r = b2.fresh(U32)
        b2._emit(Instruction(Opcode.DIV, dest=q, srcs=(v, Immediate(32, U32))))
        b2._emit(Instruction(Opcode.REM, dest=r, srcs=(v, Immediate(32, U32))))
        b2.st(out2, TID_X, b2.add(q, r))
        kernel = reduce_strength(b2.finish())
        ops = opcodes(kernel)
        assert Opcode.SHR in ops
        assert Opcode.AND in ops
        assert Opcode.DIV not in ops

    def test_signed_div_untouched(self):
        # Truncating signed division differs from an arithmetic shift
        # for negative dividends; the pass must leave it alone.
        b = builder()
        out = b.param_ptr("out", S32)
        b.st(out, TID_X, b.div(b.sub(TID_X, 8), 4))
        kernel = reduce_strength(b.finish())
        assert Opcode.DIV in opcodes(kernel)


class TestSemantics:
    @given(st.integers(min_value=0, max_value=2 ** 20),
           st.sampled_from([2, 4, 8, 16, 32, 64]))
    def test_shift_equivalence(self, value, factor):
        from repro.ir.semantics import eval_op

        shift = factor.bit_length() - 1
        assert eval_op(Opcode.MUL, S32, (value, factor)) == eval_op(
            Opcode.SHL, S32, (value, shift)
        )
        assert eval_op(Opcode.DIV, U32, (value, factor)) == eval_op(
            Opcode.SHR, U32, (value, shift)
        )
        assert eval_op(Opcode.REM, U32, (value, factor)) == eval_op(
            Opcode.AND, U32, (value, factor - 1)
        )

    def test_kernel_results_unchanged(self):
        from repro.interp import launch

        b = builder()
        out = b.param_ptr("out", S32)
        b.st(out, TID_X, b.mul(b.mad(TID_X, 4, 3), 8))
        original = b.finish()
        reduced = reduce_strength(original)
        first = np.zeros(16, dtype=np.int32)
        second = np.zeros(16, dtype=np.int32)
        launch(original, {"out": first})
        launch(reduced, {"out": second})
        np.testing.assert_array_equal(first, second)
