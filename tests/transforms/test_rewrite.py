"""Cloning, substitution and def/use bookkeeping."""

import pytest

from repro.ir import (
    DataType,
    Dim3,
    Instruction,
    KernelBuilder,
    Opcode,
    VirtualRegister,
    imm,
)
from repro.ir.builder import TID_X
from repro.transforms import (
    clone_body,
    clone_kernel,
    collect_defs,
    collect_uses,
    rewrite_instruction,
    substitute_value,
)
from repro.transforms.rewrite import FreshNames, registers_read_before_write
from tests.conftest import build_tiled_matmul

F32 = DataType.F32
S32 = DataType.S32


class TestSubstitution:
    def test_substitute_register(self):
        a = VirtualRegister("a", F32)
        b = VirtualRegister("b", F32)
        assert substitute_value(a, {a: b}) == b
        assert substitute_value(a, {}) == a
        assert substitute_value(imm(1), {a: b}) == imm(1)

    def test_rewrite_instruction_remaps_everything(self):
        a, b, c = (VirtualRegister(n, F32) for n in "abc")
        instr = Instruction(Opcode.ADD, dest=c, srcs=(a, b))
        new_a = VirtualRegister("a2", F32)
        new_c = VirtualRegister("c2", F32)
        rewritten = rewrite_instruction(instr, {a: new_a, c: new_c})
        assert rewritten.dest == new_c
        assert rewritten.srcs == (new_a, b)

    def test_rewrite_dest_to_non_register_rejected(self):
        a = VirtualRegister("a", F32)
        instr = Instruction(Opcode.MOV, dest=a, srcs=(imm(1.0),))
        with pytest.raises(TypeError):
            rewrite_instruction(instr, {a: imm(2.0)})

    def test_rewrite_memory_index(self):
        from repro.ir import MemRef, Param

        pointer = Param("x", F32, is_pointer=True)
        i = VirtualRegister("i", S32)
        j = VirtualRegister("j", S32)
        v = VirtualRegister("v", F32)
        load = Instruction(Opcode.LD, dest=v, mem=MemRef(pointer, i, offset=3))
        rewritten = rewrite_instruction(load, {i: j})
        assert rewritten.mem.index == j
        assert rewritten.mem.offset == 3


class TestCloning:
    def test_clone_is_deep(self):
        kernel = build_tiled_matmul()
        clone = clone_kernel(kernel)
        assert clone.body is not kernel.body
        assert clone.body[0] is not kernel.body[0] or True
        # Mutating the clone's loop body leaves the original intact.
        from repro.ir.statements import ForLoop

        original_loop = next(s for s in kernel.body if isinstance(s, ForLoop))
        cloned_loop = next(s for s in clone.body if isinstance(s, ForLoop))
        cloned_loop.body.clear()
        assert original_loop.body

    def test_clone_preserves_labels_and_trips(self):
        from repro.ir.statements import ForLoop

        kernel = build_tiled_matmul()
        clone = clone_kernel(kernel)
        loops = [s for s in clone.body if isinstance(s, ForLoop)]
        assert loops[0].label == "ktile"
        assert loops[0].trip_count == 2

    def test_clone_body_with_mapping(self):
        builder = KernelBuilder("k", block_dim=Dim3(32), grid_dim=Dim3(1))
        x = builder.param_ptr("x", F32)
        value = builder.ld(x, TID_X)
        builder.st(x, TID_X, value)
        kernel = builder.finish()
        renamed = VirtualRegister("renamed", F32)
        cloned = clone_body(kernel.body, {value: renamed})
        assert cloned[0].dest == renamed
        assert cloned[1].srcs[0] == renamed


class TestDefUse:
    def test_counts(self):
        kernel = build_tiled_matmul()
        defs = collect_defs(kernel.body)
        uses = collect_uses(kernel.body)
        # The accumulator is defined by its mov and by the in-loop mad.
        accumulator = next(r for r, n in defs.items() if n == 2)
        assert uses[accumulator] >= 2

    def test_loop_counter_counted_as_def(self):
        builder = KernelBuilder("k", block_dim=Dim3(32), grid_dim=Dim3(1))
        with builder.loop(0, 4) as i:
            builder.add(i, 1)
        defs = collect_defs(builder.finish().body)
        assert defs[i] == 1

    def test_read_before_write_detects_accumulators(self):
        builder = KernelBuilder("k", block_dim=Dim3(32), grid_dim=Dim3(1))
        acc = builder.mov(0.0)
        with builder.loop(0, 4):
            builder.add(acc, 1.0, dest=acc)
            temp = builder.mul(acc, 2.0)
        kernel = builder.finish()
        from repro.ir.statements import ForLoop

        loop = next(s for s in kernel.body if isinstance(s, ForLoop))
        carried = registers_read_before_write(loop.body)
        assert acc in carried
        assert temp not in carried


class TestFreshNames:
    def test_unique_across_calls(self):
        names = FreshNames("u")
        base = VirtualRegister("x", F32)
        first = names.register(base)
        second = names.register(base)
        assert first != second
        assert first.dtype is F32
