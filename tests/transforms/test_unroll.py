"""Loop unrolling: structure and semantics."""

import numpy as np
import pytest

from repro.ir import DataType, Dim3, KernelBuilder, validate
from repro.ir.builder import TID_X
from repro.ir.statements import ForLoop
from repro.ptx import count_instructions
from repro.transforms import COMPLETE, UnrollError, standard_cleanup, unroll
from tests.conftest import build_tiled_matmul, run_matmul_kernel

F32 = DataType.F32


def loops_in(kernel):
    from repro.ir.statements import walk

    return [s for s in walk(kernel.body) if isinstance(s, ForLoop)]


def accumulate_kernel(trips=8, step=1):
    """out[tid] = sum of (tid + i) over the loop."""
    builder = KernelBuilder("acc", block_dim=Dim3(16), grid_dim=Dim3(1))
    out = builder.param_ptr("out", DataType.S32)
    total = builder.mov(0, dtype=DataType.S32)
    with builder.loop(0, trips * step, step=step, label="main") as i:
        term = builder.add(TID_X, i)
        builder.add(total, term, dest=total)
    builder.st(out, TID_X, total)
    return builder.finish()


def run_accumulate(kernel, trips=8, step=1):
    from repro.interp import launch

    out = np.zeros(16, dtype=np.int32)
    launch(kernel, {"out": out})
    expected = np.array(
        [sum(t + i for i in range(0, trips * step, step)) for t in range(16)],
        dtype=np.int32,
    )
    np.testing.assert_array_equal(out, expected)


class TestCompleteUnroll:
    def test_loop_disappears(self):
        kernel = unroll(accumulate_kernel(), COMPLETE)
        assert not loops_in(kernel)
        validate(kernel)

    def test_semantics_preserved(self):
        run_accumulate(unroll(accumulate_kernel(), COMPLETE))

    def test_counter_becomes_immediates(self):
        from repro.ir import Immediate
        from repro.ir.statements import instructions

        kernel = unroll(accumulate_kernel(trips=3), COMPLETE)
        adds = [i for i in instructions(kernel.body) if i.opcode.value == "add"]
        immediates = [
            s.value for instr in adds for s in instr.srcs
            if isinstance(s, Immediate)
        ]
        assert set(immediates) >= {0, 1, 2}

    def test_strided_loop(self):
        kernel = unroll(accumulate_kernel(trips=4, step=3), COMPLETE)
        run_accumulate(kernel, trips=4, step=3)

    def test_factor_at_least_trips_is_complete(self):
        kernel = unroll(accumulate_kernel(trips=4), 16)
        assert not loops_in(kernel)
        run_accumulate(kernel, trips=4)


class TestPartialUnroll:
    def test_divisible_factor(self):
        kernel = unroll(accumulate_kernel(trips=8), 4, label="main")
        loops = loops_in(kernel)
        assert len(loops) == 1
        assert loops[0].trip_count == 2
        run_accumulate(kernel)

    def test_remainder_is_peeled(self):
        kernel = unroll(accumulate_kernel(trips=10), 4, label="main")
        loops = loops_in(kernel)
        assert len(loops) == 1
        assert loops[0].trip_count == 2   # 8 of 10 trips in the main loop
        run_accumulate(kernel, trips=10)

    def test_factor_one_is_identity(self):
        kernel = unroll(accumulate_kernel(), 1)
        assert loops_in(kernel)[0].trip_count == 8
        run_accumulate(kernel)

    def test_reduces_dynamic_instructions(self):
        base, _ = count_instructions(accumulate_kernel(trips=16))
        unrolled, _ = count_instructions(unroll(accumulate_kernel(trips=16), 4))
        assert unrolled < base


class TestTargeting:
    def test_label_selects_loop(self):
        kernel = build_tiled_matmul()
        unrolled = unroll(kernel, COMPLETE, label="inner")
        remaining = loops_in(unrolled)
        assert len(remaining) == 1
        assert remaining[0].label == "ktile"

    def test_default_targets_innermost(self):
        kernel = build_tiled_matmul()
        unrolled = unroll(kernel, COMPLETE)
        remaining = loops_in(unrolled)
        assert [l.label for l in remaining] == ["ktile"]


class TestMatmulSemantics:
    @pytest.mark.parametrize("factor", [2, 4, COMPLETE])
    def test_unrolled_matmul_correct(self, factor):
        kernel = standard_cleanup(
            unroll(build_tiled_matmul(n=32), factor, label="inner")
        )
        validate(kernel)
        result, reference = run_matmul_kernel(kernel, 32)
        np.testing.assert_allclose(result, reference, rtol=1e-4, atol=1e-4)


class TestErrors:
    def test_bad_factor(self):
        with pytest.raises(UnrollError):
            unroll(accumulate_kernel(), 0)
        with pytest.raises(UnrollError):
            unroll(accumulate_kernel(), "frobnicate")

    def test_dynamic_bounds_rejected(self):
        builder = KernelBuilder("dyn", block_dim=Dim3(16), grid_dim=Dim3(1))
        out = builder.param_ptr("out", DataType.S32)
        n = builder.param_scalar("n", DataType.S32)
        bound = builder.mov(n, dtype=DataType.S32)
        total = builder.mov(0, dtype=DataType.S32)
        with builder.loop(0, bound, trip_count=8, label="dynloop"):
            builder.add(total, 1, dest=total)
        builder.st(out, TID_X, total)
        with pytest.raises(UnrollError, match="dynamic bounds"):
            unroll(builder.finish(), 2, label="dynloop")
