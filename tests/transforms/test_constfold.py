"""Constant folding, propagation, algebraic identities, address folding."""

import numpy as np
import pytest

from repro.ir import DataType, Dim3, Immediate, KernelBuilder, Opcode, validate
from repro.ir.builder import TID_X
from repro.ir.statements import instructions
from repro.transforms import constant_fold, eliminate_dead_code

F32 = DataType.F32
S32 = DataType.S32


def builder():
    return KernelBuilder("k", block_dim=Dim3(16), grid_dim=Dim3(1))


def ops(kernel):
    return [i.opcode for i in instructions(kernel.body)]


def fold(kernel):
    return eliminate_dead_code(constant_fold(kernel))


class TestEvaluation:
    def test_all_immediate_operands_evaluate(self):
        b = builder()
        out = b.param_ptr("out", S32)
        value = b.add(2, 3)
        b.st(out, TID_X, value)
        kernel = fold(b.finish())
        store = list(instructions(kernel.body))[-1]
        assert store.srcs[0] == Immediate(5, S32)
        assert ops(kernel) == [Opcode.ST]

    def test_chains_collapse(self):
        b = builder()
        out = b.param_ptr("out", S32)
        a = b.add(2, 3)
        c = b.mul(a, 4)
        d = b.sub(c, 6)
        b.st(out, TID_X, d)
        kernel = fold(b.finish())
        assert ops(kernel) == [Opcode.ST]
        assert list(instructions(kernel.body))[0].srcs[0].value == 14

    def test_predicate_folding_selects_branch(self):
        from repro.ir import CmpOp

        b = builder()
        out = b.param_ptr("out", S32)
        pred = b.setp(CmpOp.LT, 1, 2)
        with b.if_(pred) as branch:
            b.st(out, TID_X, 111)
        with branch.orelse():
            b.st(out, TID_X, 222)
        kernel = fold(b.finish())
        stores = list(instructions(kernel.body))
        assert len(stores) == 1
        assert stores[0].srcs[0].value == 111


class TestAlgebraicIdentities:
    @pytest.mark.parametrize("build_value, expected_ops", [
        (lambda b: b.add(TID_X, 0), [Opcode.ST]),
        (lambda b: b.mul(TID_X, 1), [Opcode.ST]),
        (lambda b: b.sub(TID_X, 0), [Opcode.ST]),
        (lambda b: b.shl(TID_X, 0), [Opcode.ST]),
    ])
    def test_identity_ops_vanish(self, build_value, expected_ops):
        b = builder()
        out = b.param_ptr("out", S32)
        b.st(out, TID_X, build_value(b))
        assert ops(fold(b.finish())) == expected_ops

    def test_multiply_by_zero(self):
        b = builder()
        out = b.param_ptr("out", S32)
        b.st(out, TID_X, b.mul(TID_X, 0))
        kernel = fold(b.finish())
        assert list(instructions(kernel.body))[0].srcs[0].value == 0

    def test_mad_with_immediate_product_becomes_add(self):
        b = builder()
        out = b.param_ptr("out", S32)
        b.st(out, TID_X, b.mad(3, 4, TID_X))
        kernel = fold(b.finish())
        remaining = [i for i in instructions(kernel.body) if i.opcode is Opcode.ADD]
        assert len(remaining) == 1
        assert Immediate(12, S32) in remaining[0].srcs

    def test_mov_copy_propagates(self):
        b = builder()
        out = b.param_ptr("out", S32)
        copy = b.mov(TID_X)
        b.st(out, TID_X, copy)
        kernel = fold(b.finish())
        assert ops(kernel) == [Opcode.ST]


class TestAddressFolding:
    def test_add_immediate_folds_into_offset(self):
        b = builder()
        data = b.param_ptr("data", F32)
        shifted = b.add(TID_X, 5)
        value = b.ld(data, shifted)
        b.st(data, shifted, value)
        kernel = fold(b.finish())
        load = next(i for i in instructions(kernel.body) if i.opcode is Opcode.LD)
        assert load.mem.offset == 5
        assert str(load.mem.index) == "%tid.x"
        # The add itself became dead and was swept.
        assert Opcode.ADD not in ops(kernel)

    def test_chained_adds_fold(self):
        b = builder()
        data = b.param_ptr("data", F32)
        first = b.add(TID_X, 3)
        second = b.add(first, 4)
        b.st(data, second, b.mov(1.0))
        kernel = fold(b.finish())
        store = next(i for i in instructions(kernel.body) if i.opcode is Opcode.ST)
        assert store.mem.offset == 7

    def test_multi_def_base_not_folded_across_redefinition(self):
        """The unsoundness trap: base is redefined between add and use."""
        b = builder()
        data = b.param_ptr("data", S32)
        index = b.mov(TID_X, dtype=S32)
        shifted = b.add(index, 1)
        b.add(index, 100, dest=index)       # index changes!
        b.st(data, shifted, 7)
        kernel = fold(b.finish())
        validate(kernel)
        from repro.interp import launch

        out = np.zeros(128, dtype=np.int32)
        launch(kernel, {"data": out})
        # Thread t must store at t+1, not t+101.
        assert out[1] == 7
        assert out[101] == 0 or out[101] == 7  # 101 written only by thread 100

    def test_counter_chain_not_folded_outside_loop(self):
        """Adds on the loop counter must not leak past the loop."""
        b = builder()
        data = b.param_ptr("data", S32)
        last = b.mov(0, dtype=S32)
        with b.loop(0, 4) as i:
            shifted = b.add(i, 10)
            b.mov(shifted, dest=last)
        b.st(data, last, 9)     # index = 3 + 10 = 13 (last iteration)
        kernel = fold(b.finish())
        from repro.interp import launch

        out = np.zeros(64, dtype=np.int32)
        launch(kernel, {"data": out})
        assert out[13] == 9


class TestLoopSemantics:
    def test_folding_inside_loops_is_sound(self):
        b = builder()
        data = b.param_ptr("data", S32)
        total = b.mov(0, dtype=S32)
        with b.loop(0, 4) as i:
            doubled = b.mul(i, 2)
            b.add(total, doubled, dest=total)
        b.st(data, TID_X, total)
        kernel = fold(b.finish())
        from repro.interp import launch

        out = np.zeros(16, dtype=np.int32)
        launch(kernel, {"data": out})
        np.testing.assert_array_equal(out, np.full(16, 12, dtype=np.int32))
