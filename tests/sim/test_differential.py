"""Differential tests: optimized SM replay versus the reference loop.

The optimized engine (:mod:`repro.sim.sm`) earns its speed from a
stack of rewrites — loop-compressed segment walking, a FIFO/heap
scheduler split, inlined DRAM arithmetic, steady-state wave
extrapolation.  Each rewrite preserved semantics by construction;
these tests enforce it empirically against the deliberately simple
:func:`~repro.sim.reference.simulate_sm_reference` oracle.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import WarpTrace, simulate_sm
from repro.sim.config import DEFAULT_SIM_CONFIG
from repro.sim.reference import simulate_sm_reference
from repro.sim.trace import BARRIER, COMPUTE, LOAD, SFU, STORE, USE, build_trace

CORE_FIELDS = (
    "cycles",
    "blocks_completed",
    "issue_busy_cycles",
    "dram_bytes",
    "dram_busy_cycles",
)


def assert_identical(optimized, reference):
    for field in CORE_FIELDS:
        assert getattr(optimized, field) == getattr(reference, field), field


@st.composite
def event_lists(draw, allow_barriers=True):
    """A random but well-formed warp event stream (new encoding)."""
    events = []
    pending = []
    next_slot = 0
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        choices = ["compute", "load", "store", "sfu"]
        if allow_barriers:
            choices.append("barrier")
        if pending:
            choices.append("use")
        kind = draw(st.sampled_from(choices))
        if kind == "compute":
            events.append((COMPUTE, draw(st.integers(1, 20)), 0))
        elif kind == "load":
            # 1024-byte loads model uncoalesced traffic (128 x 8).
            bytes_ = draw(st.sampled_from([0.0, 128.0, 1024.0]))
            latency = 120.0 if bytes_ == 0.0 else 250.0
            events.append((LOAD, next_slot, (bytes_, latency)))
            pending.append(next_slot)
            next_slot += 1
        elif kind == "use":
            slot = draw(st.sampled_from(pending))
            pending.remove(slot)
            events.append((USE, slot, 0))
        elif kind == "store":
            events.append((STORE, 0, draw(st.sampled_from([128.0, 512.0]))))
        elif kind == "sfu":
            events.append((SFU, next_slot, 0))
            pending.append(next_slot)
            next_slot += 1
        else:
            events.append((BARRIER, 0, 0))
    return events


def trace_from(events):
    issue_slots = sum(e[1] for e in events if e[0] == COMPUTE)
    dram = sum(e[2][0] for e in events if e[0] == LOAD)
    dram += sum(e[2] for e in events if e[0] == STORE)
    return WarpTrace.from_events(events, issue_slots=issue_slots,
                                 dram_bytes=dram)


class TestRandomTraces:
    @settings(max_examples=120, deadline=None)
    @given(
        event_lists(),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=8),
    )
    def test_exact_mode_identical(self, events, warps, resident, blocks):
        trace = trace_from(events)
        optimized = simulate_sm(trace, warps_per_block=warps,
                                blocks_resident=resident, total_blocks=blocks,
                                config=DEFAULT_SIM_CONFIG)
        reference = simulate_sm_reference(trace, warps_per_block=warps,
                                          blocks_resident=resident,
                                          total_blocks=blocks,
                                          config=DEFAULT_SIM_CONFIG)
        assert_identical(optimized, reference)

    @settings(max_examples=60, deadline=None)
    @given(
        event_lists(allow_barriers=False),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=4),
    )
    def test_compressed_repeats_identical(self, body, repeats, warps):
        """Segment repetition must replay exactly like the flat stream.

        The compressed trace walks one stored copy of ``body`` with a
        repeat count; the reference consumes the fully materialized
        stream.  Scoreboard slots carry across iterations exactly as
        the flat replay's do because slot ids are stable.
        """
        flat = body * repeats
        issue_slots = sum(e[1] for e in flat if e[0] == COMPUTE)
        dram = sum(e[2][0] for e in flat if e[0] == LOAD)
        dram += sum(e[2] for e in flat if e[0] == STORE)
        compressed = WarpTrace(
            segments=(tuple(body),),
            program=((0, repeats),),
            issue_slots=issue_slots,
            dram_bytes=dram,
        )
        assert list(compressed.events) == flat
        optimized = simulate_sm(compressed, warps_per_block=warps,
                                blocks_resident=2, total_blocks=3,
                                config=DEFAULT_SIM_CONFIG)
        reference = simulate_sm_reference(compressed, warps_per_block=warps,
                                          blocks_resident=2, total_blocks=3,
                                          config=DEFAULT_SIM_CONFIG)
        assert_identical(optimized, reference)


class TestAppKernels:
    """Real compressed traces (loops, barriers, SFU, uncoalesced loads)."""

    def _check(self, app, configs):
        for config in configs:
            kernel = app.kernel(config)
            sim_config = app.sim_config(config)
            trace = build_trace(kernel, sim_config)
            resources = app.evaluate(config).resources
            occupancy = resources.occupancy(sim_config.device)
            blocks = occupancy.blocks_per_sm * 2
            optimized = simulate_sm(
                trace, warps_per_block=occupancy.warps_per_block,
                blocks_resident=occupancy.blocks_per_sm,
                total_blocks=blocks, config=sim_config)
            reference = simulate_sm_reference(
                trace, warps_per_block=occupancy.warps_per_block,
                blocks_resident=occupancy.blocks_per_sm,
                total_blocks=blocks, config=sim_config)
            assert_identical(optimized, reference)

    def test_matmul(self):
        from repro.apps.matmul import MatMul

        app = MatMul().test_instance()
        configs = [c for c in app.space()][::7][:8]
        self._check(app, configs)

    def test_mri_fhd(self):
        from repro.apps.mri_fhd import MriFhd

        app = MriFhd().test_instance()
        configs = [c for c in app.space()][::11][:6]
        self._check(app, configs)


class TestWaveConvergence:
    def _long_trace(self):
        events = [
            (LOAD, 0, (256.0, 250.0)),
            (COMPUTE, 12, 0),
            (USE, 0, 0),
            (BARRIER, 0, 0),
            (COMPUTE, 8, 0),
            (STORE, 0, 128.0),
        ]
        return trace_from(events)

    def test_convergence_matches_exact_within_tolerance(self):
        """Extrapolated long runs stay within 0.5% of the exact replay.

        The trace is bandwidth-involved, so convergence must wait out
        the DRAM burst-window transient (the backlog-stability half of
        the predicate); the converged rate then matches the sustained
        steady state and extrapolation is essentially exact.
        """
        trace = self._long_trace()
        kwargs = dict(warps_per_block=4, blocks_resident=2, total_blocks=100)
        exact = simulate_sm(trace, config=DEFAULT_SIM_CONFIG, **kwargs)
        converged_config = dataclasses.replace(
            DEFAULT_SIM_CONFIG, wave_convergence_rtol=1e-6
        )
        approx = simulate_sm(trace, config=converged_config, **kwargs)
        assert approx.blocks_completed == exact.blocks_completed == 100
        assert approx.waves_extrapolated > 0.0
        error = abs(approx.cycles - exact.cycles) / exact.cycles
        assert error < 0.005
        # Cheaper by construction: far fewer events actually replayed.
        assert approx.events_replayed < exact.events_replayed

    def test_exact_mode_never_extrapolates(self):
        trace = self._long_trace()
        result = simulate_sm(trace, warps_per_block=4, blocks_resident=2,
                             total_blocks=40, config=DEFAULT_SIM_CONFIG)
        assert result.waves_extrapolated == 0.0
        assert result.waves_simulated == 20
