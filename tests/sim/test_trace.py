"""Warp trace construction."""

from repro.sim import BARRIER, COMPUTE, LOAD, SFU, STORE, USE, build_trace
from repro.sim.config import DEFAULT_SIM_CONFIG
from repro.ir import DataType, Dim3, KernelBuilder
from repro.ir.builder import TID_X
from tests.conftest import build_saxpy, build_tiled_matmul

F32 = DataType.F32


def kinds(trace):
    return [event[0] for event in trace.events]


class TestSaxpyTrace:
    def test_event_sequence(self):
        trace = build_trace(build_saxpy())
        # mad; ld x; ld y; use both at the mad; st.
        assert kinds(trace) == [COMPUTE, LOAD, LOAD, USE, USE, COMPUTE, STORE]

    def test_issue_slots_count_instructions(self):
        trace = build_trace(build_saxpy())
        assert trace.issue_slots == 5

    def test_bytes_per_warp(self):
        trace = build_trace(build_saxpy())
        # 2 loads + 1 store of 4B over 32 lanes.
        assert trace.dram_bytes == 3 * 32 * 4


class TestScoreboarding:
    def test_use_emitted_at_first_read(self):
        builder = KernelBuilder("pf", block_dim=Dim3(32), grid_dim=Dim3(1))
        x = builder.param_ptr("x", F32)
        value = builder.ld(x, TID_X)
        builder.add(1.0, 2.0)            # independent work
        builder.add(3.0, 4.0)
        builder.st(x, TID_X, value)      # first read of the load
        trace = build_trace(builder.finish())
        assert kinds(trace) == [LOAD, COMPUTE, USE, STORE]
        compute = trace.events[1]
        assert compute[1] == 2           # both adds batched

    def test_sfu_results_scoreboarded(self):
        builder = KernelBuilder("sfu", block_dim=Dim3(32), grid_dim=Dim3(1))
        x = builder.param_ptr("x", F32)
        value = builder.rsqrt(4.0)
        builder.st(x, TID_X, value)
        trace = build_trace(builder.finish())
        assert kinds(trace) == [SFU, USE, STORE]


class TestCoalescing:
    def test_uncoalesced_loads_inflate_traffic(self):
        def traced(coalesced):
            builder = KernelBuilder("c", block_dim=Dim3(32), grid_dim=Dim3(1))
            x = builder.param_ptr("x", F32)
            value = builder.ld(x, TID_X, coalesced=coalesced)
            builder.st(x, TID_X, value)
            return build_trace(builder.finish())

        factor = DEFAULT_SIM_CONFIG.uncoalesced_traffic_factor
        coalesced_load = traced(True).events[0]
        uncoalesced_load = traced(False).events[0]
        assert uncoalesced_load[2][0] == coalesced_load[2][0] * factor


class TestSpaces:
    def test_texture_loads_have_latency_but_no_dram_bytes(self):
        from repro.arch import MemorySpace

        builder = KernelBuilder("tex", block_dim=Dim3(32), grid_dim=Dim3(1))
        frame = builder.param_ptr("frame", DataType.S32,
                                  space=MemorySpace.TEXTURE)
        out = builder.param_ptr("out", DataType.S32)
        value = builder.ld(frame, TID_X)
        builder.st(out, TID_X, value)
        trace = build_trace(builder.finish())
        load = trace.events[0]
        assert load[0] == LOAD
        assert load[2][0] == 0.0
        assert load[2][1] == DEFAULT_SIM_CONFIG.texture_latency_cycles
        assert trace.dram_bytes == 32 * 4     # the store only

    def test_constant_loads_fold_into_compute(self):
        from repro.arch import MemorySpace

        builder = KernelBuilder("const", block_dim=Dim3(32), grid_dim=Dim3(1))
        lut = builder.param_ptr("lut", F32, space=MemorySpace.CONSTANT)
        out = builder.param_ptr("out", F32)
        value = builder.ld(lut, TID_X)
        builder.st(out, TID_X, value)
        trace = build_trace(builder.finish())
        assert kinds(trace) == [COMPUTE, STORE]

    def test_shared_bank_conflicts_cost_extra_slots(self):
        import dataclasses

        builder = KernelBuilder("bank", block_dim=Dim3(32), grid_dim=Dim3(1))
        staging = builder.shared("staging", F32, (32,))
        out = builder.param_ptr("out", F32)
        builder.st(staging, TID_X, 1.0)
        value = builder.ld(staging, TID_X)
        builder.st(out, TID_X, value)
        kernel = builder.finish()
        conflicted = dataclasses.replace(
            DEFAULT_SIM_CONFIG, shared_bank_conflict_ways=16
        )
        base = build_trace(kernel)
        slow = build_trace(kernel, conflicted)
        # Two shared accesses, each replayed 16x instead of 1x.
        assert slow.events[0][1] == base.events[0][1] + 2 * 15

    def test_constant_conflicts_cost_extra_slots(self):
        import dataclasses

        from repro.arch import MemorySpace

        builder = KernelBuilder("conf", block_dim=Dim3(32), grid_dim=Dim3(1))
        lut = builder.param_ptr("lut", F32, space=MemorySpace.CONSTANT)
        out = builder.param_ptr("out", F32)
        value = builder.ld(lut, TID_X)
        builder.st(out, TID_X, value)
        kernel = builder.finish()
        conflicted = dataclasses.replace(
            DEFAULT_SIM_CONFIG, constant_conflict_ways=4
        )
        base = build_trace(kernel)
        slow = build_trace(kernel, conflicted)
        assert slow.events[0][1] == base.events[0][1] + 3


class TestBarriersAndLoops:
    def test_matmul_trace_structure(self):
        trace = build_trace(build_tiled_matmul())
        sequence = kinds(trace)
        assert sequence.count(BARRIER) == 4      # 2 per iteration x 2 trips
        assert sequence.count(LOAD) == 4         # 2 per iteration
        assert sequence[-1] == STORE

    def test_partial_warp_charged_as_full(self):
        builder = KernelBuilder("tiny", block_dim=Dim3(8), grid_dim=Dim3(1))
        x = builder.param_ptr("x", F32)
        value = builder.ld(x, TID_X)
        builder.st(x, TID_X, value)
        trace = build_trace(builder.finish())
        assert trace.events[0][2][0] == 8 * 4    # 8 active lanes
