"""Property tests on the SM simulator: invariants over random traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import WarpTrace, simulate_sm
from repro.sim.config import DEFAULT_SIM_CONFIG
from repro.sim.trace import BARRIER, COMPUTE, LOAD, SFU, STORE, USE


@st.composite
def traces(draw, allow_barriers=True):
    """A random but well-formed warp trace."""
    events = []
    pending_tags = []
    next_tag = 0
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        choices = ["compute", "load", "store", "sfu"]
        if allow_barriers:
            choices.append("barrier")
        if pending_tags:
            choices.append("use")
        kind = draw(st.sampled_from(choices))
        if kind == "compute":
            events.append((COMPUTE, draw(st.integers(1, 20)), 0))
        elif kind == "load":
            bytes_ = draw(st.sampled_from([0.0, 128.0, 1024.0]))
            latency = 120.0 if bytes_ == 0.0 else 250.0
            events.append((LOAD, next_tag, (bytes_, latency)))
            pending_tags.append(next_tag)
            next_tag += 1
        elif kind == "use":
            tag = draw(st.sampled_from(pending_tags))
            pending_tags.remove(tag)
            events.append((USE, tag, 0))
        elif kind == "store":
            events.append((STORE, 0, draw(st.sampled_from([128.0, 512.0]))))
        elif kind == "sfu":
            events.append((SFU, next_tag, 0))
            pending_tags.append(next_tag)
            next_tag += 1
        else:
            events.append((BARRIER, 0, 0))
    issue_slots = sum(e[1] for e in events if e[0] == COMPUTE)
    dram = sum(e[2][0] for e in events if e[0] == LOAD)
    dram += sum(e[2] for e in events if e[0] == STORE)
    return WarpTrace.from_events(events, issue_slots=issue_slots, dram_bytes=dram)


def run(trace, warps=2, resident=2, blocks=2):
    return simulate_sm(trace, warps_per_block=warps, blocks_resident=resident,
                       total_blocks=blocks, config=DEFAULT_SIM_CONFIG)


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_deterministic(self, trace):
        assert run(trace).cycles == run(trace).cycles

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_all_blocks_complete(self, trace):
        result = run(trace, blocks=5)
        assert result.blocks_completed == 5

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_cycles_bound_issue_busy(self, trace):
        result = run(trace)
        assert result.cycles >= result.issue_busy_cycles - 1e-9
        assert 0.0 <= result.issue_utilization <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(traces())
    def test_more_blocks_take_longer(self, trace):
        few = run(trace, blocks=2).cycles
        many = run(trace, blocks=6).cycles
        assert many >= few - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(traces(allow_barriers=False))
    def test_single_warp_lower_bound(self, trace):
        """One warp alone can never beat the pure issue-time bound."""
        result = simulate_sm(trace, warps_per_block=1, blocks_resident=1,
                             total_blocks=1, config=DEFAULT_SIM_CONFIG)
        port_events = sum(
            1 for e in trace.events if e[0] in (LOAD, STORE, SFU)
        )
        floor = (trace.issue_slots + port_events) * 4
        assert result.cycles >= floor - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(traces(), st.integers(min_value=2, max_value=6))
    def test_extra_compute_never_speeds_up(self, trace, slots):
        padded = WarpTrace.from_events(
            trace.events + [(COMPUTE, slots, 0)],
            issue_slots=trace.issue_slots + slots,
            dram_bytes=trace.dram_bytes,
        )
        assert run(padded).cycles >= run(trace).cycles - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(traces())
    def test_dram_accounting(self, trace):
        result = run(trace, warps=2, resident=1, blocks=1)
        assert result.dram_bytes == trace.dram_bytes * 2
