"""Whole-GPU simulation: occupancy, extrapolation, invalid configs."""

import dataclasses

import pytest

from repro.arch import LaunchError
from repro.sim import DEFAULT_SIM_CONFIG, SimConfig, simulate_kernel
from tests.conftest import build_saxpy, build_tiled_matmul


class TestSimulateKernel:
    def test_result_fields(self):
        result = simulate_kernel(build_tiled_matmul())
        assert result.kernel_name == "mm_test"
        assert result.cycles > 0
        assert result.seconds == pytest.approx(
            result.cycles / (DEFAULT_SIM_CONFIG.device.clock_ghz * 1e9)
        )
        assert result.milliseconds == pytest.approx(result.seconds * 1e3)
        assert result.occupancy.blocks_per_sm == 2

    def test_deterministic(self):
        first = simulate_kernel(build_tiled_matmul())
        second = simulate_kernel(build_tiled_matmul())
        assert first.cycles == second.cycles

    def test_scales_with_grid(self):
        # 64 -> 128 quadruples the per-SM block count (16 vs 64 blocks
        # over 16 SMs) and doubles the work per block.
        small = simulate_kernel(build_tiled_matmul(n=64))
        large = simulate_kernel(build_tiled_matmul(n=128))
        assert large.cycles > small.cycles * 6

    def test_invalid_configuration_raises(self):
        from repro.cubin.resources import ResourceUsage

        kernel = build_tiled_matmul()
        heavy = ResourceUsage(
            registers_per_thread=40,
            shared_memory_per_block=2088,
            threads_per_block=256,
        )
        with pytest.raises(LaunchError):
            simulate_kernel(kernel, resources=heavy)

    def test_block_sampling_bounded_by_grid(self):
        result = simulate_kernel(build_saxpy())
        assert result.blocks_sampled <= result.blocks_per_sm_total
        assert result.blocks_sampled >= 1


class TestConfigSensitivity:
    def test_slower_clock_means_more_seconds(self):
        from repro.arch import DeviceSpec

        slow_device = DeviceSpec(clock_ghz=0.675)
        slow = simulate_kernel(
            build_tiled_matmul(),
            dataclasses.replace(DEFAULT_SIM_CONFIG, device=slow_device),
        )
        fast = simulate_kernel(build_tiled_matmul())
        assert slow.seconds > fast.seconds

    def test_higher_latency_hurts(self):
        from repro.arch import DeviceSpec

        laggy = dataclasses.replace(
            DEFAULT_SIM_CONFIG,
            device=DeviceSpec(global_latency_cycles=1000),
        )
        assert (
            simulate_kernel(build_tiled_matmul(), laggy).cycles
            > simulate_kernel(build_tiled_matmul()).cycles
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimConfig(constant_conflict_ways=0)
        with pytest.raises(ValueError):
            SimConfig(simulated_waves=0)
