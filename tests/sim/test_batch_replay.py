"""Differential tests: batched replay versus per-configuration replay.

The batch layer (:mod:`repro.sim.batch` + the engine's trace-program
grouping) exists purely to amortize work — one compiled trace, one
pool dispatch per group.  It must therefore be *invisible* in every
observable: in exact mode the results are bit-identical to sequential
per-configuration calls, and the cache counters increment identically
(batching can never make telemetry lie about how much replay actually
happened).  These tests pin both, property-style over random traces
and end to end over all four applications.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import all_applications
from repro.apps.mri_fhd import MriFhd
from repro.sim import WarpTrace, simulate_sm
from repro.sim.batch import simulate_kernel_batch, steady_state_bounds
from repro.sim.config import DEFAULT_SIM_CONFIG
from repro.sim.fingerprint import SimulationCache
from repro.sim.gpu import simulate_kernel
from repro.sim.sm import compile_trace
from repro.sim.trace import BARRIER, COMPUTE, LOAD, SFU, STORE, USE
from repro.tuning.engine import ExecutionEngine


@st.composite
def event_lists(draw):
    """A random but well-formed warp event stream."""
    events = []
    pending = []
    next_slot = 0
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        choices = ["compute", "load", "store", "sfu", "barrier"]
        if pending:
            choices.append("use")
        kind = draw(st.sampled_from(choices))
        if kind == "compute":
            events.append((COMPUTE, draw(st.integers(1, 16)), 0))
        elif kind == "load":
            bytes_ = draw(st.sampled_from([0.0, 128.0, 1024.0]))
            latency = 120.0 if bytes_ == 0.0 else 250.0
            events.append((LOAD, next_slot, (bytes_, latency)))
            pending.append(next_slot)
            next_slot += 1
        elif kind == "use":
            slot = draw(st.sampled_from(pending))
            pending.remove(slot)
            events.append((USE, slot, 0))
        elif kind == "store":
            events.append((STORE, 0, draw(st.sampled_from([128.0, 512.0]))))
        elif kind == "sfu":
            events.append((SFU, next_slot, 0))
            pending.append(next_slot)
            next_slot += 1
        else:
            events.append((BARRIER, 0, 0))
    return events


def trace_from(events):
    issue_slots = sum(e[1] for e in events if e[0] == COMPUTE)
    dram = sum(e[2][0] for e in events if e[0] == LOAD)
    dram += sum(e[2] for e in events if e[0] == STORE)
    return WarpTrace.from_events(events, issue_slots=issue_slots,
                                 dram_bytes=dram)


class TestSharedCompiledTrace:
    """One compiled linearization serving many launch variants."""

    @settings(max_examples=80, deadline=None)
    @given(
        event_lists(),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),   # warps_per_block
                st.integers(min_value=1, max_value=3),   # blocks_resident
                st.integers(min_value=1, max_value=8),   # total_blocks
            ),
            min_size=1, max_size=4,
        ),
    )
    def test_precompiled_replay_bit_identical(self, events, variants):
        """Reusing ``compiled`` across variants never changes results.

        This is exactly what :func:`simulate_kernel_batch` amortizes:
        every variant of one trace program replays through one shared
        :class:`~repro.sim.sm.CompiledTrace`.
        """
        trace = trace_from(events)
        compiled = compile_trace(trace, DEFAULT_SIM_CONFIG)
        for warps, resident, blocks in variants:
            fresh = simulate_sm(
                trace, warps_per_block=warps, blocks_resident=resident,
                total_blocks=blocks, config=DEFAULT_SIM_CONFIG)
            shared = simulate_sm(
                trace, warps_per_block=warps, blocks_resident=resident,
                total_blocks=blocks, config=DEFAULT_SIM_CONFIG,
                compiled=compiled)
            assert shared == fresh

    @settings(max_examples=40, deadline=None)
    @given(
        event_lists(),
        st.lists(st.integers(min_value=1, max_value=24),
                 min_size=1, max_size=8),
    )
    def test_steady_state_bounds_bit_equal_to_scalar(self, events, warps):
        """The vectorized roofline equals the replay loop's scalar one."""
        trace = trace_from(events)
        compiled = compile_trace(trace, DEFAULT_SIM_CONFIG)
        share = DEFAULT_SIM_CONFIG.bandwidth_bytes_per_cycle_per_sm
        vectorized = steady_state_bounds(compiled, warps, DEFAULT_SIM_CONFIG)
        assert vectorized.dtype == np.float64
        for index, w in enumerate(warps):
            issue_bound = float(w * compiled.port_cycles)
            bw_bound = w * compiled.dram_bytes / share
            scalar = issue_bound if issue_bound > bw_bound else bw_bound
            assert float(vectorized[index]) == scalar


def _batch_items(app, configs):
    return [
        (app.kernel(config), app.effective_sim_config(config), None)
        for config in configs
    ]


class TestBatchAgainstSequential:
    """simulate_kernel_batch == sequential simulate_kernel, all apps."""

    def _configs(self, app, stride, limit):
        return [c for c in app.space()][::stride][:limit]

    def _check_app(self, app, configs):
        items = _batch_items(app, configs)
        batch_cache = SimulationCache()
        batch_results = simulate_kernel_batch(items, cache=batch_cache)
        serial_cache = SimulationCache()
        serial_results = [
            simulate_kernel(kernel, config, resources=resources,
                            cache=serial_cache)
            for kernel, config, resources in items
        ]
        assert batch_results == serial_results
        assert batch_cache.counters() == serial_cache.counters()

    def test_all_applications_exact_mode(self):
        for app in all_applications():
            instance = app.test_instance()
            self._check_app(instance, self._configs(instance, 7, 6))

    def test_mri_trace_program_group(self):
        """A real group: seven invocation splits, one trace program."""
        app = MriFhd().test_instance()
        group = [c for c in app.space()
                 if (c["block"], c["unroll"]) == (64, 2)]
        assert len(group) > 1
        self._check_app(app, group)

    def test_convergence_mode_batch_identical_too(self):
        """Batching is invisible in convergence mode as well."""
        app = MriFhd().test_instance()
        app.sim_overrides = {"wave_convergence_rtol": 0.05}
        group = [c for c in app.space()
                 if (c["block"], c["unroll"]) == (64, 1)]
        self._check_app(app, group)


#: SM-replay telemetry that must not depend on grouping or workers
#: (engine.stats sums in-process counters with pool-worker deltas —
#: the surface tests/tuning/test_pool_telemetry.py pins).
SM_COUNTERS = (
    "waves_simulated",
    "blocks_replayed",
    "blocks_extrapolated",
    "blocks_resident",
    "events_replayed",
)


class TestGroupedEngine:
    """The engine's trace-program grouping is observationally inert."""

    def _sweep(self, workers):
        app = MriFhd().test_instance()
        configs = [c for c in app.space()][::5][:12]
        with ExecutionEngine.for_app(app, workers=workers) as engine:
            times = engine.seconds_for(configs)
            counters = {
                name: getattr(engine.stats, name) for name in SM_COUNTERS
            }
        return times, counters

    def test_serial_grouping_matches_plain_app(self):
        plain = MriFhd().test_instance()
        configs = [c for c in plain.space()][::5][:12]
        expected = [plain.simulate(c) for c in configs]
        times, counters = self._sweep(workers=1)
        assert times == expected
        plain_counters = dict(plain.sim_cache.counters())
        assert counters == {
            name: plain_counters[name] for name in SM_COUNTERS
        }

    def test_pooled_grouping_matches_serial(self):
        serial_times, serial_counters = self._sweep(workers=1)
        pooled_times, pooled_counters = self._sweep(workers=2)
        assert pooled_times == serial_times
        assert pooled_counters == serial_counters
