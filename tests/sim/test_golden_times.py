"""Golden regression: per-configuration simulated times are pinned.

``tests/sim/golden_seed_times.json`` records ``app.simulate(config)``
for every configuration of each application's test instance, captured
from the original straightforward simulator implementation.  The
optimized pipeline (loop-compressed traces, the rewritten SM event
loop, the content-addressed cache) must reproduce every value
bit-for-bit in exact mode — any drift here means the hot-path work
changed semantics, not just speed.

Configurations that raise (invalid executables) are recorded as null.
"""

import json
import os

import pytest

from repro.apps import all_applications
from repro.tuning import config_key

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_seed_times.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", ["matmul", "cp", "sad", "mri-fhd"])
def test_test_instance_times_match_golden(golden, name):
    app = {a.name: a for a in all_applications()}[name].test_instance()
    expected = golden[f"{name}:test_instance"]
    checked = 0
    for config in app.space():
        key = config_key(config)
        assert key in expected, f"config {key} missing from golden file"
        try:
            got = app.simulate(config)
        except Exception:
            got = None
        assert got == expected[key], key
        checked += 1
    assert checked == len(expected)
