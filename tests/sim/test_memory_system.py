"""Token-bucket DRAM model: bursts fast, sustained capped."""

import pytest

from repro.sim import MemorySystem
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig


def make_memory(**overrides):
    config = SimConfig(**overrides) if overrides else DEFAULT_SIM_CONFIG
    return MemorySystem(config), config


class TestLatency:
    def test_zero_bytes_pays_latency_only(self):
        memory, _ = make_memory()
        assert memory.request(100.0, 0.0, 120.0) == 220.0
        assert memory.total_bytes == 0.0

    def test_single_request_latency_plus_service(self):
        memory, config = make_memory()
        burst_rate = (
            config.bandwidth_bytes_per_cycle_per_sm
            * config.bandwidth_burst_factor
        )
        completion = memory.request(0.0, 128.0, 250.0)
        assert completion == pytest.approx(128.0 / burst_rate + 250.0)


class TestBurstVsSustained:
    def test_short_burst_served_at_burst_rate(self):
        memory, config = make_memory()
        share = config.bandwidth_bytes_per_cycle_per_sm
        burst_rate = share * config.bandwidth_burst_factor
        first = memory.request(0.0, 1024.0, 0.0)
        assert first == pytest.approx(1024.0 / burst_rate)

    def test_sustained_traffic_throttles_to_share(self):
        memory, config = make_memory()
        share = config.bandwidth_bytes_per_cycle_per_sm
        total = 0.0
        completion = 0.0
        for _ in range(100):
            total += 4096.0
            completion = memory.request(0.0, 4096.0, 0.0)
        # Long-run throughput equals the fair share (modulo the window).
        assert completion >= total / share - config.burst_window_bytes / share

    def test_idle_time_does_not_bank_credit(self):
        memory, config = make_memory()
        share = config.bandwidth_bytes_per_cycle_per_sm
        window = config.burst_window_bytes / share
        # Saturate, wait a long time, then burst again: the new burst
        # must be served at burst rate (credit resets), not owe debt.
        for _ in range(50):
            memory.request(0.0, 4096.0, 0.0)
        later = memory._sustained_end + 10 * window
        burst_rate = share * config.bandwidth_burst_factor
        completion = memory.request(later, 1024.0, 0.0)
        assert completion == pytest.approx(later + 1024.0 / burst_rate)


class TestQueueing:
    def test_requests_serialize_on_the_pipe(self):
        memory, config = make_memory()
        first = memory.request(0.0, 2048.0, 0.0)
        second = memory.request(0.0, 2048.0, 0.0)
        assert second > first

    def test_counters(self):
        memory, _ = make_memory()
        memory.request(0.0, 100.0, 10.0)
        memory.request(0.0, 100.0, 10.0)
        assert memory.total_bytes == 200.0
        assert memory.busy_cycles > 0.0
