"""SM discrete-event model: issue port, latency hiding, barriers."""

from repro.sim import WarpTrace, simulate_sm
from repro.sim.config import DEFAULT_SIM_CONFIG
from repro.sim.trace import BARRIER, COMPUTE, LOAD, SFU, STORE, USE


def trace(events, issue_slots=0, dram_bytes=0.0):
    return WarpTrace.from_events(list(events), issue_slots=issue_slots,
                                 dram_bytes=dram_bytes)


def run(events, warps=1, resident=1, blocks=1):
    return simulate_sm(
        trace(events), warps_per_block=warps, blocks_resident=resident,
        total_blocks=blocks, config=DEFAULT_SIM_CONFIG,
    )


class TestIssuePort:
    def test_compute_only_single_warp(self):
        result = run([(COMPUTE, 10, 0)])
        assert result.cycles == 40.0          # 10 instructions x 4 cycles
        assert result.issue_utilization == 1.0

    def test_warps_serialize_on_the_port(self):
        result = run([(COMPUTE, 10, 0)], warps=4)
        assert result.cycles == 160.0

    def test_blocks_processed_in_sequence(self):
        result = run([(COMPUTE, 10, 0)], warps=1, resident=1, blocks=3)
        assert result.blocks_completed == 3
        assert result.cycles == 120.0


class TestLatencyHiding:
    def _load_use(self):
        return [
            (LOAD, 0, (128.0, 250.0)),
            (USE, 0, 0),
            (COMPUTE, 10, 0),
        ]

    def test_single_warp_exposes_latency(self):
        result = run(self._load_use())
        assert result.cycles > 250.0

    def test_many_warps_hide_latency(self):
        lone = run(self._load_use()).cycles
        crowd = simulate_sm(
            trace(self._load_use()), warps_per_block=8, blocks_resident=2,
            total_blocks=2, config=DEFAULT_SIM_CONFIG,
        )
        # 16 warps' compute keeps the port busy while loads fly.
        per_warp_crowd = crowd.cycles / 16
        assert per_warp_crowd < lone

    def test_prefetch_distance_matters(self):
        near = [
            (LOAD, 0, (128.0, 250.0)),
            (USE, 0, 0),
            (COMPUTE, 100, 0),
        ]
        far = [
            (LOAD, 0, (128.0, 250.0)),
            (COMPUTE, 100, 0),
            (USE, 0, 0),
        ]
        assert run(far).cycles < run(near).cycles

    def test_sfu_latency_exposed_for_dependent_use(self):
        dependent = [(SFU, 0, 0), (USE, 0, 0), (COMPUTE, 1, 0)]
        independent = [(SFU, 0, 0), (COMPUTE, 1, 0)]
        assert run(dependent).cycles > run(independent).cycles


class TestBarriers:
    def test_barrier_waits_for_slowest_warp(self):
        events = [
            (LOAD, 0, (128.0, 250.0)),
            (USE, 0, 0),
            (BARRIER, 0, 0),
            (COMPUTE, 1, 0),
        ]
        result = run(events, warps=4)
        # No warp's post-barrier compute can start before every warp's
        # load resolved.
        assert result.cycles > 250.0

    def test_all_warps_released_together(self):
        events = [(COMPUTE, 5, 0), (BARRIER, 0, 0), (COMPUTE, 5, 0)]
        result = run(events, warps=4)
        assert result.blocks_completed == 1
        # 4 warps x 10 instructions x 4 cycles, barrier adds no cycles
        # beyond serialization here.
        assert result.cycles == 160.0


class TestBandwidthBound:
    def test_heavy_traffic_saturates_interface(self):
        per_warp_bytes = 8192.0
        events = [(STORE, 0, per_warp_bytes), (COMPUTE, 1, 0)] * 16
        result = simulate_sm(
            trace(events, dram_bytes=per_warp_bytes * 16),
            warps_per_block=8, blocks_resident=2, total_blocks=4,
            config=DEFAULT_SIM_CONFIG,
        )
        share = DEFAULT_SIM_CONFIG.bandwidth_bytes_per_cycle_per_sm
        total_bytes = per_warp_bytes * 16 * 8 * 4
        floor = (total_bytes - DEFAULT_SIM_CONFIG.burst_window_bytes) / share
        assert result.cycles >= floor
        assert result.bandwidth_utilization > 0.9


class TestRefill:
    def test_finished_block_slot_is_refilled(self):
        result = run([(COMPUTE, 4, 0)], warps=2, resident=2, blocks=6)
        assert result.blocks_completed == 6

    def test_result_accounting(self):
        result = run([(COMPUTE, 10, 0)], warps=2, blocks=2)
        assert result.cycles_per_block == result.cycles / 2
        assert result.issue_busy_cycles == 2 * 2 * 40.0
