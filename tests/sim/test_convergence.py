"""Wave-convergence mode: extrapolation fires, stays honest, and the
JIT tier agrees.

PR 2 shipped a convergence predicate that could never fire: the wave
budget was capped at ``simulated_waves``, so the convergence check
always coincided with the final sampled block and there was nothing
left to extrapolate.  This suite is the regression fence around the
fix:

* on a golden application space, convergence mode actually
  extrapolates (``blocks_extrapolated > 0``) and replays strictly
  fewer events than a deep exact run;
* every extrapolated time stays within the configured rtol of the
  deep exact replay, configuration by configuration;
* the ``REPRO_JIT`` array engine is bit-identical to the default
  tuple interpreter in both exact and convergence mode (pure-Python
  fallback when numba is absent — the supported configuration here).
"""

import dataclasses
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.matmul import MatMul
from repro.sim import simulate_sm
from repro.sim.config import DEFAULT_SIM_CONFIG
from repro.sim.jit import jit_enabled, replay_engine
from repro.sim.trace import build_trace

from .test_batch_replay import event_lists, trace_from

RTOL = 0.05

#: Every 3rd matmul configuration — enough occupancy/loop-shape variety
#: to exercise both convergence modes without sweeping all 96 configs.
GOLDEN_STRIDE = 3


def _golden_apps():
    exact = MatMul()
    deep = MatMul()
    # Deep exact oracle: sample convergence_max_waves waves, no
    # extrapolation — the fidelity the convergence sweep must match.
    deep.sim_overrides = {
        "simulated_waves": DEFAULT_SIM_CONFIG.convergence_max_waves
    }
    approx = MatMul()
    approx.sim_overrides = {"wave_convergence_rtol": RTOL}
    return exact, deep, approx


def _golden_configs(app):
    return [c for c in app.space()][::GOLDEN_STRIDE]


class TestGoldenSpace:
    def test_extrapolation_fires_and_stays_within_rtol(self):
        _, deep, approx = _golden_apps()
        for config in _golden_configs(approx):
            try:
                approx_seconds = approx.simulate(config)
            except Exception:
                continue
            deep_seconds = deep.simulate(config)
            assert math.isclose(
                approx_seconds, deep_seconds, rel_tol=RTOL
            ), (
                f"extrapolated time drifted at {config}: "
                f"{approx_seconds} vs deep exact {deep_seconds}"
            )
        counters = approx.sim_cache.counters()
        assert counters["blocks_extrapolated"] > 0
        assert counters["blocks_replayed"] > 0
        # Extrapolation replaces replay work, it does not add to it.
        assert (counters["events_replayed"]
                < deep.sim_cache.counters()["events_replayed"])

    def test_convergence_telemetry_recorded(self):
        """Converged replays report which wave and which mode fired."""
        app = MatMul()
        app.sim_overrides = {"wave_convergence_rtol": RTOL}
        modes = set()
        for config in _golden_configs(app):
            try:
                result = app.simulate_detailed(config)
            except Exception:
                continue
            sm = result.sm
            if sm.blocks_extrapolated:
                assert sm.converged_wave >= 1
                assert sm.converged_mode in ("analytic", "wave")
                modes.add(sm.converged_mode)
        assert modes, "no configuration converged on the golden space"


class TestJitEquivalence:
    """REPRO_JIT=1 (array engine) == REPRO_JIT=0 (tuple interpreter)."""

    def _jit(self, monkeypatch, on):
        monkeypatch.setenv("REPRO_JIT", "1" if on else "0")
        assert jit_enabled() is on
        assert (replay_engine() is not None) is on

    @settings(max_examples=40, deadline=None)
    @given(
        event_lists(),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=8),
        st.sampled_from([0.0, RTOL]),
    )
    def test_random_traces_bit_identical(self, events, warps, resident,
                                         blocks, rtol):
        # hypothesis forbids function-scoped monkeypatch; flip the env
        # around each replay pair instead.
        import os

        trace = trace_from(events)
        config = dataclasses.replace(
            DEFAULT_SIM_CONFIG, wave_convergence_rtol=rtol
        )
        kwargs = dict(warps_per_block=warps, blocks_resident=resident,
                      total_blocks=blocks, config=config)
        saved = os.environ.get("REPRO_JIT")
        try:
            os.environ["REPRO_JIT"] = "0"
            default = simulate_sm(trace, **kwargs)
            os.environ["REPRO_JIT"] = "1"
            jitted = simulate_sm(trace, **kwargs)
        finally:
            if saved is None:
                os.environ.pop("REPRO_JIT", None)
            else:
                os.environ["REPRO_JIT"] = saved
        assert jitted == default

    def test_matmul_kernels_bit_identical(self, monkeypatch):
        """Real compressed traces through both engines, both modes."""
        app = MatMul().test_instance()
        configs = [c for c in app.space()][::9][:6]
        for rtol in (0.0, RTOL):
            results = {}
            for on in (False, True):
                self._jit(monkeypatch, on)
                runs = []
                for config in configs:
                    kernel = app.kernel(config)
                    sim_config = dataclasses.replace(
                        app.sim_config(config), wave_convergence_rtol=rtol
                    )
                    trace = build_trace(kernel, sim_config)
                    resources = app.evaluate(config).resources
                    occupancy = resources.occupancy(sim_config.device)
                    runs.append(simulate_sm(
                        trace,
                        warps_per_block=occupancy.warps_per_block,
                        blocks_resident=occupancy.blocks_per_sm,
                        total_blocks=occupancy.blocks_per_sm * 4,
                        config=sim_config,
                    ))
                results[on] = runs
            assert results[True] == results[False]
