"""Telemetry plumbing: SMResult counters -> SimulationCache -> EngineStats."""

import dataclasses

from repro.apps.matmul import MatMul
from repro.apps.mri_fhd import MriFhd
from repro.sim import SimulationCache, WarpTrace, kernel_fingerprint, simulate_sm
from repro.sim.config import DEFAULT_SIM_CONFIG
from repro.sim.gpu import simulate_kernel
from repro.sim.trace import COMPUTE, LOAD, USE


def _trace():
    events = [(LOAD, 0, (128.0, 250.0)), (USE, 0, 0), (COMPUTE, 10, 0)]
    return WarpTrace.from_events(events, issue_slots=10, dram_bytes=128.0)


class TestSMResultTelemetry:
    def test_waves_and_events_counted(self):
        result = simulate_sm(_trace(), warps_per_block=3, blocks_resident=2,
                             total_blocks=6, config=DEFAULT_SIM_CONFIG)
        assert result.waves_simulated == 3
        assert result.blocks_replayed == 6
        assert result.blocks_extrapolated == 0
        assert result.blocks_resident == 2
        assert result.waves_extrapolated == 0.0  # derived ratio
        # 3 dynamic events per warp, 3 warps per block, 6 blocks.
        assert result.events_replayed == 3 * 3 * 6


class TestSimulationCache:
    def test_fingerprint_excludes_name_and_grid(self):
        app = MatMul().test_instance()
        config = app.default_configuration()
        kernel = app.kernel(config)
        base = kernel_fingerprint(kernel, DEFAULT_SIM_CONFIG)
        renamed = dataclasses.replace(kernel, name="something_else")
        assert kernel_fingerprint(renamed, DEFAULT_SIM_CONFIG) == base
        regridded = dataclasses.replace(
            kernel, grid_dim=dataclasses.replace(kernel.grid_dim, x=3)
        )
        assert kernel_fingerprint(regridded, DEFAULT_SIM_CONFIG) == base
        # ...but the cost model is part of the identity.
        other_config = dataclasses.replace(
            DEFAULT_SIM_CONFIG, constant_conflict_ways=4
        )
        assert kernel_fingerprint(kernel, other_config) != base

    def test_repeat_simulation_hits_every_layer(self):
        app = MatMul().test_instance()
        config = app.default_configuration()
        kernel = app.kernel(config)
        cache = SimulationCache()
        first = simulate_kernel(kernel, DEFAULT_SIM_CONFIG, cache=cache)
        assert cache.hits == 0
        assert cache.waves_simulated == first.sm.waves_simulated
        assert cache.events_replayed == first.sm.events_replayed
        second = simulate_kernel(kernel, DEFAULT_SIM_CONFIG, cache=cache)
        assert second.seconds == first.seconds
        assert cache.resource_hits == 1
        assert cache.trace_hits == 1
        assert cache.sm_hits == 1
        # Replay telemetry counts real work only — no growth on hits.
        assert cache.events_replayed == first.sm.events_replayed

    def test_mri_invocation_variants_share_simulations(self):
        """The seven invocation splits of one (block, unroll) pair have
        identical per-launch kernels; the cache must collapse them."""
        app = MriFhd().test_instance()
        space = [c for c in app.space()]
        base = space[0]
        cluster = [c for c in space
                   if c["block"] == base["block"]
                   and c["unroll"] == base["unroll"]]
        assert len(cluster) > 1
        for config in cluster:
            app.simulate(config)
        assert app.sim_cache.trace_hits == len(cluster) - 1

    def test_clear_resets_counters(self):
        cache = SimulationCache()
        app = MatMul().test_instance()
        kernel = app.kernel(app.default_configuration())
        simulate_kernel(kernel, DEFAULT_SIM_CONFIG, cache=cache)
        simulate_kernel(kernel, DEFAULT_SIM_CONFIG, cache=cache)
        assert cache.hits > 0
        cache.clear()
        assert cache.hits == 0
        assert cache.counters() == {
            "fingerprint_resource_hits": 0,
            "fingerprint_trace_hits": 0,
            "fingerprint_sm_hits": 0,
            "compile_hits": 0,
            "compile_evaluations": 0,
            "waves_simulated": 0,
            "blocks_replayed": 0,
            "blocks_extrapolated": 0,
            "blocks_resident": 0,
            "events_replayed": 0,
        }


class TestCompileTier:
    """Content-addressed sharing of whole static reports."""

    def test_repeat_evaluate_hits_compile_tier(self):
        app = MatMul().test_instance()
        config = app.default_configuration()
        first = app.evaluate(config)
        second = app.evaluate(config)
        assert second is first
        counters = app.sim_cache.counters()
        assert counters["compile_evaluations"] == 1
        assert counters["compile_hits"] == 1

    def test_mri_invocation_splits_share_compiles(self):
        """The seven invocation splits of one (block, unroll) pair have
        identical per-launch kernels; the compile tier must collapse
        them onto a single evaluation."""
        app = MriFhd().test_instance()
        space = [c for c in app.space()]
        base = space[0]
        cluster = [c for c in space
                   if c["block"] == base["block"]
                   and c["unroll"] == base["unroll"]]
        assert len(cluster) > 1
        reports = [app.evaluate(config) for config in cluster]
        counters = app.sim_cache.counters()
        assert counters["compile_evaluations"] == 1
        assert counters["compile_hits"] == len(cluster) - 1
        assert all(report == reports[0] for report in reports)

    def test_compile_hit_respecializes_grid_dependent_fields(self):
        """The fingerprint excludes the grid; on a hit, efficiency and
        threads are recomputed for this kernel's grid — bit-identical
        to a fresh evaluation."""
        from repro.apps.base import Application
        from repro.metrics.model import evaluate_kernel

        app = MatMul().test_instance()
        kernel = app.kernel(app.default_configuration())
        regridded = dataclasses.replace(
            kernel, grid_dim=dataclasses.replace(
                kernel.grid_dim, x=kernel.grid_dim.x * 2
            )
        )
        base = evaluate_kernel(kernel)
        specialized = Application._specialize_report(base, regridded)
        assert specialized == evaluate_kernel(regridded)
        assert specialized.threads == regridded.total_threads
        assert specialized.efficiency != base.efficiency

    def test_evaluate_seeds_resources_for_simulation(self):
        """The static stage's compile results thread into simulation:
        a simulate after evaluate reuses the stored ResourceUsage."""
        app = MatMul().test_instance()
        config = app.default_configuration()
        report = app.evaluate(config)
        app.simulate(config)
        assert app._resources_for(config) == report.resources


class TestEngineStatsSync:
    def test_engine_mirrors_cache_counters(self):
        app = MriFhd().test_instance()
        engine = app.search_engine()
        configs = [c for c in app.space()][:20]
        engine.seconds_for(configs)
        stats = engine.stats.as_dict()
        counters = app.sim_cache.counters()
        for name, value in counters.items():
            assert stats[name] == value
        assert stats["fingerprint_hits"] == app.sim_cache.hits
        assert stats["fingerprint_hits"] > 0
        assert stats["events_replayed"] > 0
        assert "fp_hits" in engine.stats.summary()

    def test_engine_without_sim_cache_keeps_zeroes(self):
        from repro.tuning.engine import ExecutionEngine

        engine = ExecutionEngine(lambda c: None, lambda c: 1.0)
        engine.seconds_for([])
        stats = engine.stats.as_dict()
        assert stats["fingerprint_hits"] == 0
        assert stats["events_replayed"] == 0
