"""Unit tests for the deterministic fault-injection layer.

The chaos suite (tests/tuning/test_scheduler_faults.py) exercises the
scheduler's recovery paths end-to-end; these tests pin the FaultPlan
itself — lookup rules, the REPRO_FAULTS spec grammar round trip, and
the determinism the chaos suite's exact-counter assertions rely on.
"""

import pytest

from repro.obs.faults import (
    FAULTS_ENV,
    Fault,
    FaultInjected,
    FaultPlan,
    FaultSpecError,
    SIMULATE_STAGE,
    STATIC_STAGE,
)

pytestmark = pytest.mark.fast


class TestFaultLookup:
    def test_fires_on_index_and_within_attempt_budget(self):
        plan = FaultPlan([Fault("raise", index=3, attempts=2)])
        assert plan.fault_for(SIMULATE_STAGE, 3, 1).kind == "raise"
        assert plan.fault_for(SIMULATE_STAGE, 3, 2).kind == "raise"
        assert plan.fault_for(SIMULATE_STAGE, 3, 3) is None
        assert plan.fault_for(SIMULATE_STAGE, 4, 1) is None

    def test_stage_restriction(self):
        plan = FaultPlan([Fault("kill", index=1, stage=STATIC_STAGE)])
        assert plan.fault_for(STATIC_STAGE, 1, 1) is not None
        assert plan.fault_for(SIMULATE_STAGE, 1, 1) is None

    def test_stageless_fault_fires_in_both_stages(self):
        plan = FaultPlan([Fault("hang", index=0)])
        assert plan.fault_for(SIMULATE_STAGE, 0, 1).kind == "hang"
        assert plan.fault_for(STATIC_STAGE, 0, 1).kind == "hang"

    def test_apply_raise_raises_fault_injected(self):
        plan = FaultPlan([Fault("raise", index=2)])
        with pytest.raises(FaultInjected, match="task 2 attempt 1"):
            plan.apply(SIMULATE_STAGE, 2, 1)
        plan.apply(SIMULATE_STAGE, 2, 2)  # budget spent: no-op
        plan.apply(SIMULATE_STAGE, 0, 1)  # other index: no-op

    def test_expected_enumerates_first_attempt_faults(self):
        plan = FaultPlan([
            Fault("raise", index=2),
            Fault("kill", index=5),
            Fault("hang", index=9, stage=SIMULATE_STAGE),
        ])
        assert plan.expected(SIMULATE_STAGE, 12) == {
            "raise": [2], "hang": [9], "kill": [5],
        }
        assert plan.expected(STATIC_STAGE, 12) == {
            "raise": [2], "hang": [], "kill": [5],
        }
        # Faults beyond the batch cannot fire.
        assert plan.expected(SIMULATE_STAGE, 2) == {
            "raise": [], "hang": [], "kill": [],
        }

    def test_validation_rejects_bad_faults(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            Fault("explode", index=0)
        with pytest.raises(FaultSpecError, match="unknown fault stage"):
            Fault("raise", index=0, stage="warmup")
        with pytest.raises(FaultSpecError, match="index must be >= 0"):
            Fault("raise", index=-1)
        with pytest.raises(FaultSpecError, match="attempts must be >= 1"):
            Fault("raise", index=0, attempts=0)


class TestRateFaults:
    def test_rates_are_deterministic_for_a_seed(self):
        plan_a = FaultPlan(seed=7, rates={"raise": 0.2, "kill": 0.1})
        plan_b = FaultPlan(seed=7, rates={"raise": 0.2, "kill": 0.1})
        picks_a = plan_a.expected(SIMULATE_STAGE, 200)
        assert picks_a == plan_b.expected(SIMULATE_STAGE, 200)
        total = sum(len(v) for v in picks_a.values())
        assert 0 < total < 200  # roughly 30% of tasks faulted

    def test_different_seed_different_picks(self):
        base = FaultPlan(seed=0, rates={"raise": 0.3})
        other = FaultPlan(seed=1, rates={"raise": 0.3})
        assert (base.expected(SIMULATE_STAGE, 100)
                != other.expected(SIMULATE_STAGE, 100))

    def test_rate_faults_fire_first_attempt_only(self):
        plan = FaultPlan(seed=0, rates={"raise": 1.0})
        assert plan.fault_for(SIMULATE_STAGE, 0, 1) is not None
        assert plan.fault_for(SIMULATE_STAGE, 0, 2) is None

    def test_rate_validation(self):
        with pytest.raises(FaultSpecError, match="unknown rate-fault kind"):
            FaultPlan(rates={"explode": 0.5})
        with pytest.raises(FaultSpecError, match=r"in \[0, 1\]"):
            FaultPlan(rates={"raise": 1.5})


class TestSpecGrammar:
    def test_parse_items(self):
        plan = FaultPlan.from_spec("kill:5,raise:2,sim.hang:9:2,hang=30")
        assert plan.hang_seconds == 30.0
        assert plan.faults == (
            Fault("kill", index=5),
            Fault("raise", index=2),
            Fault("hang", index=9, attempts=2, stage=SIMULATE_STAGE),
        )

    def test_round_trip(self):
        spec = "static.kill:3:2,raise:0,hang=5,seed=9,p_kill=0.1,p_raise=0.2"
        plan = FaultPlan.from_spec(spec)
        again = FaultPlan.from_spec(plan.to_spec())
        assert again.faults == plan.faults
        assert again.hang_seconds == plan.hang_seconds
        assert again.seed == plan.seed
        assert again.rates == plan.rates

    def test_blank_spec_means_no_plan(self):
        assert FaultPlan.from_spec(None) is None
        assert FaultPlan.from_spec("") is None
        assert FaultPlan.from_spec("  ") is None

    @pytest.mark.parametrize("spec", [
        "raise",             # no index
        "raise:x",           # non-integer index
        "warp.raise:1",      # unknown stage
        "explode:1",         # unknown kind
        "frobnicate=3",      # unknown option
        "hang=never",        # malformed option value
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(spec)

    def test_from_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "explode:1")
        with pytest.raises(FaultSpecError, match=FAULTS_ENV):
            FaultPlan.from_env()

    def test_from_env_unset_means_no_plan(self):
        assert FaultPlan.from_env(environ={}) is None
