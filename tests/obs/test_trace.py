"""Tracer: span recording, disabled-mode overhead, Chrome-trace export."""

import json

import pytest

from repro.obs import (
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

pytestmark = pytest.mark.fast


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with the global tracer disabled."""
    disable_tracing()
    yield
    disable_tracing()
    get_tracer().clear()


class TestTracer:
    def test_disabled_by_default_records_nothing(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        tracer.instant("tick")
        tracer.counter("c", {"v": 1})
        assert tracer.events == []

    def test_span_records_complete_event(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", cat="test", args={"n": 3}):
            pass
        (event,) = tracer.events
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["cat"] == "test"
        assert event["args"] == {"n": 3}
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)

    def test_add_args_mid_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("batch", args={"requested": 9}) as sp:
            sp.add_args(missing=4)
        (event,) = tracer.events
        assert event["args"] == {"requested": 9, "missing": 4}

    def test_nested_spans_both_recorded(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in tracer.events]
        assert names == ["inner", "outer"]  # completion order
        inner, outer = tracer.events
        assert outer["dur"] >= inner["dur"]

    def test_instant_and_counter_phases(self):
        tracer = Tracer(enabled=True)
        tracer.instant("converged", args={"wave": 4})
        tracer.counter("cache", {"hits": 2.0})
        instant, counter = tracer.events
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert counter["ph"] == "C"
        assert counter["args"] == {"hits": 2.0}

    def test_manual_complete_event(self):
        tracer = Tracer(enabled=True)
        started = tracer.now()
        tracer.complete_event("replay", started, cat="sim",
                              args={"blocks": 8})
        (event,) = tracer.events
        assert event["name"] == "replay"
        assert event["dur"] >= 0.0


class TestGlobalTracer:
    def test_module_span_is_noop_singleton_when_disabled(self):
        # The disabled fast path must not allocate per call — that is
        # the "near-zero overhead" contract the hot paths rely on.
        first = span("anything", n=1)
        second = span("other")
        assert first is second
        with first:
            pass
        assert get_tracer().events == []

    def test_current_tracer_gates_on_enabled(self):
        assert current_tracer() is None
        tracer = enable_tracing()
        try:
            assert current_tracer() is tracer
            assert tracing_enabled()
        finally:
            disable_tracing()
        assert current_tracer() is None

    def test_enable_records_and_clears_by_default(self):
        tracer = enable_tracing()
        with span("visible"):
            pass
        assert [e["name"] for e in tracer.events] == ["visible"]
        enable_tracing()  # fresh=True drops the old events
        assert tracer.events == []


class TestChromeExport:
    def test_schema_round_trip(self, tmp_path):
        """The exported file must be a valid Chrome-trace JSON object:
        loadable, with well-formed traceEvents — the schema Perfetto
        and chrome://tracing both accept."""
        tracer = Tracer(enabled=True)
        with tracer.span("engine.simulate_batch", cat="engine",
                         args={"requested": 2}):
            with tracer.span("sm.replay", cat="sim", args={"blocks": 4}):
                pass
        tracer.instant("sm.wave_converged", cat="sim", args={"wave": 3})

        path = str(tmp_path / "trace.json")
        tracer.export(path)
        loaded = json.loads(open(path).read())

        assert loaded["displayTimeUnit"] == "ms"
        events = loaded["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0.0
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
        # round-trip: re-serializing what we loaded is stable
        assert json.loads(json.dumps(loaded)) == loaded

    def test_export_survives_non_json_args(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("odd", args={"obj": object()}):
            pass
        path = str(tmp_path / "trace.json")
        tracer.export(path)  # default=repr, must not raise
        loaded = json.loads(open(path).read())
        assert loaded["traceEvents"][0]["name"] == "odd"
