"""Counters: the mergeable registry pool workers ship deltas through."""

import pickle

import pytest

from repro.obs import Counters, counter_delta

pytestmark = pytest.mark.fast


class TestCounters:
    def test_incr_and_get(self):
        c = Counters()
        c.incr("sims")
        c.incr("sims", 2)
        c.incr("waves", 0.5)
        assert c["sims"] == 3
        assert c.get("waves") == 0.5
        assert c.get("missing") == 0
        assert c.get("missing", -1) == -1

    def test_merge_counters_and_mappings(self):
        a = Counters({"x": 1})
        b = Counters({"x": 2, "y": 3})
        a.merge(b).merge({"y": 1, "z": 0.25})
        assert a.as_dict() == {"x": 3, "y": 4, "z": 0.25}
        # merging mutates only the receiver
        assert b.as_dict() == {"x": 2, "y": 3}

    def test_merge_order_independent(self):
        deltas = [{"x": 1}, {"x": 2, "y": 1}, {"y": 4.0}]
        forward = Counters()
        for delta in deltas:
            forward.merge(delta)
        backward = Counters()
        for delta in reversed(deltas):
            backward.merge(delta)
        assert forward == backward

    def test_bool_len_iter(self):
        assert not Counters()
        assert not Counters({"x": 0})       # all-zero counts as empty
        assert Counters({"x": 1})
        c = Counters({"a": 1, "b": 2})
        assert len(c) == 2
        assert sorted(c) == ["a", "b"]

    def test_eq_against_mapping(self):
        assert Counters({"a": 1}) == {"a": 1}
        assert Counters({"a": 1}) != {"a": 2}

    def test_pickle_round_trip(self):
        c = Counters({"sims": 7, "waves": 1.5})
        clone = pickle.loads(pickle.dumps(c))
        assert clone == c
        clone.incr("sims")
        assert clone != c

    def test_timer_accumulates(self):
        c = Counters()
        with c.timer("wall"):
            pass
        with c.timer("wall"):
            pass
        assert c["wall"] > 0.0

    def test_clear(self):
        c = Counters({"x": 1})
        c.clear()
        assert c.as_dict() == {}


class TestCounterDelta:
    def test_only_changes_reported(self):
        before = {"hits": 2, "waves": 5, "events": 100}
        after = {"hits": 2, "waves": 7, "events": 160}
        assert counter_delta(after, before) == {"waves": 2, "events": 60}

    def test_none_baseline_keeps_nonzero(self):
        assert counter_delta({"a": 0, "b": 3}, None) == {"b": 3}

    def test_new_names_included(self):
        assert counter_delta({"a": 1, "b": 2}, {"a": 1}) == {"b": 2}

    def test_delta_since_method(self):
        c = Counters({"a": 1})
        snapshot = c.as_dict()
        c.incr("a")
        c.incr("b", 2)
        assert c.delta_since(snapshot) == {"a": 1, "b": 2}

    def test_sum_of_deltas_equals_total(self):
        """The aggregation identity the engine's pool telemetry rests
        on: per-task deltas summed across any partition reproduce the
        absolute totals."""
        tasks = [{"waves": 3, "events": 10}, {"waves": 1}, {"events": 5}]
        worker_a = Counters()
        worker_b = Counters()
        parent = Counters()
        for i, task in enumerate(tasks):
            worker = worker_a if i % 2 == 0 else worker_b
            before = worker.as_dict()
            worker.merge(task)
            parent.merge(worker.delta_since(before))
        total = Counters()
        for task in tasks:
            total.merge(task)
        assert parent == total
