"""The warm-path fast lane: memo-served sweeps, bit-identity with the
engine path, partial warmth, chunked cancellation on the event loop,
and keep-alive client reuse against a real daemon."""

from __future__ import annotations

import asyncio

from repro.harness.tables import fastlane_rows
from repro.service.client import ServiceClient
from repro.service.daemon import TuningService, parse_sweep_request
from repro.service.registry import CANCELLED, DONE

from tests.service.test_daemon import canonical, local_oracle


def service_deltas(daemon, before):
    """Service-counter deltas since ``before`` (the counters object is
    process-global, so absolute values are unusable in tests)."""
    after = daemon.service.counters.as_dict()
    return {
        name: after.get(name, 0) - before.get(name, 0)
        for name in set(after) | set(before)
    }


def test_warm_resubmit_served_by_fastlane(fake_app_class, service_factory):
    daemon = service_factory([fake_app_class()])
    request = {"app": "fake", "strategy": "exhaustive"}
    cold = daemon.client.sweep(request)
    assert daemon.client.status(cold["id"])["lane"] == "engine"
    calls_after_cold = len(fake_app_class.calls)

    before = daemon.service.counters.as_dict()
    warm = daemon.client.sweep(request)
    deltas = service_deltas(daemon, before)

    status = daemon.client.status(warm["id"])
    assert status["lane"] == "fastlane"
    assert deltas["fastlane_sweeps"] == 1
    assert deltas["fastlane_configs"] == 10
    assert deltas.get("executor_dispatches", 0) == 0
    # nothing reached the application, and no replay work happened
    assert len(fake_app_class.calls) == calls_after_cold
    assert warm["stats"]["simulations"] == 0
    assert warm["stats"]["events_replayed"] == 0
    assert canonical(warm["result"]) == canonical(cold["result"])


def test_fastlane_bit_identical_to_engine_path(fake_app_class,
                                               service_factory):
    """The same warm request through a fastlane daemon, a
    fastlane-disabled daemon, and the one-shot oracle must produce the
    byte-identical result payload."""
    request = {"app": "fake", "strategy": "pareto"}
    lane_daemon = service_factory([fake_app_class()])
    lane_daemon.client.sweep(request)  # warm the memo
    warm_lane = lane_daemon.client.sweep(request)
    assert lane_daemon.client.status(warm_lane["id"])["lane"] == "fastlane"

    engine_daemon = service_factory([fake_app_class()], fastlane=False)
    engine_daemon.client.sweep(request)
    warm_engine = engine_daemon.client.sweep(request)
    assert (engine_daemon.client.status(warm_engine["id"])["lane"]
            == "engine")

    oracle = local_oracle(fake_app_class, request)
    assert canonical(warm_lane["result"]) == canonical(oracle)
    assert canonical(warm_lane["result"]) == canonical(warm_engine["result"])
    # and the synthetic stats delta counts the same cache traffic the
    # classic warm path reports
    for counter in ("simulations", "static_evaluations",
                    "static_cache_hits", "simulation_cache_hits",
                    "cache_hits"):
        assert warm_lane["stats"][counter] == warm_engine["stats"][counter]


def test_partially_warm_sweep_dispatches_only_misses(fake_app_class,
                                                     service_factory):
    daemon = service_factory([fake_app_class()])
    # Warms every static (evaluate_all sees the whole space) but only
    # 4 of the 10 valid measurements.
    sample = daemon.client.sweep({
        "app": "fake", "strategy": "random", "sample_size": 4, "seed": 7,
    })
    assert daemon.client.status(sample["id"])["lane"] == "engine"
    calls_after_sample = len(fake_app_class.calls)
    assert calls_after_sample == 4

    before = daemon.service.counters.as_dict()
    full = daemon.client.sweep({"app": "fake", "strategy": "exhaustive"})
    deltas = service_deltas(daemon, before)

    assert daemon.client.status(full["id"])["lane"] == "fastlane-partial"
    assert deltas["fastlane_partial"] == 1
    assert deltas["executor_dispatches"] == 1  # the miss-only dispatch
    assert deltas["fastlane_configs"] == 4     # the memo-served portion
    # exactly the 6 cold measurements reached the application
    assert len(fake_app_class.calls) - calls_after_sample == 6
    assert full["stats"]["simulations"] == 6
    assert full["stats"]["simulation_cache_hits"] == 4
    oracle = local_oracle(fake_app_class,
                          {"app": "fake", "strategy": "exhaustive"})
    assert canonical(full["result"]) == canonical(oracle)


def test_concurrent_warm_sweeps_interleave(fake_app_class,
                                           service_factory):
    """Fully-warm sweeps never enter the executor, so several can run
    at once even on one runtime."""
    daemon = service_factory([fake_app_class()])
    request = {"app": "fake", "strategy": "exhaustive"}
    daemon.client.sweep(request)
    before = daemon.service.counters.as_dict()
    jobs = [daemon.client.submit(request) for _ in range(4)]
    for job in jobs:
        status = daemon.client.wait(job["id"], timeout=30)
        assert status["state"] == "done"
        assert status["lane"] == "fastlane"
    deltas = service_deltas(daemon, before)
    assert deltas["fastlane_sweeps"] == 4
    assert deltas.get("executor_dispatches", 0) == 0
    payloads = [daemon.client.results(job["id"]) for job in jobs]
    for payload in payloads[1:]:
        assert canonical(payload["result"]) == canonical(
            payloads[0]["result"]
        )


def test_fastlane_cancellation_at_chunk_boundary(fake_app_class):
    """A cancel lands between chunks of a warm sweep being served on
    the event loop — the per-chunk ``await`` is what lets it in."""

    async def main():
        service = TuningService([fake_app_class()], workers=1)
        cold = parse_sweep_request(
            {"app": "fake", "strategy": "exhaustive"},
            service.apps_by_name,
        )
        job_cold = service.jobs.create(cold.runtime_key, cold.echo)
        await service._run_job(job_cold, cold)
        assert job_cold.state == DONE

        warm = parse_sweep_request(
            {"app": "fake", "strategy": "exhaustive", "chunk_size": 1},
            service.apps_by_name,
        )
        job = service.jobs.create(warm.runtime_key, warm.echo)

        async def watcher():
            while job.timed_done < 3:
                await asyncio.sleep(0)
            job.request_cancel()

        await asyncio.gather(
            service._run_job(job, warm), watcher()
        )
        state, lane, done, total = (
            job.state, job.lane, job.timed_done, job.timed_total
        )
        await service.close()
        return state, lane, done, total

    state, lane, done, total = asyncio.run(main())
    assert state == CANCELLED
    assert lane == "fastlane"
    assert total == 10
    assert 3 <= done < 10  # stopped at a chunk boundary, mid-sweep


def test_metrics_exposes_fastlane_counters(fake_app_class,
                                           service_factory):
    daemon = service_factory([fake_app_class()])
    request = {"app": "fake", "strategy": "exhaustive"}
    daemon.client.sweep(request)
    daemon.client.sweep(request)
    metrics = daemon.client.metrics()
    assert metrics["service"]["fastlane_sweeps"] >= 1
    assert "decoded_cache" in metrics
    assert set(metrics["decoded_cache"]) == {
        "decoded_cache_hits", "decoded_cache_misses",
        "decoded_cache_evictions", "decoded_cache_entries",
    }
    rows = fastlane_rows(metrics)
    by_name = {row["counter"]: row["value"] for row in rows}
    assert by_name["fastlane_sweeps"] >= 1
    assert by_name["executor_dispatches"] >= 1
    assert "store_bulk_reads" in by_name
    assert "keepalive_reuses" in by_name


def test_keepalive_client_reuses_connection(fake_app_class,
                                            service_factory):
    daemon = service_factory([fake_app_class()], keep_alive=True)
    client = ServiceClient(
        f"http://{daemon.client.host}:{daemon.client.port}",
        timeout=30, keep_alive=True,
    )
    try:
        before = daemon.service.counters.as_dict()
        for _ in range(5):
            assert client.healthz()["status"] == "ok"
        assert client.reused >= 4
        deltas = service_deltas(daemon, before)
        assert deltas["keepalive_reuses"] >= 4
        # A dead connection (server restart, request budget) recovers
        # transparently: retry-once on a fresh socket.
        client._connection.sock.close()
        assert client.healthz()["status"] == "ok"
    finally:
        client.close()


def test_keepalive_client_full_sweep_flow(fake_app_class,
                                          service_factory):
    """The polling ``sweep()`` helper — submit, poll, results — works
    unchanged over one persistent connection."""
    daemon = service_factory([fake_app_class()], keep_alive=True)
    client = ServiceClient(
        f"http://{daemon.client.host}:{daemon.client.port}",
        timeout=30, keep_alive=True,
    )
    try:
        payload = client.sweep({"app": "fake", "strategy": "exhaustive"})
        assert payload["result"]["timed_count"] == 10
        oracle = local_oracle(fake_app_class,
                              {"app": "fake", "strategy": "exhaustive"})
        assert canonical(payload["result"]) == canonical(oracle)
        assert client.reused >= 2  # submit + polls + results shared one socket
    finally:
        client.close()
