"""The daemon end-to-end: submit/status/results, validation,
cancellation, warm reuse, and bit-identity with the one-shot path."""

from __future__ import annotations

import json
import time

import pytest

from repro.service.client import ServiceError
from repro.service.daemon import (
    RequestError,
    parse_sweep_request,
    run_sweep,
)
from repro.tuning.engine import ExecutionEngine


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def local_oracle(fake_app_class, request_payload):
    """The one-shot CLI path: fresh app, fresh engine, same request."""
    request = parse_sweep_request(
        request_payload, {"fake": fake_app_class()}
    )
    app = fake_app_class()
    engine = ExecutionEngine.for_app(app, workers=1)
    try:
        return run_sweep(engine, request)
    finally:
        engine.close()


def test_submit_roundtrip_matches_one_shot(fake_app_class, service_factory):
    daemon = service_factory([fake_app_class()])
    request = {"app": "fake", "strategy": "exhaustive"}
    payload = daemon.client.sweep(request)
    oracle = local_oracle(fake_app_class, request)
    assert canonical(payload["result"]) == canonical(oracle)
    assert payload["result"]["timed_count"] == 10
    assert len(payload["result"]["invalid"]) == 2
    assert all("cannot launch" in entry["reason"]
               for entry in payload["result"]["invalid"])
    best = payload["result"]["best"]
    assert best["config"] == {"x": 0, "y": 1}
    assert best["seconds"] == pytest.approx(0.001)


def test_second_identical_submit_is_pure_cache(fake_app_class,
                                               service_factory):
    daemon = service_factory([fake_app_class()])
    request = {"app": "fake", "strategy": "exhaustive"}
    first = daemon.client.sweep(request)
    calls_after_first = len(fake_app_class.calls)
    second = daemon.client.sweep(request)
    assert canonical(first["result"]) == canonical(second["result"])
    # The resident engine's memo served everything: no new simulate()
    # calls reached the application, and the stats delta shows pure
    # cache traffic.
    assert len(fake_app_class.calls) == calls_after_first
    assert second["stats"]["simulations"] == 0
    assert second["stats"]["static_evaluations"] == 0
    assert second["stats"]["simulation_cache_hits"] == 10


def test_pareto_and_random_strategies(fake_app_class, service_factory):
    daemon = service_factory([fake_app_class()])
    pareto = daemon.client.sweep({"app": "fake", "strategy": "pareto"})
    assert pareto["result"]["strategy"] == "pareto"
    assert 0 < pareto["result"]["timed_count"] <= 10
    rand = daemon.client.sweep(
        {"app": "fake", "strategy": "random", "sample_size": 4, "seed": 7}
    )
    assert rand["result"]["timed_count"] == 4
    assert rand["result"]["requested_sample_size"] == 4
    oracle = local_oracle(
        fake_app_class,
        {"app": "fake", "strategy": "random", "sample_size": 4, "seed": 7},
    )
    assert canonical(rand["result"]) == canonical(oracle)


def test_explicit_config_subset(fake_app_class, service_factory):
    daemon = service_factory([fake_app_class()])
    subset = [{"x": 0, "y": 1}, {"x": 1, "y": 2}, {"x": 2, "y": 1}]
    payload = daemon.client.sweep(
        {"app": "fake", "strategy": "exhaustive", "configs": subset}
    )
    assert payload["result"]["space_size"] == 3
    assert payload["result"]["timed_count"] == 3
    assert [e["config"] for e in payload["result"]["timed"]] == subset


def test_validation_errors_are_400(fake_app_class, service_factory):
    daemon = service_factory([fake_app_class()])
    cases = [
        ({"app": "nope"}, "unknown app"),
        ({"app": "fake", "strategy": "nope"}, "unknown strategy"),
        ({"app": "fake", "bogus": 1}, "unknown request fields"),
        ({"app": "fake", "limit": 0}, "limit"),
        ({"app": "fake", "configs": [{"x": 0}]}, "parameters"),
        ({"app": "fake", "configs": [{"x": 99, "y": 1}]}, "not one of"),
        ({"app": "fake", "strategy": "random"}, "sample_size"),
        ({"app": "fake", "chunk_size": -1}, "chunk_size"),
        ({"app": "fake", "limit": 4, "configs": [{"x": 0, "y": 1}]},
         "not both"),
    ]
    for payload, needle in cases:
        with pytest.raises(ServiceError) as caught:
            daemon.client.submit(payload)
        assert caught.value.status == 400
        assert needle in caught.value.message


def test_unknown_sweep_is_404_and_results_conflict(fake_app_class,
                                                   service_factory):
    daemon = service_factory([fake_app_class()])
    with pytest.raises(ServiceError) as missing:
        daemon.client.status("sweep-999")
    assert missing.value.status == 404
    fake_app_class.delay = 0.1
    job = daemon.client.submit(
        {"app": "fake", "strategy": "exhaustive", "chunk_size": 1}
    )
    with pytest.raises(ServiceError) as running:
        daemon.client.results(job["id"])
    assert running.value.status == 409
    fake_app_class.delay = 0.0
    daemon.client.wait(job["id"])


def test_cancellation_stops_mid_sweep(fake_app_class, service_factory):
    fake_app_class.delay = 0.15
    daemon = service_factory([fake_app_class()])
    job = daemon.client.submit(
        {"app": "fake", "strategy": "exhaustive", "chunk_size": 1}
    )
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        status = daemon.client.status(job["id"])
        if status["state"] == "running" and status["timed_done"] >= 1:
            break
        time.sleep(0.02)
    else:
        pytest.fail("sweep never started timing")
    daemon.client.cancel(job["id"])
    status = daemon.client.wait(job["id"])
    assert status["state"] == "cancelled"
    assert len(fake_app_class.calls) < 10
    with pytest.raises(ServiceError) as results:
        daemon.client.results(job["id"])
    assert results.value.status == 409


def test_duplicate_configs_do_not_deadlock(fake_app_class,
                                           service_factory):
    """A submission repeating a configuration must complete instead of
    waiting on its own in-flight claim (the QUEUED-forever regression:
    the job would gather a future only its own finally released)."""
    daemon = service_factory([fake_app_class()])
    subset = [{"x": 0, "y": 1}, {"x": 0, "y": 1},
              {"x": 1, "y": 2}, {"x": 0, "y": 1}]
    job = daemon.client.submit(
        {"app": "fake", "strategy": "exhaustive", "configs": subset}
    )
    status = daemon.client.wait(job["id"], timeout=30)
    assert status["state"] == "done"
    # The duplicates deduped against nothing (no other sweep owns
    # them), not against this sweep's own claim.
    assert status["dedupe_hits"] == 0
    payload = daemon.client.results(job["id"])
    assert payload["result"]["best"]["config"] == {"x": 0, "y": 1}


def test_cancel_takes_effect_while_queued_behind_overlap(fake_app_class,
                                                         service_factory):
    """Cancelling a sweep parked on another sweep's in-flight futures
    must not wait for the owning sweep to finish."""
    fake_app_class.delay = 0.3
    daemon = service_factory([fake_app_class()])
    job_a = daemon.client.submit(
        {"app": "fake", "strategy": "exhaustive", "chunk_size": 1}
    )
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        status = daemon.client.status(job_a["id"])
        if status["state"] == "running" and status["timed_done"] >= 1:
            break
        time.sleep(0.02)
    else:
        pytest.fail("sweep A never started timing")
    # B's whole subset is claimed by A, so B queues awaiting A.
    job_b = daemon.client.submit({
        "app": "fake", "strategy": "exhaustive",
        "configs": [{"x": 0, "y": 1}, {"x": 1, "y": 1}],
    })
    assert daemon.client.status(job_b["id"])["state"] == "queued"
    daemon.client.cancel(job_b["id"])
    deadline = time.monotonic() + 2
    while time.monotonic() < deadline:
        status_b = daemon.client.status(job_b["id"])
        if status_b["state"] == "cancelled":
            break
        time.sleep(0.02)
    else:
        pytest.fail("queued sweep did not cancel until its owner ended")
    # The owning sweep is still running: the cancel did not wait it out.
    assert daemon.client.status(job_a["id"])["state"] == "running"
    fake_app_class.delay = 0.0
    assert daemon.client.wait(job_a["id"])["state"] == "done"


def test_healthz_and_metrics(fake_app_class, service_factory):
    daemon = service_factory([fake_app_class()])
    health = daemon.client.healthz()
    assert health["status"] == "ok"
    daemon.client.sweep({"app": "fake", "strategy": "exhaustive"})
    health = daemon.client.healthz()
    assert health["jobs"] == {"done": 1}
    assert health["runtimes"] == ["fake"]
    metrics = daemon.client.metrics()
    assert metrics["service"]["sweeps_completed"] >= 1
    assert metrics["runtimes"]["fake"]["simulations"] == 10
    assert metrics["inflight_keys"] == 0


def test_sim_overrides_run_on_a_separate_runtime(fake_app_class,
                                                 service_factory):
    daemon = service_factory([fake_app_class()])
    daemon.client.sweep({"app": "fake", "strategy": "exhaustive"})
    payload = daemon.client.sweep({
        "app": "fake", "strategy": "exhaustive",
        "sim_overrides": {"knob": 1},
    })
    # A distinct runtime: the override sweep re-simulated everything
    # on its own engine instead of poisoning the base runtime's caches.
    assert payload["stats"]["simulations"] == 10
    health = daemon.client.healthz()
    assert len(health["runtimes"]) == 2
    assert any(key.startswith("fake@") for key in health["runtimes"])


def test_parse_sweep_request_rejects_non_object(fake_app_class):
    with pytest.raises(RequestError):
        parse_sweep_request([1, 2], {"fake": fake_app_class()})
