"""The HTTP framing layer: routing, parsing, limits, error mapping."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import (
    HTTPError,
    Router,
    json_response,
    serve,
)


def build_router() -> Router:
    router = Router()

    async def root(request):
        return json_response({"path": "/", "query": request.query})

    async def echo(request, name):
        return json_response({"name": name, "body": request.json()})

    async def boom(request):
        raise RuntimeError("kaboom")

    router.add("GET", "/", root)
    router.add("POST", "/things/{name}", echo)
    router.add("GET", "/boom", boom)
    return router


async def _raw_exchange(port: int, data: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(data)
    await writer.drain()
    writer.write_eof()  # half-close: the server still writes its reply
    response = await reader.read()
    writer.close()
    await writer.wait_closed()
    return response


def exchange(data: bytes):
    """One request against a fresh server; returns (status, json body)."""

    async def run():
        server = await serve(build_router(), port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            raw = await _raw_exchange(port, data)
        finally:
            server.close()
            await server.wait_closed()
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        return status, json.loads(body) if body else None

    return asyncio.run(run())


def test_routing_and_query():
    status, body = exchange(b"GET /?alpha=1&beta=two HTTP/1.1\r\n\r\n")
    assert status == 200
    assert body == {"path": "/", "query": {"alpha": "1", "beta": "two"}}


def test_path_params_and_json_body():
    payload = json.dumps({"k": [1, 2]}).encode()
    request = (
        b"POST /things/widget HTTP/1.1\r\n"
        b"Content-Type: application/json\r\n"
        + f"Content-Length: {len(payload)}\r\n\r\n".encode()
        + payload
    )
    status, body = exchange(request)
    assert status == 200
    assert body == {"name": "widget", "body": {"k": [1, 2]}}


def test_unknown_path_is_404():
    status, body = exchange(b"GET /nope HTTP/1.1\r\n\r\n")
    assert status == 404
    assert "no route" in body["error"]


def test_wrong_method_is_405():
    status, body = exchange(b"DELETE / HTTP/1.1\r\n\r\n")
    assert status == 405
    assert "not allowed" in body["error"]


def test_bad_json_body_is_400():
    request = (
        b"POST /things/w HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot-json"
    )
    status, body = exchange(request)
    assert status == 400
    assert "not valid JSON" in body["error"]


def test_malformed_request_line_is_400():
    status, body = exchange(b"NONSENSE\r\n\r\n")
    assert status == 400
    assert "malformed request line" in body["error"]


def test_bad_content_length_is_400():
    status, body = exchange(
        b"POST /things/w HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
    )
    assert status == 400
    assert "Content-Length" in body["error"]


def test_negative_content_length_is_400():
    # readexactly(-5) would raise ValueError -> a spurious 500; the
    # negative length must be rejected at validation time instead.
    status, body = exchange(
        b"POST /things/w HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
    )
    assert status == 400
    assert "Content-Length" in body["error"]


def test_oversized_body_is_413():
    status, body = exchange(
        b"POST /things/w HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"
    )
    assert status == 413
    assert "exceeds" in body["error"]


def test_handler_exception_is_500():
    status, body = exchange(b"GET /boom HTTP/1.1\r\n\r\n")
    assert status == 500
    assert body["error"] == "internal server error"


def test_truncated_body_is_400():
    status, body = exchange(
        b"POST /things/w HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
    )
    assert status == 400
    assert "mid-body" in body["error"]


def test_router_resolve_raises_typed_errors():
    router = build_router()
    with pytest.raises(HTTPError) as missing:
        router.resolve("GET", "/absent")
    assert missing.value.status == 404
    with pytest.raises(HTTPError) as wrong_method:
        router.resolve("PATCH", "/")
    assert wrong_method.value.status == 405
    handler, params = router.resolve("POST", "/things/x%20y")
    assert params == {"name": "x y"}
    assert handler is not None


# ----------------------------------------------------------------------
# Keep-alive framing.


async def _read_framed_response(reader):
    """Parse one Content-Length-framed response off an open stream."""
    head = (await reader.readuntil(b"\r\n\r\n")).decode("latin-1")
    status = int(head.split()[1])
    headers = {}
    for line in head.split("\r\n")[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, json.loads(body) if body else None


def run_keepalive(scenario, **serve_kwargs):
    """Run ``scenario(port)`` against a keep-alive server."""

    async def main():
        server = await serve(build_router(), port=0, keep_alive=True,
                             **serve_kwargs)
        port = server.sockets[0].getsockname()[1]
        try:
            return await scenario(port)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(main())


def test_keepalive_back_to_back_requests():
    from repro.obs.metrics import Counters

    counters = Counters()

    async def scenario(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        results = []
        for _ in range(3):
            writer.write(b"GET /?n=1 HTTP/1.1\r\n\r\n")
            await writer.drain()
            results.append(await _read_framed_response(reader))
        writer.close()
        await writer.wait_closed()
        return results

    results = run_keepalive(scenario, counters=counters)
    for status, headers, body in results:
        assert status == 200
        assert headers["connection"] == "keep-alive"
        assert body["query"] == {"n": "1"}
    assert counters.as_dict() == {
        "keepalive_connections": 1, "keepalive_reuses": 2,
    }


def test_keepalive_request_budget_closes_connection():
    async def scenario(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        responses = []
        for _ in range(2):
            writer.write(b"GET / HTTP/1.1\r\n\r\n")
            await writer.drain()
            responses.append(await _read_framed_response(reader))
        trailing = await reader.read()  # budget reached: server closed
        writer.close()
        await writer.wait_closed()
        return responses, trailing

    responses, trailing = run_keepalive(scenario, max_requests=2)
    assert responses[0][1]["connection"] == "keep-alive"
    assert responses[1][1]["connection"] == "close"
    assert trailing == b""


def test_keepalive_honours_client_connection_close():
    async def scenario(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        await writer.drain()
        response = await _read_framed_response(reader)
        trailing = await reader.read()
        writer.close()
        await writer.wait_closed()
        return response, trailing

    (status, headers, _body), trailing = run_keepalive(scenario)
    assert status == 200
    assert headers["connection"] == "close"
    assert trailing == b""


def test_keepalive_handler_error_keeps_connection_open():
    """A 404 is a content problem, not a framing problem: the same
    connection must serve the next request."""

    async def scenario(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"GET /nope HTTP/1.1\r\n\r\n")
        await writer.drain()
        first = await _read_framed_response(reader)
        writer.write(b"GET / HTTP/1.1\r\n\r\n")
        await writer.drain()
        second = await _read_framed_response(reader)
        writer.close()
        await writer.wait_closed()
        return first, second

    first, second = run_keepalive(scenario)
    assert first[0] == 404
    assert first[1]["connection"] == "keep-alive"
    assert second[0] == 200


def test_keepalive_framing_error_closes_connection():
    """After a parse failure the stream position is untrusted: reply,
    then close, even mid keep-alive."""

    async def scenario(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"GET / HTTP/1.1\r\n\r\n")
        await writer.drain()
        good = await _read_framed_response(reader)
        writer.write(b"NONSENSE\r\n\r\n")
        await writer.drain()
        bad = await _read_framed_response(reader)
        trailing = await reader.read()
        writer.close()
        await writer.wait_closed()
        return good, bad, trailing

    good, bad, trailing = run_keepalive(scenario)
    assert good[0] == 200
    assert bad[0] == 400
    assert bad[1]["connection"] == "close"
    assert trailing == b""


def test_keepalive_mid_body_disconnect():
    async def scenario(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"POST /things/w HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        await writer.drain()
        writer.write_eof()
        response = await _read_framed_response(reader)
        trailing = await reader.read()
        writer.close()
        await writer.wait_closed()
        return response, trailing

    (status, headers, body), trailing = run_keepalive(scenario)
    assert status == 400
    assert "mid-body" in body["error"]
    assert headers["connection"] == "close"
    assert trailing == b""


def test_keepalive_enforces_line_limit_per_request():
    """Parse limits apply to every request on the connection, not just
    the first."""

    async def scenario(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"GET / HTTP/1.1\r\n\r\n")
        await writer.drain()
        good = await _read_framed_response(reader)
        writer.write(b"GET /" + b"x" * 9000 + b" HTTP/1.1\r\n\r\n")
        await writer.drain()
        bad = await _read_framed_response(reader)
        trailing = await reader.read()
        writer.close()
        await writer.wait_closed()
        return good, bad, trailing

    good, bad, trailing = run_keepalive(scenario)
    assert good[0] == 200
    assert bad[0] == 400
    assert "too long" in bad[2]["error"]
    assert trailing == b""


def test_default_connection_close_framing_unchanged():
    """Without keep_alive the server still closes after one request —
    and says so in the response headers."""

    async def main():
        server = await serve(build_router(), port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET / HTTP/1.1\r\n\r\n")
            await writer.drain()
            response = await _read_framed_response(reader)
            trailing = await reader.read()
            writer.close()
            await writer.wait_closed()
            return response, trailing
        finally:
            server.close()
            await server.wait_closed()

    (status, headers, _body), trailing = asyncio.run(main())
    assert status == 200
    assert headers["connection"] == "close"
    assert trailing == b""
