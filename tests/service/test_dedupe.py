"""Satellite 4: multi-client dedupe and persistent-store accounting.

Two clients submitting overlapping sweeps must produce results
bit-identical to serial one-shot runs, with the overlap served by the
in-flight registry (no duplicate simulations) and warm-store restarts
served by replay hits (no new SM replays).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.service.daemon import parse_sweep_request, run_sweep
from repro.tuning.engine import ExecutionEngine

#: the 10 launchable configurations of FakeApp's space, in space order
VALID = [{"x": x, "y": y} for x in range(5) for y in (1, 2)]


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def one_shot(fake_app_class, request_payload):
    request = parse_sweep_request(
        request_payload, {"fake": fake_app_class()}
    )
    engine = ExecutionEngine.for_app(fake_app_class(), workers=1)
    try:
        return run_sweep(engine, request)
    finally:
        engine.close()


def wait_until_timing(client, job_id: str) -> None:
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        status = client.status(job_id)
        if status["state"] == "running" and status["timed_done"] >= 1:
            return
        time.sleep(0.01)
    pytest.fail("sweep never started timing")


def test_overlapping_sweeps_share_inflight_work(fake_app_class,
                                                service_factory):
    fake_app_class.delay = 0.05
    daemon = service_factory([fake_app_class()])
    request_a = {"app": "fake", "strategy": "exhaustive",
                 "configs": VALID[:7], "chunk_size": 1}
    request_b = {"app": "fake", "strategy": "exhaustive",
                 "configs": VALID[3:], "chunk_size": 1}
    job_a = daemon.client.submit(request_a)
    wait_until_timing(daemon.client, job_a["id"])
    job_b = daemon.client.submit(request_b)
    status_a = daemon.client.wait(job_a["id"], timeout=60)
    status_b = daemon.client.wait(job_b["id"], timeout=60)
    assert status_a["state"] == "done"
    assert status_b["state"] == "done"

    # The four overlapping configurations (VALID[3:7]) were claimed by
    # sweep A, so B waited on them instead of re-running.
    assert status_b["dedupe_hits"] == 4
    calls = [tuple(sorted(call.items())) for call in fake_app_class.calls]
    assert len(calls) == 10
    assert len(set(calls)) == 10, "duplicate simulations slipped through"

    result_a = daemon.client.results(job_a["id"])
    result_b = daemon.client.results(job_b["id"])
    # B only simulated its three non-overlapping configurations; the
    # rest came out of the resident engine's memo once A released them.
    assert result_b["stats"]["simulations"] == 3
    assert result_b["stats"]["simulation_cache_hits"] == 4

    fake_app_class.reset()
    assert canonical(result_a["result"]) == canonical(
        one_shot(fake_app_class, request_a)
    )
    assert canonical(result_b["result"]) == canonical(
        one_shot(fake_app_class, request_b)
    )


def test_warm_store_restart_skips_sm_replay(service_factory, tmp_path):
    from repro.apps import all_applications

    apps = [app for app in all_applications() if app.name == "matmul"]
    assert apps, "matmul application missing"
    store = str(tmp_path / "store")
    request = {"app": "matmul", "strategy": "pareto", "limit": 12}

    first_daemon = service_factory([apps[0]], store=store)
    cold = first_daemon.client.sweep(request)
    first_daemon.close_now()

    second_daemon = service_factory([apps[0]], store=store)
    warm = second_daemon.client.sweep(request)

    assert canonical(warm["result"]) == canonical(cold["result"])
    # Simulations still run, but every SM replay comes from the store:
    # zero new replay events on the warm pass.
    assert warm["stats"]["store_hits"] > 0
    assert warm["stats"]["events_replayed"] == 0
    assert cold["stats"]["events_replayed"] > 0
