"""Zoo (adaptive) strategies through the service: validation, daemon
versus one-shot bit-identity, warm reuse, and cancellation plumbing."""

from __future__ import annotations

import json

import pytest

from repro.service.client import ServiceError
from repro.service.daemon import (
    RequestError,
    parse_sweep_request,
    run_sweep,
)
from repro.tuning.engine import ExecutionEngine
from repro.tuning.strategies import adaptive_strategy_names

pytestmark = pytest.mark.fast


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def local_oracle(fake_app_class, request_payload, workers=1):
    request = parse_sweep_request(
        request_payload, {"fake": fake_app_class()}
    )
    app = fake_app_class()
    engine = ExecutionEngine.for_app(app, workers=workers)
    try:
        return run_sweep(engine, request)
    finally:
        engine.close()


def test_parse_accepts_every_zoo_strategy(fake_app_class):
    apps = {"fake": fake_app_class()}
    for name in adaptive_strategy_names():
        sweep = parse_sweep_request(
            {"app": "fake", "strategy": name, "seed": 5, "budget": 4,
             "restrict": "pareto"},
            apps,
        )
        assert sweep.kind == "adaptive"
        assert sweep.select_kwargs["seed"] == 5
        assert sweep.select_kwargs["budget"] == 4
        assert sweep.select_kwargs["restrict"] == "pareto"
        assert sweep.echo["strategy"] == name
        assert sweep.requested_sample_size is None


def test_parse_rejects_zoo_fields_on_selection_strategies(fake_app_class):
    apps = {"fake": fake_app_class()}
    with pytest.raises(RequestError, match="unknown request fields"):
        parse_sweep_request(
            {"app": "fake", "strategy": "exhaustive", "budget": 4}, apps,
        )
    with pytest.raises(RequestError, match="unknown request fields"):
        parse_sweep_request(
            {"app": "fake", "strategy": "anneal", "sample_size": 4}, apps,
        )


def test_parse_rejects_bad_zoo_parameters(fake_app_class):
    apps = {"fake": fake_app_class()}
    with pytest.raises(RequestError, match="budget"):
        parse_sweep_request(
            {"app": "fake", "strategy": "genetic", "budget": 0}, apps,
        )
    with pytest.raises(RequestError, match="restrict"):
        parse_sweep_request(
            {"app": "fake", "strategy": "genetic", "restrict": "some"},
            apps,
        )
    with pytest.raises(RequestError, match="population"):
        parse_sweep_request(
            {"app": "fake", "strategy": "genetic", "population": 1}, apps,
        )


def test_zoo_sweep_matches_one_shot_oracle(fake_app_class, service_factory):
    daemon = service_factory([fake_app_class()])
    request = {"app": "fake", "strategy": "genetic", "seed": 7, "budget": 6}
    payload = daemon.client.sweep(request)
    oracle = local_oracle(fake_app_class, request)
    assert canonical(payload["result"]) == canonical(oracle)
    result = payload["result"]
    assert result["strategy"] == "genetic"
    assert result["budget"] == 6
    assert result["timed_count"] == 6
    assert result["seed"] == 7
    assert result["restrict"] == "full"
    assert len(result["trajectory"]) == 6
    # trajectory is (evaluations, best-so-far) and monotone
    bests = [seconds for _, seconds in result["trajectory"]]
    assert all(b <= a for a, b in zip(bests, bests[1:]))


def test_zoo_oracle_is_worker_count_invariant(fake_app_class):
    request = {"app": "fake", "strategy": "anneal", "seed": 3, "budget": 5}
    serial = local_oracle(fake_app_class, request, workers=1)
    pooled = local_oracle(fake_app_class, request, workers=2)
    assert canonical(serial) == canonical(pooled)


def test_second_zoo_sweep_is_pure_cache(fake_app_class, service_factory):
    """A repeated zoo sweep replays from the resident memo: same
    payload, zero new simulations (the adaptive path never uses the
    fast lane, but the engine's caches still serve it)."""
    daemon = service_factory([fake_app_class()])
    request = {"app": "fake", "strategy": "surrogate", "seed": 2,
               "budget": 6}
    first = daemon.client.sweep(request)
    calls_after_first = len(fake_app_class.calls)
    second = daemon.client.sweep(request)
    assert canonical(first["result"]) == canonical(second["result"])
    assert len(fake_app_class.calls) == calls_after_first
    assert second["stats"]["simulations"] == 0
    assert second["stats"]["simulation_cache_hits"] == 6


def test_zoo_restrict_pareto_times_only_the_subset(fake_app_class,
                                                   service_factory):
    daemon = service_factory([fake_app_class()])
    pareto = daemon.client.sweep({"app": "fake", "strategy": "pareto"})
    subset = {canonical(e["config"]) for e in pareto["result"]["timed"]}
    zoo = daemon.client.sweep(
        {"app": "fake", "strategy": "basin", "seed": 1,
         "restrict": "pareto", "budget": 50},
    )
    timed = {canonical(e["config"]) for e in zoo["result"]["timed"]}
    assert timed <= subset
    assert zoo["result"]["pool_size"] == len(subset)


def test_unknown_strategy_is_rejected_with_the_full_menu(fake_app_class,
                                                         service_factory):
    daemon = service_factory([fake_app_class()])
    with pytest.raises(ServiceError, match="unknown strategy"):
        daemon.client.submit({"app": "fake", "strategy": "hillclimb"})


def test_selection_payloads_carry_null_zoo_fields(fake_app_class,
                                                  service_factory):
    """The shared serializer emits the zoo keys for classic sweeps too
    (as nulls) — one payload shape everywhere."""
    daemon = service_factory([fake_app_class()])
    payload = daemon.client.sweep({"app": "fake", "strategy": "exhaustive"})
    result = payload["result"]
    assert result["trajectory"] is None
    assert result["budget"] is None
    assert result["restrict"] is None
    assert result["pool_size"] is None
