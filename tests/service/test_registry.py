"""Unit tests for the daemon's bookkeeping: in-flight claim semantics
(duplicate keys must never self-deadlock), bounded job retention, and
the two-sided cancellation edge."""

from __future__ import annotations

import asyncio

from repro.service.registry import (
    DONE,
    FAILED,
    RUNNING,
    InflightRegistry,
    JobTable,
    SweepJob,
)


def test_claim_collapses_duplicate_keys():
    """A repeated key in one claim is owned once — the caller must
    never be handed the future it just created for itself (that wait
    edge is a guaranteed deadlock)."""

    async def run():
        registry = InflightRegistry()
        owned, waiting = registry.claim(
            [("r", "a"), ("r", "a"), ("r", "b"), ("r", "a")]
        )
        assert owned == [("r", "a"), ("r", "b")]
        assert waiting == []
        assert len(registry) == 2
        registry.release(owned)
        assert len(registry) == 0

    asyncio.run(run())


def test_claim_duplicate_of_earlier_claimant_waits_once():
    async def run():
        registry = InflightRegistry()
        owned_a, waiting_a = registry.claim([("r", "a")])
        assert (owned_a, waiting_a) == ([("r", "a")], [])
        owned_b, waiting_b = registry.claim(
            [("r", "a"), ("r", "a"), ("r", "b")]
        )
        assert owned_b == [("r", "b")]
        assert len(waiting_b) == 1
        registry.release(owned_a)
        await asyncio.wait_for(asyncio.gather(*waiting_b), 1)
        registry.release(owned_b)
        assert len(registry) == 0

    asyncio.run(run())


def test_job_table_prunes_oldest_terminal_jobs():
    table = JobTable(max_jobs=3)
    old = [table.create("rt", {}) for _ in range(3)]
    for job in old:
        job.state = DONE
        job.result = {"payload": "big"}
    fresh = table.create("rt", {})
    # The oldest finished job (and its result payload) is gone; the
    # newer finished ones and the fresh job remain, in order.
    assert table.get(old[0].id) is None
    assert [job.id for job in table.all()] == [
        old[1].id, old[2].id, fresh.id
    ]
    old[1].state = FAILED
    another = table.create("rt", {})
    assert table.get(old[1].id) is None
    assert len(table.all()) == 3
    assert table.get(another.id) is another


def test_job_table_never_prunes_live_jobs():
    table = JobTable(max_jobs=1)
    live = [table.create("rt", {}) for _ in range(4)]
    for job in live:
        job.state = RUNNING
    table.create("rt", {})
    # Nothing terminal to drop: every live job survives over the cap.
    assert len(table.all()) == 5
    assert all(table.get(job.id) is not None for job in live)


def test_request_cancel_sets_event_and_resolves_waiter():
    async def run():
        job = SweepJob(id="sweep-1", runtime_key="rt", request={})
        waiter = asyncio.get_running_loop().create_future()
        job.cancel_waiter = waiter
        job.request_cancel()
        assert job.cancel_event.is_set()
        assert waiter.done()
        job.request_cancel()  # idempotent on a resolved waiter

    asyncio.run(run())
