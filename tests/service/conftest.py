"""Fixtures for the service suite: a fake application and a running
daemon (real sockets, real event loop, on a background thread)."""

from __future__ import annotations

import asyncio
import threading
import time
from types import SimpleNamespace

import pytest

from repro.arch.occupancy import LaunchError
from repro.service.client import ServiceClient
from repro.service.daemon import TuningService
from repro.tuning.space import ConfigSpace


class FakeBandwidth:
    @staticmethod
    def is_bandwidth_bound() -> bool:
        return False


class FakeApp:
    """Minimal Application-protocol stand-in (12 configs, 2 invalid).

    ``simulate`` records every call on a *class*-level list so tests
    observe work across the fresh instances the daemon constructs per
    runtime; ``delay`` (class attribute) slows measurements down for
    overlap/cancellation tests.
    """

    name = "fake"
    delay = 0.0
    #: every simulate() call across all instances, in call order
    calls: list = []
    _calls_lock = threading.Lock()

    def __init__(self) -> None:
        self.sim_overrides = None

    @classmethod
    def reset(cls, delay: float = 0.0) -> None:
        cls.calls = []
        cls.delay = delay

    def space(self) -> ConfigSpace:
        return ConfigSpace({"x": list(range(6)), "y": [1, 2]})

    def evaluate(self, config):
        if config["x"] == 5:
            raise LaunchError(f"x={config['x']} cannot launch")
        return SimpleNamespace(
            efficiency=1.0 / (1 + config["x"]),
            utilization=config["y"] / 2.0,
            bandwidth=FakeBandwidth(),
        )

    def simulate(self, config) -> float:
        with FakeApp._calls_lock:
            FakeApp.calls.append(dict(config))
        if FakeApp.delay:
            time.sleep(FakeApp.delay)
        return (config["x"] * 10 + config["y"]) / 1000.0


class RunningService:
    """A TuningService bound to an ephemeral port on its own loop."""

    def __init__(self, apps=None, **kwargs) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self._run, name="service-loop", daemon=True
        )
        self.thread.start()
        self.service = TuningService(apps, **kwargs)
        host, port = asyncio.run_coroutine_threadsafe(
            self.service.start("127.0.0.1", 0), self.loop
        ).result(30)
        self.client = ServiceClient(f"http://{host}:{port}", timeout=30)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def close(self) -> None:
        if self.loop.is_closed():
            return
        asyncio.run_coroutine_threadsafe(
            self.service.close(), self.loop
        ).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()

    #: alias used by tests that shut a daemon down mid-test (the
    #: factory's teardown close is a no-op afterwards)
    close_now = close


@pytest.fixture
def fake_app_class():
    FakeApp.reset()
    yield FakeApp
    FakeApp.reset()


@pytest.fixture
def service_factory():
    running = []

    def start(apps=None, **kwargs) -> RunningService:
        instance = RunningService(apps, **kwargs)
        running.append(instance)
        return instance

    yield start
    for instance in running:
        instance.close()
