"""Shared fixtures and kernel-building helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.ir import DataType, Dim3, KernelBuilder
from repro.ir.builder import CTAID_X, CTAID_Y, TID_X, TID_Y

#: test directories cheap enough for the CI smoke job (synthetic
#: spaces, no full-application sweeps) — everything inside is
#: automatically tagged with the ``fast`` marker
_FAST_DIRS = (
    os.path.join("tests", "tuning"),
    os.path.join("tests", "ptx"),
    os.path.join("tests", "arch"),
    os.path.join("tests", "ir"),
    os.path.join("tests", "obs"),
    os.path.join("tests", "store"),
    os.path.join("tests", "service"),
)


def pytest_collection_modifyitems(items):
    for item in items:
        path = str(item.fspath)
        if any(directory in path for directory in _FAST_DIRS):
            item.add_marker(pytest.mark.fast)


def build_saxpy(block: int = 64, grid: int = 4) -> "Kernel":
    """y[i] = a*x[i] + y[i] — the smallest useful kernel."""
    builder = KernelBuilder("saxpy", block_dim=Dim3(block), grid_dim=Dim3(grid))
    x = builder.param_ptr("x", DataType.F32)
    y = builder.param_ptr("y", DataType.F32)
    a = builder.param_scalar("a", DataType.F32)
    index = builder.mad(CTAID_X, block, TID_X)
    x_val = builder.ld(x, index)
    y_val = builder.ld(y, index)
    builder.st(y, index, builder.mad(a, x_val, y_val))
    return builder.finish()


def build_tiled_matmul(n: int = 32, tile: int = 16) -> "Kernel":
    """The Figure 2(a) kernel at a test-friendly size."""
    builder = KernelBuilder(
        "mm_test", block_dim=Dim3(tile, tile), grid_dim=Dim3(n // tile, n // tile)
    )
    a = builder.param_ptr("A", DataType.F32)
    b = builder.param_ptr("B", DataType.F32)
    c = builder.param_ptr("C", DataType.F32)
    a_tile = builder.shared("As", DataType.F32, (tile, tile))
    b_tile = builder.shared("Bs", DataType.F32, (tile, tile))
    row = builder.mad(CTAID_Y, tile, TID_Y)
    index_a = builder.mad(row, n, TID_X)
    index_b = builder.mad(TID_Y, n, builder.mad(CTAID_X, tile, TID_X))
    index_c = builder.mad(row, n, builder.mad(CTAID_X, tile, TID_X))
    shared_idx = builder.mad(TID_Y, tile, TID_X)
    a_row = builder.mul(TID_Y, tile)
    acc = builder.mov(0.0)
    with builder.loop(0, n // tile, label="ktile"):
        a_val = builder.ld(a, index_a)
        b_val = builder.ld(b, index_b)
        builder.st(a_tile, shared_idx, a_val)
        builder.st(b_tile, shared_idx, b_val)
        builder.add(index_a, tile, dest=index_a)
        builder.add(index_b, tile * n, dest=index_b)
        builder.bar()
        with builder.loop(0, tile, label="inner") as i:
            a_elem = builder.ld(a_tile, builder.add(a_row, i))
            b_elem = builder.ld(b_tile, builder.mad(i, tile, TID_X))
            builder.mad(a_elem, b_elem, acc, dest=acc)
        builder.bar()
    builder.st(c, index_c, acc)
    return builder.finish()


def run_matmul_kernel(kernel, n: int, seed: int = 7):
    """Interpret a matmul kernel; returns (result, numpy reference)."""
    from repro.interp import launch

    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n), dtype=np.float32)
    b = rng.standard_normal((n, n), dtype=np.float32)
    c = np.zeros(n * n, dtype=np.float32)
    launch(kernel, {"A": a.ravel().copy(), "B": b.ravel().copy(), "C": c})
    reference = (a.astype(np.float64) @ b.astype(np.float64)).astype(np.float32)
    return c.reshape(n, n), reference


@pytest.fixture
def saxpy_kernel():
    return build_saxpy()


@pytest.fixture
def matmul_kernel():
    return build_tiled_matmul()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
