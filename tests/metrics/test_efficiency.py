"""Equation 1."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import efficiency


class TestEfficiency:
    def test_paper_worked_example(self):
        # Section 4: Instr = 15150, Threads = 2^24 -> 3.93e-12.
        assert efficiency(15150, 2 ** 24) == pytest.approx(3.93e-12, rel=1e-2)

    def test_fewer_instructions_is_better(self):
        assert efficiency(100, 1024) > efficiency(200, 1024)

    def test_fewer_threads_is_better(self):
        assert efficiency(100, 512) > efficiency(100, 1024)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            efficiency(0, 1024)
        with pytest.raises(ValueError):
            efficiency(100, 0)

    @given(st.floats(min_value=1, max_value=1e7),
           st.integers(min_value=1, max_value=2 ** 30))
    def test_positive_and_monotone(self, instructions, threads):
        value = efficiency(instructions, threads)
        assert value > 0
        assert efficiency(instructions * 2, threads) < value
