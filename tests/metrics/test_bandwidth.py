"""The bandwidth-boundedness screen."""

import pytest

from repro.metrics import estimate_bandwidth
from repro.ptx import profile_kernel
from repro.tuning import Configuration


class TestScreen:
    def test_8x8_tiles_flagged_16x16_not(self):
        """The paper's matmul bandwidth story, statically visible."""
        from repro.apps import MatMul

        app = MatMul()
        flags = {}
        for tile in (8, 16):
            config = Configuration({
                "tile": tile, "rect": 1, "unroll": 1,
                "prefetch": False, "spill": False,
            })
            report = app.evaluate(config)
            flags[tile] = report.bandwidth.demand_ratio
        assert flags[8] > flags[16]
        assert flags[8] > 1.0             # 8x8 demands more than the share

    def test_compute_bound_kernel_unflagged(self):
        from repro.apps import CoulombicPotential

        app = CoulombicPotential()
        report = app.evaluate(app.default_configuration())
        assert not report.bandwidth.is_bandwidth_bound()

    def test_memory_fraction(self):
        from tests.conftest import build_saxpy

        profile = profile_kernel(build_saxpy())
        estimate = estimate_bandwidth(profile, threads_per_block=64,
                                      blocks_per_sm=3)
        assert estimate.memory_instruction_fraction == pytest.approx(3 / 5)

    def test_threshold_parameter(self):
        from tests.conftest import build_saxpy

        profile = profile_kernel(build_saxpy())
        estimate = estimate_bandwidth(profile, threads_per_block=64,
                                      blocks_per_sm=3)
        assert estimate.is_bandwidth_bound(threshold=0.0001)
