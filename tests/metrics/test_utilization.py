"""Equation 2."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import utilization


class TestUtilization:
    def test_paper_worked_example(self):
        # Instr=15150, Regions=769, W_TB=8, B_SM=2 -> ~227.
        value = utilization(15150, 769, 8, 2)
        assert value == pytest.approx(227, rel=5e-3)

    def test_bracket_terms(self):
        # (W_TB-1)/2 + (B_SM-1)*W_TB with Instr/Regions = 1.
        assert utilization(1, 1, 8, 2) == pytest.approx(3.5 + 8)
        assert utilization(1, 1, 8, 1) == pytest.approx(3.5)
        assert utilization(1, 1, 1, 1) == 0.0  # a lone warp hides nothing

    def test_more_blocks_help(self):
        assert utilization(100, 10, 8, 3) > utilization(100, 10, 8, 2)

    def test_more_regions_hurt(self):
        assert utilization(100, 20, 8, 2) < utilization(100, 10, 8, 2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            utilization(100, 0, 8, 2)
        with pytest.raises(ValueError):
            utilization(100, 10, 0, 2)
        with pytest.raises(ValueError):
            utilization(100, 10, 8, 0)

    @given(
        st.floats(min_value=1, max_value=1e6),
        st.integers(min_value=1, max_value=10000),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=8),
    )
    def test_nonnegative_and_monotone_in_occupancy(
        self, instructions, regions, warps, blocks
    ):
        value = utilization(instructions, regions, warps, blocks)
        assert value >= 0
        assert utilization(instructions, regions, warps, blocks + 1) >= value
