"""Coalescing-aware metric extension (Section 7 future work)."""

import pytest

from repro.metrics import adjusted_point, coalescing_adjusted
from repro.tuning import Configuration, pareto_indices


class TestAdjustment:
    def test_coalesced_kernel_unchanged(self):
        from repro.apps import MatMul

        app = MatMul()
        report = app.evaluate(Configuration({
            "tile": 16, "rect": 1, "unroll": 1,
            "prefetch": False, "spill": False,
        }))
        adjusted = coalescing_adjusted(report)
        assert adjusted.penalty_instructions == 0.0
        assert adjusted.efficiency == pytest.approx(report.efficiency)
        assert adjusted.utilization == report.utilization

    def test_uncoalesced_kernel_penalized(self):
        from repro.apps import MatMul

        app = MatMul()
        report = app.evaluate(Configuration({
            "tile": 8, "rect": 1, "unroll": 1,
            "prefetch": False, "spill": False,
        }))
        adjusted = coalescing_adjusted(report)
        assert adjusted.penalty_instructions > 0
        assert adjusted.efficiency < report.efficiency

    def test_factor_parameter(self):
        from repro.apps import MatMul

        app = MatMul()
        report = app.evaluate(Configuration({
            "tile": 8, "rect": 1, "unroll": 1,
            "prefetch": False, "spill": False,
        }))
        mild = coalescing_adjusted(report, uncoalesced_traffic_factor=2.0)
        harsh = coalescing_adjusted(report, uncoalesced_traffic_factor=8.0)
        assert harsh.efficiency < mild.efficiency


class TestImprovedPruning:
    def test_matmul_frontier_loses_8x8_filler(self):
        """With the coalescing-aware metric, the matmul Pareto curve is
        no longer dominated by bandwidth-crippled 8x8 points (the
        Section 5.3 weakness the future-work item targets) and still
        contains the true optimum."""
        from repro.apps import MatMul
        from repro.arch import LaunchError

        app = MatMul()
        entries = []
        for config in app.space():
            try:
                entries.append((config, app.evaluate(config)))
            except LaunchError:
                continue

        raw_points = [(r.efficiency, r.utilization) for _, r in entries]
        adjusted_points = [adjusted_point(r) for _, r in entries]

        raw_tiles = [entries[i][0]["tile"] for i in pareto_indices(raw_points)]
        adjusted_front = pareto_indices(adjusted_points)
        adjusted_tiles = [entries[i][0]["tile"] for i in adjusted_front]

        assert raw_tiles.count(8) > 0          # the 5.3 phenomenon
        assert adjusted_tiles.count(8) < raw_tiles.count(8)

        best = min(
            range(len(entries)),
            key=lambda i: app.simulate(entries[i][0]),
        )
        assert best in set(adjusted_front)
