"""The analytical cost model: bounds, correlation with the simulator."""

import pytest

from repro.arch import LaunchError
from repro.metrics import analytical_estimate
from repro.sim import simulate_kernel
from repro.tuning import Configuration
from tests.conftest import build_tiled_matmul


class TestBasics:
    def test_fields(self):
        estimate = analytical_estimate(build_tiled_matmul())
        assert estimate.cycles > 0
        assert estimate.seconds > 0
        assert estimate.bound in ("issue", "sfu", "bandwidth")
        assert estimate.blocks_per_sm_total >= 1

    def test_deterministic(self):
        first = analytical_estimate(build_tiled_matmul())
        second = analytical_estimate(build_tiled_matmul())
        assert first.cycles == second.cycles

    def test_invalid_configuration_raises(self):
        from repro.apps import MatMul

        app = MatMul()
        kernel = app.kernel(Configuration({
            "tile": 16, "rect": 4, "unroll": "complete",
            "prefetch": True, "spill": False,
        }))
        with pytest.raises(LaunchError):
            analytical_estimate(kernel)


class TestBoundIdentification:
    def test_matmul_16x16_issue_bound(self):
        from repro.apps import MatMul

        app = MatMul()
        kernel = app.kernel(Configuration({
            "tile": 16, "rect": 1, "unroll": 1,
            "prefetch": False, "spill": False,
        }))
        assert analytical_estimate(kernel).bound == "issue"

    def test_matmul_8x8_bandwidth_bound(self):
        from repro.apps import MatMul

        app = MatMul()
        kernel = app.kernel(Configuration({
            "tile": 8, "rect": 1, "unroll": "complete",
            "prefetch": False, "spill": False,
        }))
        assert analytical_estimate(kernel).bound == "bandwidth"

    def test_cp_sfu_heavy(self):
        from repro.apps import CoulombicPotential

        app = CoulombicPotential()
        kernel = app.kernel(Configuration({
            "block": 128, "tiling": 16, "coalesce_output": True,
        }))
        estimate = analytical_estimate(kernel)
        # Deep tiling amortizes ALU work; the SFUs close in on the port.
        assert estimate.sfu_cycles > 0.5 * estimate.issue_cycles


class TestAgainstSimulator:
    def _correlation(self, app, configs):
        from scipy.stats import spearmanr

        analytical = []
        simulated = []
        for config in configs:
            try:
                kernel = app.kernel(config)
                analytical.append(analytical_estimate(kernel).seconds)
            except LaunchError:
                continue
            simulated.append(app.simulate(config))
        rho, _ = spearmanr(analytical, simulated)
        return rho

    def test_cp_rank_correlation(self):
        from repro.apps import CoulombicPotential

        app = CoulombicPotential()
        rho = self._correlation(app, app.space().configurations())
        assert rho > 0.85

    def test_matmul_rank_correlation(self):
        from repro.apps import MatMul

        app = MatMul()
        rho = self._correlation(app, app.space().configurations())
        assert rho > 0.7

    def test_magnitude_within_factor_three(self):
        from repro.apps import MatMul

        app = MatMul()
        config = Configuration({
            "tile": 16, "rect": 1, "unroll": "complete",
            "prefetch": False, "spill": False,
        })
        kernel = app.kernel(config)
        modeled = analytical_estimate(kernel).seconds
        simulated = simulate_kernel(kernel).seconds
        assert modeled == pytest.approx(simulated, rel=2.0)
