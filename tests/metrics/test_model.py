"""End-to-end metric evaluation of kernels."""

import pytest

from repro.arch import LaunchError
from repro.metrics import evaluate_kernel
from tests.conftest import build_saxpy, build_tiled_matmul


class TestEvaluateKernel:
    def test_matmul_report(self):
        report = evaluate_kernel(build_tiled_matmul(n=32))
        assert report.regions == 7
        assert report.threads == 32 * 32
        assert report.warps_per_block == 8
        assert report.blocks_per_sm == 2
        assert report.efficiency == pytest.approx(
            1.0 / (report.instructions * report.threads)
        )
        assert report.utilization > 0

    def test_dominance(self):
        saxpy = evaluate_kernel(build_saxpy())
        matmul = evaluate_kernel(build_tiled_matmul())
        assert not saxpy.dominates(saxpy)
        if saxpy.efficiency > matmul.efficiency and saxpy.utilization > matmul.utilization:
            assert saxpy.dominates(matmul)

    def test_invalid_kernel_raises(self):
        from repro.apps import MatMul
        from repro.tuning import Configuration

        app = MatMul()
        kernel = app.kernel(Configuration({
            "tile": 16, "rect": 4, "unroll": "complete",
            "prefetch": True, "spill": False,
        }))
        with pytest.raises(LaunchError):
            evaluate_kernel(kernel)

    def test_bandwidth_estimate_attached(self):
        report = evaluate_kernel(build_tiled_matmul())
        assert report.bandwidth.demand_bytes_per_cycle >= 0
        assert report.bandwidth.available_bytes_per_cycle == pytest.approx(
            86.4 / 1.35 / 16
        )
