"""Memory-space properties against Table 1."""

from repro.arch import (
    SHARED_MEMORY_BANKS,
    MemorySpace,
    memory_properties,
)


class TestMemorySpaces:
    def test_read_only_spaces(self):
        assert MemorySpace.CONSTANT.is_read_only
        assert MemorySpace.TEXTURE.is_read_only
        assert not MemorySpace.GLOBAL.is_read_only
        assert not MemorySpace.SHARED.is_read_only
        assert not MemorySpace.LOCAL.is_read_only

    def test_on_chip_spaces(self):
        assert MemorySpace.SHARED.is_on_chip
        assert MemorySpace.CONSTANT.is_on_chip
        assert MemorySpace.TEXTURE.is_on_chip
        assert not MemorySpace.GLOBAL.is_on_chip
        assert not MemorySpace.LOCAL.is_on_chip


class TestTable1:
    def test_all_spaces_described(self):
        properties = memory_properties()
        assert set(properties) == set(MemorySpace)

    def test_global_latency_band(self):
        latency = memory_properties()[MemorySpace.GLOBAL].latency_cycles
        assert 200 <= latency <= 300

    def test_local_shares_global_path(self):
        properties = memory_properties()
        assert (
            properties[MemorySpace.LOCAL].latency_cycles
            == properties[MemorySpace.GLOBAL].latency_cycles
        )

    def test_on_chip_latencies_near_register(self):
        properties = memory_properties()
        assert properties[MemorySpace.SHARED].latency_cycles == 0
        assert properties[MemorySpace.CONSTANT].latency_cycles == 0

    def test_texture_latency_over_100(self):
        assert memory_properties()[MemorySpace.TEXTURE].latency_cycles > 100

    def test_sixteen_banks(self):
        assert SHARED_MEMORY_BANKS == 16

    def test_read_only_flags_match_space(self):
        for space, props in memory_properties().items():
            assert props.read_only == space.is_read_only
