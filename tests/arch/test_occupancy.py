"""Occupancy calculation against the paper's Section 2.2 worked example."""

import pytest

from repro.arch import (
    DeviceSpec,
    LaunchError,
    blocks_per_sm,
    check_block_validity,
    warps_per_block,
)


class TestPaperExample:
    """Section 2.2: 256 threads/block, 10 regs/thread, 4KB shared."""

    def test_three_blocks_fit(self):
        occupancy = blocks_per_sm(256, 10, 4096)
        assert occupancy.blocks_per_sm == 3
        assert occupancy.threads_per_sm == 768

    def test_one_extra_register_drops_to_two_blocks(self):
        # 11 regs * 768 threads = 8448 > 8192 (a 33% thread loss from a
        # 10% register increase).
        occupancy = blocks_per_sm(256, 11, 4096)
        assert occupancy.blocks_per_sm == 2
        assert occupancy.threads_per_sm == 512
        assert occupancy.limiting_resource == "registers"

    def test_extra_shared_kilobyte_keeps_three_blocks(self):
        occupancy = blocks_per_sm(256, 10, 5120)
        assert occupancy.blocks_per_sm == 3


class TestLimits:
    def test_eight_block_cap(self):
        occupancy = blocks_per_sm(64, 4, 128)
        assert occupancy.blocks_per_sm == 8
        assert occupancy.limiting_resource == "blocks"

    def test_thread_limited(self):
        occupancy = blocks_per_sm(256, 4, 128)
        assert occupancy.blocks_per_sm == 3
        assert occupancy.limiting_resource == "threads"

    def test_shared_memory_limited(self):
        occupancy = blocks_per_sm(64, 4, 8192)
        assert occupancy.blocks_per_sm == 2
        assert occupancy.limiting_resource == "shared_memory"

    def test_register_limited(self):
        occupancy = blocks_per_sm(128, 32, 128)
        assert occupancy.blocks_per_sm == 2
        assert occupancy.limiting_resource == "registers"


class TestInvalidConfigurations:
    def test_block_too_large(self):
        with pytest.raises(LaunchError, match="512-thread limit"):
            blocks_per_sm(513, 4, 128)

    def test_register_file_overflow(self):
        # The paper's invalid-executable case (Figure 3, far right).
        with pytest.raises(LaunchError, match="register file"):
            blocks_per_sm(256, 33, 128)

    def test_shared_memory_overflow(self):
        with pytest.raises(LaunchError, match="scratchpad"):
            blocks_per_sm(64, 4, 16385)

    def test_empty_block(self):
        with pytest.raises(LaunchError):
            blocks_per_sm(0, 4, 128)

    def test_check_block_validity_reports_reason(self):
        assert check_block_validity(256, 10, 4096) is None
        assert "register" in check_block_validity(512, 17, 0)
        assert "512-thread" in check_block_validity(768, 1, 0)


class TestWarpsPerBlock:
    @pytest.mark.parametrize("threads, expected", [
        (1, 1), (31, 1), (32, 1), (33, 2), (256, 8), (512, 16),
    ])
    def test_rounds_up(self, threads, expected):
        assert warps_per_block(threads) == expected


class TestCustomDevice:
    def test_occupancy_respects_device(self):
        tiny = DeviceSpec(registers_per_sm=1024)
        occupancy = blocks_per_sm(64, 8, 128, device=tiny)
        assert occupancy.blocks_per_sm == 2
        assert occupancy.limiting_resource == "registers"

    def test_warps_per_sm(self):
        occupancy = blocks_per_sm(256, 10, 4096)
        assert occupancy.warps_per_block == 8
        assert occupancy.warps_per_sm == 24
