"""Machine-model constants against the paper's Section 2.1 numbers."""

import pytest

from repro.arch import GEFORCE_8800_GTX, DeviceSpec


class TestGeForce8800:
    def test_peak_gflops_matches_paper(self):
        # 16 SM * 18 FLOP/SM * 1.35 GHz = 388.8 GFLOPS (Section 2.1).
        assert GEFORCE_8800_GTX.peak_gflops == pytest.approx(388.8)

    def test_sm_organization(self):
        assert GEFORCE_8800_GTX.num_sms == 16
        assert GEFORCE_8800_GTX.sps_per_sm == 8
        assert GEFORCE_8800_GTX.sfus_per_sm == 2
        assert GEFORCE_8800_GTX.clock_ghz == 1.35

    def test_table2_limits(self):
        device = GEFORCE_8800_GTX
        assert device.max_threads_per_sm == 768
        assert device.max_blocks_per_sm == 8
        assert device.registers_per_sm == 8192
        assert device.shared_memory_per_sm == 16384
        assert device.max_threads_per_block == 512

    def test_memory_bandwidth(self):
        assert GEFORCE_8800_GTX.global_memory_bandwidth_gbps == pytest.approx(86.4)
        assert GEFORCE_8800_GTX.bytes_per_cycle == pytest.approx(86.4 / 1.35)

    def test_global_latency_in_paper_band(self):
        assert 200 <= GEFORCE_8800_GTX.global_latency_cycles <= 300

    def test_warp_issues_over_four_cycles(self):
        assert GEFORCE_8800_GTX.warp_issue_cycles == 4
        assert GEFORCE_8800_GTX.warp_size == 32

    def test_cycles_to_seconds(self):
        assert GEFORCE_8800_GTX.cycles_to_seconds(1.35e9) == pytest.approx(1.0)
        assert GEFORCE_8800_GTX.cycles_to_seconds(0) == 0.0


class TestCustomDevice:
    def test_spec_is_immutable(self):
        with pytest.raises(Exception):
            GEFORCE_8800_GTX.num_sms = 4

    def test_alternative_device(self):
        half = DeviceSpec(name="half-8800", num_sms=8)
        assert half.peak_gflops == pytest.approx(388.8 / 2)
        assert half.bytes_per_cycle == GEFORCE_8800_GTX.bytes_per_cycle
