"""Coulombic Potential application."""

import pytest

from repro.apps import CoulombicPotential
from repro.arch import LaunchError
from repro.tuning import Configuration
from tests.apps.helpers import check_config_against_reference


@pytest.fixture(scope="module")
def app():
    return CoulombicPotential()


@pytest.fixture(scope="module")
def small():
    return CoulombicPotential().test_instance()


class TestSpace:
    def test_raw_size_is_40(self, app):
        assert app.space().raw_size == 40

    def test_valid_size_is_38_as_in_table4(self, app):
        valid = 0
        for config in app.space():
            try:
                app.evaluate(config)
                valid += 1
            except LaunchError:
                pass
        assert valid == 38

    def test_invalid_are_heavy_tiling_large_blocks(self, app):
        invalid = []
        for config in app.space():
            try:
                app.evaluate(config)
            except LaunchError:
                invalid.append(config)
        assert len(invalid) == 2
        assert all(c["tiling"] == 16 and c["block"] == 384 for c in invalid)


class TestCorrectness:
    CONFIGS = [
        {"block": 64, "tiling": 1, "coalesce_output": True},
        {"block": 128, "tiling": 4, "coalesce_output": True},
        {"block": 64, "tiling": 8, "coalesce_output": False},
        {"block": 384, "tiling": 2, "coalesce_output": True},
    ]

    @pytest.mark.parametrize(
        "params", CONFIGS,
        ids=lambda p: f"b{p['block']}t{p['tiling']}"
                      f"{'c' if p['coalesce_output'] else 'u'}",
    )
    def test_config_matches_numpy(self, small, params):
        check_config_against_reference(small, Configuration(params),
                                       rtol=2e-3, atol=2e-3)


class TestPaperFacts:
    def test_efficiency_improves_monotonically_with_tiling(self, app):
        """Figure 5: 'efficiency improves monotonically ... with
        increasing tiling factor'."""
        values = [
            app.evaluate(Configuration({
                "block": 128, "tiling": t, "coalesce_output": True,
            })).efficiency
            for t in (1, 2, 4, 8, 16)
        ]
        assert values == sorted(values)

    def test_utilization_worsens_monotonically_with_tiling(self, app):
        values = [
            app.evaluate(Configuration({
                "block": 128, "tiling": t, "coalesce_output": True,
            })).utilization
            for t in (1, 2, 4, 8, 16)
        ]
        assert values == sorted(values, reverse=True)

    def test_rsqrt_regions_dominate(self, app):
        """CP has no global loads in its loop; its blocking events are
        the SFU rsqrts (one per point per atom) plus the entry."""
        config = Configuration({"block": 128, "tiling": 2,
                                "coalesce_output": True})
        report = app.evaluate(config)
        assert report.regions == 2 * app.num_atoms + 1

    def test_sfu_instruction_mix(self, app):
        from repro.ptx import InstrClass

        report = app.evaluate(app.default_configuration())
        assert report.profile.mix[InstrClass.SFU] == app.num_atoms
        assert report.profile.mix[InstrClass.CONST_LOAD] == 4 * app.num_atoms

    def test_uncoalesced_output_slower(self, app):
        def seconds(coalesce):
            return app.simulate(Configuration({
                "block": 128, "tiling": 4, "coalesce_output": coalesce,
            }))

        assert seconds(False) >= seconds(True)

    def test_optimal_tiling_is_interior(self, app):
        """Figure 5: the optimum balances the two metrics; time stops
        improving once utilization collapses."""
        times = {
            t: app.simulate(Configuration({
                "block": 128, "tiling": t, "coalesce_output": True,
            }))
            for t in (1, 2, 4, 8, 16)
        }
        assert times[8] < times[1]
        # The step from 8 to 16 is where improvement stalls: much
        # smaller than any earlier step.
        gain_4_8 = times[4] - times[8]
        gain_8_16 = times[8] - times[16]
        assert gain_8_16 < gain_4_8 / 2
