"""Cross-application space summary (locks the Table 4 reproduction)."""

import pytest

from repro.apps import all_applications
from repro.arch import LaunchError

EXPECTED = {
    # name: (raw size, valid size, paper size)
    "matmul": (96, 94, 93),
    "cp": (40, 38, 38),
    "sad": (828, 808, 908),
    "mri-fhd": (175, 175, 175),
}


@pytest.fixture(scope="module")
def apps():
    return {app.name: app for app in all_applications()}


class TestSpaceSummary:
    @pytest.mark.parametrize("name", list(EXPECTED))
    def test_sizes(self, apps, name):
        app = apps[name]
        raw, valid, paper = EXPECTED[name]
        configs = app.space().configurations()
        assert len(configs) == raw
        launchable = 0
        for config in configs:
            try:
                app.evaluate(config)
                launchable += 1
            except LaunchError:
                pass
        assert launchable == valid
        assert app.paper_space_size == paper

    @pytest.mark.parametrize("name", list(EXPECTED))
    def test_spaces_are_deterministic(self, apps, name):
        app = apps[name]
        assert app.space().configurations() == app.space().configurations()

    @pytest.mark.parametrize("name", list(EXPECTED))
    def test_default_configuration_is_in_space(self, apps, name):
        app = apps[name]
        assert app.default_configuration() in set(app.space())

    @pytest.mark.parametrize("name", list(EXPECTED))
    def test_kernels_validate(self, apps, name):
        from repro.ir.validate import validate

        app = apps[name]
        for config in list(app.space())[:5]:
            validate(app.kernel(config))

    @pytest.mark.parametrize("name", list(EXPECTED))
    def test_kernel_caching(self, apps, name):
        app = apps[name]
        config = app.default_configuration()
        assert app.kernel(config) is app.kernel(config)
        app.clear_caches()
        assert app.kernel(config) is app.kernel(config)
