"""Matrix multiplication application: space, correctness, paper facts."""

import pytest

from repro.apps import MatMul
from repro.arch import LaunchError
from repro.tuning import Configuration
from tests.apps.helpers import check_config_against_reference


@pytest.fixture(scope="module")
def app():
    return MatMul()


@pytest.fixture(scope="module")
def small():
    return MatMul(n=64)


class TestSpace:
    def test_raw_size_is_96(self, app):
        assert app.space().raw_size == 96

    def test_valid_size_close_to_table4(self, app):
        """Table 4 reports 93 valid configurations.

        Our register model invalidates the Figure 3 far-right point
        (complete unroll + prefetch at 1x4) and its spill twin: 94
        valid.  The +-1 versus the paper is documented in
        EXPERIMENTS.md.
        """
        valid = 0
        for config in app.space():
            try:
                app.evaluate(config)
                valid += 1
            except LaunchError:
                pass
        assert valid == 94

    def test_invalid_configs_are_prefetch_rect4(self, app):
        invalid = []
        for config in app.space():
            try:
                app.evaluate(config)
            except LaunchError:
                invalid.append(config)
        assert all(c["prefetch"] and c["rect"] == 4 and c["tile"] == 16
                   for c in invalid)
        # Figure 3's far-right point: complete unroll + prefetch.
        assert any(c["unroll"] == "complete" for c in invalid)

    def test_matrix_size_constraint(self):
        with pytest.raises(ValueError, match="multiple"):
            MatMul(n=100)


class TestCorrectness:
    CONFIGS = [
        {"tile": 16, "rect": 1, "unroll": 1, "prefetch": False, "spill": False},
        {"tile": 8, "rect": 2, "unroll": 2, "prefetch": False, "spill": False},
        {"tile": 8, "rect": 4, "unroll": "complete", "prefetch": True, "spill": False},
        {"tile": 16, "rect": 2, "unroll": "complete", "prefetch": True, "spill": False},
        {"tile": 16, "rect": 1, "unroll": 4, "prefetch": False, "spill": True},
    ]

    @pytest.mark.parametrize("params", CONFIGS,
                             ids=lambda p: f"t{p['tile']}r{p['rect']}u{p['unroll']}"
                                           f"{'p' if p['prefetch'] else ''}"
                                           f"{'s' if p['spill'] else ''}")
    def test_config_matches_numpy(self, small, params):
        check_config_against_reference(small, Configuration(params),
                                       rtol=2e-3, atol=2e-3)


class TestPaperFacts:
    def test_worked_example_resources(self, app):
        """Section 4's complete-unroll kernel: smem 2088, B_SM 2, W_TB 8."""
        config = Configuration({
            "tile": 16, "rect": 1, "unroll": "complete",
            "prefetch": False, "spill": False,
        })
        report = app.evaluate(config)
        assert report.resources.shared_memory_per_block == 2088
        assert report.blocks_per_sm == 2
        assert report.warps_per_block == 8
        assert report.occupancy.limiting_resource == "registers"

    def test_worked_example_regions(self):
        """Regions = 2 barriers + 1 load unit per iteration, plus one.

        At the paper's 4096 size that is 769; the structure is
        size-independent: 3 * (n/16) + 1.
        """
        app = MatMul(n=1024)
        config = Configuration({
            "tile": 16, "rect": 1, "unroll": "complete",
            "prefetch": False, "spill": False,
        })
        report = app.evaluate(config)
        assert report.regions == 3 * (1024 // 16) + 1

    def test_rect4_runs_one_block_per_sm(self, app):
        """Section 3.2: the 1x4 optimum runs a single 256-thread block."""
        config = Configuration({
            "tile": 16, "rect": 4, "unroll": "complete",
            "prefetch": False, "spill": False,
        })
        report = app.evaluate(config)
        assert report.blocks_per_sm == 1
        assert report.occupancy.threads_per_block == 256

    def test_complete_unroll_reduces_registers(self, app):
        """Section 3.2: register usage can drop back at complete unroll."""
        def registers(unroll):
            return app.evaluate(Configuration({
                "tile": 16, "rect": 1, "unroll": unroll,
                "prefetch": False, "spill": False,
            })).resources.registers_per_thread

        assert registers("complete") <= registers(1)

    def test_spilling_reduces_registers(self, app):
        def registers(spill):
            return app.evaluate(Configuration({
                "tile": 16, "rect": 4, "unroll": 1,
                "prefetch": False, "spill": spill,
            })).resources.registers_per_thread

        assert registers(True) < registers(False)

    def test_unrolling_improves_efficiency(self, app):
        def eff(unroll):
            return app.evaluate(Configuration({
                "tile": 16, "rect": 1, "unroll": unroll,
                "prefetch": False, "spill": False,
            })).efficiency

        assert eff(2) > eff(1)
        assert eff(4) > eff(2)
        assert eff("complete") > eff(4)

    def test_rect_tiling_improves_efficiency(self, app):
        def eff(rect):
            return app.evaluate(Configuration({
                "tile": 16, "rect": rect, "unroll": 1,
                "prefetch": False, "spill": False,
            })).efficiency

        assert eff(2) > eff(1)
        assert eff(4) > eff(2)

    def test_work_model(self, app):
        assert app.work_operations() == 2.0 * 1024 ** 3
        assert app.cpu_time_model_seconds() > 0
