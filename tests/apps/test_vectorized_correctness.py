"""Broader app correctness via the fast vectorized engine.

The scalar interpreter limits correctness checks to tiny problems;
the vectorized engine lets us verify many more configurations per
application, at larger sizes, against the numpy references.
"""

import numpy as np
import pytest

from repro.apps import (
    CoulombicPotential,
    MatMul,
    MriFhd,
    SumOfAbsoluteDifferences,
)
from repro.ir.validate import validate
from repro.tuning import Configuration


def check(app, config, rtol=2e-3, atol=2e-3, seed=23):
    kernel = app.kernel(config)
    validate(kernel)
    rng = np.random.default_rng(seed)
    arrays, scalars = app.make_inputs(rng)
    expected = app.reference(arrays, scalars)
    actual = app.run_config(config, arrays, scalars, engine="vectorized")
    for name in app.output_names:
        np.testing.assert_allclose(actual[name], expected[name],
                                   rtol=rtol, atol=atol)


class TestMatMulLarge:
    """All rect/tile combinations at a size the scalar engine cannot
    afford (128x128 = 16k threads)."""

    @pytest.mark.parametrize("tile", [8, 16])
    @pytest.mark.parametrize("rect", [1, 2, 4])
    def test_tilings(self, tile, rect):
        app = MatMul(n=128)
        check(app, Configuration({
            "tile": tile, "rect": rect, "unroll": "complete",
            "prefetch": False, "spill": False,
        }))

    @pytest.mark.parametrize("unroll", [1, 2, 4, "complete"])
    def test_unrolls_with_prefetch(self, unroll):
        app = MatMul(n=128)
        check(app, Configuration({
            "tile": 16, "rect": 2, "unroll": unroll,
            "prefetch": True, "spill": False,
        }))

    def test_spill_variant(self):
        app = MatMul(n=128)
        check(app, Configuration({
            "tile": 16, "rect": 4, "unroll": 4,
            "prefetch": False, "spill": True,
        }))


class TestCpAllTilings:
    @pytest.mark.parametrize("tiling", [1, 2, 4, 8, 16])
    @pytest.mark.parametrize("coalesce", [False, True])
    def test_every_tiling(self, tiling, coalesce):
        app = CoulombicPotential(num_points=12288, num_atoms=16)
        check(app, Configuration({
            "block": 64, "tiling": tiling, "coalesce_output": coalesce,
        }), rtol=5e-3, atol=5e-3)


class TestSadWideSample:
    @pytest.mark.parametrize("params", [
        {"positions_per_block": 64, "tiling": 8,
         "unroll_search": 8, "unroll_rows": 2, "unroll_cols": 2},
        {"positions_per_block": 32, "tiling": 1,
         "unroll_search": 1, "unroll_rows": 4, "unroll_cols": 4},
        {"positions_per_block": 64, "tiling": 2,
         "unroll_search": 2, "unroll_rows": 1, "unroll_cols": 4},
    ], ids=lambda p: f"p{p['positions_per_block']}t{p['tiling']}")
    def test_configs(self, params):
        app = SumOfAbsoluteDifferences(width=48, height=32, search_width=8)
        check(app, Configuration(params), rtol=0, atol=0)


class TestMriLargerInstance:
    @pytest.mark.parametrize("unroll", [1, 8])
    def test_unrolls(self, unroll):
        app = MriFhd(num_voxels=8192, num_samples=32)
        check(app, Configuration({
            "block": 128, "unroll": unroll, "invocations": 2,
        }), rtol=5e-3, atol=5e-3)
