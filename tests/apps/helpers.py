"""Shared machinery for application correctness tests."""

from __future__ import annotations

import numpy as np

from repro.ir.validate import validate


def check_config_against_reference(app, config, rtol=1e-4, atol=1e-4, seed=11):
    """Run one configuration in the interpreter and compare to numpy."""
    kernel = app.kernel(config)
    validate(kernel)
    rng = np.random.default_rng(seed)
    arrays, scalars = app.make_inputs(rng)
    expected = app.reference(arrays, scalars)
    actual = app.run_config(config, arrays, scalars)
    for name in app.output_names:
        np.testing.assert_allclose(
            actual[name], expected[name], rtol=rtol, atol=atol,
            err_msg=f"{app.name} output {name!r} mismatch for {dict(config)}",
        )
