"""Application protocol plumbing: caching, CPU model, run_config."""

import numpy as np
import pytest

from repro.apps import CoulombicPotential, all_applications


@pytest.fixture()
def app():
    return CoulombicPotential().test_instance()


class TestCaching:
    def test_metric_cache(self, app):
        config = app.default_configuration()
        first = app.evaluate(config)
        second = app.evaluate(config)
        assert first is second

    def test_time_cache(self, app):
        config = app.default_configuration()
        assert app.simulate(config) == app.simulate(config)
        assert config in app._time_cache

    def test_clear_caches(self, app):
        config = app.default_configuration()
        app.evaluate(config)
        app.simulate(config)
        app.clear_caches()
        assert not app._fingerprint_cache
        assert not app._time_cache
        assert not app._kernel_cache
        assert app.sim_cache.counters()["compile_evaluations"] == 0


class TestRunConfig:
    def test_inputs_not_mutated(self, app):
        rng = np.random.default_rng(0)
        arrays, scalars = app.make_inputs(rng)
        snapshots = {name: array.copy() for name, array in arrays.items()}
        app.run_config(app.default_configuration(), arrays, scalars)
        for name, snapshot in snapshots.items():
            np.testing.assert_array_equal(arrays[name], snapshot)

    def test_returns_only_outputs(self, app):
        rng = np.random.default_rng(0)
        arrays, scalars = app.make_inputs(rng)
        outputs = app.run_config(app.default_configuration(), arrays, scalars)
        assert set(outputs) == set(app.output_names)


class TestCpuModel:
    def test_every_app_has_positive_model(self):
        for app in all_applications():
            assert app.work_operations() > 0
            assert app.cpu_time_model_seconds() > 0

    def test_paper_columns_populated(self):
        for app in all_applications():
            assert app.paper_speedup > 0
            assert app.paper_space_size > 0
            assert app.paper_selected > 0
            assert 0 < app.paper_reduction_percent < 100


class TestSimulateDetailed:
    def test_detailed_result_consistent_with_cached_time(self, app):
        config = app.default_configuration()
        detailed = app.simulate_detailed(config)
        assert app.simulate(config) == pytest.approx(detailed.seconds)
