"""MRI-FHD application."""

import pytest

from repro.apps import MriFhd
from repro.apps.mri_fhd import CONFLICTED_LAYOUT, GOOD_LAYOUT
from repro.tuning import Configuration
from tests.apps.helpers import check_config_against_reference


@pytest.fixture(scope="module")
def app():
    return MriFhd()


@pytest.fixture(scope="module")
def small():
    return MriFhd().test_instance()


class TestSpace:
    def test_exactly_175_configurations(self, app):
        """Table 4: 5 block sizes x 5 unrolls x 7 invocation splits."""
        assert len(app.space()) == 175

    def test_all_valid(self, app):
        for config in app.space():
            app.evaluate(config)    # must not raise

    def test_launches_fill_whole_sm_waves(self, app):
        for invocations in (1, 8, 64):
            for block in (64, 320, 512):
                blocks = app.num_voxels // invocations // block
                assert blocks % 16 == 0


class TestCorrectness:
    CONFIGS = [
        {"block": 64, "unroll": 1, "invocations": 1},
        {"block": 128, "unroll": 4, "invocations": 2},
        {"block": 64, "unroll": 16, "invocations": 4},
    ]

    @pytest.mark.parametrize(
        "params", CONFIGS,
        ids=lambda p: f"b{p['block']}u{p['unroll']}i{p['invocations']}",
    )
    def test_config_matches_numpy(self, small, params):
        check_config_against_reference(small, Configuration(params),
                                       rtol=5e-3, atol=5e-3)

    def test_aos_layout_computes_same_results(self):
        small = MriFhd(num_voxels=2048, num_samples=16,
                       layout=CONFLICTED_LAYOUT)
        check_config_against_reference(
            small,
            Configuration({"block": 64, "unroll": 2, "invocations": 1}),
            rtol=5e-3, atol=5e-3,
        )


class TestClusters:
    def test_metrics_independent_of_invocation_split(self, app):
        """Section 5.2 / Figure 6(b): seven-way clusters."""
        reports = [
            app.evaluate(Configuration({
                "block": 256, "unroll": 4, "invocations": inv,
            }))
            for inv in (1, 2, 4, 8, 16, 32, 64)
        ]
        assert len({r.efficiency for r in reports}) == 1
        assert len({r.utilization for r in reports}) == 1

    def test_intra_cluster_time_spread_is_small(self, app):
        """Paper: at most 7.1% within a cluster."""
        times = [
            app.simulate(Configuration({
                "block": 256, "unroll": 4, "invocations": inv,
            }))
            for inv in (1, 2, 4, 8, 16, 32, 64)
        ]
        assert max(times) / min(times) - 1 < 0.10

    def test_more_invocations_cost_launch_overhead(self, app):
        few = app.simulate(Configuration({
            "block": 256, "unroll": 4, "invocations": 1,
        }))
        many = app.simulate(Configuration({
            "block": 256, "unroll": 4, "invocations": 64,
        }))
        assert many > few


class TestLayoutAblation:
    def test_conflicted_layout_degrades_with_unroll_metrics_flat(self):
        """Section 5.3: performance decreased as the factor increased,
        although efficiency and utilization metrics remained constant
        (here: move in the wrong direction relative to time)."""
        good = MriFhd(layout=GOOD_LAYOUT)
        bad = MriFhd(layout=CONFLICTED_LAYOUT)

        def time_at(app, unroll):
            return app.simulate(Configuration({
                "block": 256, "unroll": unroll, "invocations": 4,
            }))

        # With the good layout deeper unrolling helps ...
        assert time_at(good, 16) < time_at(good, 1)
        # ... with the conflicted layout it hurts ...
        assert time_at(bad, 16) > time_at(bad, 1)
        # ... while the metrics still claim it should help.
        eff = [
            bad.evaluate(Configuration({
                "block": 256, "unroll": u, "invocations": 4,
            })).efficiency
            for u in (1, 4, 16)
        ]
        assert eff == sorted(eff)

    def test_fixed_layout_is_faster(self):
        good = MriFhd(layout=GOOD_LAYOUT)
        bad = MriFhd(layout=CONFLICTED_LAYOUT)
        config = Configuration({"block": 256, "unroll": 16, "invocations": 4})
        assert good.simulate(config) < bad.simulate(config)


class TestPaperFacts:
    def test_unroll_improves_efficiency(self, app):
        values = [
            app.evaluate(Configuration({
                "block": 256, "unroll": u, "invocations": 1,
            })).efficiency
            for u in (1, 2, 4, 8, 16)
        ]
        assert values == sorted(values)

    def test_sincos_on_sfu(self, app):
        from repro.ptx import InstrClass

        report = app.evaluate(Configuration({
            "block": 256, "unroll": 1, "invocations": 1,
        }))
        assert report.profile.mix[InstrClass.SFU] == 2 * app.num_samples
