"""Sum of Absolute Differences application."""

import pytest

from repro.apps import SumOfAbsoluteDifferences
from repro.arch import LaunchError
from repro.tuning import Configuration
from tests.apps.helpers import check_config_against_reference


@pytest.fixture(scope="module")
def app():
    return SumOfAbsoluteDifferences()


@pytest.fixture(scope="module")
def small():
    return SumOfAbsoluteDifferences().test_instance()


class TestSpace:
    def test_space_size_near_table4(self, app):
        """Paper: 908 configurations; our parameter menu yields 828
        (the exact menu is not published — see EXPERIMENTS.md)."""
        assert len(app.space()) == 828

    def test_thread_bounds_respected(self, app):
        for config in app.space():
            threads = config["positions_per_block"] // config["tiling"]
            assert 16 <= threads <= 512

    def test_qcif_geometry(self, app):
        assert app.width == 176 and app.height == 144
        assert app.positions == 1024                 # 32x32 search
        assert app.num_macroblocks == 44 * 36

    def test_rejects_unaligned_frames(self):
        with pytest.raises(ValueError):
            SumOfAbsoluteDifferences(width=30, height=16)


class TestCorrectness:
    CONFIGS = [
        {"positions_per_block": 64, "tiling": 1,
         "unroll_search": 1, "unroll_rows": 1, "unroll_cols": 1},
        {"positions_per_block": 64, "tiling": 4,
         "unroll_search": 2, "unroll_rows": 2, "unroll_cols": 4},
        {"positions_per_block": 32, "tiling": 2,
         "unroll_search": 8, "unroll_rows": 4, "unroll_cols": 1},
    ]

    @pytest.mark.parametrize(
        "params", CONFIGS,
        ids=lambda p: f"p{p['positions_per_block']}t{p['tiling']}"
                      f"u{p['unroll_search']}{p['unroll_rows']}{p['unroll_cols']}",
    )
    def test_config_matches_numpy(self, small, params):
        check_config_against_reference(small, Configuration(params),
                                       rtol=0, atol=0)

    def test_edge_positions_clamped_like_texture(self, small):
        """Search positions falling off the frame read clamped pixels —
        Table 1's configurable texture edge behaviour."""
        config = Configuration({
            "positions_per_block": 64, "tiling": 1,
            "unroll_search": 1, "unroll_rows": 1, "unroll_cols": 1,
        })
        # Macroblock 0 sits at the frame corner: half its search area
        # is off-frame, so correctness here proves the clamping path.
        check_config_against_reference(small, config, rtol=0, atol=0)


class TestPaperFacts:
    def test_unrolling_reduces_instructions(self, app):
        def instructions(**unrolls):
            params = {"positions_per_block": 256, "tiling": 4}
            params.update(unrolls)
            return app.evaluate(Configuration(params)).instructions

        rolled = instructions(unroll_search=1, unroll_rows=1, unroll_cols=1)
        unrolled = instructions(unroll_search=4, unroll_rows=4, unroll_cols=4)
        assert unrolled < rolled

    def test_texture_loads_dominate_mix(self, app):
        from repro.ptx import InstrClass

        report = app.evaluate(app.default_configuration())
        pixels = 16 * 2 * 4    # 16 pixels, 2 frames, 4 positions/thread
        assert report.profile.mix[InstrClass.TEXTURE_LOAD] == pixels

    def test_output_stores_coalesced(self, app):
        report = app.evaluate(app.default_configuration())
        assert report.profile.traffic.uncoalesced_store_bytes == 0

    def test_figure4_shape_times_spread_widely(self, app):
        """Figure 4: a complex response — at least 2x spread among a
        sample of valid configurations."""
        import itertools

        sample = list(itertools.islice(iter(app.space()), 0, 120, 7))
        times = []
        for config in sample:
            try:
                times.append(app.simulate(config))
            except LaunchError:
                continue
        assert max(times) / min(times) > 2.0
