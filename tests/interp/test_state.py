"""Interpreter state containers."""

import numpy as np
import pytest

from repro.interp import ThreadContext, ThreadState, UninitializedRead
from repro.interp.state import allocate_shared, numpy_dtype
from repro.ir import DataType, Dim3, LocalArray, SharedArray, VirtualRegister


def make_state(local_arrays=()):
    context = ThreadContext(
        tid=(1, 2, 0), ctaid=(3, 0, 0),
        block_dim=Dim3(8, 4), grid_dim=Dim3(16),
    )
    return ThreadState(context, list(local_arrays))


class TestThreadState:
    def test_write_then_read(self):
        state = make_state()
        register = VirtualRegister("x", DataType.F32)
        state.write(register, 1.5)
        assert state.read(register) == 1.5

    def test_uninitialized_read_raises_with_context(self):
        state = make_state()
        register = VirtualRegister("ghost", DataType.F32)
        with pytest.raises(UninitializedRead, match="ghost"):
            state.read(register)

    def test_local_arrays_zeroed(self):
        scratch = LocalArray("scratch", DataType.S32, 4)
        state = make_state([scratch])
        assert state.local_arrays[scratch].tolist() == [0, 0, 0, 0]
        assert state.local_arrays[scratch].dtype == np.int32


class TestAllocateShared:
    def test_shapes_and_dtypes(self):
        arrays = allocate_shared([
            SharedArray("a", DataType.F32, (4, 4)),
            SharedArray("b", DataType.S32, (8,)),
        ])
        (a_array, b_array) = (arrays[key] for key in arrays)
        assert {arr.size for arr in arrays.values()} == {16, 8}

    def test_zero_initialized(self):
        arrays = allocate_shared([SharedArray("a", DataType.F32, (4,))])
        array = next(iter(arrays.values()))
        assert not array.any()


class TestNumpyDtype:
    @pytest.mark.parametrize("dtype, expected", [
        (DataType.F32, np.float32),
        (DataType.S32, np.int32),
        (DataType.U32, np.uint32),
        (DataType.PRED, np.bool_),
    ])
    def test_mapping(self, dtype, expected):
        assert numpy_dtype(dtype) == expected
