"""Vectorized engine: agreement with the scalar interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import BarrierDivergence, launch, launch_vectorized
from repro.ir import CmpOp, DataType, Dim3, KernelBuilder
from repro.ir.builder import CTAID_X, TID_X
from tests.conftest import build_saxpy, build_tiled_matmul

F32 = DataType.F32
S32 = DataType.S32


def run_both(kernel, arrays, scalars=None):
    first = {name: array.copy() for name, array in arrays.items()}
    second = {name: array.copy() for name, array in arrays.items()}
    launch(kernel, first, scalars or {})
    launch_vectorized(kernel, second, scalars or {})
    return first, second


class TestAgreement:
    def test_saxpy(self, rng):
        arrays = {
            "x": rng.standard_normal(256, dtype=np.float32),
            "y": rng.standard_normal(256, dtype=np.float32),
        }
        scalar, vector = run_both(build_saxpy(), arrays, {"a": 1.5})
        np.testing.assert_array_equal(scalar["y"], vector["y"])

    def test_matmul(self, rng):
        n = 32
        kernel = build_tiled_matmul(n=n)
        arrays = {
            "A": rng.standard_normal(n * n, dtype=np.float32),
            "B": rng.standard_normal(n * n, dtype=np.float32),
            "C": np.zeros(n * n, dtype=np.float32),
        }
        scalar, vector = run_both(kernel, arrays)
        np.testing.assert_allclose(scalar["C"], vector["C"], rtol=1e-6)

    def test_divergent_conditional(self):
        builder = KernelBuilder("div", block_dim=Dim3(32), grid_dim=Dim3(2))
        out = builder.param_ptr("out", S32)
        gid = builder.mad(CTAID_X, 32, TID_X)
        pred = builder.setp(CmpOp.LT, TID_X, 11)
        with builder.if_(pred) as branch:
            builder.st(out, gid, builder.mul(TID_X, 3))
        with branch.orelse():
            builder.st(out, gid, builder.add(TID_X, 100))
        kernel = builder.finish()
        arrays = {"out": np.zeros(64, dtype=np.int32)}
        scalar, vector = run_both(kernel, arrays)
        np.testing.assert_array_equal(scalar["out"], vector["out"])

    def test_nonuniform_loop_bounds(self):
        builder = KernelBuilder("tri", block_dim=Dim3(16), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        bound = builder.mov(TID_X, dtype=S32)
        total = builder.mov(0, dtype=S32)
        with builder.loop(0, bound, trip_count=8) as i:
            builder.add(total, i, dest=total)
        builder.st(out, TID_X, total)
        kernel = builder.finish()
        arrays = {"out": np.zeros(16, dtype=np.int32)}
        scalar, vector = run_both(kernel, arrays)
        np.testing.assert_array_equal(scalar["out"], vector["out"])
        # Triangular sums: t*(t-1)/2.
        expected = np.array([t * (t - 1) // 2 for t in range(16)], np.int32)
        np.testing.assert_array_equal(vector["out"], expected)

    def test_global_load_clamping_matches(self):
        builder = KernelBuilder("clamp", block_dim=Dim3(8), grid_dim=Dim3(1))
        data = builder.param_ptr("data", S32)
        value = builder.ld(data, builder.add(TID_X, 1000))
        builder.st(data, TID_X, value)
        kernel = builder.finish()
        arrays = {"data": np.arange(16, dtype=np.int32)}
        scalar, vector = run_both(kernel, arrays)
        np.testing.assert_array_equal(scalar["data"], vector["data"])

    def test_local_arrays(self):
        builder = KernelBuilder("local", block_dim=Dim3(8), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        scratch = builder.local("scratch", S32, 2)
        builder.st(scratch, 0, builder.mul(TID_X, 5))
        builder.st(scratch, 1, builder.add(TID_X, 9))
        builder.st(out, TID_X,
                   builder.add(builder.ld(scratch, 0), builder.ld(scratch, 1)))
        kernel = builder.finish()
        arrays = {"out": np.zeros(8, dtype=np.int32)}
        scalar, vector = run_both(kernel, arrays)
        np.testing.assert_array_equal(scalar["out"], vector["out"])


class TestApplications:
    @pytest.mark.parametrize("app_name", ["cp", "sad", "mri-fhd"])
    def test_apps_agree_across_engines(self, app_name, rng):
        from repro.apps import all_applications

        app = next(a for a in all_applications()
                   if a.name == app_name).test_instance()
        config = app.default_configuration()
        if config not in set(app.space()):
            config = next(iter(app.space()))
        kernel = app.kernel(config)
        arrays, scalars = app.make_inputs(rng)
        first = {k: v.copy() for k, v in arrays.items()}
        second = {k: v.copy() for k, v in arrays.items()}
        launch(kernel, first, scalars)
        launch_vectorized(kernel, second, scalars)
        for name in app.output_names:
            np.testing.assert_allclose(first[name], second[name], rtol=1e-5,
                                       atol=1e-5)


class TestGuards:
    def test_barrier_under_divergence_rejected(self):
        builder = KernelBuilder("badbar", block_dim=Dim3(8), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        builder.shared("s", S32, (8,))
        pred = builder.setp(CmpOp.LT, TID_X, 4)
        with builder.if_(pred):
            builder.bar()
        builder.st(out, TID_X, 1)
        with pytest.raises(BarrierDivergence):
            launch_vectorized(builder.finish(),
                              {"out": np.zeros(8, dtype=np.int32)})

    def test_out_of_bounds_store_faults(self):
        from repro.interp import KernelFault

        builder = KernelBuilder("oob", block_dim=Dim3(4), grid_dim=Dim3(1))
        data = builder.param_ptr("data", S32)
        builder.st(data, builder.add(TID_X, 1000), 1)
        with pytest.raises(KernelFault, match="store index"):
            launch_vectorized(builder.finish(),
                              {"data": np.zeros(8, dtype=np.int32)})


class TestPropertyAgreement:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["add", "sub", "mul", "min", "max"]),
                  st.integers(-2, 4), st.integers(-2, 4)),
        min_size=1, max_size=10,
    ))
    def test_random_programs(self, operations):
        builder = KernelBuilder("prop", block_dim=Dim3(16), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        pool = [builder.mov(TID_X, dtype=S32)]

        def pick(token):
            if token < 0:
                return token * 3 + 1
            return pool[token % len(pool)]

        for name, a, b in operations:
            pool.append(getattr(builder, name)(pick(a), pick(b)))
        builder.st(out, TID_X, pool[-1])
        kernel = builder.finish()
        arrays = {"out": np.zeros(16, dtype=np.int32)}
        scalar, vector = run_both(kernel, arrays)
        np.testing.assert_array_equal(scalar["out"], vector["out"])
