"""Functional interpreter: SPMD semantics, barriers, memory rules."""

import numpy as np
import pytest

from repro.interp import (
    BarrierDivergence,
    KernelFault,
    UninitializedRead,
    launch,
)
from repro.ir import CmpOp, DataType, Dim3, KernelBuilder
from repro.ir.builder import CTAID_X, NCTAID_X, NTID_X, TID_X, TID_Y
from tests.conftest import build_saxpy, build_tiled_matmul, run_matmul_kernel

F32 = DataType.F32
S32 = DataType.S32


class TestBasicExecution:
    def test_saxpy(self, rng):
        kernel = build_saxpy()
        x = rng.standard_normal(256, dtype=np.float32)
        y = rng.standard_normal(256, dtype=np.float32)
        expected = np.float32(2.5) * x + y
        buffers = {"x": x.copy(), "y": y.copy()}
        launch(kernel, buffers, {"a": 2.5})
        np.testing.assert_allclose(buffers["y"], expected, rtol=1e-6)

    def test_matmul_against_numpy(self):
        result, reference = run_matmul_kernel(build_tiled_matmul(n=32), 32)
        np.testing.assert_allclose(result, reference, rtol=1e-4, atol=1e-4)

    def test_special_registers(self):
        builder = KernelBuilder("ids", block_dim=Dim3(8, 2), grid_dim=Dim3(3))
        out = builder.param_ptr("out", S32)
        linear = builder.mad(TID_Y, NTID_X, TID_X)
        block_base = builder.mul(CTAID_X, 16)
        global_id = builder.add(block_base, linear)
        payload = builder.mad(CTAID_X, 1000, builder.mul(NCTAID_X, 1))
        builder.st(out, global_id, builder.add(payload, linear))
        out_buffer = np.zeros(48, dtype=np.int32)
        launch(builder.finish(), {"out": out_buffer})
        # thread (x=1, y=1) of block 2 -> linear 9, value 2000+3+9.
        assert out_buffer[2 * 16 + 9] == 2012

    def test_conditional_execution(self):
        builder = KernelBuilder("cond", block_dim=Dim3(16), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        pred = builder.setp(CmpOp.LT, TID_X, 8)
        with builder.if_(pred) as branch:
            builder.st(out, TID_X, 1)
        with branch.orelse():
            builder.st(out, TID_X, 2)
        out_buffer = np.zeros(16, dtype=np.int32)
        launch(builder.finish(), {"out": out_buffer})
        np.testing.assert_array_equal(out_buffer[:8], 1)
        np.testing.assert_array_equal(out_buffer[8:], 2)

    def test_loop_counter_after_loop(self):
        builder = KernelBuilder("post", block_dim=Dim3(4), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        with builder.loop(0, 5) as i:
            builder.add(i, 0)
        builder.st(out, TID_X, i)
        out_buffer = np.zeros(4, dtype=np.int32)
        launch(builder.finish(), {"out": out_buffer})
        np.testing.assert_array_equal(out_buffer, 5)


class TestSharedMemoryAndBarriers:
    def test_block_reversal_through_shared(self):
        builder = KernelBuilder("rev", block_dim=Dim3(32), grid_dim=Dim3(2))
        data = builder.param_ptr("data", S32)
        staging = builder.shared("staging", S32, (32,))
        global_id = builder.mad(CTAID_X, 32, TID_X)
        value = builder.ld(data, global_id)
        builder.st(staging, TID_X, value)
        builder.bar()
        reversed_idx = builder.sub(31, TID_X)
        builder.st(data, global_id, builder.ld(staging, reversed_idx))
        buffer = np.arange(64, dtype=np.int32)
        launch(builder.finish(), {"data": buffer})
        expected = np.concatenate([
            np.arange(31, -1, -1), np.arange(63, 31, -1)
        ]).astype(np.int32)
        np.testing.assert_array_equal(buffer, expected)

    def test_shared_memory_fresh_per_block(self):
        builder = KernelBuilder("fresh", block_dim=Dim3(4), grid_dim=Dim3(2))
        out = builder.param_ptr("out", S32)
        staging = builder.shared("staging", S32, (4,))
        initial = builder.ld(staging, TID_X)       # must read zero
        builder.st(staging, TID_X, builder.add(initial, 1))
        builder.bar()
        builder.st(out, builder.mad(CTAID_X, 4, TID_X),
                   builder.ld(staging, TID_X))
        buffer = np.full(8, -1, dtype=np.int32)
        launch(builder.finish(), {"out": buffer})
        np.testing.assert_array_equal(buffer, 1)

    def test_divergent_barrier_detected(self):
        builder = KernelBuilder("div", block_dim=Dim3(4), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        builder.shared("s", S32, (4,))
        pred = builder.setp(CmpOp.LT, TID_X, 2)
        with builder.if_(pred):
            builder.bar()
        builder.st(out, TID_X, 1)
        with pytest.raises(BarrierDivergence):
            launch(builder.finish(), {"out": np.zeros(4, dtype=np.int32)})


class TestMemoryRules:
    def test_global_overfetch_clamps(self):
        builder = KernelBuilder("clamp", block_dim=Dim3(4), grid_dim=Dim3(1))
        data = builder.param_ptr("data", S32)
        past_end = builder.add(TID_X, 1000)
        value = builder.ld(data, past_end)
        builder.st(data, TID_X, value)
        buffer = np.arange(8, dtype=np.int32)
        launch(builder.finish(), {"data": buffer})
        np.testing.assert_array_equal(buffer[:4], 7)   # clamped to last

    def test_out_of_bounds_store_faults(self):
        builder = KernelBuilder("oob", block_dim=Dim3(4), grid_dim=Dim3(1))
        data = builder.param_ptr("data", S32)
        builder.st(data, builder.add(TID_X, 1000), 1)
        with pytest.raises(KernelFault, match="store index"):
            launch(builder.finish(), {"data": np.zeros(8, dtype=np.int32)})

    def test_shared_out_of_bounds_load_faults(self):
        builder = KernelBuilder("soob", block_dim=Dim3(4), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        staging = builder.shared("staging", S32, (4,))
        value = builder.ld(staging, builder.add(TID_X, 100))
        builder.st(out, TID_X, value)
        with pytest.raises(KernelFault, match="outside"):
            launch(builder.finish(), {"out": np.zeros(4, dtype=np.int32)})

    def test_local_arrays_are_per_thread(self):
        builder = KernelBuilder("local", block_dim=Dim3(8), grid_dim=Dim3(1))
        out = builder.param_ptr("out", S32)
        scratch = builder.local("scratch", S32, 1)
        builder.st(scratch, 0, TID_X)
        builder.bar()
        builder.st(out, TID_X, builder.ld(scratch, 0))
        buffer = np.zeros(8, dtype=np.int32)
        launch(builder.finish(), {"out": buffer})
        np.testing.assert_array_equal(buffer, np.arange(8, dtype=np.int32))


class TestArgumentChecking:
    def test_missing_array(self):
        with pytest.raises(KernelFault, match="missing array"):
            launch(build_saxpy(), {"x": np.zeros(256, dtype=np.float32)},
                   {"a": 1.0})

    def test_missing_scalar(self):
        buffers = {
            "x": np.zeros(256, dtype=np.float32),
            "y": np.zeros(256, dtype=np.float32),
        }
        with pytest.raises(KernelFault, match="missing scalar"):
            launch(build_saxpy(), buffers)

    def test_wrong_dtype(self):
        buffers = {
            "x": np.zeros(256, dtype=np.float64),
            "y": np.zeros(256, dtype=np.float32),
        }
        with pytest.raises(KernelFault, match="dtype"):
            launch(build_saxpy(), buffers, {"a": 1.0})

    def test_thread_count_cap(self):
        builder = KernelBuilder("huge", block_dim=Dim3(512), grid_dim=Dim3(1 << 10))
        out = builder.param_ptr("out", S32)
        builder.st(out, TID_X, 1)
        with pytest.raises(KernelFault, match="refusing"):
            launch(builder.finish(), {"out": np.zeros(16, dtype=np.int32)})

    def test_uninitialized_register_read(self):
        from repro.ir import Instruction, Kernel, Opcode, VirtualRegister
        from repro.ir import MemRef, Param

        ghost = VirtualRegister("ghost", S32)
        out = Param("out", S32, is_pointer=True)
        kernel = Kernel(
            name="bad", params=[out],
            block_dim=Dim3(1), grid_dim=Dim3(1),
            body=[Instruction(Opcode.ST, srcs=(ghost,),
                              mem=MemRef(out, VirtualRegister("g2", S32)))],
        )
        with pytest.raises(UninitializedRead):
            launch(kernel, {"out": np.zeros(4, dtype=np.int32)})
