"""PTX text emission."""

from repro.ir import CmpOp, Dim3, KernelBuilder
from repro.ir.builder import TID_X
from repro.ptx import emit_ptx
from tests.conftest import build_saxpy, build_tiled_matmul


class TestEmission:
    def test_entry_and_params(self):
        text = emit_ptx(build_saxpy())
        assert ".entry saxpy" in text
        assert ".param .u64 x" in text
        assert ".param .f32 a" in text
        assert text.strip().endswith("}")

    def test_shared_declarations(self):
        text = emit_ptx(build_tiled_matmul())
        assert ".shared .align 4 .b8 As[1024];" in text

    def test_loops_lower_to_labels_and_branches(self):
        text = emit_ptx(build_tiled_matmul())
        assert "$Lt_" in text
        assert "bra" in text
        assert "// trips=" in text
        assert "setp.lt.s32" in text

    def test_conditionals_lower_to_guarded_branches(self):
        builder = KernelBuilder("cond", block_dim=Dim3(32), grid_dim=Dim3(1))
        pred = builder.setp(CmpOp.LT, TID_X, 16)
        with builder.if_(pred) as branch:
            builder.add(1, 2)
        with branch.orelse():
            builder.add(3, 4)
        text = emit_ptx(builder.finish())
        assert "@!" in text
        assert "$Lif" in text
        assert "$Lend" in text

    def test_exit_present(self):
        assert "exit;" in emit_ptx(build_saxpy())

    def test_deterministic(self):
        assert emit_ptx(build_tiled_matmul()) == emit_ptx(build_tiled_matmul())
