"""Affine lane analysis: inferred coalescing and bank conflicts."""

import pytest

from repro.ir import DataType, Dim3, KernelBuilder
from repro.ir.builder import CTAID_X, TID_X, TID_Y
from repro.ptx.affine import (
    Affine,
    analyze_memory_access,
    annotation_mismatches,
    bank_conflict_ways,
    is_coalesced,
)

F32 = DataType.F32


def builder(block=Dim3(32)):
    return KernelBuilder("k", block_dim=block, grid_dim=Dim3(4))


def global_reports(kernel):
    return [r for r in analyze_memory_access(kernel) if r.coalesced is not None]


def shared_reports(kernel):
    return [r for r in analyze_memory_access(kernel) if r.bank_ways is not None]


class TestAffineJudgments:
    def test_unit_stride_coalesces(self):
        assert is_coalesced(Affine(1, 0, 0), block_x=32)

    def test_strided_does_not(self):
        assert not is_coalesced(Affine(2, 0, 0), block_x=32)
        assert not is_coalesced(Affine(0, 0, 0), block_x=32)

    def test_narrow_block_needs_matching_row_stride(self):
        # 8-wide block: a half-warp spans two rows.
        assert is_coalesced(Affine(1, 8, 0), block_x=8)
        assert not is_coalesced(Affine(1, 4096, 0), block_x=8)

    def test_bank_ways(self):
        assert bank_conflict_ways(Affine(1, 0, 0), 32) == 1
        assert bank_conflict_ways(Affine(2, 0, 0), 32) == 2
        assert bank_conflict_ways(Affine(16, 0, 0), 32) == 16
        assert bank_conflict_ways(Affine(0, 0, 0), 32) == 1   # broadcast


class TestInference:
    def test_unit_stride_load(self):
        b = builder()
        x = b.param_ptr("x", F32)
        value = b.ld(x, b.mad(CTAID_X, 32, TID_X))
        b.st(x, TID_X, value)
        reports = global_reports(b.finish())
        assert all(r.coalesced for r in reports)

    def test_strided_load(self):
        b = builder()
        x = b.param_ptr("x", F32)
        value = b.ld(x, b.mul(TID_X, 2))
        b.st(x, TID_X, value)
        load = global_reports(b.finish())[0]
        assert load.coalesced is False

    def test_induction_variable_update_stays_affine(self):
        # indexA-style accumulators: multiple defs, identical lane
        # coefficients.
        b = builder()
        x = b.param_ptr("x", F32)
        index = b.mad(CTAID_X, 64, TID_X)
        acc = b.mov(0.0)
        with b.loop(0, 4):
            value = b.ld(x, index)
            b.add(acc, value, dest=acc)
            b.add(index, 32, dest=index)
        b.st(x, TID_X, acc)
        load = global_reports(b.finish())[0]
        assert load.coalesced is True

    def test_data_dependent_index_unknown(self):
        b = builder()
        idx = b.param_ptr("idx", DataType.S32)
        x = b.param_ptr("x", F32)
        gathered = b.ld(x, b.ld(idx, TID_X))
        b.st(x, TID_X, gathered)
        reports = analyze_memory_access(b.finish())
        gather = [r for r in reports
                  if r.instruction.mem.base.name == "x"
                  and r.instruction.opcode.value == "ld"][0]
        assert gather.shape is None
        assert gather.coalesced is None

    def test_shared_bank_analysis(self):
        b = builder()
        staging = b.shared("staging", F32, (64,))
        out = b.param_ptr("out", F32)
        b.st(staging, TID_X, 1.0)                      # stride 1
        b.st(staging, b.mul(TID_X, 2), 2.0)            # stride 2
        value = b.ld(staging, b.mul(TID_Y, 4))         # broadcast (1-D block)
        b.st(out, TID_X, value)
        reports = shared_reports(b.finish())
        assert [r.bank_ways for r in reports] == [1, 2, 1]


class TestApplicationAnnotations:
    """The hand annotations in every application kernel agree with the
    analysis wherever the analysis is decisive."""

    @pytest.mark.parametrize("app_name", ["matmul", "cp", "sad", "mri-fhd"])
    def test_no_mismatches(self, app_name):
        from repro.apps import all_applications

        app = next(a for a in all_applications() if a.name == app_name)
        for config in list(app.space())[:20]:
            try:
                kernel = app.kernel(config)
            except Exception:
                continue
            assert annotation_mismatches(kernel) == [], dict(config)

    def test_matmul_shared_accesses_conflict_free(self):
        from repro.apps import MatMul
        from repro.tuning import Configuration

        app = MatMul()
        kernel = app.kernel(Configuration({
            "tile": 16, "rect": 2, "unroll": 1,
            "prefetch": False, "spill": False,
        }))
        ways = [r.bank_ways for r in shared_reports(kernel)
                if r.bank_ways is not None]
        assert ways
        assert all(w == 1 for w in ways)

    def test_matmul_8x8_loads_flagged_uncoalesced(self):
        from repro.apps import MatMul
        from repro.tuning import Configuration

        app = MatMul()
        kernel = app.kernel(Configuration({
            "tile": 8, "rect": 1, "unroll": 1,
            "prefetch": False, "spill": False,
        }))
        loads = [r for r in global_reports(kernel)
                 if r.instruction.opcode.value == "ld"]
        assert loads
        assert all(r.coalesced is False for r in loads)
