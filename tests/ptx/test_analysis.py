"""Static analysis: Instr, Regions, instruction mix, memory traffic.

The region rules come straight from Section 4:
* blocking = barriers + long-latency loads;
* sequences of independent long-latency loads are one unit;
* SFU ops block only when nothing longer-latency exists;
* Regions = blocking events + 1 (entry/exit delimit the stream).
"""

import pytest

from repro.ir import CmpOp, DataType, Dim3, KernelBuilder
from repro.ir.builder import TID_X
from repro.ptx import (
    InstrClass,
    count_instructions,
    count_regions,
    expand_dynamic,
    kernel_has_longer_latency_than_sfu,
    memory_traffic,
    profile_kernel,
)
from repro.ptx.analysis import ControlOp
from tests.conftest import build_saxpy, build_tiled_matmul

F32 = DataType.F32


def builder():
    return KernelBuilder("k", block_dim=Dim3(32), grid_dim=Dim3(1))


class TestInstructionCounting:
    def test_straight_line(self):
        total, mix = count_instructions(build_saxpy())
        assert total == 5
        assert mix[InstrClass.GLOBAL_LOAD] == 2
        assert mix[InstrClass.GLOBAL_STORE] == 1
        assert mix[InstrClass.ALU] == 2

    def test_loop_overhead(self):
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 10):
            v = b.ld(x, TID_X)
            b.st(x, TID_X, v)
        total, mix = count_instructions(b.finish())
        # init + 10 * (2 body + 3 overhead)
        assert total == 1 + 10 * (2 + 3)
        assert mix[InstrClass.CONTROL] == 1 + 30

    def test_nested_loops_multiply(self):
        b = builder()
        acc = b.mov(0.0)
        with b.loop(0, 4):
            with b.loop(0, 8):
                b.add(acc, 1.0, dest=acc)
        total, _ = count_instructions(b.finish())
        inner = 1 + 8 * (1 + 3)
        assert total == 1 + 1 + 4 * (inner + 3)

    def test_conditional_weighting(self):
        b = builder()
        pred = b.setp(CmpOp.LT, TID_X, 16)
        with b.if_(pred, taken_fraction=0.25) as branch:
            b.add(1, 2)
            b.add(3, 4)
        with branch.orelse():
            b.add(5, 6)
        total, _ = count_instructions(b.finish())
        # setp + branch + 0.25*(2 then + 1 jump) + 0.75*1 else
        assert total == pytest.approx(1 + 1 + 0.25 * 3 + 0.75 * 1)

    def test_matmul_count_scales_with_size(self):
        small, _ = count_instructions(build_tiled_matmul(n=32))
        large, _ = count_instructions(build_tiled_matmul(n=64))
        # Twice the tile iterations => roughly twice the instructions.
        assert large / small == pytest.approx(2.0, rel=0.1)


class TestRegions:
    def test_no_blocking_means_one_region(self):
        b = builder()
        b.add(1, 2)
        b.add(3, 4)
        assert count_regions(b.finish()) == 1

    def test_independent_loads_group_into_one_unit(self):
        assert count_regions(build_saxpy()) == 2

    def test_dependent_loads_split(self):
        b = builder()
        x = b.param_ptr("idx", DataType.S32)
        y = b.param_ptr("y", F32)
        first = b.ld(x, TID_X)          # load the index
        value = b.ld(y, first)          # dependent load -> new unit
        b.st(y, TID_X, value)
        assert count_regions(b.finish()) == 3

    def test_use_closes_group(self):
        b = builder()
        x = b.param_ptr("x", F32)
        a = b.ld(x, TID_X)
        doubled = b.add(a, a)           # use of a closes the group
        c = b.ld(x, TID_X, offset=1)    # new group
        b.st(x, TID_X, b.add(doubled, c))
        assert count_regions(b.finish()) == 3

    def test_barriers_count(self):
        b = builder()
        b.shared("s", F32, (32,))
        b.bar()
        b.bar()
        assert count_regions(b.finish()) == 3

    def test_matmul_three_events_per_iteration(self):
        # Per tile iteration: one load unit + two barriers.
        kernel = build_tiled_matmul(n=32)   # 2 iterations
        assert count_regions(kernel) == 2 * 3 + 1

    def test_sfu_blocks_only_without_longer_latency(self):
        b = builder()
        x = b.param_ptr("x", F32)
        v = b.rsqrt(2.0)
        b.st(x, TID_X, v)
        kernel = b.finish()
        assert not kernel_has_longer_latency_than_sfu(kernel)
        assert count_regions(kernel) == 2   # the rsqrt blocks

        b = builder()
        x = b.param_ptr("x", F32)
        loaded = b.ld(x, TID_X)
        v = b.rsqrt(loaded)
        b.st(x, TID_X, v)
        kernel = b.finish()
        assert kernel_has_longer_latency_than_sfu(kernel)
        assert count_regions(kernel) == 2   # only the load blocks


class TestExpansion:
    def test_loop_expansion_length(self):
        b = builder()
        acc = b.mov(0)
        with b.loop(0, 5):
            b.add(acc, 1, dest=acc)
        ops = list(expand_dynamic(b.finish()))
        control = sum(1 for op in ops if isinstance(op, ControlOp))
        assert len(ops) == 1 + 1 + 5 * 4
        assert control == 1 + 5 * 3

    def test_divergent_branch_expands_both_sides(self):
        b = builder()
        pred = b.setp(CmpOp.LT, TID_X, 16)
        with b.if_(pred, taken_fraction=0.5) as branch:
            b.add(1, 2)
        with branch.orelse():
            b.add(3, 4)
            b.add(5, 6)
        ops = [op for op in expand_dynamic(b.finish()) if not isinstance(op, ControlOp)]
        assert len(ops) == 1 + 1 + 2  # setp + both sides

    def test_biased_branch_expands_one_side(self):
        b = builder()
        pred = b.setp(CmpOp.LT, TID_X, 16)
        with b.if_(pred, taken_fraction=1.0) as branch:
            b.add(1, 2)
        with branch.orelse():
            b.add(3, 4)
            b.add(5, 6)
        ops = [op for op in expand_dynamic(b.finish()) if not isinstance(op, ControlOp)]
        assert len(ops) == 1 + 1

    def test_runaway_expansion_capped(self):
        b = builder()
        acc = b.mov(0)
        with b.loop(0, 3000):
            with b.loop(0, 3000):
                b.add(acc, 1, dest=acc)
        with pytest.raises(OverflowError, match="expansion exceeds"):
            list(expand_dynamic(b.finish()))


class TestMemoryTraffic:
    def test_per_thread_bytes(self):
        traffic = memory_traffic(build_saxpy())
        assert traffic.load_bytes == 8.0
        assert traffic.store_bytes == 4.0
        assert traffic.total_bytes == 12.0

    def test_loop_scales_traffic(self):
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 10) as i:
            v = b.ld(x, i, coalesced=False)
            b.st(x, i, v)
        traffic = memory_traffic(b.finish())
        assert traffic.load_bytes == 40.0
        assert traffic.uncoalesced_load_bytes == 40.0
        assert traffic.uncoalesced_store_bytes == 0.0

    def test_shared_accesses_not_counted(self):
        b = builder()
        shared = b.shared("s", F32, (32,))
        value = b.mov(1.0)
        b.st(shared, TID_X, value)
        traffic = memory_traffic(b.finish())
        assert traffic.total_bytes == 0.0


class TestProfile:
    def test_profile_bundles_everything(self):
        profile = profile_kernel(build_tiled_matmul())
        assert profile.instructions > 0
        assert profile.regions == 7
        assert profile.instructions_per_region == pytest.approx(
            profile.instructions / 7
        )
        assert profile.traffic.load_bytes > 0
