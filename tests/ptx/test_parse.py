"""PTX listing parser: round trips against the emitter."""

import pytest

from repro.ptx import emit_ptx
from repro.ptx.parse import PtxParseError, parse_ptx
from repro.transforms import COMPLETE, standard_cleanup, unroll
from tests.conftest import build_saxpy, build_tiled_matmul


class TestRoundTrip:
    def test_saxpy(self):
        listing = parse_ptx(emit_ptx(build_saxpy()))
        assert listing.name == "saxpy"
        assert listing.params == ("x", "y", "a")
        assert listing.count("ld") == 2
        assert listing.count("st") == 1
        assert listing.count("mad") == 2
        assert listing.count("exit") == 1

    def test_matmul_structure(self):
        listing = parse_ptx(emit_ptx(build_tiled_matmul()))
        assert listing.shared_declarations == (("As", 1024), ("Bs", 1024))
        assert listing.count("bar") == 2          # static barriers
        # Two loops -> two back edges.
        assert len(listing.back_edges()) == 2
        assert listing.loop_annotations() == [2, 16]

    def test_unrolled_kernel_loses_a_back_edge(self):
        kernel = standard_cleanup(
            unroll(build_tiled_matmul(), COMPLETE, label="inner")
        )
        listing = parse_ptx(emit_ptx(kernel))
        assert len(listing.back_edges()) == 1
        assert listing.loop_annotations() == [2]

    def test_memory_spaces_recovered(self):
        listing = parse_ptx(emit_ptx(build_tiled_matmul()))
        spaces = {i.space for i in listing.instructions if i.is_memory}
        assert spaces == {"global", "shared"}

    def test_instruction_counts_match_across_representations(self):
        """Static per-iteration counts from the listing agree with the
        IR-level analysis — the listing carries everything Section 4
        reads off -ptx."""
        from repro.ptx import count_instructions

        kernel = build_tiled_matmul()
        listing = parse_ptx(emit_ptx(kernel))
        # Expand the listing the way the paper does by hand: walk the
        # text, multiplying loop bodies by the annotated trip counts.
        # Here we just check the static totals line up.
        static_real_ops = [
            i for i in listing.instructions
            if i.opcode not in ("exit",)
        ]
        total, _ = count_instructions(kernel)
        assert len(static_real_ops) <= total   # dynamic >= static


class TestGuards:
    def test_guarded_branches(self):
        from repro.ir import CmpOp, DataType, Dim3, KernelBuilder
        from repro.ir.builder import TID_X

        builder = KernelBuilder("guard", block_dim=Dim3(32), grid_dim=Dim3(1))
        out = builder.param_ptr("out", DataType.S32)
        pred = builder.setp(CmpOp.LT, TID_X, 8)
        with builder.if_(pred) as branch:
            builder.st(out, TID_X, 1)
        with branch.orelse():
            builder.st(out, TID_X, 2)
        listing = parse_ptx(emit_ptx(builder.finish()))
        guarded = [i for i in listing.instructions if i.predicate]
        assert guarded
        assert any(i.predicate.startswith("!") for i in guarded)


class TestErrors:
    def test_no_entry(self):
        with pytest.raises(PtxParseError, match="no .entry"):
            parse_ptx("add.s32 \t%a, %b, %c;")

    def test_missing_semicolon(self):
        text = ".entry k ()\n{\n\tadd.s32 \t%a, %b, %c\n}"
        with pytest.raises(PtxParseError, match="missing ';'"):
            parse_ptx(text)

    def test_double_entry(self):
        text = ".entry a ()\n.entry b ()\n\texit;"
        with pytest.raises(PtxParseError, match="multiple"):
            parse_ptx(text)
