"""Text-level PTX accounting agrees with the IR-level analysis."""

import pytest

from repro.ptx import count_instructions, count_regions, emit_ptx
from repro.ptx.accounting import (
    AccountingError,
    text_instruction_count,
    text_region_count,
)
from repro.ptx.parse import parse_ptx
from repro.transforms import COMPLETE, standard_cleanup, unroll
from tests.conftest import build_saxpy, build_tiled_matmul


def both_counts(kernel):
    listing = parse_ptx(emit_ptx(kernel))
    return (
        (text_instruction_count(listing), count_instructions(kernel)[0]),
        (text_region_count(listing), count_regions(kernel)),
    )


class TestAgreement:
    def test_saxpy(self):
        (instr_pair, region_pair) = both_counts(build_saxpy())
        assert instr_pair[0] == instr_pair[1]
        assert region_pair[0] == region_pair[1] == 2

    @pytest.mark.parametrize("n", [32, 64])
    def test_matmul(self, n):
        (instr_pair, region_pair) = both_counts(build_tiled_matmul(n=n))
        assert instr_pair[0] == instr_pair[1]
        assert region_pair[0] == region_pair[1]

    @pytest.mark.parametrize("factor", [2, COMPLETE])
    def test_transformed_matmul(self, factor):
        kernel = standard_cleanup(
            unroll(build_tiled_matmul(n=32), factor, label="inner")
        )
        (instr_pair, region_pair) = both_counts(kernel)
        assert instr_pair[0] == instr_pair[1]
        assert region_pair[0] == region_pair[1]

    def test_application_kernels(self):
        from repro.apps import CoulombicPotential, MriFhd

        for app in (CoulombicPotential(), MriFhd()):
            kernel = app.kernel(app.default_configuration())
            (instr_pair, region_pair) = both_counts(kernel)
            assert instr_pair[0] == pytest.approx(instr_pair[1]), app.name
            assert region_pair[0] == region_pair[1], app.name


class TestWorkedExample:
    def test_paper_numbers_from_text_alone(self):
        """Instr and Regions of the Section 4 example, recomputed the
        way the authors did it — by reading the listing."""
        from repro.apps import MatMul
        from repro.tuning import Configuration

        app = MatMul(n=4096)
        kernel = app.kernel(Configuration({
            "tile": 16, "rect": 1, "unroll": "complete",
            "prefetch": False, "spill": False,
        }))
        listing = parse_ptx(emit_ptx(kernel))
        assert text_region_count(listing) == 769
        assert text_instruction_count(listing) == pytest.approx(15150, rel=0.01)


class TestErrors:
    def test_missing_annotation_rejected(self):
        text = "\n".join([
            ".entry k ()",
            "{",
            "\tmov.s32 \t%i, 0;",
            "$Lt_1:",
            "\tadd.s32 \t%i, %i, 1;",
            "\tsetp.lt.s32 \t%p, %i, 4;",
            "\t@%p bra \t$Lt_1;",
            "\texit;",
            "}",
        ])
        listing = parse_ptx(text)
        with pytest.raises(AccountingError, match="trips"):
            text_instruction_count(listing)
