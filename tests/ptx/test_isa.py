"""Instruction classification for the PTX-level analyses."""

from repro.arch import MemorySpace
from repro.ir import (
    DataType,
    Instruction,
    MemRef,
    Opcode,
    Param,
    SharedArray,
    VirtualRegister,
    imm,
)
from repro.ptx import BLOCKING_CLASSES, InstrClass, classify, mnemonic

F32 = DataType.F32
REG = VirtualRegister("r", F32)
GLOBAL = Param("g", F32, is_pointer=True)
TEXTURE = Param("t", F32, is_pointer=True, space=MemorySpace.TEXTURE)
CONSTANT = Param("c", F32, is_pointer=True, space=MemorySpace.CONSTANT)
SHARED = SharedArray("s", F32, (4,))


def load(base):
    return Instruction(Opcode.LD, dest=REG, mem=MemRef(base, imm(0)))


class TestClassify:
    def test_loads_by_space(self):
        assert classify(load(GLOBAL)) is InstrClass.GLOBAL_LOAD
        assert classify(load(TEXTURE)) is InstrClass.TEXTURE_LOAD
        assert classify(load(CONSTANT)) is InstrClass.CONST_LOAD
        assert classify(load(SHARED)) is InstrClass.SHARED_LOAD

    def test_stores_by_space(self):
        store = Instruction(Opcode.ST, srcs=(REG,), mem=MemRef(GLOBAL, imm(0)))
        assert classify(store) is InstrClass.GLOBAL_STORE
        shared_store = Instruction(Opcode.ST, srcs=(REG,), mem=MemRef(SHARED, imm(0)))
        assert classify(shared_store) is InstrClass.SHARED_STORE

    def test_barrier(self):
        assert classify(Instruction(Opcode.BAR)) is InstrClass.BARRIER

    def test_sfu(self):
        rsqrt = Instruction(Opcode.RSQRT, dest=REG, srcs=(REG,))
        assert classify(rsqrt) is InstrClass.SFU

    def test_alu_default(self):
        add = Instruction(Opcode.ADD, dest=REG, srcs=(REG, REG))
        assert classify(add) is InstrClass.ALU


class TestBlockingClasses:
    def test_long_latency_loads_and_barriers_block(self):
        assert InstrClass.GLOBAL_LOAD in BLOCKING_CLASSES
        assert InstrClass.TEXTURE_LOAD in BLOCKING_CLASSES
        assert InstrClass.LOCAL_LOAD in BLOCKING_CLASSES
        assert InstrClass.BARRIER in BLOCKING_CLASSES

    def test_stores_and_onchip_do_not_block(self):
        assert InstrClass.GLOBAL_STORE not in BLOCKING_CLASSES
        assert InstrClass.SHARED_LOAD not in BLOCKING_CLASSES
        assert InstrClass.CONST_LOAD not in BLOCKING_CLASSES
        assert InstrClass.ALU not in BLOCKING_CLASSES


class TestMnemonics:
    def test_memory_mnemonics(self):
        assert mnemonic(load(GLOBAL)) == "ld.global.f32"
        assert mnemonic(load(SHARED)) == "ld.shared.f32"

    def test_barrier_mnemonic(self):
        assert mnemonic(Instruction(Opcode.BAR)) == "bar.sync"

    def test_typed_alu_mnemonic(self):
        add = Instruction(Opcode.ADD, dest=REG, srcs=(REG, REG))
        assert mnemonic(add) == "add.f32"
