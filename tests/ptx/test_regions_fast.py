"""Loop-compressed region counting vs. the expansion oracle.

``count_regions`` extrapolates loop iterations once the region state
machine's iteration-entry state recurs; these tests pin it bit-identical
to ``count_regions_reference`` (feed the fully expanded stream) across
the constructs that drive the state machine — dependent and independent
load groups, barriers, SFU blocking, divergence — and across real
application kernels, including the expansion safety cap.
"""

import pytest

from repro.ir import CmpOp, DataType, Dim3, KernelBuilder
from repro.ir.builder import TID_X
from repro.ptx import count_regions
from repro.ptx.analysis import count_regions_reference

F32 = DataType.F32

pytestmark = pytest.mark.fast


def builder():
    return KernelBuilder("k", block_dim=Dim3(32), grid_dim=Dim3(1))


def assert_matches_reference(kernel):
    assert count_regions(kernel) == count_regions_reference(kernel)


class TestEdgeCases:
    def test_empty_body(self):
        assert_matches_reference(builder().finish())

    def test_zero_trip_loop(self):
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 0):
            v = b.ld(x, TID_X)
            b.st(x, TID_X, v)
        assert_matches_reference(b.finish())

    def test_single_trip_loop(self):
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 1):
            v = b.ld(x, TID_X)
            b.st(x, TID_X, v)
        assert_matches_reference(b.finish())

    def test_dependent_loads_cycle(self):
        # Each iteration opens a group and immediately closes it.
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 100):
            v = b.ld(x, TID_X)
            b.st(x, TID_X, b.add(v, 1.0))
        kernel = b.finish()
        assert_matches_reference(kernel)
        assert count_regions(kernel) == 100 + 1

    def test_independent_loads_merge_across_iterations(self):
        # No use of the loaded values inside the loop: the open group
        # persists across iterations, so later iterations add no event.
        b = builder()
        x = b.param_ptr("x", F32)
        y = b.param_ptr("y", F32)
        acc = b.mov(0.0)
        with b.loop(0, 50):
            b.ld(x, TID_X)
            b.ld(y, TID_X)
        b.st(x, TID_X, acc)
        assert_matches_reference(b.finish())

    def test_barrier_in_loop(self):
        b = builder()
        b.shared("s", F32, (32,))
        x = b.param_ptr("x", F32)
        with b.loop(0, 37):
            v = b.ld(x, TID_X)
            b.bar()
            b.st(x, TID_X, v)
            b.bar()
        assert_matches_reference(b.finish())

    def test_nested_loops(self):
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 12):
            with b.loop(0, 8):
                v = b.ld(x, TID_X)
                b.st(x, TID_X, v)
        assert_matches_reference(b.finish())

    def test_divergent_if_in_loop(self):
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 20):
            pred = b.setp(CmpOp.LT, TID_X, 16)
            with b.if_(pred, taken_fraction=0.5) as branch:
                v = b.ld(x, TID_X)
                b.st(x, TID_X, v)
            with branch.orelse():
                w = b.ld(x, TID_X, offset=1)
                b.st(x, TID_X, w, offset=1)
        assert_matches_reference(b.finish())

    def test_fully_biased_ifs(self):
        for fraction in (0.0, 1.0):
            b = builder()
            x = b.param_ptr("x", F32)
            pred = b.setp(CmpOp.LT, TID_X, 16)
            with b.loop(0, 9):
                with b.if_(pred, taken_fraction=fraction) as branch:
                    v = b.ld(x, TID_X)
                    b.st(x, TID_X, v)
                with branch.orelse():
                    b.add(1.0, 2.0)
            assert_matches_reference(b.finish())

    def test_sfu_blocks_when_nothing_longer(self):
        # No long-latency access anywhere: every SFU op is an event.
        b = builder()
        x = b.param_ptr("x", F32)
        acc = b.mov(0.0)
        with b.loop(0, 25):
            acc = b.add(acc, b.sin(acc))
        b.st(x, TID_X, acc)
        kernel = b.finish()
        assert_matches_reference(kernel)
        assert count_regions(kernel) == 25 + 1

    def test_sfu_ignored_with_longer_latency_present(self):
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 25):
            v = b.ld(x, TID_X)
            b.st(x, TID_X, b.sin(v))
        assert_matches_reference(b.finish())

    def test_long_loop_extrapolates_exactly(self):
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 10_000):
            v = b.ld(x, TID_X)
            b.st(x, TID_X, b.add(v, 1.0))
        kernel = b.finish()
        assert count_regions(kernel) == 10_000 + 1
        # (the reference would expand 60k statements here; still cheap
        # enough to pin the equivalence directly)
        assert_matches_reference(kernel)


class TestExpansionCap:
    def test_overflow_raises_like_reference(self, monkeypatch):
        monkeypatch.setattr(
            "repro.ptx.analysis.MAX_EXPANDED_INSTRUCTIONS", 500
        )
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 1_000):
            v = b.ld(x, TID_X)
            b.st(x, TID_X, v)
        kernel = b.finish()
        with pytest.raises(OverflowError) as fast:
            count_regions(kernel)
        with pytest.raises(OverflowError) as reference:
            count_regions_reference(kernel)
        assert str(fast.value) == str(reference.value)

    def test_below_cap_still_counts(self, monkeypatch):
        monkeypatch.setattr(
            "repro.ptx.analysis.MAX_EXPANDED_INSTRUCTIONS", 500
        )
        b = builder()
        x = b.param_ptr("x", F32)
        with b.loop(0, 50):
            v = b.ld(x, TID_X)
            b.st(x, TID_X, v)
        assert_matches_reference(b.finish())


class TestApplicationKernels:
    def test_app_kernels_bit_identical(self):
        from repro.apps import all_applications

        checked = 0
        for app in all_applications():
            small = app.test_instance()
            configs = list(small.space())
            step = max(1, len(configs) // 6)
            for config in configs[::step]:
                try:
                    kernel = small.build_kernel(config)
                except Exception:
                    continue
                assert_matches_reference(kernel)
                checked += 1
        assert checked >= 15
