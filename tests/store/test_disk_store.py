"""ResultStore behaviour: round-trips, counters, LRU eviction, resolve."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.store import (
    COMPILE_TIER,
    RESOURCES_TIER,
    ResultStore,
    SM_TIER,
    STORE_ENV,
    STORE_MAX_MB_ENV,
    TIERS,
    TRACE_TIER,
    resolve_store,
)

FP = "ab" * 32  # a 64-hex-char fingerprint
FP2 = "cd" * 32


def test_round_trips_every_tier(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    payloads = {
        RESOURCES_TIER: {"registers": 12, "shared": 256},
        TRACE_TIER: ["ld", "st", "mad"],
        COMPILE_TIER: {"report": [1.5, 2.5]},
    }
    for tier, obj in payloads.items():
        store.store(tier, FP, obj)
        assert store.load(tier, FP) == obj
    store.store(SM_TIER, (FP, 3), {"cycles": 99})
    assert store.load(SM_TIER, (FP, 3)) == {"cycles": 99}
    # SM results for different sampled-block counts are distinct entries
    assert store.load(SM_TIER, (FP, 4)) is None


def test_hit_and_miss_counters(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert store.load(TRACE_TIER, FP) is None
    store.store(TRACE_TIER, FP, [1])
    store.load(TRACE_TIER, FP)
    assert (store.hits, store.misses) == (1, 1)
    counters = store.counters()
    bytes_verified = counters.pop("store_bytes_verified")
    assert counters == {
        "store_hits": 1, "store_misses": 1,
        "store_evictions": 0, "store_corrupt": 0,
        "store_bulk_reads": 0,
    }
    assert bytes_verified > 0  # the hit's payload was digest-checked


def test_persists_across_instances(tmp_path):
    path = str(tmp_path / "store")
    ResultStore(path).store(COMPILE_TIER, FP, {"v": 1})
    reopened = ResultStore(path)
    assert reopened.load(COMPILE_TIER, FP) == {"v": 1}
    assert reopened.hits == 1  # counters are per-instance, not persisted


def test_unknown_tier_rejected(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    with pytest.raises(ValueError, match="unknown store tier"):
        store.store("bogus", FP, {})


def test_max_bytes_validation(tmp_path):
    with pytest.raises(ValueError, match="max_bytes"):
        ResultStore(str(tmp_path / "store"), max_bytes=0)


def test_layout_created(tmp_path):
    root = tmp_path / "store"
    ResultStore(str(root))
    for tier in TIERS:
        assert (root / tier).is_dir()
    assert (root / "VERSION").exists()
    assert (root / ".lock").exists()


def test_overwrite_replaces_entry(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.store(TRACE_TIER, FP, [1])
    store.store(TRACE_TIER, FP, [2])
    assert store.load(TRACE_TIER, FP) == [2]
    assert store.entry_count() == 1


def test_lru_evicts_oldest_first(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    blob = "x" * 2000
    store.store(TRACE_TIER, FP, blob)
    store.store(TRACE_TIER, FP2, blob)
    # Age the first entry well into the past, then bound the store so
    # only ~one entry fits: the next write must evict the old one.
    old_path = store._entry_path(TRACE_TIER, FP)
    os.utime(old_path, (1, 1))
    bounded = ResultStore(str(tmp_path / "store"),
                          max_bytes=store.size_bytes() + 10)
    bounded.store(COMPILE_TIER, FP, blob)
    assert bounded.evictions >= 1
    assert not os.path.exists(old_path)
    # the younger trace and the fresh compile entry survived
    assert bounded.load(TRACE_TIER, FP2) == blob
    assert bounded.load(COMPILE_TIER, FP) == blob


def test_read_hit_refreshes_recency(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.store(TRACE_TIER, FP, "a")
    path = store._entry_path(TRACE_TIER, FP)
    os.utime(path, (1, 1))
    store.load(TRACE_TIER, FP)
    assert os.stat(path).st_mtime > 1  # a hit makes the entry young


def test_store_survives_pickling(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.store(TRACE_TIER, FP, [7])
    clone = pickle.loads(pickle.dumps(store))
    assert clone.load(TRACE_TIER, FP) == [7]
    clone.store(TRACE_TIER, FP2, [8])  # lock re-acquires cleanly
    assert store.load(TRACE_TIER, FP2) == [8]


def test_size_and_count_introspection(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert (store.size_bytes(), store.entry_count()) == (0, 0)
    store.store(TRACE_TIER, FP, "abc")
    assert store.entry_count() == 1
    assert store.size_bytes() > 0


# ----------------------------------------------------------------------
# resolve_store


def test_resolve_passthrough_and_disabled(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert resolve_store(store) is store
    assert resolve_store(None, environ={}) is None
    assert resolve_store(None, environ={STORE_ENV: ""}) is None


def test_resolve_path_and_env(tmp_path):
    direct = resolve_store(str(tmp_path / "a"))
    assert isinstance(direct, ResultStore) and direct.max_bytes is None
    from_env = resolve_store(None, environ={STORE_ENV: str(tmp_path / "b")})
    assert from_env.path == str(tmp_path / "b")


def test_resolve_size_bound(tmp_path):
    environ = {STORE_MAX_MB_ENV: "2.5"}
    store = resolve_store(str(tmp_path / "a"), environ=environ)
    assert store.max_bytes == int(2.5 * 1024 * 1024)


@pytest.mark.parametrize("bad", ["lots", "-1", "0"])
def test_resolve_bad_size_names_the_variable(tmp_path, bad):
    with pytest.raises(ValueError, match=STORE_MAX_MB_ENV):
        resolve_store(str(tmp_path / "a"), environ={STORE_MAX_MB_ENV: bad})
