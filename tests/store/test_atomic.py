"""Atomic-write helper contract: atomicity plus umask-honoring modes.

``tempfile.mkstemp`` creates files 0600 regardless of umask; the repo's
durable artifacts (checkpoints, store entries) are *published* files
that must carry the permissions a plain ``open(path, "w")`` would
produce.  These tests pin that, including the engine-checkpoint
regression the helper was introduced to fix.
"""

from __future__ import annotations

import json
import os
import stat

import pytest

from repro.store.atomic import atomic_write_bytes, atomic_write_text, current_umask


@pytest.fixture
def restore_umask():
    before = os.umask(0o022)
    os.umask(before)
    yield
    os.umask(before)


def _mode(path: str) -> int:
    return stat.S_IMODE(os.stat(path).st_mode)


def test_writes_bytes(tmp_path):
    path = tmp_path / "blob.bin"
    atomic_write_bytes(str(path), b"\x00\x01payload")
    assert path.read_bytes() == b"\x00\x01payload"


def test_writes_text_utf8(tmp_path):
    path = tmp_path / "note.txt"
    atomic_write_text(str(path), "héllo\n")
    assert path.read_text(encoding="utf-8") == "héllo\n"


def test_overwrites_existing_file(tmp_path):
    path = tmp_path / "target"
    path.write_text("old")
    atomic_write_text(str(path), "new")
    assert path.read_text() == "new"


def test_no_tmp_files_left_behind(tmp_path):
    atomic_write_text(str(tmp_path / "a"), "x")
    atomic_write_text(str(tmp_path / "a"), "y")
    assert sorted(p.name for p in tmp_path.iterdir()) == ["a"]


def test_failure_leaves_target_and_no_droppings(tmp_path):
    path = tmp_path / "target"
    path.write_text("original")
    with pytest.raises(TypeError):
        atomic_write_bytes(str(path), "not-bytes")  # type: ignore[arg-type]
    assert path.read_text() == "original"
    assert sorted(p.name for p in tmp_path.iterdir()) == ["target"]


def test_current_umask_reads_without_changing(restore_umask):
    os.umask(0o027)
    assert current_umask() == 0o027
    assert current_umask() == 0o027  # idempotent: set-and-restore


@pytest.mark.parametrize("umask,expected", [(0o022, 0o644), (0o077, 0o600),
                                            (0o002, 0o664)])
def test_mode_honors_umask(tmp_path, restore_umask, umask, expected):
    os.umask(umask)
    path = tmp_path / "published"
    atomic_write_text(str(path), "data")
    assert _mode(str(path)) == expected


def test_checkpoint_perms_honor_umask(tmp_path, restore_umask):
    """Regression: engine checkpoints used a raw mkstemp and came out
    0600 under any umask — unreadable by a teammate resuming the sweep
    from a shared directory."""
    from repro.tuning.engine import ExecutionEngine
    from repro.tuning.space import ConfigSpace

    os.umask(0o022)
    space = ConfigSpace({"x": [1, 2]})
    configs = space.configurations()
    path = tmp_path / "ckpt.json"
    engine = ExecutionEngine(
        evaluate=lambda c: (_ for _ in ()).throw(AssertionError),
        simulate=lambda c: float(c["x"]),
        checkpoint_path=str(path),
        checkpoint_interval=1,
    )
    engine.seconds_for(configs)
    assert _mode(str(path)) == 0o644
    payload = json.loads(path.read_text())
    assert payload["version"] == 2
