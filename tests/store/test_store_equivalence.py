"""The store never changes results — only how fast they arrive.

Bit-equivalence of sweeps with the store absent / cold / warm, under
serial and pooled execution, plus the SimulationCache integration:
read-through, write-back, worker backlogs, and counter derivation.
"""

from __future__ import annotations

import pytest

from repro.apps.matmul import MatMul
from repro.sim.fingerprint import SimulationCache
from repro.store import ResultStore


@pytest.fixture
def app():
    return MatMul().test_instance()


@pytest.fixture
def configs(app):
    return list(app.space())[:8]


def sweep(store, workers=1):
    """Fresh app + engine (a new process's worth of state) -> times."""
    app = MatMul().test_instance()
    engine = app.search_engine(workers=workers, store=store)
    try:
        configs = list(app.space())[:8]
        entries = engine.evaluate_all(configs)
        seconds = engine.seconds_for([e.config for e in entries if e.is_valid])
        return seconds, engine.stats
    finally:
        engine.close()


def test_absent_cold_warm_bit_identical(tmp_path):
    path = str(tmp_path / "store")
    storeless, _ = sweep(None)
    cold, cold_stats = sweep(path)
    warm, warm_stats = sweep(path)
    assert cold == storeless
    assert warm == storeless
    assert cold_stats.store_hits == 0 and cold_stats.store_misses > 0
    assert warm_stats.store_hits > 0 and warm_stats.store_misses == 0
    # a warm run does no replay or compile work at all
    assert warm_stats.events_replayed == 0
    assert warm_stats.compile_evaluations == 0


def test_pooled_sweep_with_store_matches_serial(tmp_path):
    """workers=2 with a store attached is bit-identical to workers=1
    (and to no store at all) — both cold and warm."""
    storeless, _ = sweep(None)
    serial_cold, _ = sweep(str(tmp_path / "serial"))
    pooled_cold, _ = sweep(str(tmp_path / "pooled"), workers=2)
    assert serial_cold == storeless
    assert pooled_cold == storeless
    serial_warm, _ = sweep(str(tmp_path / "serial"))
    pooled_warm, pooled_stats = sweep(str(tmp_path / "pooled"), workers=2)
    assert serial_warm == storeless
    assert pooled_warm == storeless
    assert pooled_stats.store_hits > 0


def test_pooled_cold_sweep_populates_store(tmp_path):
    """Workers never write the store; their backlogged artifacts must
    still land on disk via the parent's write-back."""
    path = str(tmp_path / "store")
    sweep(path, workers=2)
    store = ResultStore(path)
    assert store.entry_count() > 0
    # everything a serial cold sweep would persist is there
    serial_path = str(tmp_path / "serial")
    sweep(serial_path, workers=1)
    assert store.entry_count() == ResultStore(serial_path).entry_count()


def test_cross_store_warm_start(tmp_path, app, configs):
    """A store populated by one process warms a completely fresh one."""
    path = str(tmp_path / "store")
    reference = [app.simulate(config) for config in configs]
    app.sim_cache.flush_to_store(ResultStore(path))

    fresh = MatMul().test_instance()
    fresh.sim_cache.attach_store(ResultStore(path), write_back=False)
    warmed = [fresh.simulate(config) for config in configs]
    assert warmed == reference
    assert fresh.sim_cache.events_replayed == 0
    assert fresh.sim_cache.store.hits > 0


# ----------------------------------------------------------------------
# SimulationCache integration details.


def test_counters_omit_store_keys_without_a_store():
    cache = SimulationCache()
    assert "store_hits" not in cache.counters()


def test_counters_include_store_keys_with_a_store(tmp_path):
    cache = SimulationCache(store=ResultStore(str(tmp_path / "s")))
    counters = cache.counters()
    for name in ("store_hits", "store_misses",
                 "store_evictions", "store_corrupt"):
        assert counters[name] == 0


def test_counter_spec_is_the_single_source_of_truth():
    """Regression: counters() and clear() used to maintain the counter
    list by hand in two places; both must now derive from the spec."""
    cache = SimulationCache()
    spec_names = [name for name, _attr, _zero in cache.COUNTER_SPEC]
    assert list(cache.counters()) == spec_names
    for _name, attr, _zero in cache.COUNTER_SPEC:
        setattr(cache, attr, 7)
    assert all(value == 7 for value in cache.counters().values())
    cache.clear()
    zeros = {name: zero for name, _attr, zero in cache.COUNTER_SPEC}
    assert cache.counters() == zeros


def test_clear_leaves_the_store_alone(tmp_path):
    store = ResultStore(str(tmp_path / "s"))
    cache = SimulationCache(store=store)
    cache.store_trace("ab" * 32, ["t"])
    cache.clear()
    assert cache.store is store
    assert store.entry_count() == 1  # durability is the whole point


def test_worker_mode_backlogs_instead_of_writing(tmp_path):
    store = ResultStore(str(tmp_path / "s"))
    cache = SimulationCache(store=store)
    cache.set_store_write_back(False)
    cache.store_trace("ab" * 32, ["t"])
    assert store.entry_count() == 0
    backlog = cache.drain_store_backlog()
    assert backlog == [("trace", "ab" * 32, ["t"])]
    assert cache.drain_store_backlog() == []  # drained exactly once

    parent = SimulationCache(store=ResultStore(str(tmp_path / "p")))
    parent.absorb_store_entries(backlog)
    assert parent.lookup_trace("ab" * 32) == ["t"]
    assert parent.store.entry_count() == 1


def test_absorb_does_not_inflate_work_counters(tmp_path):
    parent = SimulationCache(store=ResultStore(str(tmp_path / "p")))
    parent.absorb_store_entries([("sm", ("ab" * 32, 2), _FakeSM())])
    assert parent.waves_simulated == 0
    assert parent.events_replayed == 0
    # absorbed sm keys arrive as lists after pickling; lookup still hits
    parent.absorb_store_entries([("sm", ["cd" * 32, 3], _FakeSM())])
    assert parent.lookup_sm("cd" * 32, 3) is not None


class _FakeSM:
    waves_simulated = 5
    blocks_replayed = 10
    blocks_extrapolated = 0
    blocks_resident = 2
    events_replayed = 50
