"""Satellites 1 and 3: the write path keeps size stats incrementally
(no directory walk per store()) and the LRU sweep tolerates entries
other processes unlink underneath it."""

from __future__ import annotations

import multiprocessing
import os
import random

import pytest

from repro.store.disk import TRACE_TIER, ResultStore


def fingerprint(index: int) -> str:
    return f"{index:04x}" * 16


def count_walks(store: ResultStore):
    """Instrument one instance's _walk_entries; returns the counter."""
    walks = {"count": 0}
    original = store._walk_entries

    def counted():
        walks["count"] += 1
        return original()

    store._walk_entries = counted
    return walks


def test_bounded_writes_never_walk(tmp_path):
    """The O(entries)-walk-per-write regression stays fixed: after the
    open-time resync, neither plain writes, overwrites, nor
    index-served evictions touch the directory tree."""
    store = ResultStore(str(tmp_path / "store"), max_bytes=64 * 1024)
    walks = count_walks(store)
    for i in range(50):
        store.store(TRACE_TIER, fingerprint(i), "x" * 256)
    for i in range(10):  # overwrites reuse the indexed size
        store.store(TRACE_TIER, fingerprint(i), "y" * 300)
    assert walks["count"] == 0
    # The index absorbed every delta: it agrees with a fresh walk.
    assert store._total_bytes == store.size_bytes()


def test_eviction_served_from_index_without_walk(tmp_path):
    store = ResultStore(str(tmp_path / "store"), max_bytes=8 * 1024)
    walks = count_walks(store)
    for i in range(40):  # ~40 * ~700B >> 8KiB: must evict repeatedly
        store.store(TRACE_TIER, fingerprint(i), "z" * 600)
    assert walks["count"] == 0
    assert store.evictions > 0
    assert store.size_bytes() <= store.max_bytes
    assert store._total_bytes == store.size_bytes()


def test_eviction_is_oldest_first(tmp_path):
    root = str(tmp_path / "store")
    seed = ResultStore(root)
    for i in range(6):
        seed.store(TRACE_TIER, fingerprint(i), "x" * 1000)
        # strictly increasing mtimes, oldest entry is fingerprint(0)
        os.utime(seed._entry_path(TRACE_TIER, fingerprint(i)),
                 (100 + i, 100 + i))
    store = ResultStore(root, max_bytes=seed.size_bytes() + 1)
    store.store(TRACE_TIER, fingerprint(6), "x" * 3000)
    assert store.evictions >= 3
    survivors = [i for i in range(7)
                 if os.path.exists(store._entry_path(TRACE_TIER,
                                                     fingerprint(i)))]
    evicted = [i for i in range(7) if i not in survivors]
    # Only the oldest entries went; everything evicted predates
    # everything that survived.
    assert evicted == list(range(len(evicted)))
    assert 6 in survivors
    assert store.size_bytes() <= store.max_bytes


def test_concurrent_unlink_tolerated(tmp_path):
    """Entries another process removed mid-sweep leave the accounting
    without raising and without inflating this store's evictions."""
    store = ResultStore(str(tmp_path / "store"), max_bytes=1024 * 1024)
    for i in range(20):
        store.store(TRACE_TIER, fingerprint(i), "x" * 1000)
    # A rival evictor deletes half the entries behind our back.
    for i in range(0, 20, 2):
        os.unlink(store._entry_path(TRACE_TIER, fingerprint(i)))
    before = store.evictions
    store.max_bytes = 1  # force a sweep that visits every stale path
    store._evict_lru()
    actually_unlinked = store.evictions - before
    assert actually_unlinked == 10  # the ten entries still on disk
    assert store.size_bytes() == 0
    assert store._total_bytes == 0


def test_periodic_resync_bounds_multi_writer_drift(tmp_path):
    """The running total only sees this instance's writes; the
    scheduled resync re-anchors it to actual disk usage so entries
    other writers added still count against max_bytes."""
    root = str(tmp_path / "store")
    max_bytes = 8 * 1024
    writer = ResultStore(root, max_bytes=max_bytes)
    writer.resync_write_interval = 8
    walks = count_walks(writer)
    # A rival writer (no bound, so it never evicts) grows the
    # directory far past the bound behind this instance's back.
    rival = ResultStore(root)
    for i in range(30):
        rival.store(TRACE_TIER, fingerprint(1000 + i), "x" * 1000)
    # This writer's own traffic stays tiny — without the periodic
    # resync its total never crosses max_bytes and nothing evicts.
    for i in range(8):
        writer.store(TRACE_TIER, fingerprint(i), "y" * 10)
    assert walks["count"] == 1  # exactly the scheduled resync
    assert writer.evictions > 0
    assert writer.size_bytes() <= max_bytes
    assert writer._total_bytes == writer.size_bytes()


def _hammer(root: str, seed: int, max_bytes: int) -> None:
    """Child process: one bounded store, many random-sized writes."""
    rng = random.Random(seed)
    store = ResultStore(root, max_bytes=max_bytes)
    for i in range(120):
        key = f"{seed:02x}{i:02x}" * 16
        store.store(TRACE_TIER, key, "x" * rng.randrange(200, 2000))


def test_two_writer_eviction_stress(tmp_path):
    """Two processes evicting out from under each other must never
    crash, and a fresh open + one write restores the size bound."""
    root = str(tmp_path / "store")
    max_bytes = 32 * 1024
    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=_hammer, args=(root, seed, max_bytes))
             for seed in (1, 2)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    final = ResultStore(root, max_bytes=max_bytes)  # resyncs on open
    final.store(TRACE_TIER, fingerprint(9999), "x" * 500)
    assert final.size_bytes() <= max_bytes


def test_unbounded_store_keeps_no_index(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    walks = count_walks(store)
    for i in range(10):
        store.store(TRACE_TIER, fingerprint(i), "x")
    assert store._index is None
    assert walks["count"] == 0
