"""Corruption recovery: damage is a warned-about miss, never a crash.

Mirrors the engine-checkpoint recovery matrix
(tests/tuning/test_checkpoint_resume.py): every flavour of on-disk
damage — truncation, garbage, wrong schema, torn writes, a hostile
VERSION marker, even a concurrent-writer race — must degrade to
"recompute it", with the corruption counted and logged.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import pickle

import pytest

from repro.store import ResultStore, SCHEMA_VERSION, TRACE_TIER, VERIFY_POLICIES
from repro.store.disk import MAGIC

FP = "ab" * 32
PAYLOAD = {"trace": [1, 2, 3]}


# The whole damage matrix runs under every read-verification policy:
# the first read of a path is always fully verified (a local store()
# re-arms it), so relaxed policies must recover identically.
@pytest.fixture(params=VERIFY_POLICIES)
def populated(tmp_path, request):
    store = ResultStore(str(tmp_path / "store"), verify=request.param)
    store.store(TRACE_TIER, FP, PAYLOAD)
    return store


def entry_path(store: ResultStore) -> str:
    return store._entry_path(TRACE_TIER, FP)


def assert_recovers(store: ResultStore, caplog) -> None:
    """The contract: damaged entry reads as a miss, is counted and
    logged, the file is gone, and a recompute+rewrite round-trips."""
    with caplog.at_level(logging.WARNING, logger="repro.store.disk"):
        assert store.load(TRACE_TIER, FP) is None
    assert store.corrupt == 1
    assert store.misses == 1
    assert not os.path.exists(entry_path(store))
    assert any("corrupt" in record.message for record in caplog.records)
    store.store(TRACE_TIER, FP, PAYLOAD)  # recompute path still works
    assert store.load(TRACE_TIER, FP) == PAYLOAD


def test_truncated_payload(populated, caplog):
    path = entry_path(populated)
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[:-5])
    assert_recovers(populated, caplog)


def test_garbage_bytes(populated, caplog):
    with open(entry_path(populated), "wb") as handle:
        handle.write(b"\x93\x00complete nonsense\xff")
    assert_recovers(populated, caplog)


def test_empty_entry_file(populated, caplog):
    open(entry_path(populated), "wb").close()
    assert_recovers(populated, caplog)


def test_wrong_schema_version_in_entry(populated, caplog):
    path = entry_path(populated)
    header, payload = open(path, "rb").read().split(b"\n", 1)
    fields = header.split(b" ")
    fields[1] = str(SCHEMA_VERSION + 1).encode()
    with open(path, "wb") as handle:
        handle.write(b" ".join(fields) + b"\n" + payload)
    assert_recovers(populated, caplog)


def test_tier_mismatch(populated, caplog):
    path = entry_path(populated)
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob.replace(b" trace ", b" compile ", 1))
    assert_recovers(populated, caplog)


def test_digest_mismatch_flipped_payload_byte(populated, caplog):
    path = entry_path(populated)
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    assert_recovers(populated, caplog)


def test_undecodable_payload(populated, caplog):
    # Valid header and digest over a payload pickle.loads rejects:
    # the last line of defence, counted like any other corruption.
    import hashlib

    payload = b"not a pickle at all"
    digest = hashlib.sha256(payload).hexdigest()
    header = f"{MAGIC} {SCHEMA_VERSION} {TRACE_TIER} {digest} {len(payload)}\n"
    with open(entry_path(populated), "wb") as handle:
        handle.write(header.encode() + payload)
    assert_recovers(populated, caplog)


# ----------------------------------------------------------------------
# VERSION marker damage (never fatal: entries carry their own headers).


def test_version_marker_garbage_restamps(tmp_path, caplog):
    root = tmp_path / "store"
    ResultStore(str(root)).store(TRACE_TIER, FP, PAYLOAD)
    (root / "VERSION").write_bytes(b"\x00garbage")
    with caplog.at_level(logging.WARNING, logger="repro.store.disk"):
        store = ResultStore(str(root))
    assert store.corrupt == 1
    assert json.loads((root / "VERSION").read_text())["schema"] == SCHEMA_VERSION
    # entries written under the same (entry-level) schema still load
    assert store.load(TRACE_TIER, FP) == PAYLOAD


def test_version_marker_wrong_schema_restamps(tmp_path, caplog):
    root = tmp_path / "store"
    ResultStore(str(root))
    (root / "VERSION").write_text(json.dumps({"magic": MAGIC, "schema": 999}))
    with caplog.at_level(logging.WARNING, logger="repro.store.disk"):
        store = ResultStore(str(root))
    assert store.corrupt == 1
    assert any("schema" in r.message for r in caplog.records)
    assert json.loads((root / "VERSION").read_text())["schema"] == SCHEMA_VERSION
    store.store(TRACE_TIER, FP, PAYLOAD)
    assert store.load(TRACE_TIER, FP) == PAYLOAD


def test_version_marker_wrong_magic_restamps(tmp_path):
    root = tmp_path / "store"
    ResultStore(str(root))
    (root / "VERSION").write_text(json.dumps({"magic": "other-tool", "schema": 1}))
    store = ResultStore(str(root))
    assert store.corrupt == 1
    assert json.loads((root / "VERSION").read_text())["magic"] == MAGIC


# ----------------------------------------------------------------------
# Concurrency.


def _writer(path: str, worker: int, count: int) -> None:
    store = ResultStore(path)
    for i in range(count):
        key = f"{worker:02x}{i:02x}" * 16
        store.store(TRACE_TIER, key, {"worker": worker, "i": i})
        # every writer also hammers one shared key
        store.store(TRACE_TIER, FP, {"worker": worker, "i": i})


def test_concurrent_writers_leave_no_corruption(tmp_path):
    """Several processes writing (including to the same key) must leave
    only complete, decodable entries — the atomic-replace + digest
    protocol, exercised for real."""
    path = str(tmp_path / "store")
    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=_writer, args=(path, w, 8)) for w in range(3)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    reader = ResultStore(path)
    assert reader.entry_count() == 3 * 8 + 1
    for worker in range(3):
        for i in range(8):
            key = f"{worker:02x}{i:02x}" * 16
            assert reader.load(TRACE_TIER, key) == {"worker": worker, "i": i}
    shared = reader.load(TRACE_TIER, FP)
    assert shared is not None and shared["worker"] in (0, 1, 2)
    assert reader.corrupt == 0


def test_torn_write_simulated_by_partial_replace(populated, caplog):
    """A reader that races a (non-atomic, hypothetical) writer sees a
    short blob; the digest/length check rejects it instead of handing
    back a half-written artifact."""
    path = entry_path(populated)
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    assert_recovers(populated, caplog)


def test_unpicklable_objects_fail_at_store_time(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    with pytest.raises((pickle.PicklingError, TypeError, AttributeError)):
        store.store(TRACE_TIER, FP, lambda: None)
    # nothing half-written landed on disk
    assert store.entry_count() == 0
