"""PR 9 store surface: load_many, list_keys, verify policies, DecodedCache.

The bulk-read path must account hits/misses/corruption exactly like
per-key ``load`` (one ``bulk_reads`` tick per call is the only
difference), ``list_keys`` must invert the entry naming (including the
``sm`` tuple encoding), and the relaxed verification policies must
hash the first read of every path — relaxation only ever skips
*re-proving* payloads this instance already checked.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.store import (
    DecodedCache,
    ResultStore,
    SM_TIER,
    STORE_ENV,
    STORE_VERIFY_ENV,
    TRACE_TIER,
    VERIFY_POLICIES,
    resolve_store,
)
from repro.store.disk import VERIFY_ALWAYS, VERIFY_OPEN, VERIFY_SAMPLED

FP = "ab" * 32
FP2 = "cd" * 32
FP3 = "ef" * 32


# ----------------------------------------------------------------------
# load_many


def test_load_many_accounts_like_load(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.store(TRACE_TIER, FP, [1])
    store.store(TRACE_TIER, FP2, [2])
    found = store.load_many(TRACE_TIER, [FP, FP2, FP3])
    assert found == {FP: [1], FP2: [2]}
    assert (store.hits, store.misses) == (2, 1)
    assert store.bulk_reads == 1
    # a second batch is one more bulk read, not one per key
    store.load_many(TRACE_TIER, [FP, FP2])
    assert store.bulk_reads == 2
    assert store.hits == 4


def test_load_many_empty_batch(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert store.load_many(TRACE_TIER, []) == {}
    assert store.bulk_reads == 1
    assert (store.hits, store.misses) == (0, 0)


def test_load_many_sm_tuple_keys(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.store(SM_TIER, (FP, 3), {"cycles": 9})
    store.store(SM_TIER, (FP, 4), {"cycles": 11})
    found = store.load_many(SM_TIER, [(FP, 3), (FP, 4), (FP, 5)])
    assert found == {(FP, 3): {"cycles": 9}, (FP, 4): {"cycles": 11}}


def test_load_many_counts_corruption_per_entry(tmp_path, caplog):
    store = ResultStore(str(tmp_path / "store"))
    store.store(TRACE_TIER, FP, [1])
    store.store(TRACE_TIER, FP2, [2])
    bad = store._entry_path(TRACE_TIER, FP2)
    blob = bytearray(open(bad, "rb").read())
    blob[-1] ^= 0xFF
    with open(bad, "wb") as handle:
        handle.write(bytes(blob))
    found = store.load_many(TRACE_TIER, [FP, FP2])
    assert found == {FP: [1]}
    assert store.corrupt == 1
    assert store.misses == 1
    assert not os.path.exists(bad)


# ----------------------------------------------------------------------
# list_keys


def test_list_keys_round_trips_every_tier(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert store.list_keys(TRACE_TIER) == []
    store.store(TRACE_TIER, FP2, [2])
    store.store(TRACE_TIER, FP, [1])
    store.store(SM_TIER, (FP, 3), {"cycles": 9})
    store.store(SM_TIER, (FP, 12), {"cycles": 20})
    assert store.list_keys(TRACE_TIER) == sorted([FP, FP2])
    assert store.list_keys(SM_TIER) == [(FP, 3), (FP, 12)]
    # listed keys load: the full preload loop works end to end
    assert store.load_many(SM_TIER, store.list_keys(SM_TIER)) == {
        (FP, 3): {"cycles": 9}, (FP, 12): {"cycles": 20},
    }


def test_list_keys_skips_unparseable_names(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.store(SM_TIER, (FP, 3), {"cycles": 9})
    stray = os.path.join(store.path, SM_TIER, "zz", "not-a-key-x.entry")
    os.makedirs(os.path.dirname(stray), exist_ok=True)
    open(stray, "w").close()
    assert store.list_keys(SM_TIER) == [(FP, 3)]


def test_list_keys_rejects_unknown_tier(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    with pytest.raises(ValueError, match="unknown store tier"):
        store.list_keys("nonsense")


# ----------------------------------------------------------------------
# Verify policies


def test_invalid_policy_rejected(tmp_path):
    with pytest.raises(ValueError, match="verify must be one of"):
        ResultStore(str(tmp_path / "store"), verify="never")


@pytest.mark.parametrize("policy", VERIFY_POLICIES)
def test_first_read_always_hashes(tmp_path, policy):
    store = ResultStore(str(tmp_path / "store"), verify=policy)
    store.store(TRACE_TIER, FP, [1, 2, 3])
    assert store.bytes_verified == 0  # writes hash via _encode, not here
    assert store.load(TRACE_TIER, FP) == [1, 2, 3]
    assert store.bytes_verified > 0


def test_open_policy_hashes_each_path_once(tmp_path):
    store = ResultStore(str(tmp_path / "store"), verify=VERIFY_OPEN)
    store.store(TRACE_TIER, FP, [1])
    store.load(TRACE_TIER, FP)
    once = store.bytes_verified
    assert once > 0
    for _ in range(5):
        store.load(TRACE_TIER, FP)
    assert store.bytes_verified == once
    # a different path is a different first read
    store.store(TRACE_TIER, FP2, [2])
    store.load(TRACE_TIER, FP2)
    assert store.bytes_verified > once


def test_always_policy_hashes_every_read(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.store(TRACE_TIER, FP, [1])
    store.load(TRACE_TIER, FP)
    once = store.bytes_verified
    store.load(TRACE_TIER, FP)
    assert store.bytes_verified == 2 * once


def test_sampled_policy_reverifies_one_in_n(tmp_path):
    store = ResultStore(str(tmp_path / "store"), verify=VERIFY_SAMPLED)
    store.verify_sample_interval = 4
    store.store(TRACE_TIER, FP, [1])
    store.load(TRACE_TIER, FP)  # first read: verified
    once = store.bytes_verified
    for _ in range(3):
        store.load(TRACE_TIER, FP)  # repeats 1-3: skipped
    assert store.bytes_verified == once
    store.load(TRACE_TIER, FP)  # repeat 4: sampled
    assert store.bytes_verified == 2 * once


def test_store_rearms_verification(tmp_path):
    store = ResultStore(str(tmp_path / "store"), verify=VERIFY_OPEN)
    store.store(TRACE_TIER, FP, [1])
    store.load(TRACE_TIER, FP)
    once = store.bytes_verified
    store.load(TRACE_TIER, FP)
    assert store.bytes_verified == once  # proven, skipped
    store.store(TRACE_TIER, FP, [1, 2])  # replacement: must re-prove
    store.load(TRACE_TIER, FP)
    assert store.bytes_verified > once


def test_relaxed_policy_still_catches_truncation(tmp_path, caplog):
    """Length/schema/tier checks never relax — only the sha256 does."""
    store = ResultStore(str(tmp_path / "store"), verify=VERIFY_OPEN)
    store.store(TRACE_TIER, FP, [1, 2, 3])
    store.load(TRACE_TIER, FP)  # path now proven
    path = store._entry_path(TRACE_TIER, FP)
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[:-4])
    assert store.load(TRACE_TIER, FP) is None
    assert store.corrupt == 1


# ----------------------------------------------------------------------
# resolve_store env knob


def test_resolve_store_reads_verify_env(tmp_path):
    environ = {STORE_ENV: str(tmp_path / "store"),
               STORE_VERIFY_ENV: "open"}
    store = resolve_store(None, environ=environ)
    assert store.verify == VERIFY_OPEN


def test_resolve_store_defaults_to_always(tmp_path):
    store = resolve_store(str(tmp_path / "store"), environ={})
    assert store.verify == VERIFY_ALWAYS


def test_resolve_store_rejects_bad_verify_value(tmp_path):
    environ = {STORE_VERIFY_ENV: "paranoid"}
    with pytest.raises(ValueError, match=STORE_VERIFY_ENV):
        resolve_store(str(tmp_path / "store"), environ=environ)


# ----------------------------------------------------------------------
# DecodedCache


def test_decoded_cache_hit_miss_counters():
    cache = DecodedCache(max_entries=8)
    assert cache.get(TRACE_TIER, FP) is None
    cache.put(TRACE_TIER, FP, [1])
    assert cache.get(TRACE_TIER, FP) == [1]
    assert cache.counters() == {
        "decoded_cache_hits": 1,
        "decoded_cache_misses": 1,
        "decoded_cache_evictions": 0,
        "decoded_cache_entries": 1,
    }


def test_decoded_cache_keys_by_tier_and_key():
    cache = DecodedCache()
    cache.put(TRACE_TIER, FP, "trace")
    cache.put(SM_TIER, (FP, 3), "sm")
    assert cache.get(TRACE_TIER, FP) == "trace"
    assert cache.get(SM_TIER, FP) is None  # tier is part of the key
    assert cache.get(SM_TIER, (FP, 3)) == "sm"


def test_decoded_cache_lru_bound_and_recency():
    cache = DecodedCache(max_entries=2)
    cache.put(TRACE_TIER, "a", 1)
    cache.put(TRACE_TIER, "b", 2)
    assert cache.get(TRACE_TIER, "a") == 1  # refresh: "b" is now oldest
    cache.put(TRACE_TIER, "c", 3)
    assert cache.get(TRACE_TIER, "b") is None  # evicted
    assert cache.get(TRACE_TIER, "a") == 1
    assert cache.get(TRACE_TIER, "c") == 3
    assert cache.evictions == 1
    assert len(cache) == 2


def test_decoded_cache_rejects_nonpositive_bound():
    with pytest.raises(ValueError, match="max_entries"):
        DecodedCache(max_entries=0)


def test_decoded_cache_concurrent_access():
    cache = DecodedCache(max_entries=64)
    errors = []

    def worker(worker_id: int) -> None:
        try:
            for i in range(200):
                cache.put(TRACE_TIER, f"{worker_id}-{i % 32}", i)
                cache.get(TRACE_TIER, f"{worker_id}-{i % 32}")
        except Exception as error:  # noqa: BLE001 - collected for assert
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 64
    assert cache.hits + cache.misses == 4 * 200
