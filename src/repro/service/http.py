"""Minimal asyncio HTTP/1.1 framing (stdlib only — no new deps).

The daemon needs exactly enough HTTP to speak JSON over a socket:
request-line + header parsing with hard limits, ``Content-Length``
bodies, ``{param}`` path routing, and explicit connection framing.
``Connection: close`` (one request per connection) stays the default —
a tuning sweep takes seconds to minutes, so its submit costs nothing —
but a *polling* client hammers ``/sweeps/{id}`` every 200ms, and for
that :func:`serve` accepts ``keep_alive=True``: bounded requests per
connection (``max_requests``), correct ``Content-Length`` framing on
every response, per-request enforcement of all the parse limits, and
an immediate close after any framing error (the stream position can no
longer be trusted) or unhandled exception.  Handler-level
:class:`HTTPError` replies (404/405/validation 400s) keep the
connection open — the framing is intact, only the request was wrong.
Anything fancier (chunked encoding, pipelining, TLS) is deliberately
out of scope; put a real proxy in front if you need it.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import logging
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

logger = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_KEEPALIVE_REQUESTS",
    "HTTPError",
    "Request",
    "Response",
    "Router",
    "json_response",
    "serve",
]

#: request-line and single-header byte limits (far above any legal use)
MAX_LINE_BYTES = 8192
MAX_HEADER_COUNT = 100
#: default request-body bound; sweep submissions are small JSON
MAX_BODY_BYTES = 8 * 1024 * 1024
#: with ``keep_alive``, how many requests one connection may carry
#: before the server closes it (bounds per-connection state lifetime)
DEFAULT_KEEPALIVE_REQUESTS = 100

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HTTPError(Exception):
    """An error with an HTTP status; handlers raise it to reply."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclasses.dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """Decode the body as JSON; a 400 names what was wrong."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HTTPError(400, f"request body is not valid JSON: {error}")

    def wants_close(self) -> bool:
        """Whether the client asked for ``Connection: close``."""
        return self.headers.get("connection", "").lower() == "close"


@dataclasses.dataclass
class Response:
    """One HTTP response (bytes body; see :func:`json_response`)."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"

    def encode(self, close: bool = True) -> bytes:
        connection = "close" if close else "keep-alive"
        reason = _REASONS.get(self.status, "Unknown")
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        return head.encode("ascii") + self.body


def json_response(payload: Any, status: int = 200) -> Response:
    """A JSON response; keys stay sorted so payloads diff cleanly."""
    body = json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
    return Response(status=status, body=body + b"\n")


Handler = Callable[..., Awaitable[Response]]


class Router:
    """Method + path-pattern dispatch with ``{param}`` segments."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(pattern.strip("/").split("/")) if pattern != "/" else ()
        self._routes.append((method.upper(), segments, handler))

    def resolve(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        """The handler and path parameters for one request.

        Raises a 404 when no pattern matches the path, a 405 when a
        pattern matches but not with this method.
        """
        segments = tuple(path.strip("/").split("/")) if path != "/" else ()
        path_matched = False
        for route_method, pattern, handler in self._routes:
            params = _match(pattern, segments)
            if params is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return handler, params
        if path_matched:
            raise HTTPError(405, f"method {method} not allowed for {path}")
        raise HTTPError(404, f"no route for {path}")


def _match(
    pattern: Tuple[str, ...], segments: Tuple[str, ...]
) -> Optional[Dict[str, str]]:
    if len(pattern) != len(segments):
        return None
    params: Dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = unquote(actual)
        elif expected != actual:
            return None
    return params


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> Optional[Request]:
    """Parse one request off the wire; ``None`` on a clean EOF."""
    line = await _read_line(reader)
    if line is None:
        return None
    parts = line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, f"malformed request line: {line!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        header = await _read_line(reader)
        if header is None:
            raise HTTPError(400, "connection closed mid-headers")
        if not header:
            break
        name, _, value = header.partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HTTPError(400, f"more than {MAX_HEADER_COUNT} headers")
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HTTPError(400, f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise HTTPError(400, f"bad Content-Length: {length_text!r}")
    if length > max_body:
        raise HTTPError(413, f"body of {length} bytes exceeds {max_body}")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HTTPError(400, "connection closed mid-body")
    return Request(
        method=method,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


async def _read_line(reader: asyncio.StreamReader) -> Optional[str]:
    try:
        raw = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raw = error.partial
    except asyncio.LimitOverrunError:
        raise HTTPError(400, "header line too long")
    if len(raw) > MAX_LINE_BYTES:
        raise HTTPError(400, "header line too long")
    return raw.decode("latin-1").rstrip("\r\n")


async def _handle_connection(
    router: Router,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    keep_alive: bool = False,
    max_requests: int = DEFAULT_KEEPALIVE_REQUESTS,
    counters=None,
) -> None:
    """Serve one connection: a single request, or (with ``keep_alive``)
    up to ``max_requests`` back-to-back requests.

    Every request re-runs the full parse-limit machinery.  The
    connection closes on: clean EOF, the request budget, a client
    ``Connection: close``, any framing error (the stream position is
    untrusted after a parse failure — reply, then close), or an
    unhandled handler exception.  Handler-raised :class:`HTTPError`
    responses leave the stream intact, so the connection stays open.
    """
    served = 0
    try:
        while True:
            close_after = True
            response: Optional[Response] = None
            try:
                request = await read_request(reader)
                if request is None:
                    return
                served += 1
                if counters is not None and keep_alive:
                    if served == 1:
                        counters.incr("keepalive_connections")
                    else:
                        counters.incr("keepalive_reuses")
                close_after = (
                    not keep_alive
                    or served >= max_requests
                    or request.wants_close()
                )
                try:
                    handler, params = router.resolve(
                        request.method, request.path
                    )
                    response = await handler(request, **params)
                except HTTPError as error:
                    # The request framed fine; only its content was
                    # wrong.  The stream is intact.
                    response = json_response(
                        {"error": error.message}, error.status
                    )
            except HTTPError as error:
                # Framing failure: the reply still goes out, but the
                # connection cannot be reused.
                response = json_response({"error": error.message}, error.status)
                close_after = True
            except asyncio.CancelledError:
                raise
            except Exception:
                logger.exception("unhandled error serving a request")
                response = json_response({"error": "internal server error"}, 500)
                close_after = True
            writer.write(response.encode(close=close_after))
            await writer.drain()
            if close_after:
                return
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


async def serve(
    router: Router,
    host: str = "127.0.0.1",
    port: int = 0,
    keep_alive: bool = False,
    max_requests: int = DEFAULT_KEEPALIVE_REQUESTS,
    counters=None,
) -> asyncio.base_events.Server:
    """Start listening; returns the server (caller owns its lifetime).

    ``keep_alive=False`` (the default) keeps the original one-request-
    per-connection behaviour.  ``counters`` may be a
    :class:`repro.obs.metrics.Counters` receiving
    ``keepalive_connections`` / ``keepalive_reuses``.
    """

    async def on_connect(reader, writer):
        await _handle_connection(
            router, reader, writer,
            keep_alive=keep_alive,
            max_requests=max_requests,
            counters=counters,
        )

    return await asyncio.start_server(on_connect, host=host, port=port)
