"""Sweep job bookkeeping and the cross-request in-flight registry.

Two small pieces of daemon state, both owned by the event-loop thread
(no locks — every mutation happens on the loop):

* :class:`JobTable` — every sweep ever submitted to this daemon, keyed
  by id, carrying progress counters the status endpoint reports while
  the sweep's worker thread streams results in.
* :class:`InflightRegistry` — the dedupe map of ISSUE 8: evaluation
  keys (runtime key + configuration key — the configuration key is
  derived from the kernel-fingerprint-bearing parameter mapping, so
  equal keys mean identical simulations) claimed by running sweeps.
  A second sweep touching a claimed key *awaits the first requester's
  future* instead of re-simulating; by the time it runs, the resident
  engine's memo and the persistent store serve those configurations as
  hits.  Claims are atomic on the event loop and wait edges only point
  at earlier claimants, so overlapping sweeps can never deadlock.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_MAX_JOBS",
    "InflightRegistry",
    "JobTable",
    "SweepCancelled",
    "SweepJob",
    "TERMINAL_STATES",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: one dedupe key: (runtime key, configuration key)
InflightKey = Tuple[str, str]


class SweepCancelled(Exception):
    """Raised inside a sweep worker when its job was cancelled."""


@dataclasses.dataclass
class SweepJob:
    """One submitted sweep and everything the API reports about it."""

    id: str
    runtime_key: str
    request: Dict[str, Any]          # the validated submission, echoed back
    state: str = QUEUED
    created: float = dataclasses.field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    timed_total: int = 0             # configurations the strategy selected
    timed_done: int = 0              # measured so far (streams per chunk)
    dedupe_hits: int = 0             # keys served by awaiting another sweep
    #: which path served this sweep: "engine" (executor dispatch),
    #: "fastlane" (fully warm, answered on the event loop), or
    #: "fastlane-partial" (hits on the loop, misses on the engine)
    lane: Optional[str] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    stats_delta: Optional[Dict[str, Any]] = None
    #: set from the event loop, polled by the worker thread at chunk
    #: boundaries — a threading.Event because it crosses threads
    cancel_event: threading.Event = dataclasses.field(
        default_factory=threading.Event
    )
    #: loop-side cancellation edge: while the job is QUEUED awaiting
    #: another sweep's in-flight futures, resolving this future wakes
    #: it immediately instead of after the owning sweep finishes
    cancel_waiter: Optional["asyncio.Future[None]"] = None

    def request_cancel(self) -> None:
        """Signal cancellation on both sides: the worker thread's
        event and (if the job is parked awaiting dedupe futures) the
        event-loop waiter.  Must be called on the event loop."""
        self.cancel_event.set()
        if self.cancel_waiter is not None and not self.cancel_waiter.done():
            self.cancel_waiter.set_result(None)

    def status_payload(self) -> Dict[str, Any]:
        payload = {
            "id": self.id,
            "state": self.state,
            "runtime": self.runtime_key,
            "request": self.request,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "timed_total": self.timed_total,
            "timed_done": self.timed_done,
            "dedupe_hits": self.dedupe_hits,
        }
        if self.lane is not None:
            payload["lane"] = self.lane
        if self.error is not None:
            payload["error"] = self.error
        if self.stats_delta is not None:
            payload["stats"] = self.stats_delta
        return payload


#: states a job can never leave (safe to prune)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: default JobTable retention: terminal jobs (with their full result
#: payloads) past this count are pruned oldest-first on submission, so
#: a long-lived daemon's memory stays bounded
DEFAULT_MAX_JOBS = 256


class JobTable:
    """All sweeps this daemon has seen, in submission order.

    Retention is bounded: whenever the table holds more than
    ``max_jobs`` entries, the oldest *terminal* jobs — and their
    ``result`` payloads — are dropped.  Queued/running jobs are never
    pruned, so the table can temporarily exceed the cap while that
    many sweeps are actually live.
    """

    def __init__(self, max_jobs: int = DEFAULT_MAX_JOBS) -> None:
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be positive, got {max_jobs}")
        self.max_jobs = max_jobs
        self._jobs: Dict[str, SweepJob] = {}
        self._ids = itertools.count(1)

    def create(self, runtime_key: str, request: Dict[str, Any]) -> SweepJob:
        job = SweepJob(
            id=f"sweep-{next(self._ids)}",
            runtime_key=runtime_key,
            request=request,
        )
        self._jobs[job.id] = job
        self._prune()
        return job

    def _prune(self) -> None:
        """Drop oldest terminal jobs until the table fits ``max_jobs``."""
        excess = len(self._jobs) - self.max_jobs
        if excess <= 0:
            return
        for job_id in [
            job.id for job in self._jobs.values()
            if job.state in TERMINAL_STATES
        ][:excess]:
            del self._jobs[job_id]

    def get(self, job_id: str) -> Optional[SweepJob]:
        return self._jobs.get(job_id)

    def all(self) -> List[SweepJob]:
        return list(self._jobs.values())

    def count_by_state(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts


class InflightRegistry:
    """Evaluation keys currently being computed by some sweep.

    ``claim`` partitions a sweep's keys into the ones it now *owns*
    (it will compute them and must ``release`` them when finished, in
    success or failure) and futures for keys an earlier sweep already
    owns (await them before running, then read the warm caches).
    """

    def __init__(self) -> None:
        self._futures: Dict[InflightKey, "asyncio.Future[None]"] = {}

    def claim(
        self, keys: Sequence[InflightKey]
    ) -> Tuple[List[InflightKey], List["asyncio.Future[None]"]]:
        loop = asyncio.get_running_loop()
        owned: List[InflightKey] = []
        waiting: List["asyncio.Future[None]"] = []
        # Duplicate keys within one claim are collapsed: a repeated
        # key must never make the caller wait on the future it just
        # created for itself (a guaranteed deadlock), nor wait twice
        # on an earlier claimant.
        seen: set = set()
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            existing = self._futures.get(key)
            if existing is not None:
                waiting.append(existing)
            else:
                self._futures[key] = loop.create_future()
                owned.append(key)
        return owned, waiting

    def release(self, keys: Sequence[InflightKey]) -> None:
        """Resolve (and forget) owned keys so waiters proceed."""
        for key in keys:
            future = self._futures.pop(key, None)
            if future is not None and not future.done():
                future.set_result(None)

    def __len__(self) -> int:
        return len(self._futures)
