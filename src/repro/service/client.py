"""Blocking JSON client for the tuning daemon (stdlib http.client).

By default one connection per call (the server frames ``Connection:
close``), so the client carries no socket state and is safe to share
across threads.  With ``keep_alive=True`` the client holds one
persistent connection behind a lock and asks the server to keep it
open — a polling loop (``wait`` hits ``/sweeps/{id}`` every 200ms)
stops paying a TCP setup per request.  A reused connection can always
die under us (server restart, request-budget close), so a call that
fails *before a response arrives* is retried exactly once on a fresh
connection; a second failure propagates.  Every non-2xx reply raises
:class:`ServiceError` carrying the status and the server's ``error``
message.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Dict, Optional
from urllib.parse import urlsplit

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx reply from the daemon."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks to one daemon at ``base_url`` (e.g. http://127.0.0.1:8765)."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        keep_alive: bool = False,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout
        self.keep_alive = keep_alive
        #: count of requests served on an already-open connection
        self.reused = 0
        self._lock = threading.Lock()
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop the persistent connection (no-op without keep-alive)."""
        with self._lock:
            self._drop_connection()

    def _drop_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            self._connection = None

    def _call(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Any:
        body = None
        headers: Dict[str, str] = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if not self.keep_alive:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            finally:
                connection.close()
            return self._decode(response.status, raw)
        headers["Connection"] = "keep-alive"
        with self._lock:
            # A held connection may have been closed server-side
            # (request budget, restart) since the last call; retry
            # once on a fresh one.  Only errors raised before a
            # response arrives are retried, so a request is never
            # knowingly submitted twice.
            for attempt in (0, 1):
                reusing = self._connection is not None
                if self._connection is None:
                    self._connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                try:
                    self._connection.request(
                        method, path, body=body, headers=headers
                    )
                    response = self._connection.getresponse()
                    raw = response.read()
                except (http.client.HTTPException, ConnectionError,
                        BrokenPipeError, OSError):
                    self._drop_connection()
                    if attempt or not reusing:
                        raise
                    continue
                if reusing:
                    self.reused += 1
                if response.headers.get("Connection", "").lower() == "close":
                    self._drop_connection()
                return self._decode(response.status, raw)

    @staticmethod
    def _decode(status: int, raw: bytes) -> Any:
        decoded: Any = None
        if raw:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"error": raw.decode("utf-8", "replace")}
        if not 200 <= status < 300:
            message = "unknown error"
            if isinstance(decoded, dict):
                message = decoded.get("error", message)
            raise ServiceError(status, message)
        return decoded

    # ------------------------------------------------------------------

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """POST /sweeps; returns the accepted job's status payload."""
        return self._call("POST", "/sweeps", request)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/sweeps/{job_id}")

    def list_sweeps(self) -> Dict[str, Any]:
        return self._call("GET", "/sweeps")

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/sweeps/{job_id}/results")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._call("POST", f"/sweeps/{job_id}/cancel")

    def healthz(self) -> Dict[str, Any]:
        return self._call("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._call("GET", "/metrics")

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        interval: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the sweep leaves queued/running; returns status.

        Raises :class:`TimeoutError` (naming the job and its last
        state) if the deadline passes first.
        """
        deadline = time.monotonic() + timeout
        status = self.status(job_id)
        while status["state"] in ("queued", "running"):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"sweep {job_id} still {status['state']} "
                    f"after {timeout}s"
                )
            time.sleep(interval)
            status = self.status(job_id)
        return status

    def sweep(
        self, request: Dict[str, Any], timeout: float = 600.0
    ) -> Dict[str, Any]:
        """Submit, wait, and return the results payload."""
        job = self.submit(request)
        status = self.wait(job["id"], timeout=timeout)
        if status["state"] != "done":
            raise ServiceError(
                409,
                f"sweep {job['id']} {status['state']}: "
                f"{status.get('error', 'no result')}",
            )
        return self.results(job["id"])
