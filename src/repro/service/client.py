"""Blocking JSON client for the tuning daemon (stdlib http.client).

One connection per call (the server frames ``Connection: close``), so
the client carries no socket state and is safe to share across
threads.  Every non-2xx reply raises :class:`ServiceError` carrying
the status and the server's ``error`` message.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional
from urllib.parse import urlsplit

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx reply from the daemon."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talks to one daemon at ``base_url`` (e.g. http://127.0.0.1:8765)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        split = urlsplit(base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _call(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        decoded: Any = None
        if raw:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"error": raw.decode("utf-8", "replace")}
        if not 200 <= response.status < 300:
            message = "unknown error"
            if isinstance(decoded, dict):
                message = decoded.get("error", message)
            raise ServiceError(response.status, message)
        return decoded

    # ------------------------------------------------------------------

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """POST /sweeps; returns the accepted job's status payload."""
        return self._call("POST", "/sweeps", request)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/sweeps/{job_id}")

    def list_sweeps(self) -> Dict[str, Any]:
        return self._call("GET", "/sweeps")

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/sweeps/{job_id}/results")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._call("POST", f"/sweeps/{job_id}/cancel")

    def healthz(self) -> Dict[str, Any]:
        return self._call("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._call("GET", "/metrics")

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        interval: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the sweep leaves queued/running; returns status.

        Raises :class:`TimeoutError` (naming the job and its last
        state) if the deadline passes first.
        """
        deadline = time.monotonic() + timeout
        status = self.status(job_id)
        while status["state"] in ("queued", "running"):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"sweep {job_id} still {status['state']} "
                    f"after {timeout}s"
                )
            time.sleep(interval)
            status = self.status(job_id)
        return status

    def sweep(
        self, request: Dict[str, Any], timeout: float = 600.0
    ) -> Dict[str, Any]:
        """Submit, wait, and return the results payload."""
        job = self.submit(request)
        status = self.wait(job["id"], timeout=timeout)
        if status["state"] != "done":
            raise ServiceError(
                409,
                f"sweep {job['id']} {status['state']}: "
                f"{status.get('error', 'no result')}",
            )
        return self.results(job["id"])
