"""The long-lived tuning daemon: autotuning-as-a-service.

One resident :class:`~repro.tuning.engine.ExecutionEngine` (plus its
:class:`~repro.tuning.scheduler.SweepScheduler` pool and attached
:class:`~repro.store.ResultStore`) per *runtime* — an application plus
its ``SimConfig`` overrides — serves every sweep submitted over HTTP.
Compile results, warp traces, and SM replays stay warm across
requests; the engine's request boundary (``begin_request``) resets
only lifecycle state, never caches.

Bit-identity contract: a sweep served by the daemon returns exactly
the payload the one-shot CLI path (:func:`run_sweep` on a fresh
engine — ``python -m repro.service run-local``) produces for the same
request.  Both go through the *same* selection
(:func:`repro.tuning.search.select_timed`) and the same sequential
seconds accumulation, so chunked timing with cancellation checks
cannot drift from the strategy functions.

Concurrency model: the asyncio event loop owns all bookkeeping (job
table, in-flight registry); each runtime executes sweeps on its own
single-thread executor, so one engine is never entered concurrently
while distinct runtimes proceed in parallel.  Overlapping sweeps
dedupe through :class:`~repro.service.registry.InflightRegistry`: the
second requester awaits the first's future, then reads warm caches.

The warm-path fast lane: before dispatching to the executor,
``_run_job`` probes the resident engine's memo (read-only
``peek_static`` / ``peek_seconds`` — plain dict reads, safe against
the executor thread).  A *fully-warm* sweep — every static entry and
every selected measurement memoized — is answered on the event loop
itself in cancellable chunks: no thread handoff, no scheduler, and
bit-identical results because selection still goes through
:func:`select_timed` and the total through the same sequential sum.
A *partially-warm* sweep (statics memoized, some measurements
missing) claims and dispatches only its misses to the executor, then
serves the warm remainder on the loop.  Because fully-warm lanes
never enter the executor, warm sweeps for the *same* runtime overlap
freely — the single-thread-per-engine constraint only ever applied to
sweeps that compute.  A daemon-wide
:class:`~repro.store.DecodedCache` sits between every runtime's
``SimulationCache`` and the store, so repeated store reads never
re-hash or re-unpickle a payload.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import logging
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.payload import search_result_payload
from repro.obs.metrics import global_counters
from repro.obs.trace import span
from repro.service.http import (
    HTTPError,
    Request,
    Response,
    Router,
    json_response,
    serve,
)
from repro.service.registry import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    InflightRegistry,
    JobTable,
    SweepCancelled,
    SweepJob,
)
from repro.store import DecodedCache
from repro.tuning.engine import (
    EngineStats,
    EvaluatedConfig,
    ExecutionEngine,
    config_key,
)
from repro.tuning.search import (
    SearchResult,
    best_entry,
    select_timed,
)
from repro.tuning.space import Configuration
from repro.tuning.strategies import (
    StrategyError,
    build_strategy,
    get_spec,
    request_kwargs,
)

logger = logging.getLogger(__name__)

__all__ = [
    "RequestError",
    "SweepRequest",
    "TuningService",
    "parse_sweep_request",
    "run_sweep",
]

#: port knob for ``python -m repro.service serve`` (0 = ephemeral)
SERVICE_PORT_ENV = "REPRO_SERVICE_PORT"
DEFAULT_CHUNK_SIZE = 16

#: zeroed per-request stats deltas keyed by worker count — the base a
#: fully-warm fast-lane sweep reports.  Cached because building one
#: walks every EngineStats field, a measurable slice of a sub-ms sweep.
_ZERO_DELTAS: Dict[int, Dict[str, Any]] = {}


def _zero_delta(workers: int) -> Dict[str, Any]:
    cached = _ZERO_DELTAS.get(workers)
    if cached is None:
        cached = EngineStats(workers=workers).delta_since(
            EngineStats(workers=workers)
        )
        _ZERO_DELTAS[workers] = cached
    return dict(cached)


class RequestError(ValueError):
    """A sweep submission that cannot be honored (HTTP 400)."""


@dataclasses.dataclass
class SweepRequest:
    """One validated sweep submission, app-resolved and config-expanded."""

    app_name: str
    strategy: str
    configs: List[Configuration]
    sim_overrides: Dict[str, Any]
    select_kwargs: Dict[str, Any]
    chunk_size: int
    #: the normalized submission echoed back on status endpoints
    echo: Dict[str, Any]
    #: "selection" (select_timed subset) or "adaptive" (budgeted zoo
    #: strategy) — from the registry spec; decides the execution path
    kind: str = "selection"

    @property
    def runtime_key(self) -> str:
        """Identity of the resident engine this request routes to."""
        if not self.sim_overrides:
            return self.app_name
        digest = hashlib.sha256(
            json.dumps(self.sim_overrides, sort_keys=True, default=repr)
            .encode("utf-8")
        ).hexdigest()[:12]
        return f"{self.app_name}@{digest}"

    @property
    def requested_sample_size(self) -> Optional[int]:
        if self.strategy == "random":
            return self.select_kwargs.get("sample_size", 0)
        return None


def parse_sweep_request(
    payload: Any, apps_by_name: Dict[str, Any]
) -> SweepRequest:
    """Validate one ``POST /sweeps`` body against the known spaces.

    Raises :class:`RequestError` naming exactly what was wrong — the
    daemon maps it to a 400, ``run-local`` prints it.
    """
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    strategy = payload.get("strategy", "pareto")
    try:
        spec = get_spec(strategy)
    except StrategyError as error:
        raise RequestError(str(error)) from None
    # The accepted field set is base fields plus whatever the registry
    # declares for this strategy — adding a StrategySpec is all it
    # takes for its knobs to validate here.
    unknown = set(payload) - (
        {"app", "strategy", "configs", "limit", "sim_overrides",
         "chunk_size"} | set(spec.fields)
    )
    if unknown:
        raise RequestError(
            f"unknown request fields for strategy {strategy!r}: "
            f"{sorted(unknown)}"
        )
    app_name = payload.get("app")
    if app_name not in apps_by_name:
        raise RequestError(
            f"unknown app {app_name!r}; expected one of "
            f"{sorted(apps_by_name)}"
        )
    app = apps_by_name[app_name]
    overrides = payload.get("sim_overrides") or {}
    if not isinstance(overrides, dict):
        raise RequestError("sim_overrides must be an object")
    space = app.space()
    configs = _resolve_configs(payload, space)
    try:
        select_kwargs = request_kwargs(spec, payload)
    except StrategyError as error:
        raise RequestError(str(error)) from None
    chunk_size = payload.get("chunk_size", DEFAULT_CHUNK_SIZE)
    if not isinstance(chunk_size, int) or chunk_size < 1:
        raise RequestError("chunk_size must be a positive integer")
    echo: Dict[str, Any] = {"app": app_name, "strategy": strategy}
    if payload.get("configs") is not None:
        echo["configs"] = len(configs)
    if payload.get("limit") is not None:
        echo["limit"] = payload["limit"]
    if overrides:
        echo["sim_overrides"] = dict(overrides)
    echo.update(select_kwargs)
    return SweepRequest(
        app_name=app_name,
        strategy=strategy,
        configs=configs,
        sim_overrides=dict(overrides),
        select_kwargs=select_kwargs,
        chunk_size=chunk_size,
        echo=echo,
        kind=spec.kind,
    )


def _resolve_configs(payload: Dict[str, Any], space) -> List[Configuration]:
    explicit = payload.get("configs")
    limit = payload.get("limit")
    if limit is not None and (not isinstance(limit, int) or limit < 1):
        raise RequestError("limit must be a positive integer")
    if explicit is not None:
        if limit is not None:
            raise RequestError("pass either configs or limit, not both")
        if not isinstance(explicit, list) or not explicit:
            raise RequestError("configs must be a non-empty array of objects")
        parameters = space.parameters
        configs = []
        for index, mapping in enumerate(explicit):
            if not isinstance(mapping, dict):
                raise RequestError(f"configs[{index}] is not an object")
            if set(mapping) != set(parameters):
                raise RequestError(
                    f"configs[{index}] parameters {sorted(mapping)} do not "
                    f"match the space's {sorted(parameters)}"
                )
            for name, value in mapping.items():
                if value not in parameters[name]:
                    raise RequestError(
                        f"configs[{index}].{name}={value!r} is not one of "
                        f"{parameters[name]}"
                    )
            configs.append(Configuration(mapping))
        return configs
    configs = space.configurations()
    if limit is not None:
        configs = configs[:limit]
    if not configs:
        raise RequestError("the requested space is empty")
    return configs


def run_sweep(
    engine: ExecutionEngine,
    request: SweepRequest,
    *,
    cancel_check: Optional[Callable[[], bool]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Dict[str, Any]:
    """Execute one sweep on ``engine``; the shared CLI/daemon core.

    Identical to the one-shot strategy functions by construction:
    selection goes through :func:`select_timed` and ``measured_seconds``
    is accumulated in one sequential loop over the selected entries —
    the same floating-point summation order as
    ``ExecutionEngine.time_entries`` — so the payload is bit-identical
    whether timing ran in one call or in cancellation-checkable chunks.
    """

    def cancelled() -> bool:
        return cancel_check is not None and cancel_check()

    with span("service.sweep", cat="service", app=request.app_name,
              strategy=request.strategy, configs=len(request.configs)):
        if cancelled():
            raise SweepCancelled(request.app_name)
        if request.kind == "adaptive":
            # Zoo strategies drive their own measurement loop; the
            # cancel edge threads through the progress callback, which
            # fires at every batch boundary.
            def checkpoint(done: int, total: int) -> None:
                if cancelled():
                    raise SweepCancelled(request.app_name)
                if progress is not None:
                    progress(done, total)

            strategy = build_strategy(request.strategy)
            result = strategy.run(
                request.configs, engine,
                progress=checkpoint, **request.select_kwargs,
            )
            return search_result_payload(result)
        evaluated = engine.evaluate_all(request.configs)
        selected = select_timed(
            request.strategy, evaluated, **request.select_kwargs
        )
        if progress is not None:
            progress(0, len(selected))
        for start in range(0, len(selected), request.chunk_size):
            if cancelled():
                raise SweepCancelled(request.app_name)
            chunk = selected[start:start + request.chunk_size]
            engine.time_entries(chunk)
            if progress is not None:
                progress(min(start + len(chunk), len(selected)),
                         len(selected))
        total = 0.0
        for entry in selected:
            total += entry.seconds
        result = SearchResult(
            strategy=request.strategy,
            evaluated=evaluated,
            timed=selected,
            best=best_entry(selected, request.strategy),
            measured_seconds=total,
            requested_sample_size=request.requested_sample_size,
        )
    return search_result_payload(result)


class AppRuntime:
    """One resident engine: an app instance plus its serial executor."""

    def __init__(
        self,
        key: str,
        base_app,
        sim_overrides: Dict[str, Any],
        *,
        workers: Optional[int],
        store: Optional[str],
        checkpoint_dir: Optional[str],
        decoded: Optional[DecodedCache] = None,
    ) -> None:
        self.key = key
        # A fresh instance per runtime: per-request overrides on a
        # shared app would poison its time/fingerprint caches.
        self.app = type(base_app)()
        if sim_overrides:
            self.app.sim_overrides = dict(sim_overrides)
        checkpoint_path = None
        if checkpoint_dir:
            os.makedirs(checkpoint_dir, exist_ok=True)
            safe = key.replace("@", "-")
            checkpoint_path = os.path.join(checkpoint_dir, f"{safe}.json")
        self.engine = ExecutionEngine.for_app(
            self.app,
            workers=workers,
            checkpoint_path=checkpoint_path,
            store=store,
        )
        # The daemon-wide decoded-entry cache sits between this
        # runtime's SimulationCache and the store: sibling runtimes
        # reading the same fingerprints skip the open/sha256/unpickle.
        sim_cache = getattr(self.app, "sim_cache", None)
        if decoded is not None and sim_cache is not None:
            sim_cache.set_decoded_cache(decoded)
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"sweep-{key}"
        )

    def close(self) -> None:
        self.executor.shutdown(wait=True)
        self.engine.close()


class TuningService:
    """The daemon: HTTP handlers over resident runtimes."""

    def __init__(
        self,
        apps: Optional[Sequence[Any]] = None,
        *,
        workers: Optional[int] = 1,
        store: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        keep_alive: bool = False,
        fastlane: bool = True,
    ) -> None:
        if apps is None:
            from repro.apps import all_applications

            apps = all_applications()
        self.apps_by_name = {app.name: app for app in apps}
        self.workers = workers
        self.store = store
        self.checkpoint_dir = checkpoint_dir
        self.keep_alive = keep_alive
        #: probe the resident memo before dispatching to the executor;
        #: ``False`` forces every sweep down the engine path (the
        #: bit-identity oracle in tests)
        self.fastlane = fastlane
        self.jobs = JobTable()
        self.inflight = InflightRegistry()
        self.runtimes: Dict[str, AppRuntime] = {}
        self.counters = global_counters("service")
        self.decoded = DecodedCache()
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: set = set()

    # ------------------------------------------------------------------
    # Lifecycle.

    def router(self) -> Router:
        router = Router()
        router.add("POST", "/sweeps", self.handle_submit)
        router.add("GET", "/sweeps", self.handle_list)
        router.add("GET", "/sweeps/{job_id}", self.handle_status)
        router.add("GET", "/sweeps/{job_id}/results", self.handle_results)
        router.add("POST", "/sweeps/{job_id}/cancel", self.handle_cancel)
        router.add("DELETE", "/sweeps/{job_id}", self.handle_cancel)
        router.add("GET", "/healthz", self.handle_healthz)
        router.add("GET", "/metrics", self.handle_metrics)
        return router

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Bind and listen; returns the (host, port) actually bound."""
        self._server = await serve(
            self.router(), host=host, port=port,
            keep_alive=self.keep_alive, counters=self.counters,
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        """Stop listening, cancel queued work, drain the runtimes."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for job in self.jobs.all():
            if job.state in (QUEUED, RUNNING):
                job.request_cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for runtime in self.runtimes.values():
            runtime.close()
        self.runtimes.clear()

    def _runtime_for(self, request: SweepRequest) -> AppRuntime:
        runtime = self.runtimes.get(request.runtime_key)
        if runtime is None:
            runtime = AppRuntime(
                request.runtime_key,
                self.apps_by_name[request.app_name],
                request.sim_overrides,
                workers=self.workers,
                store=self.store,
                checkpoint_dir=self.checkpoint_dir,
                decoded=self.decoded,
            )
            self.runtimes[request.runtime_key] = runtime
        return runtime

    # ------------------------------------------------------------------
    # Handlers.

    async def handle_submit(self, request: Request) -> Response:
        self.counters.incr("requests_total")
        try:
            sweep = parse_sweep_request(request.json(), self.apps_by_name)
        except RequestError as error:
            self.counters.incr("requests_rejected")
            raise HTTPError(400, str(error))
        job = self.jobs.create(sweep.runtime_key, sweep.echo)
        self.counters.incr("sweeps_submitted")
        task = asyncio.get_running_loop().create_task(
            self._run_job(job, sweep)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return json_response(job.status_payload(), status=202)

    async def handle_list(self, request: Request) -> Response:
        del request
        return json_response(
            {"sweeps": [job.status_payload() for job in self.jobs.all()]}
        )

    async def handle_status(self, request: Request, job_id: str) -> Response:
        del request
        return json_response(self._job_or_404(job_id).status_payload())

    async def handle_results(self, request: Request, job_id: str) -> Response:
        del request
        job = self._job_or_404(job_id)
        if job.state in (QUEUED, RUNNING):
            raise HTTPError(409, f"sweep {job_id} is still {job.state}")
        if job.state != DONE or job.result is None:
            raise HTTPError(409, f"sweep {job_id} {job.state}: {job.error}")
        return json_response(
            {"id": job.id, "result": job.result, "stats": job.stats_delta}
        )

    async def handle_cancel(self, request: Request, job_id: str) -> Response:
        del request
        job = self._job_or_404(job_id)
        if job.state in (QUEUED, RUNNING):
            job.request_cancel()
            self.counters.incr("sweeps_cancel_requested")
        return json_response(job.status_payload(), status=202)

    async def handle_healthz(self, request: Request) -> Response:
        del request
        states = self.jobs.count_by_state()
        return json_response({
            "status": "ok",
            "runtimes": sorted(self.runtimes),
            "jobs": states,
            "inflight_keys": len(self.inflight),
        })

    async def handle_metrics(self, request: Request) -> Response:
        del request
        runtimes = {}
        for key, runtime in self.runtimes.items():
            stats = runtime.engine.stats.as_dict()
            if runtime.engine._scheduler is not None:
                stats["scheduler_lifetime"] = dataclasses.asdict(
                    runtime.engine._scheduler.stats
                )
            runtimes[key] = stats
        return json_response({
            "service": self.counters.as_dict(),
            "jobs": self.jobs.count_by_state(),
            "inflight_keys": len(self.inflight),
            "decoded_cache": self.decoded.counters(),
            "runtimes": runtimes,
        })

    def _job_or_404(self, job_id: str) -> SweepJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise HTTPError(404, f"no sweep named {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # Sweep execution.

    async def _run_job(self, job: SweepJob, sweep: SweepRequest) -> None:
        loop = asyncio.get_running_loop()
        runtime = self._runtime_for(sweep)
        # The fast-lane probe: can the resident memo answer (part of)
        # this sweep without the executor?  Read-only peeks — a racing
        # executor thread can only turn a miss into a hit, and a probe
        # miss just means the classic path runs.  Adaptive (zoo)
        # sweeps never probe: their timed subset depends on measured
        # times, not just the static memo, so only the engine path can
        # reproduce it.
        probe = (
            self._probe_memo(runtime.engine, sweep)
            if self.fastlane and sweep.kind == "selection" else None
        )
        owned: List[Tuple[str, str]] = []
        try:
            if probe is not None:
                entries, selected, missing = probe
                if missing:
                    # Claim only the misses: the warm portion is final
                    # memo state, invisible to other sweeps' claims.
                    missing_keys = list(dict.fromkeys(
                        (sweep.runtime_key, config_key(config))
                        for config in missing
                    ))
                    owned, waiting = self.inflight.claim(missing_keys)
                    if waiting:
                        job.dedupe_hits = len(waiting)
                        self.counters.incr("dedupe_hits", len(waiting))
                        await self._await_inflight(job, waiting)
                    if job.cancel_event.is_set():
                        raise SweepCancelled(job.id)
                    # The owning sweep may have measured some of our
                    # misses while we waited.
                    missing = [
                        config for config in missing
                        if runtime.engine.peek_seconds(config) is None
                    ]
                job.result = await self._serve_fastlane(
                    job, sweep, runtime, entries, selected, missing
                )
            else:
                # Collapse duplicate configurations before claiming: a
                # repeated config must dedupe against *other* sweeps,
                # never against this job's own claim (which would
                # deadlock it in QUEUED forever).
                keys = list(dict.fromkeys(
                    (sweep.runtime_key, config_key(config))
                    for config in sweep.configs
                ))
                owned, waiting = self.inflight.claim(keys)
                if waiting:
                    # Another sweep is computing these configurations
                    # right now; await its completion instead of
                    # re-simulating.
                    job.dedupe_hits = len(waiting)
                    self.counters.incr("dedupe_hits", len(waiting))
                    await self._await_inflight(job, waiting)
                if job.cancel_event.is_set():
                    raise SweepCancelled(job.id)
                job.state = RUNNING
                job.started = time.time()
                job.lane = "engine"

                def progress(done: int, total: int) -> None:
                    job.timed_done = done
                    job.timed_total = total

                self.counters.incr("executor_dispatches")
                job.result = await loop.run_in_executor(
                    runtime.executor,
                    self._execute_on_engine,
                    runtime.engine, sweep, job, progress,
                )
            job.state = DONE
            self.counters.incr("sweeps_completed")
        except SweepCancelled:
            job.state = CANCELLED
            self.counters.incr("sweeps_cancelled")
        except Exception as error:
            logger.exception("sweep %s failed", job.id)
            job.state = FAILED
            job.error = f"{type(error).__name__}: {error}"
            self.counters.incr("sweeps_failed")
        finally:
            job.finished = time.time()
            self.inflight.release(owned)

    @staticmethod
    async def _await_inflight(
        job: SweepJob, waiting: Sequence["asyncio.Future[None]"]
    ) -> None:
        """Await another sweep's futures, racing the job's cancel edge.

        The in-flight futures are shared with their owner and any other
        waiters, so cancellation must never propagate into them — each
        is shielded, and on cancel only the local gather is torn down
        before :class:`SweepCancelled` surfaces immediately (not after
        the owning sweep finishes).
        """
        loop = asyncio.get_running_loop()
        waiter: "asyncio.Future[None]" = loop.create_future()
        job.cancel_waiter = waiter
        gather = asyncio.gather(*(asyncio.shield(f) for f in waiting))
        try:
            if job.cancel_event.is_set():
                raise SweepCancelled(job.id)
            await asyncio.wait(
                {gather, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
            if not gather.done():
                raise SweepCancelled(job.id)
            await gather  # surface an owner-side exception, if any
        finally:
            job.cancel_waiter = None
            if not waiter.done():
                waiter.cancel()
            if not gather.done():
                gather.cancel()
                try:
                    await gather
                except asyncio.CancelledError:
                    pass

    # ------------------------------------------------------------------
    # The warm-path fast lane.

    @staticmethod
    def _probe_memo(
        engine: ExecutionEngine, sweep: SweepRequest
    ) -> Optional[Tuple[List[EvaluatedConfig], List[EvaluatedConfig],
                        List[Configuration]]]:
        """Rebuild the sweep's evaluation and selection from the memo.

        Pure reads — no evaluation, no counters.  Returns ``(entries,
        selected, missing)`` where ``missing`` lists selected configs
        without a memoized measurement, or ``None`` when any static
        entry is absent (the classic engine path must run).
        """
        entries: List[EvaluatedConfig] = []
        for config in sweep.configs:
            cached = engine.peek_static(config)
            if cached is None:
                return None
            metrics, reason = cached
            entries.append(EvaluatedConfig(
                config=config, metrics=metrics, invalid_reason=reason,
            ))
        selected = select_timed(
            sweep.strategy, entries, **sweep.select_kwargs
        )
        missing = [
            entry.config for entry in selected
            if engine.peek_seconds(entry.config) is None
        ]
        return entries, selected, missing

    async def _serve_fastlane(
        self,
        job: SweepJob,
        sweep: SweepRequest,
        runtime: AppRuntime,
        entries: List[EvaluatedConfig],
        selected: List[EvaluatedConfig],
        missing: List[Configuration],
    ) -> Dict[str, Any]:
        """Answer a (partially) warm sweep on the event loop.

        Misses — if any — go to the runtime executor first (miss-only,
        chunked, cancellable); the warm portion is then served right
        here in cancellable chunks with an ``await`` per chunk, so
        concurrent warm sweeps interleave even on one runtime.  The
        payload is bit-identical to :func:`run_sweep`: same
        ``select_timed`` selection, same sequential seconds sum.
        """
        engine = runtime.engine
        job.state = RUNNING
        job.started = time.time()
        job.lane = "fastlane-partial" if missing else "fastlane"
        job.timed_total = len(selected)
        engine_delta: Optional[Dict[str, Any]] = None
        if missing:
            self.counters.incr("executor_dispatches")
            engine_delta = await asyncio.get_running_loop().run_in_executor(
                runtime.executor,
                self._measure_missing,
                engine, sweep, job, missing,
            )
        for start in range(0, len(selected), sweep.chunk_size):
            if job.cancel_event.is_set():
                raise SweepCancelled(job.id)
            chunk = selected[start:start + sweep.chunk_size]
            for entry in chunk:
                entry.seconds = engine.peek_seconds(entry.config)
            job.timed_done = max(
                job.timed_done, min(start + len(chunk), len(selected))
            )
            # The chunk boundary: lets other tasks (including a cancel
            # request) run between chunks of a large warm sweep.
            await asyncio.sleep(0)
        total = 0.0
        for entry in selected:
            total += entry.seconds
        result = SearchResult(
            strategy=sweep.strategy,
            evaluated=entries,
            timed=selected,
            best=best_entry(selected, sweep.strategy),
            measured_seconds=total,
            requested_sample_size=sweep.requested_sample_size,
        )
        job.stats_delta = self._fastlane_delta(
            engine, entries, selected, missing, engine_delta
        )
        self.counters.incr("fastlane_configs",
                           len(selected) - len(missing))
        self.counters.incr(
            "fastlane_partial" if missing else "fastlane_sweeps"
        )
        return search_result_payload(result)

    @staticmethod
    def _measure_missing(
        engine: ExecutionEngine,
        sweep: SweepRequest,
        job: SweepJob,
        missing: List[Configuration],
    ) -> Dict[str, Any]:
        """Runs on the runtime's worker thread: measure only the
        misses of a partially-warm sweep, chunked and cancellable."""
        before = engine.begin_request()
        done = 0
        for start in range(0, len(missing), sweep.chunk_size):
            if job.cancel_event.is_set():
                raise SweepCancelled(job.id)
            chunk = missing[start:start + sweep.chunk_size]
            engine.seconds_for(chunk)
            done += len(chunk)
            job.timed_done = done
        return engine.stats.delta_since(before)

    @staticmethod
    def _fastlane_delta(
        engine: ExecutionEngine,
        entries: List[EvaluatedConfig],
        selected: List[EvaluatedConfig],
        missing: List[Configuration],
        engine_delta: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        """The per-sweep stats delta a fast-lane job reports.

        Built from the miss-portion's real engine delta (or a zeroed
        one for fully-warm sweeps — never from the live stats object,
        which another sweep's executor thread may be mutating) plus
        the cache traffic the classic path would have counted: one
        static cache hit per entry, one simulation cache hit per
        memo-served measurement.
        """
        if engine_delta is None:
            delta = _zero_delta(engine.stats.workers)
        else:
            delta = dict(engine_delta)
        delta["static_cache_hits"] += len(entries)
        delta["simulation_cache_hits"] += len(selected) - len(missing)
        delta["cache_hits"] = (
            delta["static_cache_hits"] + delta["simulation_cache_hits"]
        )
        return delta

    def _execute_on_engine(
        self,
        engine: ExecutionEngine,
        sweep: SweepRequest,
        job: SweepJob,
        progress: Callable[[int, int], None],
    ) -> Dict[str, Any]:
        """Runs on the runtime's worker thread (one sweep at a time)."""
        before = engine.begin_request()
        payload = run_sweep(
            engine, sweep,
            cancel_check=job.cancel_event.is_set,
            progress=progress,
        )
        job.stats_delta = engine.stats.delta_since(before)
        return payload
