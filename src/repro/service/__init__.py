"""Autotuning-as-a-service: a long-lived daemon over the result store.

``python -m repro.service serve`` starts an asyncio HTTP/JSON daemon
whose resident engines keep every cache tier warm across requests;
``python -m repro.service sweep`` is the blocking client;
``python -m repro.service run-local`` executes the same request
through the one-shot CLI path and emits the identical payload — the
equivalence oracle CI pins.  See docs/service.md.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    RequestError,
    SweepRequest,
    TuningService,
    parse_sweep_request,
    run_sweep,
)
from repro.service.http import HTTPError, Request, Response, Router
from repro.service.registry import (
    InflightRegistry,
    JobTable,
    SweepCancelled,
    SweepJob,
)

__all__ = [
    "HTTPError",
    "InflightRegistry",
    "JobTable",
    "Request",
    "RequestError",
    "Response",
    "Router",
    "ServiceClient",
    "ServiceError",
    "SweepCancelled",
    "SweepJob",
    "SweepRequest",
    "TuningService",
    "parse_sweep_request",
    "run_sweep",
]
