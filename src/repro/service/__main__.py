"""Entry points for the tuning service.

Usage::

    python -m repro.service serve [--host H] [--port P] [--apps a,b]
                                  [--workers N] [--store DIR]
                                  [--checkpoint-dir DIR]
                                  [--ready-file PATH] [--keep-alive]
                                  [--no-fastlane]
    python -m repro.service submit --app NAME [request options]
    python -m repro.service sweep  --app NAME [request options]   # submit+wait
    python -m repro.service status|results|wait|cancel ID
    python -m repro.service healthz|metrics
    python -m repro.service run-local --app NAME [request options]

``serve`` listens on ``--port`` (default ``$REPRO_SERVICE_PORT`` or
8765; ``0`` picks an ephemeral port) and, with ``--ready-file``,
writes a small JSON document (url/port/pid) once the socket is bound —
scripts poll for that file instead of racing the bind.  ``run-local``
executes the request through the one-shot CLI path (a fresh engine, no
daemon) and prints the same payload shape as ``results``; CI diffs the
two to pin daemon/CLI bit-identity.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Any, Dict, Optional

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    SERVICE_PORT_ENV,
    RequestError,
    TuningService,
    parse_sweep_request,
    run_sweep,
)
from repro.tuning.strategies import RESTRICT_MODES, strategy_names

DEFAULT_PORT = 8765
DEFAULT_URL = "http://127.0.0.1:8765"


def _add_request_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", required=True,
                        help="application name (matmul, cp, sad, mri-fhd)")
    parser.add_argument("--strategy", default="pareto",
                        choices=strategy_names(), metavar="NAME",
                        help="search strategy (default: pareto); one of "
                             + ", ".join(strategy_names()))
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="sweep only the first N configurations")
    parser.add_argument("--configs", default=None, metavar="PATH",
                        help="JSON file holding an explicit configuration "
                             "subset (array of parameter objects)")
    parser.add_argument("--sample-size", type=int, default=None,
                        help="random strategy: configurations to sample")
    parser.add_argument("--seed", type=int, default=None,
                        help="seed for stochastic strategies")
    parser.add_argument("--budget", type=int, default=None, metavar="N",
                        help="adaptive strategies: measurement budget "
                             "(default: 25%% of the valid space)")
    parser.add_argument("--restrict", default=None,
                        choices=RESTRICT_MODES,
                        help="adaptive strategies: candidate pool — the "
                             "full valid space or the Pareto subset")
    parser.add_argument("--screen-bandwidth-bound", action="store_true",
                        help="pareto strategy: screen bandwidth-bound "
                             "points before drawing the curve")
    parser.add_argument("--relative-tolerance", type=float, default=None,
                        help="pareto+cluster: metric clustering tolerance")
    parser.add_argument("--sim-overrides", default=None, metavar="JSON",
                        help="SimConfig overrides as a JSON object, e.g. "
                             "'{\"wave_convergence_rtol\": 0.05}'")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="timing chunk size (progress/cancel "
                             "granularity; identical results regardless)")


def _request_payload(options: argparse.Namespace) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "app": options.app, "strategy": options.strategy,
    }
    if options.limit is not None:
        payload["limit"] = options.limit
    if options.configs is not None:
        with open(options.configs) as handle:
            payload["configs"] = json.load(handle)
    if options.sample_size is not None:
        payload["sample_size"] = options.sample_size
    if options.seed is not None:
        payload["seed"] = options.seed
    if options.budget is not None:
        payload["budget"] = options.budget
    if options.restrict is not None:
        payload["restrict"] = options.restrict
    if options.screen_bandwidth_bound:
        payload["screen_bandwidth_bound"] = True
    if options.relative_tolerance is not None:
        payload["relative_tolerance"] = options.relative_tolerance
    if options.sim_overrides is not None:
        payload["sim_overrides"] = json.loads(options.sim_overrides)
    if options.chunk_size is not None:
        payload["chunk_size"] = options.chunk_size
    return payload


def parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived tuning daemon and its client.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help=f"listen port (default: ${SERVICE_PORT_ENV} "
                            f"or {DEFAULT_PORT}; 0 = ephemeral)")
    serve.add_argument("--apps", default=None,
                       help="comma-separated subset, e.g. 'cp,matmul'")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="simulation pool width per runtime "
                            "(default: $REPRO_WORKERS or 1)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="persistent result store (default: $REPRO_STORE)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="streaming per-runtime sweep checkpoints")
    serve.add_argument("--ready-file", default=None, metavar="PATH",
                       help="write {url,port,pid} JSON once listening")
    serve.add_argument("--keep-alive", action="store_true",
                       help="serve multiple requests per connection "
                            "(default: Connection: close)")
    serve.add_argument("--no-fastlane", action="store_true",
                       help="disable the warm-path fast lane (every "
                            "sweep runs on the engine executor)")

    for name, needs_id in (
        ("status", True), ("results", True), ("wait", True),
        ("cancel", True), ("healthz", False), ("metrics", False),
        ("list", False),
    ):
        sub = commands.add_parser(name)
        if needs_id:
            sub.add_argument("id", help="sweep id (e.g. sweep-1)")
        sub.add_argument("--url", default=DEFAULT_URL)
        sub.add_argument("--keep-alive", action="store_true",
                         help="reuse one connection across requests")
        if name == "wait":
            sub.add_argument("--timeout", type=float, default=600.0)
        if name == "metrics":
            sub.add_argument("--table", action="store_true",
                             help="print the fast-lane report table "
                                  "instead of raw JSON")

    for name in ("submit", "sweep"):
        sub = commands.add_parser(
            name,
            help="submit a sweep"
                 + (" and wait for its results" if name == "sweep" else ""),
        )
        sub.add_argument("--url", default=DEFAULT_URL)
        sub.add_argument("--timeout", type=float, default=600.0)
        sub.add_argument("--keep-alive", action="store_true",
                         help="reuse one connection across requests")
        _add_request_options(sub)

    local = commands.add_parser(
        "run-local",
        help="execute a request through the one-shot CLI path "
             "(no daemon) and print the equivalent results payload",
    )
    local.add_argument("--workers", type=int, default=None, metavar="N")
    local.add_argument("--store", default=None, metavar="DIR")
    _add_request_options(local)

    return parser.parse_args(argv[1:])


def _resolve_port(options) -> int:
    if options.port is not None:
        return options.port
    raw = os.environ.get(SERVICE_PORT_ENV)
    if raw is None or raw == "":
        return DEFAULT_PORT
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(
            f"{SERVICE_PORT_ENV}={raw!r} is not a valid port number"
        )


async def _serve(options) -> int:
    apps = None
    if options.apps:
        from repro.apps import all_applications

        every = all_applications()
        wanted = {name.strip() for name in options.apps.split(",")}
        unknown = wanted - {app.name for app in every}
        if unknown:
            print(f"unknown applications: {sorted(unknown)}",
                  file=sys.stderr)
            return 2
        apps = [app for app in every if app.name in wanted]
    service = TuningService(
        apps,
        workers=options.workers,
        store=options.store,
        checkpoint_dir=options.checkpoint_dir,
        keep_alive=options.keep_alive,
        fastlane=not options.no_fastlane,
    )
    host, port = await service.start(options.host, _resolve_port(options))
    url = f"http://{host}:{port}"
    print(f"repro.service listening on {url}", flush=True)
    if options.ready_file:
        from repro.store import atomic_write_text

        atomic_write_text(
            options.ready_file,
            json.dumps({"url": url, "port": port, "pid": os.getpid()}),
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # non-Unix event loops
            pass
    await stop.wait()
    print("repro.service shutting down", flush=True)
    await service.close()
    return 0


def _run_local(options) -> int:
    from repro.apps import all_applications
    from repro.tuning.engine import ExecutionEngine

    apps_by_name = {app.name: app for app in all_applications()}
    try:
        request = parse_sweep_request(_request_payload(options), apps_by_name)
    except RequestError as error:
        print(str(error), file=sys.stderr)
        return 2
    base = apps_by_name[request.app_name]
    app = type(base)()
    if request.sim_overrides:
        app.sim_overrides = dict(request.sim_overrides)
    engine = ExecutionEngine.for_app(
        app, workers=options.workers, store=options.store,
    )
    try:
        payload = run_sweep(engine, request)
    finally:
        engine.close()
    stats = engine.stats.delta_since(type(engine.stats)(
        workers=engine.stats.workers
    ))
    print(json.dumps({"result": payload, "stats": stats},
                     indent=1, sort_keys=True))
    return 0


def _client_command(options) -> int:
    client = ServiceClient(
        options.url, keep_alive=getattr(options, "keep_alive", False)
    )
    command = options.command
    try:
        if command == "submit":
            payload = client.submit(_request_payload(options))
        elif command == "sweep":
            payload = client.sweep(
                _request_payload(options), timeout=options.timeout
            )
        elif command == "status":
            payload = client.status(options.id)
        elif command == "results":
            payload = client.results(options.id)
        elif command == "wait":
            payload = client.wait(options.id, timeout=options.timeout)
        elif command == "cancel":
            payload = client.cancel(options.id)
        elif command == "healthz":
            payload = client.healthz()
        elif command == "metrics":
            payload = client.metrics()
            if options.table:
                from repro.harness.tables import fastlane_rows, format_table

                print("Service fast lane")
                print(format_table(fastlane_rows(payload),
                                   ("counter", "value")))
                return 0
        elif command == "list":
            payload = client.list_sweeps()
        else:  # pragma: no cover - argparse enforces the choices
            raise AssertionError(command)
    except (ServiceError, TimeoutError, ConnectionError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    finally:
        client.close()
    print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


def main(argv) -> int:
    options = parse_args(argv)
    if options.command == "serve":
        return asyncio.run(_serve(options))
    if options.command == "run-local":
        return _run_local(options)
    return _client_command(options)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
