"""Canonical JSON payload for a :class:`SearchResult`.

One serializer shared by every surface that reports a sweep — the
service daemon's ``/sweeps/<id>/results`` endpoint and the one-shot
``run-local`` CLI oracle — so "bit-identical results" is checkable by
comparing two JSON documents byte for byte.  Floats round-trip through
``repr`` (what :mod:`json` emits), which is exact for IEEE doubles;
the only lossy value is ``space_reduction``'s NaN (no valid configs),
mapped to ``null`` because JSON has no NaN.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.tuning.search import EvaluatedConfig, SearchResult

__all__ = ["config_payload", "entry_payload", "search_result_payload"]


def config_payload(config) -> Dict[str, Any]:
    """A configuration as a plain (sorted-key) parameter mapping."""
    return dict(config)


def entry_payload(entry: EvaluatedConfig) -> Dict[str, Any]:
    """One timed entry: its parameters and measured seconds."""
    return {"config": config_payload(entry.config), "seconds": entry.seconds}


def _finite(value: float) -> Optional[float]:
    return None if math.isnan(value) else value


def search_result_payload(result: SearchResult) -> Dict[str, Any]:
    """The full report for one sweep, ready for ``json.dumps``."""
    return {
        "strategy": result.strategy,
        "space_size": result.space_size,
        "valid_count": result.valid_count,
        "timed_count": result.timed_count,
        "requested_sample_size": result.requested_sample_size,
        "sample_shortfall": result.sample_shortfall,
        "space_reduction": _finite(result.space_reduction),
        "measured_seconds": result.measured_seconds,
        # Zoo telemetry: null for the classic selection strategies,
        # populated by budgeted (adaptive) runs.  Trajectory pairs are
        # (evaluations, best_so_far_seconds).
        "budget": result.budget,
        "seed": result.seed,
        "restrict": result.restrict,
        "pool_size": result.pool_size,
        "trajectory": (
            None if result.trajectory is None
            else [[count, seconds] for count, seconds in result.trajectory]
        ),
        "best": entry_payload(result.best),
        "timed": [entry_payload(entry) for entry in result.timed],
        "invalid": [
            {
                "config": config_payload(entry.config),
                "reason": entry.invalid_reason,
            }
            for entry in result.evaluated
            if not entry.is_valid
        ],
    }
