"""EXPERIMENTS.md writer: paper-versus-measured for every experiment."""

from __future__ import annotations

import io
from typing import Dict, Optional, Sequence

from repro.harness.experiment import AppExperiment, format_percent
from repro.harness.figures import (
    ascii_scatter,
    figure3_series,
    figure4_series,
    figure5_series,
    figure6_data,
)
from repro.harness.tables import (
    engine_rows,
    format_table,
    scheduler_rows,
    simulator_rows,
    span_rows,
    store_rows,
    table3_rows,
    table4_rows,
    zoo_curve_rows,
    zoo_restriction_rows,
    zoo_rows,
)


def _fmt_ms(value: Optional[float]) -> str:
    return "invalid" if value is None else f"{value:8.3f}"


def render_report(
    experiments: Sequence[AppExperiment],
    preamble: str = "",
    spans: Optional[Sequence[Dict]] = None,
) -> str:
    """Render the full paper-vs-measured report as markdown.

    ``spans`` — Chrome-trace events recorded during the run (see
    ``repro.obs.trace``); when provided, a per-stage wall-time
    breakdown table is appended.
    """
    by_name: Dict[str, AppExperiment] = {e.name: e for e in experiments}
    out = io.StringIO()
    write = out.write

    write("# EXPERIMENTS — paper versus measured\n\n")
    if preamble:
        write(preamble.rstrip() + "\n\n")

    # ------------------------------------------------------------ Table 3
    write("## Table 3 — speedup over single-thread CPU\n\n")
    write("CPU times are modeled (see DESIGN.md, Substitutions); the\n")
    write("comparison is about ordering and magnitude, not absolutes.\n\n")
    write("```\n")
    write(format_table(
        table3_rows(experiments),
        ["application", "speedup", "paper_speedup", "gpu_best_ms", "cpu_model_ms"],
    ))
    write("\n```\n\n")

    # ------------------------------------------------------------ Table 4
    write("## Table 4 — parameter search properties\n\n")
    write("```\n")
    write(format_table(
        table4_rows(experiments),
        ["kernel", "configurations", "paper_configurations",
         "evaluation_time_s", "selected", "paper_selected",
         "space_reduction_percent", "paper_reduction_percent",
         "selected_evaluation_time_s", "optimum_on_curve"],
    ))
    write("\n```\n\n")
    write("Evaluation times are the summed *simulated kernel* times, the\n")
    write("cost an exhaustive search pays on the device.\n\n")

    # ------------------------------------------------ Section 1 numbers
    write("## Section 1 — motivation numbers\n\n")
    write("The paper motivates the search with the MRI space: 17% between\n")
    write("a hand-optimized implementation and the optimum, 235% between\n")
    write("worst and optimum.  Per application here:\n\n")
    write("```\n")
    write("application | hand_vs_optimal | worst_vs_optimal\n")
    write("------------+-----------------+-----------------\n")
    for experiment in experiments:
        write(
            f"{experiment.name:<11} | "
            f"{format_percent((experiment.hand_optimized_over_best - 1) * 100, 14)} | "
            f"{format_percent((experiment.worst_over_best - 1) * 100, 15)}\n"
        )
    write("```\n\n")
    write("Our simulated MRI spread is narrower than the paper's — the\n")
    write("modeled penalties (launch overhead, occupancy) are milder than\n")
    write("real cache-conflict effects; see the layout-ablation bench for\n")
    write("the cache-conflict mechanism.\n\n")

    # ------------------------------------------------------------ Figure 3
    if "matmul" in by_name:
        write("## Figure 3 — matrix multiplication optimization space\n\n")
        write("```\n")
        write("tile  rect  unroll    normal(ms)  prefetch(ms)\n")
        series = figure3_series(by_name["matmul"].app)
        paired: Dict[tuple, Dict[bool, Optional[float]]] = {}
        for row in series:
            key = (row["tile"], row["rect"], row["unroll"])
            paired.setdefault(key, {})[row["prefetch"]] = row["time_ms"]
        for (tile, rect, unroll), times in paired.items():
            write(
                f"{tile:>2}x{tile:<2} 1x{rect}  {unroll:<9}"
                f" {_fmt_ms(times.get(False))}    {_fmt_ms(times.get(True))}\n"
            )
        write("```\n\n")

    # ------------------------------------------------------------ Figure 4
    if "sad" in by_name:
        write("## Figure 4 — SAD optimization space\n\n")
        rows = figure4_series(by_name["sad"])
        by_threads: Dict[int, list] = {}
        for row in rows:
            by_threads.setdefault(row["threads_per_block"], []).append(row["time_ms"])
        write("```\n")
        write("threads/block  configs  min(ms)   median(ms)  max(ms)\n")
        for threads in sorted(by_threads):
            times = sorted(by_threads[threads])
            median = times[len(times) // 2]
            write(
                f"{threads:>13}  {len(times):>7}  {times[0]:8.3f}  "
                f"{median:9.3f}  {times[-1]:8.3f}\n"
            )
        write("```\n\n")

    # ------------------------------------------------------------ Figure 5
    if "cp" in by_name:
        write("## Figure 5 — CP metrics versus performance\n\n")
        write("```\n")
        write("tiling  time(ms)  1/eff(norm)  1/util(norm)\n")
        for row in figure5_series(by_name["cp"].app):
            write(
                f"{row['tiling']:>6}  {row['time_s'] * 1e3:8.3f}  "
                f"{row['inv_efficiency_norm']:11.3f}  "
                f"{row['inv_utilization_norm']:12.3f}\n"
            )
        write("```\n\n")

    # ------------------------------------------------------------ Figure 6
    write("## Figure 6 — searching by Pareto-optimal performance metrics\n\n")
    for experiment in experiments:
        data = figure6_data(experiment)
        write(f"### Figure 6 — {experiment.name}\n\n")
        write("```\n")
        write(ascii_scatter(data.points, data.pareto, data.optimal))
        write("\n```\n\n")
        write(
            f"Pareto subset: {len(data.pareto)} of {len(data.points)} valid "
            f"configurations; optimum on curve: "
            f"**{data.optimum_on_curve}**.\n\n"
        )

    # ------------------------------------------------- Strategy zoo
    zoo_telemetry = zoo_rows(experiments)
    if zoo_telemetry:
        write("## Search-strategy zoo — budget versus quality\n\n")
        write("Budgeted search algorithms (see docs/search_strategies.md)\n")
        write("run over the same spaces with a 25%-of-valid-space\n")
        write("evaluation budget, each in two compositions: the full valid\n")
        write("space and the Pareto-pruned subset (the paper's pruning as a\n")
        write("pre-filter).  `gap_vs_opt` compares the strategy's pick to\n")
        write("the exhaustive optimum; `evals_to_5pct` is how many\n")
        write("evaluations it took to get within 5% of it.\n\n")
        write("```\n")
        write(format_table(
            zoo_telemetry,
            ["application", "strategy", "restrict", "pool", "budget",
             "timed", "best_ms", "gap_vs_opt_percent", "evals_to_5pct"],
        ))
        write("\n```\n\n")

        write("### Budget versus best configuration\n\n")
        write("Best-so-far (ms) after N evaluations, full-space runs:\n\n")
        for experiment in experiments:
            curve = zoo_curve_rows(experiment)
            if not curve:
                continue
            strategies = [c for c in curve[0] if c != "evaluations"]
            write(f"#### {experiment.name} "
                  f"(optimum {experiment.exhaustive.best.seconds * 1e3:.3f} ms)\n\n")
            write("```\n")
            write(format_table(curve, ["evaluations"] + strategies))
            write("\n```\n\n")

        restriction = zoo_restriction_rows(experiments)
        if restriction:
            write("### Does Pareto restriction help?\n\n")
            write("Counts over the studied apps: runs within 5% of the\n")
            write("optimum under each composition, and apps where the\n")
            write("Pareto-restricted run matched or beat the full-space\n")
            write("run's best.  Small Pareto pools cap the budget (the\n")
            write("pool may be smaller than the budget), so equal-or-\n")
            write("better at lower cost reads as \"pruning helps\".\n\n")
            write("```\n")
            write(format_table(
                restriction,
                ["strategy", "apps", "full_within_5pct",
                 "pareto_within_5pct", "pareto_at_least_as_good"],
            ))
            write("\n```\n\n")

    # ------------------------------------------------- Engine telemetry
    telemetry = engine_rows(experiments)
    if telemetry:
        write("## Search engine telemetry\n\n")
        write("One static-metric pass and at most one simulation per\n")
        write("configuration, shared by every strategy (see\n")
        write("docs/search_engine.md); cache hits are requests the shared\n")
        write("evaluation cache absorbed.\n\n")
        write("```\n")
        write(format_table(
            telemetry,
            ["application", "workers", "static_evals", "simulations",
             "cache_hits", "checkpoint_hits", "evaluate_wall_s",
             "simulate_wall_s", "pool_fallbacks"],
        ))
        write("\n```\n\n")
        if any(row["pool_fallbacks"] for row in telemetry):
            write("**Warning:** at least one run degraded from the worker\n")
            write("pool to in-process simulation (see the harness log for\n")
            write("the reason); wall times above are not pooled times.\n\n")

    # ----------------------------------------- Fault-tolerance telemetry
    fault_telemetry = scheduler_rows(experiments)
    if fault_telemetry:
        write("## Fault-tolerance telemetry\n\n")
        write("The sweep scheduler absorbed failures during this run (see\n")
        write("docs/fault_tolerance.md): retries are re-queued task\n")
        write("attempts, timeouts are deadline kills of hung workers,\n")
        write("crashes are worker processes that died mid-task, and\n")
        write("serial_tasks exhausted the pool's retry budget and ran\n")
        write("in-process.  Counts are exact under any worker count, and\n")
        write("results remain bit-identical to a serial run.\n\n")
        write("```\n")
        write(format_table(
            fault_telemetry,
            ["application", "retries", "timeouts", "errors", "crashes",
             "quarantined", "serial_tasks", "backoff_s", "pool_fallbacks"],
        ))
        write("\n```\n\n")

    # ---------------------------------------------- Simulator telemetry
    sim_telemetry = simulator_rows(experiments)
    if sim_telemetry:
        write("## Simulator cache telemetry\n\n")
        write("Content-addressed sharing inside the simulator (see\n")
        write("docs/simulator.md): hits are compile passes, warp traces and\n")
        write("SM replays reused across configurations whose post-transform\n")
        write("kernels are identical; compile hits/evals are whole static\n")
        write("reports shared through the compile tier (see\n")
        write("docs/compile_pipeline.md); wave/event counts are the replay\n")
        write("work actually performed.  Pool workers report per-task\n")
        write("counter deltas, so these totals are exact for any worker\n")
        write("count (see docs/observability.md).\n\n")
        write("```\n")
        write(format_table(
            sim_telemetry,
            ["application", "resource_hits", "trace_hits", "sm_hits",
             "compile_hits", "compile_evals",
             "waves_simulated", "blocks_replayed", "blocks_extrapolated",
             "extrapolated_ratio", "events_replayed"],
        ))
        write("\n```\n\n")

    # ------------------------------------------- Persistent store telemetry
    store_telemetry = store_rows(experiments)
    if store_telemetry:
        write("## Persistent store telemetry\n\n")
        write("Disk traffic of the durable result store layered under the\n")
        write("simulator cache (see docs/persistent_store.md): hits are\n")
        write("artifacts read back instead of recomputed, misses fell\n")
        write("through to computation (and were written back), evictions\n")
        write("enforce the size bound, and corrupt entries were dropped\n")
        write("and recomputed.  The store only changes how fast results\n")
        write("arrive — never their values.\n\n")
        write("```\n")
        write(format_table(
            store_telemetry,
            ["application", "store_hits", "store_misses",
             "store_evictions", "store_corrupt"],
        ))
        write("\n```\n\n")

    # ------------------------------------------------ Per-stage timing
    if spans:
        stage_rows = span_rows(spans)
        if stage_rows:
            write("## Per-stage timing (trace spans)\n\n")
            write("Wall time by span name, aggregated from the Chrome trace\n")
            write("recorded with `--trace` (nested spans overlap — outer\n")
            write("totals include the stages underneath them).\n\n")
            write("```\n")
            write(format_table(
                stage_rows, ["span", "count", "total_ms", "mean_us"],
            ))
            write("\n```\n\n")

    # ------------------------------------------------------------ Summary
    write("## Headline claim\n\n")
    all_on = all(e.optimum_on_curve for e in experiments)
    write(
        "For every studied application the Pareto-optimal subset of the\n"
        "(efficiency, utilization) plot contains the configuration with\n"
        f"the best simulated performance: **{all_on}**.\n"
    )
    return out.getvalue()


def write_report(
    path: str,
    experiments: Sequence[AppExperiment],
    preamble: str = "",
    spans: Optional[Sequence[Dict]] = None,
) -> None:
    with open(path, "w") as handle:
        handle.write(render_report(experiments, preamble, spans=spans))
