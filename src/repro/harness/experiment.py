"""Experiment driver: runs the paper's search protocol on one application.

For each application the paper (i) explores the full configuration
space, (ii) prunes it to the Pareto-optimal subset of the metric plot,
and (iii) compares.  ``run_experiment`` performs both searches and
collects everything the tables and figures need.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

from repro.apps.base import Application
from repro.tuning.search import (
    EvaluatedConfig,
    SearchResult,
    full_exploration,
    pareto_search,
    random_search,
)


@dataclasses.dataclass
class AppExperiment:
    """Everything measured for one application."""

    app: Application
    exhaustive: SearchResult
    pareto: SearchResult
    random: Optional[SearchResult] = None
    wall_seconds: float = 0.0

    @property
    def name(self) -> str:
        return self.app.name

    @property
    def optimum_on_curve(self) -> bool:
        """The paper's headline claim for this application."""
        return any(
            entry.config == self.exhaustive.best.config
            for entry in self.pareto.timed
        )

    @property
    def space_reduction_percent(self) -> float:
        return self.pareto.space_reduction * 100.0

    @property
    def pruned_best_gap(self) -> float:
        """Slowdown of the pruned search's pick vs the true optimum."""
        return self.pareto.best.seconds / self.exhaustive.best.seconds - 1.0

    @property
    def gpu_best_seconds(self) -> float:
        return self.exhaustive.best.seconds

    @property
    def speedup_over_cpu(self) -> float:
        """Table 3: modeled single-thread CPU time over best GPU time."""
        return self.app.cpu_time_model_seconds() / self.gpu_best_seconds

    @property
    def worst_over_best(self) -> float:
        worst = max(e.seconds for e in self.exhaustive.timed)
        return worst / self.exhaustive.best.seconds

    @property
    def hand_optimized_over_best(self) -> float:
        """Section 1's motivation: how far a sensible hand-written
        starting configuration sits from the space's optimum."""
        hand = self.app.default_configuration()
        for entry in self.exhaustive.timed:
            if entry.config == hand:
                return entry.seconds / self.exhaustive.best.seconds
        return self.app.simulate(hand) / self.exhaustive.best.seconds

    def timed_entries(self) -> List[EvaluatedConfig]:
        return self.exhaustive.timed


def run_experiment(
    app: Application,
    include_random: bool = False,
    random_seed: int = 0,
) -> AppExperiment:
    """Run exhaustive + Pareto (and optionally random) searches."""
    configs = app.space().configurations()
    started = time.perf_counter()
    exhaustive = full_exploration(configs, app.evaluate, app.simulate)
    pareto = pareto_search(configs, app.evaluate, app.simulate)
    random_result = None
    if include_random:
        random_result = random_search(
            configs, app.evaluate, app.simulate,
            sample_size=pareto.timed_count, seed=random_seed,
        )
    return AppExperiment(
        app=app,
        exhaustive=exhaustive,
        pareto=pareto,
        random=random_result,
        wall_seconds=time.perf_counter() - started,
    )
