"""Experiment driver: runs the paper's search protocol on one application.

For each application the paper (i) explores the full configuration
space, (ii) prunes it to the Pareto-optimal subset of the metric plot,
and (iii) compares.  ``run_experiment`` performs both searches and
collects everything the tables and figures need.

All strategies share one :class:`~repro.tuning.engine.ExecutionEngine`,
so a multi-strategy experiment performs exactly one static-metric pass
over the space and never simulates the same configuration twice — the
Pareto and random searches are served from the exhaustive pass's
cache.  ``workers`` fans the exhaustive measurement out across a
process pool; ``checkpoint_path`` lets an interrupted sweep resume.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import List, Optional, Sequence

from repro.apps.base import Application
from repro.arch.occupancy import LaunchError
from repro.obs.trace import span
from repro.tuning.engine import EngineStats, ExecutionEngine
from repro.tuning.search import (
    EvaluatedConfig,
    SearchResult,
    full_exploration,
    pareto_search,
    random_search,
)
from repro.tuning.strategies import build_strategy


@dataclasses.dataclass
class AppExperiment:
    """Everything measured for one application."""

    app: Application
    exhaustive: SearchResult
    pareto: SearchResult
    random: Optional[SearchResult] = None
    wall_seconds: float = 0.0
    #: engine telemetry: evaluation counts, cache hits, stage wall time
    engine_stats: Optional[EngineStats] = None
    #: budgeted strategy-zoo runs (one per strategy × restrict mode),
    #: all served from the exhaustive pass's warm measurement cache
    zoo: List[SearchResult] = dataclasses.field(default_factory=list)

    @property
    def name(self) -> str:
        return self.app.name

    @property
    def optimum_on_curve(self) -> bool:
        """The paper's headline claim for this application."""
        return any(
            entry.config == self.exhaustive.best.config
            for entry in self.pareto.timed
        )

    @property
    def space_reduction_percent(self) -> float:
        """NaN when the space had no valid configuration (see
        ``SearchResult.space_reduction``); render with
        :func:`format_percent`."""
        reduction = self.pareto.space_reduction
        if math.isnan(reduction):
            return float("nan")
        return reduction * 100.0

    @property
    def pruned_best_gap(self) -> float:
        """Slowdown of the pruned search's pick vs the true optimum."""
        return self.pareto.best.seconds / self.exhaustive.best.seconds - 1.0

    @property
    def gpu_best_seconds(self) -> float:
        return self.exhaustive.best.seconds

    @property
    def speedup_over_cpu(self) -> float:
        """Table 3: modeled single-thread CPU time over best GPU time."""
        return self.app.cpu_time_model_seconds() / self.gpu_best_seconds

    @property
    def worst_over_best(self) -> float:
        worst = max(e.seconds for e in self.exhaustive.timed)
        return worst / self.exhaustive.best.seconds

    @property
    def hand_optimized_over_best(self) -> float:
        """Section 1's motivation: how far a sensible hand-written
        starting configuration sits from the space's optimum.

        NaN when the default configuration cannot launch at all (an
        application whose hand-written starting point is invalid on
        this device) — rendered as "n/a" in tables rather than
        crashing the whole experiment.
        """
        hand = self.app.default_configuration()
        for entry in self.exhaustive.timed:
            if entry.config == hand:
                return entry.seconds / self.exhaustive.best.seconds
        try:
            return self.app.simulate(hand) / self.exhaustive.best.seconds
        except LaunchError:
            return float("nan")

    def timed_entries(self) -> List[EvaluatedConfig]:
        return self.exhaustive.timed


def format_percent(value: float, width: int = 5, precision: int = 1) -> str:
    """Render a percentage, degrading NaN to "n/a" instead of "nan%"."""
    if math.isnan(value):
        return "n/a".rjust(width + 1)
    return f"{value:{width}.{precision}f}%"


def run_experiment(
    app: Application,
    include_random: bool = False,
    random_seed: int = 0,
    workers: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    engine: Optional[ExecutionEngine] = None,
    retry_policy=None,
    fault_spec: Optional[str] = None,
    store=None,
    zoo_strategies: Optional[Sequence[str]] = None,
    zoo_budget_fraction: float = 0.25,
) -> AppExperiment:
    """Run exhaustive + Pareto (and optionally random) searches.

    ``workers`` widens the sweep scheduler's worker pool; the default
    (``None``) defers to the ``REPRO_WORKERS`` environment variable,
    so a whole suite can be switched to pooled execution without
    touching call sites (results are bit-identical either way).
    ``checkpoint_path`` turns on the on-disk resume cache.
    ``retry_policy`` and ``fault_spec`` configure the scheduler's
    fault-tolerance knobs and deterministic fault injection (``None``
    defers to ``REPRO_TASK_TIMEOUT``/``REPRO_TASK_RETRIES`` and
    ``REPRO_FAULTS``).  ``store`` — a directory path or
    :class:`~repro.store.ResultStore`, defaulting to ``REPRO_STORE``
    — layers the persistent result store under the app's simulator
    cache, so artifacts survive across harness invocations.  Pass an
    ``engine`` to reuse caches across calls — otherwise one is created
    (and its pool torn down) per experiment.

    ``zoo_strategies`` names adaptive strategies from the registry to
    run after the paper protocol, each in both compositions (the full
    valid space and the Pareto-restricted pool) with a budget of
    ``zoo_budget_fraction`` of the valid space and ``random_seed`` as
    the seed.  Because the exhaustive pass already measured every
    valid configuration, zoo runs are pure cache replays — they cost
    no additional simulation, only bookkeeping.
    """
    configs = app.space().configurations()
    started = time.perf_counter()
    owns_engine = engine is None
    if engine is None:
        engine = ExecutionEngine.for_app(
            app, workers=workers, checkpoint_path=checkpoint_path,
            retry_policy=retry_policy, fault_spec=fault_spec, store=store,
        )
    try:
        with span("harness.experiment", cat="harness", app=app.name,
                  configs=len(configs)):
            exhaustive = full_exploration(configs, engine=engine)
            pareto = pareto_search(configs, engine=engine)
            random_result = None
            if include_random:
                random_result = random_search(
                    configs,
                    sample_size=pareto.timed_count,
                    seed=random_seed,
                    engine=engine,
                )
            zoo: List[SearchResult] = []
            if zoo_strategies:
                budget = max(
                    1,
                    round(zoo_budget_fraction * exhaustive.valid_count),
                )
                for name in zoo_strategies:
                    strategy = build_strategy(name)
                    for restrict in ("full", "pareto"):
                        zoo.append(strategy.run(
                            configs, engine,
                            seed=random_seed,
                            budget=budget,
                            restrict=restrict,
                        ))
    finally:
        if owns_engine:
            engine.close()
    return AppExperiment(
        app=app,
        exhaustive=exhaustive,
        pareto=pareto,
        random=random_result,
        wall_seconds=time.perf_counter() - started,
        engine_stats=engine.stats,
        zoo=zoo,
    )
