"""Regeneration of the paper's tables.

* Table 3 — application suite with speedups over single-thread CPU;
* Table 4 — parameter-search properties: space size, evaluation time,
  Pareto-selected count, space reduction, selected evaluation time.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.harness.experiment import AppExperiment

PAPER_TABLE4_PARAMETERS = {
    "matmul": "tile/block size, rectangular tile dimension, unroll factor, "
              "prefetching, register spilling",
    "cp": "block size, per-thread tiling, coalescing of output",
    "sad": "per-thread tiling, unroll factor (3 loops), work per block",
    "mri-fhd": "block size, unroll factor, work per kernel invocation",
}


def table3_rows(experiments: Sequence[AppExperiment]) -> List[Dict]:
    """Table 3: measured (modeled-CPU) speedup per application."""
    rows = []
    for experiment in experiments:
        rows.append({
            "application": experiment.name,
            "speedup": experiment.speedup_over_cpu,
            "paper_speedup": experiment.app.paper_speedup,
            "gpu_best_ms": experiment.gpu_best_seconds * 1e3,
            "cpu_model_ms": experiment.app.cpu_time_model_seconds() * 1e3,
        })
    return rows


def table4_rows(experiments: Sequence[AppExperiment]) -> List[Dict]:
    """Table 4: search-space properties per application."""
    rows = []
    for experiment in experiments:
        rows.append({
            "kernel": experiment.name,
            "parameters": PAPER_TABLE4_PARAMETERS.get(experiment.name, ""),
            "configurations": experiment.exhaustive.space_size,
            "valid_configurations": experiment.exhaustive.valid_count,
            "paper_configurations": experiment.app.paper_space_size,
            "evaluation_time_s": experiment.exhaustive.measured_seconds,
            "selected": experiment.pareto.timed_count,
            "paper_selected": experiment.app.paper_selected,
            "space_reduction_percent": experiment.space_reduction_percent,
            "paper_reduction_percent": experiment.app.paper_reduction_percent,
            "selected_evaluation_time_s": experiment.pareto.measured_seconds,
            "optimum_on_curve": experiment.optimum_on_curve,
        })
    return rows


def engine_rows(experiments: Sequence[AppExperiment]) -> List[Dict]:
    """Search-engine telemetry per application (cache hits, wall time)."""
    rows = []
    for experiment in experiments:
        stats = experiment.engine_stats
        if stats is None:
            continue
        rows.append({
            "application": experiment.name,
            "workers": stats.workers,
            "static_evals": stats.static_evaluations,
            "simulations": stats.simulations,
            "cache_hits": stats.cache_hits,
            "checkpoint_hits": stats.checkpoint_hits,
            "evaluate_wall_s": stats.evaluate_seconds,
            "simulate_wall_s": stats.simulate_seconds,
            "pool_fallbacks": getattr(stats, "pool_fallbacks", 0),
        })
    return rows


def scheduler_rows(experiments: Sequence[AppExperiment]) -> List[Dict]:
    """Fault-tolerance telemetry per application.

    Counts are exact (accumulated in the parent process, see
    repro.tuning.scheduler): retries, deadline kills, worker crashes,
    quarantined worker slots, tasks that exhausted the pool's retry
    budget and ran in-process, and the total scheduled backoff delay.
    All-zero rows are skipped — the table only appears when some
    recovery machinery actually fired.
    """
    rows = []
    for experiment in experiments:
        stats = experiment.engine_stats
        if stats is None:
            continue
        recoveries = getattr(stats, "fault_recoveries", 0)
        if not (recoveries or getattr(stats, "serial_fallback_tasks", 0)
                or getattr(stats, "pool_fallbacks", 0)):
            continue
        rows.append({
            "application": experiment.name,
            "retries": stats.task_retries,
            "timeouts": stats.task_timeouts,
            "errors": stats.task_errors,
            "crashes": stats.worker_crashes,
            "quarantined": stats.workers_quarantined,
            "serial_tasks": stats.serial_fallback_tasks,
            "backoff_s": stats.backoff_seconds,
            "pool_fallbacks": stats.pool_fallbacks,
        })
    return rows


def simulator_rows(experiments: Sequence[AppExperiment]) -> List[Dict]:
    """Simulator-cache telemetry per application.

    Fingerprint hits are compile passes / warp traces / SM replays
    reused across *different* configurations whose post-transform
    kernels are identical (see repro.sim.fingerprint); compile hits
    and evaluations are the static stage's content-addressed reuse of
    whole metric reports; wave and event counts measure the replay
    work actually performed.
    """
    rows = []
    for experiment in experiments:
        stats = experiment.engine_stats
        if stats is None or not hasattr(stats, "fingerprint_hits"):
            continue
        rows.append({
            "application": experiment.name,
            "resource_hits": stats.fingerprint_resource_hits,
            "trace_hits": stats.fingerprint_trace_hits,
            "sm_hits": stats.fingerprint_sm_hits,
            "compile_hits": getattr(stats, "compile_hits", 0),
            "compile_evals": getattr(stats, "compile_evaluations", 0),
            "waves_simulated": stats.waves_simulated,
            "blocks_replayed": stats.blocks_replayed,
            "blocks_extrapolated": stats.blocks_extrapolated,
            # The display-only extrapolation ratio: share of blocks
            # whose time came from convergence rather than replay.
            # Derived here from the integer counters (which merge
            # exactly across configs and workers; a per-SM fraction
            # would not).
            "extrapolated_ratio": round(
                stats.blocks_extrapolated
                / (stats.blocks_replayed + stats.blocks_extrapolated),
                4,
            ) if (stats.blocks_replayed or stats.blocks_extrapolated) else 0.0,
            "events_replayed": stats.events_replayed,
        })
    return rows


def store_rows(experiments: Sequence[AppExperiment]) -> List[Dict]:
    """Persistent result-store telemetry per application.

    Disk traffic of the durable tier under the simulator cache (see
    repro.store): artifacts read back instead of recomputed, lookups
    that fell through to computation, LRU evictions, and corrupt
    entries dropped on read.  All-zero rows are skipped — the table
    only appears when a store was attached and actually used.
    """
    rows = []
    for experiment in experiments:
        stats = experiment.engine_stats
        if stats is None:
            continue
        hits = getattr(stats, "store_hits", 0)
        misses = getattr(stats, "store_misses", 0)
        evictions = getattr(stats, "store_evictions", 0)
        corrupt = getattr(stats, "store_corrupt", 0)
        if not (hits or misses or evictions or corrupt):
            continue
        rows.append({
            "application": experiment.name,
            "store_hits": hits,
            "store_misses": misses,
            "store_evictions": evictions,
            "store_corrupt": corrupt,
        })
    return rows


def zoo_rows(experiments: Sequence[AppExperiment]) -> List[Dict]:
    """Strategy-zoo telemetry: one row per app × strategy × restrict.

    ``gap_vs_opt_percent`` is the slowdown of the strategy's pick
    versus the full-exploration optimum; ``evals_to_5pct`` is the
    evaluation count at which the run's best-so-far first came within
    5% of that optimum ("-" when the budget never got there).
    """
    rows = []
    for experiment in experiments:
        optimum = experiment.exhaustive.best.seconds
        for result in experiment.zoo:
            within = result.evaluations_to_within(0.05, optimum)
            rows.append({
                "application": experiment.name,
                "strategy": result.strategy,
                "restrict": result.restrict,
                "pool": result.pool_size,
                "budget": result.budget,
                "timed": result.timed_count,
                "best_ms": result.best.seconds * 1e3,
                "gap_vs_opt_percent":
                    (result.best.seconds / optimum - 1.0) * 100.0,
                "evals_to_5pct": within if within is not None else "-",
            })
    return rows


def best_so_far(trajectory, count: int):
    """Best seconds after the first ``count`` evaluations, or None."""
    best = None
    for evaluations, seconds in trajectory:
        if evaluations > count:
            break
        best = seconds
    return best


def zoo_curve_rows(experiment: AppExperiment) -> List[Dict]:
    """Budget-versus-best curve for one app: rows are evaluation
    checkpoints (powers of two up to the budget), columns are the
    full-space zoo strategies' best-so-far in milliseconds."""
    results = [r for r in experiment.zoo if r.restrict == "full"]
    if not results:
        return []
    budget = max(r.timed_count for r in results)
    checkpoints = []
    point = 1
    while point < budget:
        checkpoints.append(point)
        point *= 2
    checkpoints.append(budget)
    rows = []
    for count in checkpoints:
        row: Dict = {"evaluations": count}
        for result in results:
            best = best_so_far(result.trajectory, count)
            row[result.strategy] = (
                "-" if best is None else f"{best * 1e3:.3f}"
            )
        rows.append(row)
    return rows


def zoo_restriction_rows(experiments: Sequence[AppExperiment]) -> List[Dict]:
    """Does Pareto restriction help each algorithm?

    Per strategy, across apps: how many runs landed within 5% of the
    optimum under each composition, and on how many apps the
    Pareto-restricted run found a best at least as good as the
    full-space run's.
    """
    by_strategy: Dict[str, Dict] = {}
    for experiment in experiments:
        optimum = experiment.exhaustive.best.seconds
        by_restrict: Dict[str, Dict[str, float]] = {}
        for result in experiment.zoo:
            by_restrict.setdefault(result.strategy, {})[result.restrict] = (
                result.best.seconds
            )
        for strategy, bests in by_restrict.items():
            entry = by_strategy.setdefault(strategy, {
                "strategy": strategy, "apps": 0,
                "full_within_5pct": 0, "pareto_within_5pct": 0,
                "pareto_at_least_as_good": 0,
            })
            entry["apps"] += 1
            full = bests.get("full")
            pareto = bests.get("pareto")
            if full is not None and full <= optimum * 1.05:
                entry["full_within_5pct"] += 1
            if pareto is not None and pareto <= optimum * 1.05:
                entry["pareto_within_5pct"] += 1
            if full is not None and pareto is not None and pareto <= full:
                entry["pareto_at_least_as_good"] += 1
    return [by_strategy[name] for name in sorted(by_strategy)]


def fastlane_rows(metrics: Dict) -> List[Dict]:
    """The "Service fast lane" report table from a ``/metrics`` payload.

    One ``counter``/``value`` row per warm-path signal: sweeps served
    on the event loop (fully warm and partial), configs answered from
    the memo, executor dispatches (the cold path, for contrast),
    decoded-cache traffic, bulk store reads summed across runtimes,
    and keep-alive connection reuse.
    """
    service = metrics.get("service", {})
    decoded = metrics.get("decoded_cache", {})
    runtimes = metrics.get("runtimes", {})
    bulk_reads = sum(
        stats.get("store_bulk_reads", 0) for stats in runtimes.values()
    )
    bytes_verified = sum(
        stats.get("store_bytes_verified", 0) for stats in runtimes.values()
    )
    names = (
        ("fastlane_sweeps", service.get("fastlane_sweeps", 0)),
        ("fastlane_partial", service.get("fastlane_partial", 0)),
        ("fastlane_configs", service.get("fastlane_configs", 0)),
        ("executor_dispatches", service.get("executor_dispatches", 0)),
        ("decoded_cache_hits", decoded.get("decoded_cache_hits", 0)),
        ("decoded_cache_misses", decoded.get("decoded_cache_misses", 0)),
        ("decoded_cache_evictions", decoded.get("decoded_cache_evictions", 0)),
        ("store_bulk_reads", bulk_reads),
        ("store_bytes_verified", bytes_verified),
        ("keepalive_connections", service.get("keepalive_connections", 0)),
        ("keepalive_reuses", service.get("keepalive_reuses", 0)),
    )
    return [{"counter": name, "value": value} for name, value in names]


def span_rows(events: Sequence[Dict]) -> List[Dict]:
    """Per-stage wall-time breakdown from Chrome-trace span events.

    Aggregates complete (``ph == "X"``) events by span name: how often
    each stage ran and how much wall time it took.  Nested spans are
    reported as recorded — an ``engine.simulate_batch`` total includes
    the ``sim.*`` stages underneath it, so the table reads as a
    drill-down, not a partition.
    """
    totals: Dict[str, Dict] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        entry = totals.setdefault(
            event["name"], {"count": 0, "total_us": 0.0}
        )
        entry["count"] += 1
        entry["total_us"] += event.get("dur", 0.0)
    rows = []
    for name in sorted(totals, key=lambda n: -totals[n]["total_us"]):
        entry = totals[name]
        rows.append({
            "span": name,
            "count": entry["count"],
            "total_ms": entry["total_us"] / 1e3,
            "mean_us": entry["total_us"] / entry["count"],
        })
    return rows


def format_table(rows: List[Dict], columns: Sequence[str]) -> str:
    """Plain-text table rendering for reports and bench output."""
    if not rows:
        return "(no rows)"

    def cell(row: Dict, column: str) -> str:
        value = row.get(column, "")
        if isinstance(value, float):
            if math.isnan(value):
                return "n/a"
            return f"{value:.3f}"
        return str(value)

    widths = {
        column: max(len(column), max(len(cell(row, column)) for row in rows))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    ruler = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, ruler]
    for row in rows:
        lines.append(
            " | ".join(cell(row, column).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
