"""Experiment harness: regenerates the paper's tables and figures."""

from repro.harness.experiment import AppExperiment, format_percent, run_experiment
from repro.harness.figures import (
    Figure6Data,
    ascii_scatter,
    figure3_series,
    figure4_series,
    figure5_series,
    figure6_data,
)
from repro.harness.report import render_report, write_report
from repro.harness.tables import engine_rows, format_table, table3_rows, table4_rows

__all__ = [
    "AppExperiment",
    "Figure6Data",
    "ascii_scatter",
    "engine_rows",
    "figure3_series",
    "figure4_series",
    "figure5_series",
    "figure6_data",
    "format_percent",
    "format_table",
    "render_report",
    "run_experiment",
    "table3_rows",
    "table4_rows",
    "write_report",
]
