"""Regeneration of the paper's figures as data series (plus ASCII art).

* Figure 3 — matmul runtime across the abbreviated optimization space;
* Figure 4 — SAD runtime versus threads per block across the space;
* Figure 5 — CP execution time against 1/Efficiency and 1/Utilization
  over the per-thread tiling sweep;
* Figure 6 — normalized efficiency/utilization scatter with the
  Pareto-optimal subset and the true optimum, per application.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.cp import CoulombicPotential
from repro.apps.matmul import MatMul
from repro.arch.occupancy import LaunchError
from repro.harness.experiment import AppExperiment
from repro.tuning.pareto import pareto_indices
from repro.tuning.space import Configuration
from repro.transforms.unroll import COMPLETE


# ----------------------------------------------------------------------
# Figure 3.

def figure3_series(app: Optional[MatMul] = None) -> List[Dict]:
    """Matmul runtimes over the Figure 3 space (spilling off).

    Invalid configurations (the paper's far-right prefetch point) get
    ``time_ms=None``.
    """
    app = app or MatMul()
    rows = []
    for tile in (8, 16):
        for rect in (1, 2, 4):
            for unroll in (1, 2, 4, COMPLETE):
                for prefetch in (False, True):
                    config = Configuration({
                        "tile": tile, "rect": rect, "unroll": unroll,
                        "prefetch": prefetch, "spill": False,
                    })
                    try:
                        app.evaluate(config)
                        time_ms = app.simulate(config) * 1e3
                    except LaunchError:
                        time_ms = None
                    rows.append({
                        "tile": tile, "rect": rect,
                        "unroll": str(unroll), "prefetch": prefetch,
                        "time_ms": time_ms,
                    })
    return rows


# ----------------------------------------------------------------------
# Figure 4.

def figure4_series(experiment: AppExperiment) -> List[Dict]:
    """SAD runtime against threads per block for every valid config."""
    rows = []
    for entry in experiment.exhaustive.timed:
        config = entry.config
        threads = config["positions_per_block"] // config["tiling"]
        rows.append({
            "threads_per_block": threads,
            "time_ms": entry.seconds * 1e3,
            "config": dict(config),
        })
    rows.sort(key=lambda r: (r["threads_per_block"], r["time_ms"]))
    return rows


# ----------------------------------------------------------------------
# Figure 5.

def figure5_series(
    app: Optional[CoulombicPotential] = None,
    block: int = 128,
) -> List[Dict]:
    """CP time and reciprocal metrics over the tiling sweep.

    The reciprocals are normalized to their maxima, as in the paper
    ("We plot the normalized reciprocals of the performance metrics,
    so lower is better in both plots").
    """
    app = app or CoulombicPotential()
    tilings = (1, 2, 4, 8, 16)
    raw = []
    for tiling in tilings:
        config = Configuration({
            "block": block, "tiling": tiling, "coalesce_output": True,
        })
        metrics = app.evaluate(config)
        raw.append({
            "tiling": tiling,
            "time_s": app.simulate(config),
            "inv_efficiency": 1.0 / metrics.efficiency,
            "inv_utilization": 1.0 / metrics.utilization,
        })
    max_eff = max(r["inv_efficiency"] for r in raw)
    max_util = max(r["inv_utilization"] for r in raw)
    for row in raw:
        row["inv_efficiency_norm"] = row["inv_efficiency"] / max_eff
        row["inv_utilization_norm"] = row["inv_utilization"] / max_util
    return raw


# ----------------------------------------------------------------------
# Figure 6.

@dataclasses.dataclass
class Figure6Data:
    """Normalized metric scatter for one application."""

    name: str
    points: List[Tuple[float, float]]          # (efficiency, utilization)
    configs: List[Configuration]
    times: List[float]
    pareto: List[int]                          # indices into points
    optimal: int                               # index of the true optimum

    @property
    def optimum_on_curve(self) -> bool:
        return self.optimal in set(self.pareto)


def figure6_data(experiment: AppExperiment) -> Figure6Data:
    """Normalized efficiency/utilization scatter (Figure 6(a)-(d))."""
    timed = experiment.exhaustive.timed
    max_eff = max(e.metrics.efficiency for e in timed)
    max_util = max(e.metrics.utilization for e in timed)
    points = [
        (e.metrics.efficiency / max_eff, e.metrics.utilization / max_util)
        for e in timed
    ]
    times = [e.seconds for e in timed]
    optimal = min(range(len(timed)), key=lambda i: times[i])
    return Figure6Data(
        name=experiment.name,
        points=points,
        configs=[e.config for e in timed],
        times=times,
        pareto=pareto_indices(points),
        optimal=optimal,
    )


def ascii_scatter(
    points: Sequence[Tuple[float, float]],
    pareto: Sequence[int],
    optimal: int,
    width: int = 64,
    height: int = 20,
) -> str:
    """Render a Figure 6 panel as ASCII: '.' point, 'o' Pareto, '@' optimum."""
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, char: str) -> None:
        column = min(width - 1, int(x * (width - 1)))
        row = height - 1 - min(height - 1, int(y * (height - 1)))
        current = grid[row][column]
        rank = {" ": 0, ".": 1, "o": 2, "@": 3}
        if rank[char] >= rank.get(current, 0):
            grid[row][column] = char

    for index, (x, y) in enumerate(points):
        place(x, y, ".")
    for index in pareto:
        place(points[index][0], points[index][1], "o")
    place(points[optimal][0], points[optimal][1], "@")
    frame = ["+" + "-" * width + "+"]
    frame.extend("|" + "".join(row) + "|" for row in grid)
    frame.append("+" + "-" * width + "+")
    frame.append("x: efficiency (normalized)  y: utilization (normalized)")
    frame.append(".: config  o: Pareto subset  @: true optimum")
    return "\n".join(frame)
