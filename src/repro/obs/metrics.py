"""A picklable, mergeable counter/timer registry.

The execution engine's original telemetry had a documented hole: when
simulations fan out across a process pool, each forked worker
accumulates cache counters in its own address space and the parent
reports only its own (usually zero) work.  The fix is structural —
workers measure their contribution as a *delta* (counters after the
task minus counters before it) and return it alongside the result;
the parent folds the deltas into one :class:`Counters` so the totals
are exact no matter how the work was partitioned.

:class:`Counters` is intentionally tiny: a name→number mapping with
``incr``/``merge``/``as_dict`` plus a wall-clock timer context.  It
pickles cleanly (plain dict state) so it can cross process
boundaries in either direction.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Mapping, Optional, Union

Number = Union[int, float]


def counter_delta(
    after: Mapping[str, Number], before: Optional[Mapping[str, Number]]
) -> Dict[str, Number]:
    """Per-task contribution between two counter snapshots.

    Returns only the names that changed (or are new), so the common
    all-cache-hit case ships an empty dict across the pool.  ``before
    is None`` means "everything in ``after`` is new".
    """
    if before is None:
        return {name: value for name, value in after.items() if value}
    delta: Dict[str, Number] = {}
    for name, value in after.items():
        change = value - before.get(name, 0)
        if change:
            delta[name] = change
    return delta


class Counters:
    """Mergeable named counters (ints or floats).

    >>> c = Counters()
    >>> c.incr("simulations")
    >>> c.merge({"simulations": 2, "waves": 0.5})
    >>> c.as_dict()
    {'simulations': 3, 'waves': 0.5}
    """

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[str, Number]] = None) -> None:
        self._values: Dict[str, Number] = dict(values) if values else {}

    # -- mutation --------------------------------------------------------

    def incr(self, name: str, amount: Number = 1) -> None:
        self._values[name] = self._values.get(name, 0) + amount

    def merge(self, other: Union["Counters", Mapping[str, Number]]) -> "Counters":
        """Add another registry (or plain mapping) into this one."""
        values = other._values if isinstance(other, Counters) else other
        for name, amount in values.items():
            self._values[name] = self._values.get(name, 0) + amount
        return self

    def clear(self) -> None:
        self._values.clear()

    def timer(self, name: str) -> "_Timer":
        """Context manager accumulating elapsed wall seconds into ``name``."""
        return _Timer(self, name)

    # -- access ----------------------------------------------------------

    def get(self, name: str, default: Number = 0) -> Number:
        return self._values.get(name, default)

    def __getitem__(self, name: str) -> Number:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return any(self._values.values())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counters):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Counters({self._values!r})"

    def as_dict(self) -> Dict[str, Number]:
        return dict(self._values)

    def delta_since(self, before: Mapping[str, Number]) -> Dict[str, Number]:
        """What changed since a previous :meth:`as_dict` snapshot."""
        return counter_delta(self._values, before)

    # -- pickling (``__slots__`` needs explicit state) -------------------

    def __getstate__(self) -> Dict[str, Number]:
        return self._values

    def __setstate__(self, state: Dict[str, Number]) -> None:
        self._values = state


#: process-wide named registries (see :func:`global_counters`)
_GLOBAL_REGISTRIES: Dict[str, Counters] = {}


def global_counters(namespace: str) -> Counters:
    """A process-wide :class:`Counters` registry for ``namespace``.

    Long-lived components that outlive any single request (the service
    daemon) accumulate lifetime counters here; repeated calls with the
    same namespace return the same instance, so tests and ``/metrics``
    handlers observe exactly what the hot path incremented.
    """
    registry = _GLOBAL_REGISTRIES.get(namespace)
    if registry is None:
        registry = _GLOBAL_REGISTRIES[namespace] = Counters()
    return registry


class _Timer:
    __slots__ = ("_counters", "_name", "_started")

    def __init__(self, counters: Counters, name: str) -> None:
        self._counters = counters
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._counters.incr(self._name, time.perf_counter() - self._started)


__all__ = ["Counters", "counter_delta", "global_counters"]
