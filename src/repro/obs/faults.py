"""Deterministic fault injection for the sweep scheduler.

The fault-tolerance layer in :mod:`repro.tuning.scheduler` is only
trustworthy if every recovery path is *exercised*, not merely written.
This module provides the adversary: a :class:`FaultPlan` that makes
specific tasks misbehave in a completely deterministic way, so the
chaos suite can assert exact retry/timeout/quarantine counters instead
of "it probably recovered".

Three fault kinds cover the three failure modes a pool worker has:

``raise``
    the task raises :class:`FaultInjected` (an ordinary exception the
    worker survives — exercises the retry path);
``hang``
    the task sleeps past any reasonable timeout (exercises the
    deadline kill + retry path);
``kill``
    the worker process exits hard with ``os._exit`` (exercises crash
    detection, respawn, and quarantine accounting).

Faults are keyed by *task index within a batch* and fire only while
``attempt <= fault.attempts``, so a retried task succeeds once its
budget of injected failures is spent.  They are applied only inside
pool workers — the engine's serial fallback path never consults the
plan — which preserves the invariant that a faulted sweep still
completes with results bit-identical to a serial run.

Plans are built programmatically (tests) or parsed from the
``REPRO_FAULTS`` environment variable (CI)::

    REPRO_FAULTS="kill:5,raise:2,sim.hang:9:2,hang=30"

Spec grammar, comma-separated items:

* ``kind:index`` — fault on the task at ``index``, first attempt only;
* ``kind:index:attempts`` — fire on the first ``attempts`` attempts;
* ``stage.kind:index[:attempts]`` — restrict to one stage (``sim`` for
  the measurement stage, ``static`` for the static-metric stage);
* ``hang=SECONDS`` — how long a ``hang`` fault sleeps (default 3600);
* ``seed=N`` plus ``p_raise=F`` / ``p_hang=F`` / ``p_kill=F`` — rate
  faults: each (stage, index) pair is hashed with the seed into a
  uniform fraction and faulted when it falls under the cumulative
  rates.  Deterministic for a given seed, no task count needed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Stage names used by the scheduler (and the spec grammar).
SIMULATE_STAGE = "sim"
SIMULATE_GROUP_STAGE = "sim_group"
STATIC_STAGE = "static"
_STAGES = (SIMULATE_STAGE, SIMULATE_GROUP_STAGE, STATIC_STAGE)

#: Exit status used by ``kill`` faults — distinctive in ``ps``/logs.
KILL_EXIT_CODE = 57

_KINDS = ("raise", "hang", "kill")

#: Environment variable the engine reads a default plan from.
FAULTS_ENV = "REPRO_FAULTS"


class FaultInjected(RuntimeError):
    """The exception ``raise`` faults throw inside a worker."""


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec that cannot be parsed (names the item)."""


@dataclasses.dataclass(frozen=True)
class Fault:
    """One injected fault: what happens, to which task, how often."""

    kind: str                    # "raise" | "hang" | "kill"
    index: int                   # task index within the batch
    attempts: int = 1            # fires while attempt <= attempts
    stage: Optional[str] = None  # "sim" | "static" | None (both)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r} (expected one of {_KINDS})"
            )
        if self.stage is not None and self.stage not in _STAGES:
            raise FaultSpecError(
                f"unknown fault stage {self.stage!r} (expected one of {_STAGES})"
            )
        if self.index < 0:
            raise FaultSpecError(f"fault index must be >= 0, got {self.index}")
        if self.attempts < 1:
            raise FaultSpecError(
                f"fault attempts must be >= 1, got {self.attempts}"
            )

    def to_item(self) -> str:
        prefix = f"{self.stage}." if self.stage else ""
        suffix = f":{self.attempts}" if self.attempts != 1 else ""
        return f"{prefix}{self.kind}:{self.index}{suffix}"


class FaultPlan:
    """A deterministic mapping from (stage, task index, attempt) to a fault.

    Picklable and cheap, so it crosses into pool workers with the
    other fork-inherited state.  ``apply`` is the single entry point
    the worker loop calls before running a task.
    """

    def __init__(
        self,
        faults: Sequence[Fault] = (),
        hang_seconds: float = 3600.0,
        seed: int = 0,
        rates: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.faults: Tuple[Fault, ...] = tuple(faults)
        self.hang_seconds = float(hang_seconds)
        self.seed = int(seed)
        self.rates: Dict[str, float] = {}
        for kind, rate in dict(rates or {}).items():
            if kind not in _KINDS:
                raise FaultSpecError(
                    f"unknown rate-fault kind {kind!r} (expected one of {_KINDS})"
                )
            if not 0.0 <= float(rate) <= 1.0:
                raise FaultSpecError(
                    f"rate for {kind!r} must be in [0, 1], got {rate}"
                )
            if rate:
                self.rates[kind] = float(rate)
        self._by_index: Dict[int, List[Fault]] = {}
        for fault in self.faults:
            self._by_index.setdefault(fault.index, []).append(fault)

    # ------------------------------------------------------------------
    # Lookup.

    def fault_for(
        self, stage: str, index: int, attempt: int
    ) -> Optional[Fault]:
        """The fault to inject for this (stage, index, attempt), if any."""
        for fault in self._by_index.get(index, ()):
            if fault.stage not in (None, stage):
                continue
            if attempt <= fault.attempts:
                return fault
        if self.rates and attempt == 1:
            fraction = self._fraction(stage, index)
            floor = 0.0
            for kind in _KINDS:  # fixed order keeps the bands stable
                rate = self.rates.get(kind, 0.0)
                if rate and floor <= fraction < floor + rate:
                    return Fault(kind=kind, index=index, stage=stage)
                floor += rate
        return None

    def _fraction(self, stage: str, index: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{stage}:{index}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def expected(self, stage: str, count: int) -> Dict[str, List[int]]:
        """First-attempt faults over a ``count``-task batch, by kind.

        What the chaos suite compares scheduler counters against: the
        plan is deterministic, so the set of tasks that will fault on
        their first dispatch is known before the sweep runs.
        """
        out: Dict[str, List[int]] = {kind: [] for kind in _KINDS}
        for index in range(count):
            fault = self.fault_for(stage, index, 1)
            if fault is not None:
                out[fault.kind].append(index)
        return out

    def __bool__(self) -> bool:
        return bool(self.faults or self.rates)

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_spec()!r})"

    # ------------------------------------------------------------------
    # Injection (runs inside pool workers).

    def apply(self, stage: str, index: int, attempt: int) -> None:
        """Inject the planned fault, if any, for this task attempt.

        ``raise`` raises :class:`FaultInjected`; ``hang`` sleeps
        ``hang_seconds`` (the scheduler's deadline is expected to kill
        the worker first); ``kill`` exits the process hard, bypassing
        cleanup — exactly what a segfaulted or OOM-killed worker looks
        like from the parent.
        """
        fault = self.fault_for(stage, index, attempt)
        if fault is None:
            return
        if fault.kind == "raise":
            raise FaultInjected(
                f"injected fault: {stage} task {index} attempt {attempt}"
            )
        if fault.kind == "hang":
            time.sleep(self.hang_seconds)
            return
        os._exit(KILL_EXIT_CODE)  # "kill"

    # ------------------------------------------------------------------
    # Spec round trip.

    def to_spec(self) -> str:
        items = [fault.to_item() for fault in self.faults]
        if self.hang_seconds != 3600.0:
            items.append(f"hang={self.hang_seconds:g}")
        if self.rates:
            items.append(f"seed={self.seed}")
            items.extend(
                f"p_{kind}={rate:g}" for kind, rate in sorted(self.rates.items())
            )
        return ",".join(items)

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """Parse the ``REPRO_FAULTS`` grammar; ``None``/blank → no plan."""
        if spec is None or not spec.strip():
            return None
        faults: List[Fault] = []
        hang_seconds = 3600.0
        seed = 0
        rates: Dict[str, float] = {}
        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            if "=" in item:
                name, _, value = item.partition("=")
                name = name.strip()
                try:
                    if name == "hang":
                        hang_seconds = float(value)
                    elif name == "seed":
                        seed = int(value)
                    elif name.startswith("p_"):
                        rates[name[2:]] = float(value)
                    else:
                        raise FaultSpecError(
                            f"unknown fault option {name!r} in {item!r}"
                        )
                except (TypeError, ValueError) as error:
                    if isinstance(error, FaultSpecError):
                        raise
                    raise FaultSpecError(
                        f"malformed fault option {item!r}: {error}"
                    ) from None
                continue
            head, _, rest = item.partition(":")
            stage = None
            if "." in head:
                stage, _, head = head.partition(".")
            if not rest:
                raise FaultSpecError(
                    f"malformed fault item {item!r} "
                    "(expected [stage.]kind:index[:attempts])"
                )
            parts = rest.split(":")
            try:
                index = int(parts[0])
                attempts = int(parts[1]) if len(parts) > 1 else 1
            except ValueError:
                raise FaultSpecError(
                    f"malformed fault item {item!r}: index and attempts "
                    "must be integers"
                ) from None
            faults.append(
                Fault(kind=head, index=index, attempts=attempts, stage=stage)
            )
        return cls(
            faults=faults, hang_seconds=hang_seconds, seed=seed, rates=rates
        )

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None
                 ) -> Optional["FaultPlan"]:
        """Plan described by ``REPRO_FAULTS``, or ``None`` when unset."""
        environ = os.environ if environ is None else environ
        try:
            return cls.from_spec(environ.get(FAULTS_ENV))
        except FaultSpecError as error:
            raise FaultSpecError(f"{FAULTS_ENV}: {error}") from None


__all__ = [
    "FAULTS_ENV",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FaultSpecError",
    "KILL_EXIT_CODE",
    "SIMULATE_GROUP_STAGE",
    "SIMULATE_STAGE",
    "STATIC_STAGE",
]
