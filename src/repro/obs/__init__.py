"""Observability: mergeable counters and lightweight tracing spans.

The subsystem exists to make the harness's self-reported numbers
*true* rather than approximately true:

* :mod:`repro.obs.metrics` — a picklable, mergeable counter registry.
  Process-pool workers measure their own work as counter *deltas* and
  ship them back with each result, so the parent can aggregate exact
  totals instead of losing everything that happened in a forked
  process (see :mod:`repro.tuning.engine`).
* :mod:`repro.obs.trace` — spans (engine batches, simulator stages,
  SM replays) recorded against a global tracer and exported as a
  Chrome-trace JSON (``chrome://tracing`` / Perfetto).  Disabled by
  default with near-zero overhead: the hot paths pay one flag check.
"""

from repro.obs.metrics import Counters, counter_delta
from repro.obs.trace import (
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "Counters",
    "Tracer",
    "counter_delta",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "span",
    "tracing_enabled",
]
