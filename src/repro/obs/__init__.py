"""Observability: mergeable counters and lightweight tracing spans.

The subsystem exists to make the harness's self-reported numbers
*true* rather than approximately true:

* :mod:`repro.obs.metrics` — a picklable, mergeable counter registry.
  Process-pool workers measure their own work as counter *deltas* and
  ship them back with each result, so the parent can aggregate exact
  totals instead of losing everything that happened in a forked
  process (see :mod:`repro.tuning.engine`).
* :mod:`repro.obs.trace` — spans (engine batches, simulator stages,
  SM replays) recorded against a global tracer and exported as a
  Chrome-trace JSON (``chrome://tracing`` / Perfetto).  Disabled by
  default with near-zero overhead: the hot paths pay one flag check.
* :mod:`repro.obs.faults` — deterministic fault injection for the
  sweep scheduler: a seeded :class:`FaultPlan` makes chosen task
  indices raise, hang, or kill their worker, so every recovery path
  is exercised by the chaos suite instead of trusted.
"""

from repro.obs.faults import (
    FAULTS_ENV,
    Fault,
    FaultInjected,
    FaultPlan,
    FaultSpecError,
)
from repro.obs.metrics import Counters, counter_delta, global_counters
from repro.obs.trace import (
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "Counters",
    "FAULTS_ENV",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FaultSpecError",
    "Tracer",
    "counter_delta",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "global_counters",
    "span",
    "tracing_enabled",
]
