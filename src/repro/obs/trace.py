"""Lightweight tracing spans with a Chrome-trace exporter.

A *span* is a named interval (an engine batch, a compile pass, one SM
replay) recorded against a :class:`Tracer` and exported in the Chrome
trace-event format, so a whole sweep can be opened in
``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_ and
inspected stage by stage.

Overhead discipline
-------------------

Tracing is **off by default** and the hot paths are written so the
disabled case costs one flag check:

* :func:`span` returns a shared no-op context manager when the global
  tracer is disabled — no object allocation, no clock read;
* inner loops (the SM replay) call :func:`current_tracer` once per
  call, get ``None`` when disabled, and skip all bookkeeping;
* nothing here imports anything heavier than ``json``/``time``.

The exporter emits the JSON-object form of the trace-event format
(``{"traceEvents": [...]}``) with ``X`` (complete), ``i`` (instant)
and ``C`` (counter) phases — the subset every viewer understands.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional


class _Span:
    """Context manager recording one complete ("X") event."""

    __slots__ = ("_tracer", "name", "cat", "args", "_started")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._started = 0.0

    def add_args(self, **extra: Any) -> None:
        """Attach outcome details discovered while the span was open."""
        if self.args is None:
            self.args = {}
        self.args.update(extra)

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.complete_event(
            self.name, self._started, cat=self.cat, args=self.args
        )


class _NullSpan:
    """Shared do-nothing span for the disabled-tracing fast path."""

    __slots__ = ()

    def add_args(self, **extra: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Event sink: spans, instants and counter samples.

    Timestamps are microseconds relative to the tracer's construction
    (Chrome-trace convention); ``pid``/``tid`` come from the recording
    process and thread, so pool-worker tracers — if ever enabled there
    — would interleave cleanly in the viewer.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._epoch = time.perf_counter()
        self._events: List[Dict[str, Any]] = []

    # -- state -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def events(self) -> List[Dict[str, Any]]:
        return self._events

    def clear(self) -> None:
        self._events = []

    # -- recording -------------------------------------------------------

    def now(self) -> float:
        """Clock used by manual begin/complete pairs (seconds)."""
        return time.perf_counter()

    def span(self, name: str, cat: str = "repro",
             args: Optional[Dict[str, Any]] = None) -> _Span:
        if not self._enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def complete_event(self, name: str, started: float, cat: str = "repro",
                       args: Optional[Dict[str, Any]] = None,
                       ended: Optional[float] = None) -> None:
        """Record an interval from a :meth:`now` timestamp to now."""
        if not self._enabled:
            return
        if ended is None:
            ended = time.perf_counter()
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": (started - self._epoch) * 1e6,
            "dur": (ended - started) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(self, name: str, cat: str = "repro",
                args: Optional[Dict[str, Any]] = None) -> None:
        if not self._enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": (time.perf_counter() - self._epoch) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, name: str, values: Dict[str, float],
                cat: str = "repro") -> None:
        if not self._enabled:
            return
        self._events.append({
            "name": name,
            "cat": cat,
            "ph": "C",
            "ts": (time.perf_counter() - self._epoch) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": dict(values),
        })

    # -- export ----------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome-trace JSON object."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
        }

    def export(self, path: str) -> None:
        """Write the trace to ``path`` (loadable in Perfetto as-is)."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, indent=1, default=repr)
            handle.write("\n")


# ----------------------------------------------------------------------
# Global tracer: one per process, disabled until someone opts in
# (``python -m repro.harness --trace out.json`` does).

_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (enabled or not)."""
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER._enabled


def current_tracer() -> Optional[Tracer]:
    """The global tracer when enabled, else ``None`` (hot-path form)."""
    tracer = _TRACER
    return tracer if tracer._enabled else None


def enable_tracing(fresh: bool = True) -> Tracer:
    """Turn the global tracer on (optionally clearing prior events)."""
    if fresh:
        _TRACER.clear()
    _TRACER.enable()
    return _TRACER


def disable_tracing() -> None:
    _TRACER.disable()


def span(name: str, cat: str = "repro", **args: Any):
    """Record a span against the global tracer; no-op when disabled.

    Usage::

        with span("engine.simulate_batch", configs=len(configs)) as sp:
            ...
            sp.add_args(missing=len(missing))
    """
    tracer = _TRACER
    if not tracer._enabled:
        return _NULL_SPAN
    return _Span(tracer, name, cat, args or None)


__all__ = [
    "Tracer",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "span",
    "tracing_enabled",
]
