"""Configuration spaces: the discrete optimization spaces of Table 4."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple


class Configuration(Mapping):
    """One point of an optimization space: immutable, hashable.

    Identity (hashing, equality, ordering of ``repr``) lives in the
    sorted ``_items`` tuple; ``_index`` is a derived dict giving O(1)
    key lookups — every ``build_kernel`` reads a handful of parameters,
    so the previous linear scan was a measurable slice of the static
    stage.
    """

    __slots__ = ("_items", "_index")

    def __init__(self, values: Mapping[str, Any]) -> None:
        items = tuple(sorted(values.items()))
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_index", dict(items))

    def __getitem__(self, key: str) -> Any:
        return self._index[key]

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Configuration) and self._items == other._items

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in self._items)
        return f"Configuration({inner})"

    def replace(self, **updates: Any) -> "Configuration":
        merged = dict(self._items)
        merged.update(updates)
        return Configuration(merged)


class ConfigSpace:
    """A named cross product of parameter values, optionally filtered.

    The paper's spaces are cross products of optimization parameters
    with hardware-invalid points removed; ``is_valid`` expresses the
    cheap, structural part of that filter (e.g. threads per block over
    512).  Resource-driven invalidity (register overflow) surfaces
    later, at metric-evaluation time, exactly as it does under nvcc.
    """

    def __init__(
        self,
        parameters: Dict[str, Sequence[Any]],
        is_valid=None,
    ) -> None:
        if not parameters:
            raise ValueError("a configuration space needs parameters")
        for name, values in parameters.items():
            if not values:
                raise ValueError(f"parameter {name!r} has no values")
        self.parameters = {name: list(values) for name, values in parameters.items()}
        self._is_valid = is_valid

    def __iter__(self) -> Iterator[Configuration]:
        names = list(self.parameters)
        for combo in itertools.product(*(self.parameters[n] for n in names)):
            config = Configuration(dict(zip(names, combo)))
            if self._is_valid is None or self._is_valid(config):
                yield config

    def configurations(self) -> List[Configuration]:
        return list(self)

    @property
    def raw_size(self) -> int:
        total = 1
        for values in self.parameters.values():
            total *= len(values)
        return total

    def __len__(self) -> int:
        return sum(1 for _ in self)


def cartesian(parameters: Dict[str, Sequence[Any]]) -> Tuple[Configuration, ...]:
    """All configurations of an unfiltered space."""
    return tuple(ConfigSpace(parameters))
