"""Search-space pruning: Pareto subsets and search strategies (Section 5)."""

from repro.tuning.cluster import cluster_by_metrics, cluster_representatives
from repro.tuning.engine import (
    EngineStats,
    ExecutionEngine,
    config_key,
    resolve_workers,
)
from repro.tuning.pareto import dominates, pareto_front, pareto_indices
from repro.tuning.scheduler import (
    RetryPolicy,
    SchedulerError,
    SchedulerStats,
    SweepScheduler,
)
from repro.tuning.search import (
    EvaluatedConfig,
    SearchResult,
    evaluate_all,
    full_exploration,
    pareto_cluster_search,
    pareto_search,
    random_search,
)
from repro.tuning.space import ConfigSpace, Configuration, cartesian
from repro.tuning.strategies import (
    StrategyError,
    StrategySpec,
    adaptive_strategy_names,
    build_strategy,
    selection_strategy_names,
    strategy_names,
)

__all__ = [
    "ConfigSpace",
    "Configuration",
    "EngineStats",
    "EvaluatedConfig",
    "ExecutionEngine",
    "RetryPolicy",
    "SchedulerError",
    "SchedulerStats",
    "SearchResult",
    "StrategyError",
    "StrategySpec",
    "SweepScheduler",
    "adaptive_strategy_names",
    "build_strategy",
    "cartesian",
    "cluster_by_metrics",
    "cluster_representatives",
    "config_key",
    "dominates",
    "evaluate_all",
    "resolve_workers",
    "full_exploration",
    "pareto_cluster_search",
    "pareto_front",
    "pareto_indices",
    "pareto_search",
    "random_search",
    "selection_strategy_names",
    "strategy_names",
]
