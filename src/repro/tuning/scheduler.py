"""Fault-tolerant work-queue scheduler for sweep fan-out.

The execution engine's original pool fan-out was one-shot
``executor.map``: a single stuck worker stalled the whole batch
forever, and a single crashed worker broke the executor and dumped
every remaining configuration onto the serial fallback path.  For the
full-space sweeps that validate the paper's pruning claim (hundreds of
simulations per application) that is the difference between a sweep
that finishes and one that has to be babysat.

:class:`SweepScheduler` replaces the one-shot map with a work queue:

* **per-task dispatch** — each worker holds at most one task, sent
  over a dedicated pipe, so results stream back in completion order
  and a slow task never blocks the recording of finished ones;
* **deadlines** — a task that exceeds ``RetryPolicy.timeout_seconds``
  gets its worker killed and is retried elsewhere;
* **bounded retry with deterministic backoff** — failed tasks re-enter
  the queue after an exponential backoff whose jitter is *seeded*
  (hash of policy seed, task key, and attempt), so two runs of the
  same sweep schedule retries identically;
* **worker health** — a worker slot that fails
  ``RetryPolicy.max_worker_failures`` tasks is quarantined and the
  pool resized instead of burning respawns forever; a crashed worker
  below the threshold is respawned in place;
* **graceful degradation** — only tasks that exhaust their retry
  budget (or outlive the whole pool) are handed back for serial
  execution, where a real error finally surfaces to the caller;
* **exact telemetry** — every retry, timeout, crash, quarantine, and
  backoff second is counted in :class:`SchedulerStats`, in the parent
  process, so the totals are exact under any worker count.

Fault injection (:mod:`repro.obs.faults`) threads through the worker
entry point: when a :class:`~repro.obs.faults.FaultPlan` is supplied,
workers consult it before running each task, which lets the chaos
suite exercise every one of the recovery paths above deterministically.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import heapq
import logging
import multiprocessing
import multiprocessing.connection
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.occupancy import LaunchError
from repro.obs.faults import (
    FaultPlan,
    FaultInjected,
    SIMULATE_GROUP_STAGE,
    SIMULATE_STAGE,
    STATIC_STAGE,
)
from repro.obs.metrics import counter_delta

logger = logging.getLogger(__name__)

#: Re-exported so engine code imports stages from one place.
SIMULATE = SIMULATE_STAGE
#: Batched measurement: the payload is a *list* of configurations
#: sharing a trace program, the result a list of seconds in payload
#: order (see Application.simulate_group) — one dispatch, one pickle
#: round-trip, and one compiled trace per group.
SIMULATE_GROUP = SIMULATE_GROUP_STAGE
STATIC = STATIC_STAGE

#: ``(index, payload, counter_delta)`` streamed to the caller as each
#: task completes.
OnResult = Callable[[int, Any, Optional[Dict[str, float]]], None]

#: Reserved counter-delta key carrying a worker's persistent-store
#: backlog (a list of ``(tier, key, obj)`` entries) back to the parent.
#: Workers never write the store themselves — the parent absorbs these
#: and owns all disk write-back, so one process serializes the writes.
STORE_DELTA_KEY = "__store_entries__"


class SchedulerError(RuntimeError):
    """The scheduler could not be started (worker spawn failed)."""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Retry, timeout, and worker-health knobs for one scheduler.

    ``timeout_seconds=None`` disables deadlines (a hung worker then
    stalls its own slot until the sweep ends, but crash detection
    still works — worker death is observed as pipe EOF, not polled).
    The backoff for attempt ``n`` is ``base * factor**(n-1)`` capped at
    ``backoff_cap``, stretched by a deterministic jitter fraction in
    ``[0, jitter]`` derived from ``seed``, the task key, and the
    attempt number — reproducible, but de-synchronized across tasks.
    """

    max_attempts: int = 3
    timeout_seconds: Optional[float] = 600.0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    max_worker_failures: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive or None, "
                f"got {self.timeout_seconds}"
            )
        if self.max_worker_failures < 1:
            raise ValueError(
                f"max_worker_failures must be >= 1, "
                f"got {self.max_worker_failures}"
            )

    @classmethod
    def from_env(cls, environ=None, **overrides) -> "RetryPolicy":
        """Policy with ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``
        applied (explicit ``overrides`` win).

        Malformed values raise :class:`ValueError` naming the variable
        — the same actionable-diagnostics contract as
        ``resolve_workers``.
        """
        environ = os.environ if environ is None else environ
        kwargs: Dict[str, Any] = {}
        timeout = environ.get("REPRO_TASK_TIMEOUT")
        if timeout is not None:
            text = timeout.strip().lower()
            if text in ("", "0", "none", "off"):
                kwargs["timeout_seconds"] = None
            else:
                try:
                    kwargs["timeout_seconds"] = float(text)
                except ValueError:
                    raise ValueError(
                        f"REPRO_TASK_TIMEOUT={timeout!r} is not a valid "
                        "timeout (expected seconds, or 'none' to disable)"
                    ) from None
        retries = environ.get("REPRO_TASK_RETRIES")
        if retries:
            try:
                kwargs["max_attempts"] = int(retries)
            except ValueError:
                raise ValueError(
                    f"REPRO_TASK_RETRIES={retries!r} is not a valid "
                    "attempt count (expected an integer)"
                ) from None
        kwargs.update(overrides)
        return cls(**kwargs)

    def backoff_seconds(self, task_key: str, attempt: int) -> float:
        """Deterministic jittered backoff before retry ``attempt + 1``.

        The cap bounds the *final* sleep, not the pre-jitter base —
        capping before stretching let jitter push delays up to
        ``backoff_cap * (1 + jitter)``, which defeats the point of a
        cap (it exists so a sweep's worst-case retry stall is known).
        """
        base = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        digest = hashlib.sha256(
            f"{self.seed}:{task_key}:{attempt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return min(self.backoff_cap, base * (1.0 + self.jitter * fraction))


@dataclasses.dataclass
class SchedulerStats:
    """Fault-tolerance telemetry, counted in the parent (always exact)."""

    dispatched: int = 0           # task attempts sent to workers
    task_retries: int = 0         # re-queues after a failed attempt
    task_timeouts: int = 0        # deadline kills
    task_errors: int = 0          # exceptions returned by workers
    worker_crashes: int = 0       # worker processes that died on a task
    workers_quarantined: int = 0  # slots retired for repeated failure
    backoff_seconds: float = 0.0  # total scheduled retry delay

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# Worker side.


def _cache_for(simulate, evaluate):
    """The simulator cache owned by the task callables, if any.

    Mirrors the old pool initializer: when the callables are bound
    methods of an :class:`~repro.apps.base.Application`, the worker's
    forked copy of the app carries its own ``SimulationCache`` whose
    per-task counter deltas ride back with each result.
    """
    owner = getattr(simulate, "__self__", None)
    if owner is None:
        owner = getattr(evaluate, "__self__", None)
    return getattr(owner, "sim_cache", None)


def _group_simulate_for(simulate):
    """The batched-measurement callable behind ``simulate``, if any.

    ``SIMULATE_GROUP`` tasks resolve ``simulate_group`` from the same
    application object the scalar ``simulate`` is bound to, so the
    scheduler's spawn plumbing is unchanged and workers that predate
    grouping simply never receive group tasks.
    """
    owner = getattr(simulate, "__self__", None)
    return getattr(owner, "simulate_group", None)


def _run_task(stage, index, attempt, payload, simulate, evaluate, plan, cache):
    """Execute one task in a worker; never raises (returns a message).

    ``ok`` messages carry ``(payload_out, counter_delta)``; ``error``
    messages carry the exception text.  :class:`LaunchError` from the
    static stage is a *result* (an invalid configuration), not a
    failure — exactly the distinction the serial path makes.
    """
    if plan is not None:
        try:
            plan.apply(stage, index, attempt)
        except FaultInjected as error:
            return ("error", index, attempt, str(error), None)
    before = cache.counters() if cache is not None else None
    try:
        if stage == SIMULATE:
            result = simulate(payload)
        elif stage == SIMULATE_GROUP:
            group_simulate = _group_simulate_for(simulate)
            if group_simulate is None:
                raise TypeError(
                    "SIMULATE_GROUP task but the simulate callable is "
                    "not bound to an object with simulate_group"
                )
            result = group_simulate(payload)
        else:
            try:
                result = (evaluate(payload), None)
            except LaunchError as error:
                result = (None, str(error))
    except BaseException as error:  # the worker itself must survive
        return (
            "error", index, attempt,
            f"{type(error).__name__}: {error}", None,
        )
    delta = counter_delta(cache.counters(), before) if cache is not None else None
    if cache is not None and getattr(cache, "store", None) is not None:
        backlog = cache.drain_store_backlog()
        if backlog:
            delta = dict(delta or {})
            delta[STORE_DELTA_KEY] = backlog
    return ("ok", index, attempt, result, delta)


def _worker_main(worker_id, task_reader, result_writer,
                 simulate, evaluate, fault_spec):
    """Worker loop: recv task, run, send result, repeat until sentinel."""
    plan = FaultPlan.from_spec(fault_spec)
    cache = _cache_for(simulate, evaluate)
    if cache is not None and hasattr(cache, "set_store_write_back"):
        # Workers read the store through but never write it: fresh
        # artifacts go to the backlog and ride home with each result.
        cache.set_store_write_back(False)
    while True:
        try:
            message = task_reader.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        stage, index, attempt, payload = message
        outcome = _run_task(
            stage, index, attempt, payload, simulate, evaluate, plan, cache
        )
        try:
            result_writer.send(outcome)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------------------
# Parent side.


class _Worker:
    """One worker slot: process, pipes, and its failure history.

    ``failures`` survives respawns — it tracks the *slot*, not the
    process, so a task mix that keeps killing fresh processes still
    converges on quarantine.
    """

    __slots__ = ("id", "process", "task_conn", "result_conn",
                 "failures", "inflight", "deadline")

    def __init__(self, id, process, task_conn, result_conn, failures=0):
        self.id = id
        self.process = process
        self.task_conn = task_conn
        self.result_conn = result_conn
        self.failures = failures
        self.inflight: Optional[int] = None
        self.deadline: Optional[float] = None


class SweepScheduler:
    """Work-queue scheduler over a pool of pipe-fed worker processes.

    One scheduler serves both engine stages (``SIMULATE`` and
    ``STATIC`` tasks share the worker pool and its health history) and
    persists across batches — workers stay warm like the executor they
    replace.  ``close()`` (or the context manager) tears the pool down.
    """

    def __init__(
        self,
        workers: int,
        simulate,
        evaluate=None,
        policy: Optional[RetryPolicy] = None,
        fault_spec: Optional[str] = None,
        context=None,
    ) -> None:
        self.requested_workers = max(1, int(workers))
        self.policy = policy if policy is not None else RetryPolicy()
        self._simulate = simulate
        self._evaluate = evaluate
        self._fault_spec = fault_spec
        # fork keeps the callables reachable without pickling them
        # through the task pipes (they are inherited at spawn time).
        self._ctx = context if context is not None else (
            multiprocessing.get_context("fork")
        )
        self._workers: List[_Worker] = []
        self._next_worker_id = 0
        self._started = False
        self._closed = False
        self.stats = SchedulerStats()
        self.last_failure: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle.

    @property
    def active_workers(self) -> int:
        return len(self._workers)

    def start(self) -> None:
        """Spawn the worker pool (idempotent).

        Raises :class:`SchedulerError` when no worker can be spawned
        at all; a *partial* pool (some spawns failed) starts degraded
        but working.
        """
        if self._started:
            return
        errors: List[str] = []
        spawned: List[_Worker] = []
        for _ in range(self.requested_workers):
            try:
                spawned.append(self._spawn_worker())
            except (OSError, ValueError) as error:
                errors.append(str(error))
        if not spawned:
            raise SchedulerError(
                f"could not spawn any of {self.requested_workers} "
                f"workers: {errors[0] if errors else 'unknown error'}"
            )
        if errors:
            logger.warning(
                "only %d of %d workers could be spawned (%s)",
                len(spawned), self.requested_workers, errors[0],
            )
        self._workers = spawned
        self._started = True

    def _spawn_worker(self, failures: int = 0) -> _Worker:
        task_reader, task_writer = self._ctx.Pipe(duplex=False)
        try:
            result_reader, result_writer = self._ctx.Pipe(duplex=False)
        except BaseException:
            task_reader.close()
            task_writer.close()
            raise
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_reader, result_writer,
                  self._simulate, self._evaluate, self._fault_spec),
            daemon=True,
            name=f"repro-sweep-{worker_id}",
        )
        try:
            process.start()
        except BaseException:
            # A failed respawn must not leak its slot's pipes: a
            # long-lived scheduler that retries spawns for weeks would
            # otherwise bleed four descriptors per attempt.
            for conn in (task_reader, task_writer,
                         result_reader, result_writer):
                conn.close()
            raise
        # Close the child's pipe ends in the parent so a dead worker
        # shows up as EOF on result_conn instead of a silent stall.
        task_reader.close()
        result_writer.close()
        return _Worker(worker_id, process, task_writer, result_reader,
                       failures=failures)

    def begin_request(self) -> None:
        """Reset per-request slot health and refill the pool.

        A resident scheduler (the daemon mode) serves many unrelated
        sweeps; without a request boundary, failure counts leak across
        them — request N's flaky tasks quarantine slots that request
        N+1 never got to use, and slots lost to quarantine or failed
        respawns stay dead forever.  Called between requests this

        * zeroes every surviving slot's failure count (health is
          per-request, not per-daemon-lifetime),
        * reaps slots whose worker died idle since the last request,
        * respawns slots lost to quarantine, crashes, or respawn
          failures, restoring the pool to ``requested_workers``.

        Lifetime totals in :attr:`stats` are deliberately untouched —
        they feed ``/metrics``; per-request deltas are the caller's
        job (see ``EngineStats.delta_since``).  A no-op before
        ``start()`` or after ``close()``.
        """
        if self._closed or not self._started:
            return
        retained: List[_Worker] = []
        for worker in self._workers:
            if worker.process.is_alive():
                worker.failures = 0
                worker.inflight = None
                worker.deadline = None
                retained.append(worker)
            else:
                self._stop_worker(worker, graceful=False)
        self._workers = retained
        while len(self._workers) < self.requested_workers:
            try:
                self._workers.append(self._spawn_worker())
            except (OSError, ValueError) as error:
                logger.warning(
                    "could not refill the worker pool to %d slots "
                    "(at %d): %s", self.requested_workers,
                    len(self._workers), error,
                )
                break
        self.last_failure = None

    def close(self) -> None:
        """Stop every worker (sentinel first, force if needed)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            self._stop_worker(worker, graceful=True)
        self._workers = []

    def __enter__(self) -> "SweepScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _stop_worker(self, worker: _Worker, graceful: bool) -> None:
        if graceful and worker.process.is_alive():
            try:
                worker.task_conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            worker.process.join(timeout=1.0)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=1.0)
        worker.task_conn.close()
        worker.result_conn.close()

    # ------------------------------------------------------------------
    # The work queue.

    def run(
        self,
        stage: str,
        payloads: Sequence[Any],
        on_result: OnResult,
    ) -> List[int]:
        """Run every payload through the pool; stream results back.

        ``on_result(index, payload_out, counter_delta)`` is invoked in
        *completion* order as each task finishes — callers that flush
        checkpoints inside the callback get genuinely incremental
        persistence instead of end-of-batch dumps.

        Returns the sorted indices of tasks that could not be completed
        in the pool (retry budget exhausted, or the pool collapsed);
        the caller runs those serially, where a real failure finally
        surfaces as an ordinary exception.
        """
        if not payloads:
            return []
        self.start()
        policy = self.policy
        total = len(payloads)
        pending: collections.deque = collections.deque(range(total))
        waiting: List[Tuple[float, int]] = []  # (ready_time, index) heap
        attempts = [0] * total
        completed = 0
        abandoned: List[int] = []

        while completed + len(abandoned) < total:
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                pending.append(heapq.heappop(waiting)[1])

            if not self._workers:
                # Pool collapsed (every slot quarantined): everything
                # still queued degrades to the caller's serial path.
                abandoned.extend(pending)
                pending.clear()
                abandoned.extend(index for _, index in waiting)
                waiting.clear()
                break

            self._dispatch(stage, payloads, pending, waiting, abandoned,
                           attempts)
            inflight = [w for w in self._workers if w.inflight is not None]
            if not inflight:
                if waiting:
                    delay = max(0.0, waiting[0][0] - time.monotonic())
                    time.sleep(min(delay, 0.5))
                continue

            completed += self._collect(
                stage, inflight, waiting, abandoned, attempts, on_result
            )
        return sorted(abandoned)

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, stage, payloads, pending, waiting, abandoned,
                  attempts) -> None:
        for worker in list(self._workers):
            if not pending:
                return
            if worker.inflight is not None:
                continue
            if not worker.process.is_alive():
                # Died idle (e.g. killed between tasks); replace the
                # slot without charging any task for it.
                self._remove_worker(worker, respawn=True)
                continue
            index = pending.popleft()
            attempts[index] += 1
            self.stats.dispatched += 1
            try:
                worker.task_conn.send(
                    (stage, index, attempts[index], payloads[index])
                )
            except (BrokenPipeError, OSError):
                self._worker_failed(worker, alive=False)
                self._requeue(stage, index, attempts, waiting, abandoned,
                              "worker died before dispatch")
                continue
            timeout = self.policy.timeout_seconds
            worker.inflight = index
            worker.deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )

    # -- collection ------------------------------------------------------

    def _collect(self, stage, inflight, waiting, abandoned, attempts,
                 on_result) -> int:
        """Wait for one scheduling event; returns completed-task count."""
        next_events = [w.deadline for w in inflight if w.deadline is not None]
        if waiting:
            next_events.append(waiting[0][0])
        timeout = None
        if next_events:
            timeout = max(0.0, min(next_events) - time.monotonic())
        ready = multiprocessing.connection.wait(
            [w.result_conn for w in inflight], timeout=timeout
        )
        by_conn = {w.result_conn: w for w in inflight}
        completed = 0
        for conn in ready:
            worker = by_conn[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                index = worker.inflight
                self.stats.worker_crashes += 1
                logger.warning(
                    "worker %d crashed on %s task %d (attempt %d)",
                    worker.id, stage, index, attempts[index],
                )
                self._worker_failed(worker, alive=False)
                self._requeue(stage, index, attempts, waiting, abandoned,
                              "worker crashed")
                continue
            kind, index, _attempt, payload_out, delta = message
            if worker.inflight != index:
                continue  # stale result from a superseded attempt
            worker.inflight = None
            worker.deadline = None
            if kind == "ok":
                completed += 1
                on_result(index, payload_out, delta)
            else:
                self.stats.task_errors += 1
                self.last_failure = str(payload_out)
                logger.warning(
                    "%s task %d failed in worker %d (attempt %d): %s",
                    stage, index, worker.id, attempts[index], payload_out,
                )
                self._worker_failed(worker, alive=True)
                self._requeue(stage, index, attempts, waiting, abandoned,
                              str(payload_out))

        # Deadline sweeps: anything still inflight past its deadline
        # costs the worker its process (it may be wedged in C code or a
        # syscall — cooperative cancellation cannot reach it).
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.inflight is None or worker.deadline is None:
                continue
            if now < worker.deadline:
                continue
            index = worker.inflight
            self.stats.task_timeouts += 1
            logger.warning(
                "%s task %d timed out after %.1fs in worker %d; "
                "killing the worker and retrying",
                stage, index, self.policy.timeout_seconds, worker.id,
            )
            self._worker_failed(worker, alive=False, kill=True)
            self._requeue(stage, index, attempts, waiting, abandoned,
                          "task timed out")
        return completed

    # -- failure accounting ----------------------------------------------

    def _requeue(self, stage, index, attempts, waiting, abandoned,
                 reason: str) -> None:
        self.last_failure = reason
        if attempts[index] >= self.policy.max_attempts or not self._workers:
            abandoned.append(index)
            return
        self.stats.task_retries += 1
        delay = self.policy.backoff_seconds(
            f"{stage}:{index}", attempts[index]
        )
        self.stats.backoff_seconds += delay
        heapq.heappush(waiting, (time.monotonic() + delay, index))

    def _worker_failed(self, worker: _Worker, alive: bool,
                       kill: bool = False) -> None:
        """Charge a failure to a slot; quarantine or respawn it."""
        worker.failures += 1
        worker.inflight = None
        worker.deadline = None
        if not alive or kill:
            self._remove_worker(
                worker,
                respawn=worker.failures < self.policy.max_worker_failures,
                force=kill,
            )
        elif worker.failures >= self.policy.max_worker_failures:
            self._remove_worker(worker, respawn=False)

    def _remove_worker(self, worker: _Worker, respawn: bool,
                       force: bool = False) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        # A timed-out worker may be wedged; skip the sentinel handshake
        # and terminate it outright.
        self._stop_worker(
            worker, graceful=not force and worker.process.is_alive()
        )
        if respawn:
            try:
                self._workers.append(
                    self._spawn_worker(failures=worker.failures)
                )
            except (OSError, ValueError) as error:
                logger.warning(
                    "could not respawn worker slot (was worker %d): %s",
                    worker.id, error,
                )
        else:
            self.stats.workers_quarantined += 1
            logger.warning(
                "worker %d quarantined after %d failed tasks; "
                "pool resized to %d worker(s)",
                worker.id, worker.failures, len(self._workers),
            )


__all__ = [
    "RetryPolicy",
    "SchedulerError",
    "SchedulerStats",
    "STORE_DELTA_KEY",
    "SweepScheduler",
    "SIMULATE",
    "SIMULATE_GROUP",
    "STATIC",
]
