"""Shared evaluation cache and parallel execution engine (the tuner's core).

The paper's contribution is avoiding wasted measurement; the engine
applies the same discipline to the harness itself.  Every search
strategy used to walk the configuration space independently: a
multi-strategy experiment evaluated the static metrics once *per
strategy* and re-simulated configurations another strategy had already
timed.  The :class:`ExecutionEngine` owns the space instead:

* static metrics are computed exactly once per configuration and
  memoized (``Configuration`` is immutable and hashable — the cache is
  a plain dict keyed by the configuration itself);
* ``simulate(config)`` results are memoized the same way, so no
  configuration is ever measured twice, no matter how many strategies
  ask for it;
* cache misses — in *both* stages — fan out across a fault-tolerant
  work-queue scheduler (:class:`~repro.tuning.scheduler.SweepScheduler`)
  when ``workers > 1``: per-task dispatch with a configurable timeout,
  bounded retry with deterministic backoff, worker quarantine, and
  serial fallback only for tasks that exhaust their retry budget.
  Results are keyed by configuration and re-assembled in request
  order, so ``workers=4`` is bit-identical to ``workers=1`` — results
  *and* telemetry counters — even under injected faults (see
  :mod:`repro.obs.faults`);
* an opt-in JSON checkpoint (format version 2) persists measured
  times *and* static-stage results on disk, flushed incrementally as
  results stream in (every ``checkpoint_interval`` new results), so an
  interrupted or killed sweep resumes losslessly; a truncated or
  corrupt checkpoint is detected, warned about, and discarded — the
  sweep restarts cleanly instead of crashing on a raw decode error;
* telemetry (evaluated counts, cache hits, wall time per stage,
  retries/timeouts/quarantines) is recorded on :class:`EngineStats`
  and surfaced by the harness report.  Pool workers return a counter
  *delta* with every successful result, so simulator-cache telemetry
  is exact for any worker count — not just in serial mode;
* a scheduler that cannot be started, or whose entire worker pool is
  quarantined away, degrades to in-process execution *loudly*: the
  degradation is counted (``EngineStats.pool_fallbacks``) with its
  reason, and a warning is logged.

The search strategies in :mod:`repro.tuning.search` accept an engine;
their original ``(configs, evaluate, simulate)`` signatures remain as
thin wrappers that build a private single-worker engine.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.occupancy import LaunchError
from repro.metrics.model import MetricReport, report_from_json, report_to_json
from repro.obs.faults import FAULTS_ENV, FaultPlan
from repro.obs.metrics import Counters
from repro.obs.trace import span
from repro.store import ResultStore, atomic_write_text, resolve_store
from repro.tuning.scheduler import (
    SIMULATE,
    SIMULATE_GROUP,
    STATIC,
    STORE_DELTA_KEY,
    RetryPolicy,
    SchedulerError,
    SweepScheduler,
)
from repro.tuning.space import Configuration

logger = logging.getLogger(__name__)

Evaluate = Callable[[Configuration], MetricReport]
Simulate = Callable[[Configuration], float]

#: A static-stage cache entry: (metrics, invalid_reason) — exactly one
#: of the two is populated.
StaticEntry = Tuple[Optional[MetricReport], Optional[str]]

CHECKPOINT_VERSION = 2
#: Version-1 checkpoints (times only, no "static" section) still load.
SUPPORTED_CHECKPOINT_VERSIONS = frozenset({1, CHECKPOINT_VERSION})


@dataclasses.dataclass
class EvaluatedConfig:
    """One configuration's static metrics and (optional) measured time."""

    config: Configuration
    metrics: Optional[MetricReport] = None
    seconds: Optional[float] = None
    invalid_reason: Optional[str] = None

    @property
    def is_valid(self) -> bool:
        return self.invalid_reason is None


def config_key(config: Configuration) -> str:
    """Stable string key for a configuration (the checkpoint format).

    Sorted-key JSON of the parameter mapping; values outside the JSON
    types fall back to ``repr``.  In memory the engine keys caches by
    the (hashable) configuration itself — this key only exists so
    checkpoints survive process boundaries.
    """
    return json.dumps(dict(config), sort_keys=True, default=repr)


class _CorruptCheckpoint(Exception):
    """Internal marker: the checkpoint file cannot be trusted."""


@dataclasses.dataclass
class EngineStats:
    """Telemetry for one engine: counts, cache hits, per-stage wall time."""

    workers: int = 1
    static_evaluations: int = 0      # underlying evaluate() calls
    static_cache_hits: int = 0       # evaluate requests served from memory
    simulations: int = 0             # underlying simulate() calls
    simulation_cache_hits: int = 0   # simulate requests served from memory
    checkpoint_hits: int = 0         # measured times restored from disk
    checkpoint_static_hits: int = 0  # static results restored from disk
    checkpoint_corrupt: int = 0      # corrupt checkpoints discarded on load
    evaluate_seconds: float = 0.0    # wall time in the static stage
    simulate_seconds: float = 0.0    # wall time in the measurement stage
    pool_batches: int = 0            # batches dispatched to the pool
    pool_fallbacks: int = 0          # pool -> serial degradations
    pool_fallback_reason: Optional[str] = None  # why the last one happened

    # Fault-tolerance telemetry, mirrored from SchedulerStats after
    # every pooled batch.  These are counted in the parent process, so
    # they are exact under any worker count and match an injected
    # FaultPlan deterministically (pinned by the chaos suite).
    task_retries: int = 0            # task attempts re-queued after failure
    task_timeouts: int = 0           # deadline kills (hung tasks)
    task_errors: int = 0             # exceptions returned by workers
    worker_crashes: int = 0          # worker processes that died on a task
    workers_quarantined: int = 0     # worker slots retired for repeat failure
    serial_fallback_tasks: int = 0   # tasks that exhausted pool retries
    backoff_seconds: float = 0.0     # total scheduled retry delay

    # Content-addressed simulator cache telemetry (see
    # repro.sim.fingerprint).  In-process work is mirrored from the
    # app's SimulationCache after each measurement batch; pool workers
    # return a per-task counter delta with every result, so these
    # totals are exact for any worker count.
    fingerprint_resource_hits: int = 0   # compile passes reused across configs
    fingerprint_trace_hits: int = 0      # warp traces reused across configs
    fingerprint_sm_hits: int = 0         # SM replays reused across configs
    compile_hits: int = 0                # static reports reused across configs
    compile_evaluations: int = 0         # full static compiles performed
    waves_simulated: int = 0             # full SM waves actually replayed
    blocks_replayed: int = 0             # blocks through the event loop
    blocks_extrapolated: int = 0         # blocks projected after convergence
    blocks_resident: int = 0             # sum of per-replay residencies
    events_replayed: int = 0             # dynamic trace events replayed

    # Persistent result-store telemetry (see repro.store).  Mirrored
    # from the SimulationCache like the fingerprint counters above;
    # all zero when no store is attached.
    store_hits: int = 0                  # artifacts read from disk
    store_misses: int = 0                # disk lookups that fell through
    store_evictions: int = 0             # entries dropped by the LRU bound
    store_corrupt: int = 0               # damaged entries dropped on read
    store_bulk_reads: int = 0            # amortized load_many batches
    store_bytes_verified: int = 0        # payload bytes sha256-checked on read

    @property
    def cache_hits(self) -> int:
        return self.static_cache_hits + self.simulation_cache_hits

    @property
    def fingerprint_hits(self) -> int:
        return (
            self.fingerprint_resource_hits
            + self.fingerprint_trace_hits
            + self.fingerprint_sm_hits
        )

    @property
    def fault_recoveries(self) -> int:
        """Failed task attempts the scheduler absorbed without losing work."""
        return self.task_errors + self.task_timeouts + self.worker_crashes

    def as_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["cache_hits"] = self.cache_hits
        out["fingerprint_hits"] = self.fingerprint_hits
        out["fault_recoveries"] = self.fault_recoveries
        return out

    def snapshot(self) -> "EngineStats":
        """A detached copy (the ``begin_request`` baseline)."""
        return dataclasses.replace(self)

    def delta_since(self, before: "EngineStats") -> Dict[str, Any]:
        """Per-request counter deltas against an earlier snapshot.

        A resident engine's counters are lifetime totals; a service
        reporting per-sweep telemetry subtracts the snapshot taken at
        the request boundary.  Numeric counters are differenced
        (derived sums like ``cache_hits`` difference exactly, being
        linear); ``workers`` and ``pool_fallback_reason`` describe
        current state and are carried through as-is.
        """
        current = self.as_dict()
        baseline = before.as_dict()
        delta: Dict[str, Any] = {}
        for name, value in current.items():
            prior = baseline.get(name)
            if name == "workers" or not isinstance(value, (int, float)):
                delta[name] = value
            elif isinstance(prior, (int, float)):
                delta[name] = value - prior
            else:
                delta[name] = value
        return delta

    def summary(self) -> str:
        text = (
            f"workers={self.workers} evals={self.static_evaluations} "
            f"sims={self.simulations} cache_hits={self.cache_hits} "
            f"fp_hits={self.fingerprint_hits} "
            f"compile_hits={self.compile_hits} "
            f"ckpt_hits={self.checkpoint_hits} "
            f"eval_wall={self.evaluate_seconds:.3f}s "
            f"sim_wall={self.simulate_seconds:.3f}s"
        )
        if self.fault_recoveries:
            text += (
                f" retries={self.task_retries}"
                f" timeouts={self.task_timeouts}"
                f" crashes={self.worker_crashes}"
            )
        if self.workers_quarantined:
            text += f" quarantined={self.workers_quarantined}"
        if self.serial_fallback_tasks:
            text += f" serial_fallback_tasks={self.serial_fallback_tasks}"
        if self.pool_fallbacks:
            text += f" pool_fallbacks={self.pool_fallbacks}"
        if self.store_hits or self.store_misses:
            text += (
                f" store_hits={self.store_hits}"
                f" store_misses={self.store_misses}"
            )
            if self.store_evictions:
                text += f" store_evictions={self.store_evictions}"
            if self.store_corrupt:
                text += f" store_corrupt={self.store_corrupt}"
        return text


class ExecutionEngine:
    """Owns one configuration space's evaluation and measurement.

    Parameters
    ----------
    evaluate:
        ``config -> MetricReport``; may raise :class:`LaunchError` for
        configurations that cannot launch (recorded, not propagated).
    simulate:
        ``config -> seconds``; the expensive measurement.
    workers:
        Worker-pool width for sweep fan-out.  ``1`` (default) runs
        everything in-process; ``None`` reads ``REPRO_WORKERS`` from
        the environment (default 1).
    checkpoint_path:
        Optional JSON file persisting measured times and static-stage
        results (format version 2; version-1 files still load).
        Loaded (if it exists) on construction and rewritten atomically
        every ``checkpoint_interval`` new results — results stream in
        completion order, so an interrupt mid-batch loses at most
        ``checkpoint_interval`` results.  A corrupt or truncated file
        is discarded with a warning (``checkpoint_corrupt`` counts it)
        and the sweep restarts fresh.
    checkpoint_interval:
        How many new results (measurements or static evaluations) may
        accumulate before the checkpoint is rewritten mid-batch
        (default 16).
    label:
        Optional tag (usually the application name) stored in the
        checkpoint and validated on resume, so a sweep cannot silently
        resume from another application's times.
    sim_cache:
        Optional :class:`repro.sim.fingerprint.SimulationCache` whose
        counters are mirrored into :attr:`stats` after every
        measurement batch (``for_app`` wires up the application's
        cache automatically).  The engine never reads or writes the
        cache itself — the simulate callable owns it.
    retry_policy:
        Optional :class:`~repro.tuning.scheduler.RetryPolicy` for the
        sweep scheduler (timeout, retry budget, backoff, quarantine
        threshold).  ``None`` builds one from the environment
        (``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``).
    fault_spec:
        Optional deterministic fault-injection spec (see
        :mod:`repro.obs.faults`) threaded into pool workers.  ``None``
        reads ``REPRO_FAULTS`` from the environment; injected faults
        never fire on the in-process serial path, so a faulted sweep
        still completes with bit-identical results.
    store:
        Optional persistent result store layered under ``sim_cache``:
        a :class:`~repro.store.ResultStore`, a directory path, or
        ``None`` to read ``REPRO_STORE`` from the environment (unset
        disables the durable tier).  The engine (parent process) owns
        write-back; pool workers read through and ship fresh artifacts
        home with their counter deltas.  Results are bit-identical
        with the store absent, cold, or warm — it only changes how
        fast they arrive.
    """

    def __init__(
        self,
        evaluate: Evaluate,
        simulate: Simulate,
        workers: Optional[int] = 1,
        checkpoint_path: Optional[str] = None,
        label: Optional[str] = None,
        checkpoint_interval: int = 16,
        sim_cache=None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_spec: Optional[str] = None,
        store: Union[ResultStore, str, None] = None,
        simulate_group: Optional[Callable[[Sequence[Configuration]], List[float]]] = None,
        group_key: Optional[Callable[[Configuration], Any]] = None,
    ) -> None:
        self._evaluate = evaluate
        self._simulate = simulate
        #: batched measurement: ``configs -> [seconds]`` over a group
        #: sharing one trace program (``Application.simulate_group``),
        #: used whenever ``group_key`` assigns two or more pending
        #: configurations the same non-None key.  Results and cache
        #: counters are identical to per-config ``simulate`` calls —
        #: grouping only changes dispatch granularity.
        self._simulate_group = simulate_group
        self._group_key = group_key
        self._sim_cache = sim_cache
        self.store = resolve_store(store)
        if self.store is not None:
            if sim_cache is not None and hasattr(sim_cache, "attach_store"):
                sim_cache.attach_store(self.store, write_back=True)
            else:
                logger.warning(
                    "a result store was configured (%r) but this engine "
                    "has no simulator cache to layer it under; the "
                    "store will be ignored", self.store.path,
                )
                self.store = None
        elif sim_cache is not None:
            # The cache may have arrived with its own store attached
            # (e.g. the application wired one up); surface it.
            self.store = getattr(sim_cache, "store", None)
        self.workers = resolve_workers(workers)
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = max(1, int(checkpoint_interval))
        self._unsaved_results = 0
        self.label = label
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy.from_env()
        )
        if fault_spec is None:
            fault_spec = os.environ.get(FAULTS_ENV) or None
        # Parse eagerly so a malformed REPRO_FAULTS fails at engine
        # construction with a named error, not inside a forked worker.
        FaultPlan.from_spec(fault_spec)
        self.fault_spec = fault_spec
        self.stats = EngineStats(workers=self.workers)
        self._static: Dict[Configuration, StaticEntry] = {}
        #: configurations whose static entry was just produced by a
        #: batch prefill (pool fan-out or checkpoint claim) and not yet
        #: handed to a caller.  The first ``evaluate_config`` for such
        #: a config consumes the mark instead of counting a cache hit,
        #: so EngineStats is bit-identical across worker counts.
        self._static_fresh: set = set()
        self._seconds: Dict[Configuration, float] = {}
        #: times loaded from disk, keyed by config_key, not yet claimed
        self._checkpoint_times: Dict[str, float] = {}
        #: static results loaded from disk, keyed by config_key
        self._checkpoint_static: Dict[str, StaticEntry] = {}
        self._scheduler: Optional[SweepScheduler] = None
        self._pool_broken = False
        #: simulator-cache counter deltas returned by pool workers,
        #: merged into ``stats`` alongside the in-process counters
        self._pool_counters = Counters()
        if checkpoint_path:
            self._load_checkpoint()

    @classmethod
    def for_app(
        cls,
        app,
        workers: Optional[int] = 1,
        checkpoint_path: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_spec: Optional[str] = None,
        store: Union[ResultStore, str, None] = None,
    ) -> "ExecutionEngine":
        """Engine around an :class:`~repro.apps.base.Application`."""
        return cls(
            app.evaluate,
            app.simulate,
            workers=workers,
            checkpoint_path=checkpoint_path,
            label=app.name,
            sim_cache=getattr(app, "sim_cache", None),
            retry_policy=retry_policy,
            fault_spec=fault_spec,
            store=store,
            simulate_group=getattr(app, "simulate_group", None),
            group_key=getattr(app, "trace_group_key", None),
        )

    # ------------------------------------------------------------------
    # Lifecycle.

    def close(self) -> None:
        """Shut down the worker pool (caches and stats survive)."""
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None

    def begin_request(self) -> EngineStats:
        """Mark a request boundary on a resident engine.

        The one-shot CLI builds an engine per sweep, so lifecycle
        state can never leak between unrelated sweeps; a long-lived
        daemon reuses one engine and needs the boundary made explicit:

        * the scheduler's per-slot failure counts reset and lost
          worker slots respawn (``SweepScheduler.begin_request``);
        * a pool broken by a *previous* request gets a fresh chance —
          within one request "never rebuild" still holds, so a sweep
          cannot flap between pooled and serial execution;
        * the returned :class:`EngineStats` snapshot is the baseline
          for this request's ``delta_since`` telemetry.

        Caches (memo tables, simulator cache, store) deliberately
        survive — staying warm across requests is the daemon's point.
        """
        self._pool_broken = False
        if self._scheduler is not None:
            self._scheduler.begin_request()
        return self.stats.snapshot()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Static stage.

    def evaluate_config(self, config: Configuration) -> EvaluatedConfig:
        """One configuration through the static-metric cache."""
        cached = self._static.get(config)
        if cached is None:
            key = config_key(config)
            if key in self._checkpoint_static:
                cached = self._claim_checkpoint_static(config, key)
            else:
                try:
                    cached = (self._evaluate(config), None)
                except LaunchError as error:
                    cached = (None, str(error))
                self._record_static(config, cached)
        elif config in self._static_fresh:
            # First claim of a batch-prefilled result: the evaluation
            # was already counted when the prefill produced it.
            self._static_fresh.discard(config)
        else:
            self.stats.static_cache_hits += 1
        metrics, reason = cached
        return EvaluatedConfig(config=config, metrics=metrics, invalid_reason=reason)

    def evaluate_all(self, configs: Sequence[Configuration]) -> List[EvaluatedConfig]:
        """Static metrics for every configuration; invalids recorded, kept.

        Each call returns fresh :class:`EvaluatedConfig` wrappers (so
        strategies can attach measured times independently) backed by
        the shared metric cache: the underlying ``evaluate`` runs at
        most once per configuration over the engine's lifetime.

        Cache misses fan out across the sweep scheduler when ``workers
        > 1`` (the same worker pool, retry policy, and fallback rules
        as the measurement stage); results are keyed by configuration
        and claimed in request order, so reports, invalid reasons,
        *and* the EngineStats counters are bit-identical to a serial
        run.  Tasks the scheduler abandons (retry budget exhausted)
        are evaluated in-process by ``evaluate_config`` below.
        """
        started = time.perf_counter()
        with span("engine.evaluate_batch", cat="engine",
                  configs=len(configs)) as batch_span:
            missing: List[Configuration] = []
            seen = set()
            for config in configs:
                if config in self._static or config in seen:
                    continue
                key = config_key(config)
                if key in self._checkpoint_static:
                    self._claim_checkpoint_static(config, key)
                    self._static_fresh.add(config)
                    continue
                seen.add(config)
                missing.append(config)
            batch_span.add_args(missing=len(missing))
            if self.workers > 1 and len(missing) > 1:
                self._evaluate_missing_pooled(missing)
            entries = [self.evaluate_config(config) for config in configs]
            if missing:
                self._save_checkpoint()
        self.stats.evaluate_seconds += time.perf_counter() - started
        self._sync_sim_stats()
        return entries

    def _claim_checkpoint_static(
        self, config: Configuration, key: str
    ) -> StaticEntry:
        """Move one static result from the loaded checkpoint into the
        in-memory cache (counted once, like a measured-time claim)."""
        cached = self._checkpoint_static.pop(key)
        self._static[config] = cached
        self.stats.checkpoint_static_hits += 1
        return cached

    def _record_static(self, config: Configuration, cached: StaticEntry) -> None:
        self._static[config] = cached
        self.stats.static_evaluations += 1
        self._unsaved_results += 1
        if self.checkpoint_path and self._unsaved_results >= self.checkpoint_interval:
            self._save_checkpoint()

    def _evaluate_missing_pooled(self, configs: List[Configuration]) -> None:
        """Fan the static stage out across the sweep scheduler.

        Fills ``_static`` (fresh-marked) as results stream in; tasks
        the scheduler abandons are left unfilled and handled by the
        in-process ``evaluate_config`` path, where injected faults
        never fire and real errors surface normally.
        """
        scheduler = self._ensure_scheduler()
        if scheduler is None:
            return
        self.stats.pool_batches += 1
        with span("engine.pool_evaluate", cat="engine",
                  configs=len(configs), workers=scheduler.active_workers):

            def record(position, payload, delta):
                self._merge_pool_delta(delta)
                metrics, reason = payload
                self._record_static(configs[position], (metrics, reason))
                self._static_fresh.add(configs[position])

            abandoned = scheduler.run(STATIC, configs, record)
        self._after_pool_batch(scheduler, abandoned, stage="static")

    # ------------------------------------------------------------------
    # Memo peeks (the service fast lane's read-only view).

    def peek_static(self, config: Configuration) -> Optional[StaticEntry]:
        """The memoized static entry, or ``None`` — no evaluation, no
        counters.  A plain dict read (GIL-atomic), safe to call from
        the event loop while the executor thread owns the engine."""
        return self._static.get(config)

    def peek_seconds(self, config: Configuration) -> Optional[float]:
        """The memoized measured time, or ``None`` — no simulation, no
        counters.  Same safety contract as :meth:`peek_static`."""
        return self._seconds.get(config)

    # ------------------------------------------------------------------
    # Measurement stage.

    def seconds_for(self, configs: Sequence[Configuration]) -> List[float]:
        """Measured seconds for each configuration, in request order.

        Cache misses are simulated (through the scheduler when
        ``workers > 1``); hits are returned from memory or the
        checkpoint.  The returned list always aligns with ``configs``,
        so callers see deterministic ordering regardless of worker
        count.
        """
        started = time.perf_counter()
        with span("engine.simulate_batch", cat="engine",
                  requested=len(configs)) as batch_span:
            missing: List[Configuration] = []
            seen = set()
            for config in configs:
                if config in self._seconds:
                    self.stats.simulation_cache_hits += 1
                    continue
                restored = self._checkpoint_times.pop(config_key(config), None)
                if restored is not None:
                    self._seconds[config] = restored
                    self.stats.checkpoint_hits += 1
                    continue
                if config not in seen:
                    seen.add(config)
                    missing.append(config)
            batch_span.add_args(missing=len(missing))
            if missing:
                self._simulate_missing(missing)
                self._save_checkpoint()
        self.stats.simulate_seconds += time.perf_counter() - started
        self._sync_sim_stats()
        return [self._seconds[config] for config in configs]

    def time_entries(self, entries: Sequence[EvaluatedConfig]) -> float:
        """Fill ``entry.seconds`` for every entry; returns the summed time."""
        seconds = self.seconds_for([entry.config for entry in entries])
        total = 0.0
        for entry, value in zip(entries, seconds):
            entry.seconds = value
            total += value
        return total

    def _trace_groups(
        self, configs: List[Configuration]
    ) -> Tuple[List[List[Configuration]], List[Configuration]]:
        """Partition pending configs into trace-program groups.

        Returns ``(grouped, singles)`` in request order: ``grouped``
        holds lists of two or more configurations whose ``group_key``
        matched (they share a trace program, so one
        ``simulate_group`` call replays them through one compiled
        trace); ``singles`` is everything else — no key function,
        ``None`` keys, or one-member groups — which flows through the
        unchanged per-config path.
        """
        if self._simulate_group is None or self._group_key is None:
            return [], configs
        by_key: Dict[Any, List[Configuration]] = {}
        keys = []
        for config in configs:
            key = self._group_key(config)
            keys.append(key)
            if key is not None:
                by_key.setdefault(key, []).append(config)
        grouped: List[List[Configuration]] = []
        singles: List[Configuration] = []
        emitted = set()
        for config, key in zip(configs, keys):
            if key is None or len(by_key[key]) < 2:
                singles.append(config)
            elif key not in emitted:
                emitted.add(key)
                grouped.append(by_key[key])
        return grouped, singles

    def _simulate_missing(self, configs: List[Configuration]) -> None:
        """Measure every config, recording (and checkpointing) results
        as they stream in — an interrupt mid-batch loses at most
        ``checkpoint_interval`` measurements."""
        grouped, remaining = self._trace_groups(configs)
        if grouped:
            self._simulate_groups(grouped)
        if self.workers > 1 and len(remaining) > 1:
            scheduler = self._ensure_scheduler()
            if scheduler is not None:
                self.stats.pool_batches += 1
                with span("engine.pool_dispatch", cat="engine",
                          configs=len(remaining),
                          workers=scheduler.active_workers):

                    def record(position, seconds, delta):
                        self._merge_pool_delta(delta)
                        self._record_time(remaining[position], seconds)

                    abandoned = scheduler.run(SIMULATE, remaining, record)
                self._after_pool_batch(scheduler, abandoned, stage="sim")
                # Only tasks the scheduler gave up on run serially —
                # in request order, so a real failure surfaces
                # deterministically.
                remaining = [remaining[i] for i in abandoned]
        for config in remaining:
            with span("engine.simulate", cat="engine", config=dict(config)):
                self._record_time(config, self._simulate(config))

    def _simulate_groups(self, grouped: List[List[Configuration]]) -> None:
        """Measure trace-program groups, one dispatch per group.

        Pool tasks ship whole groups (one pickle round-trip and one
        compiled trace each); groups the scheduler abandons — and the
        whole batch when the pool is unavailable — run in-process
        through the same ``simulate_group`` callable, so results and
        telemetry are identical either way.
        """
        if self.workers > 1 and len(grouped) > 1:
            scheduler = self._ensure_scheduler()
            if scheduler is not None:
                self.stats.pool_batches += 1
                with span("engine.pool_dispatch_group", cat="engine",
                          groups=len(grouped),
                          configs=sum(len(g) for g in grouped),
                          workers=scheduler.active_workers):

                    def record(position, seconds, delta):
                        self._merge_pool_delta(delta)
                        for config, value in zip(grouped[position], seconds):
                            self._record_time(config, value)

                    abandoned = scheduler.run(SIMULATE_GROUP, grouped, record)
                self._after_pool_batch(scheduler, abandoned, stage="sim_group")
                grouped = [grouped[i] for i in abandoned]
        for group in grouped:
            with span("engine.simulate_group", cat="engine",
                      group_size=len(group)):
                for config, value in zip(group, self._simulate_group(group)):
                    self._record_time(config, value)

    def _after_pool_batch(self, scheduler: SweepScheduler,
                          abandoned: List[int], stage: str) -> None:
        """Fold scheduler telemetry into the stats; degrade loudly when
        the pool collapsed or tasks fell back to the serial path."""
        self._merge_scheduler_stats(scheduler)
        if abandoned:
            self.stats.serial_fallback_tasks += len(abandoned)
            logger.warning(
                "%d %s task(s) exhausted the scheduler's retries "
                "(last failure: %s); running them in-process",
                len(abandoned), stage, scheduler.last_failure,
            )
        if scheduler.active_workers == 0:
            self._pool_failure(
                f"all {self.workers} workers quarantined "
                f"(last failure: {scheduler.last_failure})"
            )

    def _merge_scheduler_stats(self, scheduler: SweepScheduler) -> None:
        """Mirror the scheduler's cumulative counters (it lives as long
        as the engine, so absolute copies stay exact across batches)."""
        stats = scheduler.stats
        self.stats.task_retries = stats.task_retries
        self.stats.task_timeouts = stats.task_timeouts
        self.stats.task_errors = stats.task_errors
        self.stats.worker_crashes = stats.worker_crashes
        self.stats.workers_quarantined = stats.workers_quarantined
        self.stats.backoff_seconds = stats.backoff_seconds

    def _pool_failure(self, reason: str) -> None:
        """Record a pool→serial degradation and reap the scheduler.

        Once recorded, the engine never tries to rebuild a pool: the
        rest of the run is in-process, and the degradation is visible
        in the stats, the log, and the harness report.
        """
        scheduler, self._scheduler = self._scheduler, None
        self._pool_broken = True
        if scheduler is not None:
            scheduler.close()
        self.stats.pool_fallbacks += 1
        self.stats.pool_fallback_reason = reason
        logger.warning(
            "worker pool disabled, falling back to in-process "
            "execution: %s", reason,
        )

    def _merge_pool_delta(self, delta: Optional[Dict[str, Any]]) -> None:
        """Fold one worker result's counter delta into the pool totals.

        The reserved :data:`~repro.tuning.scheduler.STORE_DELTA_KEY`
        entry — artifacts the worker computed but (deliberately) never
        wrote to disk — is absorbed into the parent's cache, which
        owns all store write-back.
        """
        if not delta:
            return
        entries = delta.pop(STORE_DELTA_KEY, None)
        if entries and self._sim_cache is not None:
            self._sim_cache.absorb_store_entries(entries)
        if delta:
            self._pool_counters.merge(delta)

    def _sync_sim_stats(self) -> None:
        """Fold simulator-cache telemetry into the stats.

        In-process counters are absolute snapshots of the app's
        SimulationCache (idempotent to re-sync); pool workers return
        per-task deltas that accumulate in ``_pool_counters``.  Their
        sum is exact for any worker count — pinned by
        tests/tuning/test_pool_telemetry.py.
        """
        cache = self._sim_cache
        pooled = self._pool_counters
        if cache is None and not pooled:
            return
        local = cache.counters() if cache is not None else {}
        for name in set(local) | set(pooled):
            if hasattr(self.stats, name):
                setattr(
                    self.stats, name, local.get(name, 0) + pooled.get(name, 0)
                )

    def _record_time(self, config: Configuration, seconds: float) -> None:
        self._seconds[config] = seconds
        self.stats.simulations += 1
        self._unsaved_results += 1
        if self.checkpoint_path and self._unsaved_results >= self.checkpoint_interval:
            self._save_checkpoint()

    def _ensure_scheduler(self) -> Optional[SweepScheduler]:
        if self._pool_broken:
            return None
        if self._scheduler is None:
            scheduler = SweepScheduler(
                self.workers,
                self._simulate,
                self._evaluate,
                policy=self.retry_policy,
                fault_spec=self.fault_spec,
            )
            try:
                scheduler.start()
            except (SchedulerError, OSError, ValueError) as error:
                # Worker spawn can fail on fork-restricted platforms
                # or resource exhaustion; degrade loudly, not silently.
                self._pool_failure(
                    f"could not start a {self.workers}-worker "
                    f"sweep scheduler: {error}"
                )
                return None
            self._scheduler = scheduler
        return self._scheduler

    # ------------------------------------------------------------------
    # Checkpointing.

    def _load_checkpoint(self) -> None:
        path = self.checkpoint_path
        if not path or not os.path.exists(path):
            return
        try:
            with open(path) as handle:
                data = json.load(handle)
            if not isinstance(data, dict):
                raise _CorruptCheckpoint(
                    f"top-level payload is {type(data).__name__}, not an object"
                )
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._discard_corrupt_checkpoint(path, str(error))
            return
        except _CorruptCheckpoint as error:
            self._discard_corrupt_checkpoint(path, str(error))
            return
        version = data.get("version")
        if version is None:
            # A dict without a version marker is a truncation artifact,
            # not a deliberate format choice — recover, don't crash.
            self._discard_corrupt_checkpoint(path, "missing 'version' field")
            return
        if version not in SUPPORTED_CHECKPOINT_VERSIONS:
            raise ValueError(
                f"checkpoint {path!r}: unsupported version {version!r} "
                f"(expected one of {sorted(SUPPORTED_CHECKPOINT_VERSIONS)})"
            )
        stored_label = data.get("label")
        if self.label and stored_label and stored_label != self.label:
            raise ValueError(
                f"checkpoint {path!r} belongs to {stored_label!r}, "
                f"not {self.label!r}; refusing to resume from it"
            )
        try:
            self._checkpoint_times = _parse_checkpoint_times(data)
            self._checkpoint_static = _parse_checkpoint_static(data)
        except _CorruptCheckpoint as error:
            self._checkpoint_times = {}
            self._checkpoint_static = {}
            self._discard_corrupt_checkpoint(path, str(error))

    def _discard_corrupt_checkpoint(self, path: str, reason: str) -> None:
        """A checkpoint we cannot trust is dropped, not fatal: the
        sweep restarts from scratch and the next save overwrites the
        bad file.  Counted so the harness can surface it."""
        self.stats.checkpoint_corrupt += 1
        logger.warning(
            "checkpoint %r is corrupt (%s); ignoring it and "
            "restarting the sweep fresh", path, reason,
        )

    def _save_checkpoint(self) -> None:
        path = self.checkpoint_path
        if not path:
            return
        times = dict(self._checkpoint_times)  # unclaimed entries survive
        times.update({config_key(c): s for c, s in self._seconds.items()})
        static: Dict[str, Any] = {}
        for key, entry in self._checkpoint_static.items():
            serialized = _static_entry_to_json(entry)
            if serialized is not None:
                static[key] = serialized
        for config, entry in self._static.items():
            serialized = _static_entry_to_json(entry)
            if serialized is not None:
                static[config_key(config)] = serialized
        payload = {
            "version": CHECKPOINT_VERSION,
            "label": self.label,
            "times": times,
            "static": static,
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # Shared atomic-write helper: tmp + os.replace like before, but
        # with umask-honoring permissions — a raw mkstemp leaves the
        # checkpoint 0600, unreadable by a teammate resuming the sweep.
        atomic_write_text(path, json.dumps(payload, indent=1))
        self._unsaved_results = 0


def _parse_checkpoint_times(data: Dict[str, Any]) -> Dict[str, float]:
    times = data.get("times", {})
    if not isinstance(times, dict):
        raise _CorruptCheckpoint("malformed 'times' table")
    try:
        return {str(key): float(value) for key, value in times.items()}
    except (TypeError, ValueError) as error:
        raise _CorruptCheckpoint(f"malformed time entry: {error}") from None


def _parse_checkpoint_static(data: Dict[str, Any]) -> Dict[str, StaticEntry]:
    static = data.get("static", {})
    if not isinstance(static, dict):
        raise _CorruptCheckpoint("malformed 'static' table")
    parsed: Dict[str, StaticEntry] = {}
    for key, entry in static.items():
        if not isinstance(entry, dict):
            raise _CorruptCheckpoint(f"malformed static entry {key!r}")
        metrics = entry.get("metrics")
        try:
            parsed[str(key)] = (
                report_from_json(metrics) if metrics is not None else None,
                entry.get("invalid"),
            )
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            raise _CorruptCheckpoint(
                f"unreadable static entry {key!r}: {error}"
            ) from None
    return parsed


def _static_entry_to_json(entry: StaticEntry) -> Optional[Dict[str, Any]]:
    """Serialize one static-stage entry for the checkpoint, or ``None``.

    Only full :class:`MetricReport` instances persist; synthetic spy
    reports used by tests (built via ``__new__`` with a subset of the
    fields) simply are not checkpointed rather than crashing the save.
    """
    metrics, reason = entry
    if metrics is None:
        return {"metrics": None, "invalid": reason}
    try:
        return {"metrics": report_to_json(metrics), "invalid": reason}
    except (AttributeError, TypeError):
        return None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker count; ``None`` defers to ``REPRO_WORKERS``.

    A malformed ``REPRO_WORKERS`` raises :class:`ValueError` naming
    the variable and the offending value (a bare ``int()`` traceback
    gives an operator nothing to act on); negative counts are clamped
    to 1 with a warning rather than silently running serial.
    """
    from_env = None
    if workers is None:
        from_env = os.environ.get("REPRO_WORKERS", "1") or "1"
        try:
            workers = int(from_env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS={from_env!r} is not a valid worker "
                "count (expected an integer)"
            ) from None
    workers = int(workers)
    if workers < 0:
        logger.warning(
            "negative worker count %d%s; clamping to 1 (serial)",
            workers,
            " from REPRO_WORKERS" if from_env is not None else "",
        )
        return 1
    return max(1, workers)
