"""Shared evaluation cache and parallel execution engine (the tuner's core).

The paper's contribution is avoiding wasted measurement; the engine
applies the same discipline to the harness itself.  Every search
strategy used to walk the configuration space independently: a
multi-strategy experiment evaluated the static metrics once *per
strategy* and re-simulated configurations another strategy had already
timed.  The :class:`ExecutionEngine` owns the space instead:

* static metrics are computed exactly once per configuration and
  memoized (``Configuration`` is immutable and hashable — the cache is
  a plain dict keyed by the configuration itself);
* ``simulate(config)`` results are memoized the same way, so no
  configuration is ever measured twice, no matter how many strategies
  ask for it;
* cache misses can be fanned out across a ``concurrent.futures``
  process pool (``workers > 1``) with deterministic result ordering —
  results are keyed by configuration and re-assembled in request
  order, so ``workers=4`` is bit-identical to ``workers=1``;
* an opt-in JSON checkpoint persists measured times on disk, so an
  interrupted sweep resumes without re-simulating anything;
* telemetry (evaluated counts, cache hits, wall time per stage) is
  recorded on :class:`EngineStats` and surfaced by the harness report.

The search strategies in :mod:`repro.tuning.search` accept an engine;
their original ``(configs, evaluate, simulate)`` signatures remain as
thin wrappers that build a private single-worker engine.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import os
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.occupancy import LaunchError
from repro.metrics.model import MetricReport
from repro.tuning.space import Configuration

Evaluate = Callable[[Configuration], MetricReport]
Simulate = Callable[[Configuration], float]

CHECKPOINT_VERSION = 1


@dataclasses.dataclass
class EvaluatedConfig:
    """One configuration's static metrics and (optional) measured time."""

    config: Configuration
    metrics: Optional[MetricReport] = None
    seconds: Optional[float] = None
    invalid_reason: Optional[str] = None

    @property
    def is_valid(self) -> bool:
        return self.invalid_reason is None


def config_key(config: Configuration) -> str:
    """Stable string key for a configuration (the checkpoint format).

    Sorted-key JSON of the parameter mapping; values outside the JSON
    types fall back to ``repr``.  In memory the engine keys caches by
    the (hashable) configuration itself — this key only exists so
    checkpoints survive process boundaries.
    """
    return json.dumps(dict(config), sort_keys=True, default=repr)


@dataclasses.dataclass
class EngineStats:
    """Telemetry for one engine: counts, cache hits, per-stage wall time."""

    workers: int = 1
    static_evaluations: int = 0      # underlying evaluate() calls
    static_cache_hits: int = 0       # evaluate requests served from memory
    simulations: int = 0             # underlying simulate() calls
    simulation_cache_hits: int = 0   # simulate requests served from memory
    checkpoint_hits: int = 0         # configurations restored from disk
    evaluate_seconds: float = 0.0    # wall time in the static stage
    simulate_seconds: float = 0.0    # wall time in the measurement stage
    pool_batches: int = 0            # batches dispatched to the pool

    # Content-addressed simulator cache telemetry (absolute snapshots
    # of the app's SimulationCache counters, synced after each
    # measurement batch; see repro.sim.fingerprint).  With workers > 1
    # the pool's forked processes keep their own caches, so these
    # reflect only in-process work.
    fingerprint_resource_hits: int = 0   # compile passes reused across configs
    fingerprint_trace_hits: int = 0      # warp traces reused across configs
    fingerprint_sm_hits: int = 0         # SM replays reused across configs
    waves_simulated: int = 0             # full SM waves actually replayed
    waves_extrapolated: float = 0.0      # waves covered by convergence instead
    events_replayed: int = 0             # dynamic trace events replayed

    @property
    def cache_hits(self) -> int:
        return self.static_cache_hits + self.simulation_cache_hits

    @property
    def fingerprint_hits(self) -> int:
        return (
            self.fingerprint_resource_hits
            + self.fingerprint_trace_hits
            + self.fingerprint_sm_hits
        )

    def as_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["cache_hits"] = self.cache_hits
        out["fingerprint_hits"] = self.fingerprint_hits
        return out

    def summary(self) -> str:
        return (
            f"workers={self.workers} evals={self.static_evaluations} "
            f"sims={self.simulations} cache_hits={self.cache_hits} "
            f"fp_hits={self.fingerprint_hits} "
            f"ckpt_hits={self.checkpoint_hits} "
            f"eval_wall={self.evaluate_seconds:.3f}s "
            f"sim_wall={self.simulate_seconds:.3f}s"
        )


# ----------------------------------------------------------------------
# Process-pool plumbing.  The simulate callable reaches workers through
# the pool initializer (inherited directly under the default ``fork``
# start method), so per-task payloads are just configurations.

_WORKER_SIMULATE: Optional[Simulate] = None


def _pool_initializer(simulate: Simulate) -> None:
    global _WORKER_SIMULATE
    _WORKER_SIMULATE = simulate


def _pool_simulate(config: Configuration) -> float:
    assert _WORKER_SIMULATE is not None, "pool worker not initialized"
    return _WORKER_SIMULATE(config)


class ExecutionEngine:
    """Owns one configuration space's evaluation and measurement.

    Parameters
    ----------
    evaluate:
        ``config -> MetricReport``; may raise :class:`LaunchError` for
        configurations that cannot launch (recorded, not propagated).
    simulate:
        ``config -> seconds``; the expensive measurement.
    workers:
        Process-pool width for simulation fan-out.  ``1`` (default)
        runs everything in-process; ``None`` reads ``REPRO_WORKERS``
        from the environment (default 1).
    checkpoint_path:
        Optional JSON file persisting measured times.  Loaded (if it
        exists) on construction and rewritten atomically every
        ``checkpoint_interval`` simulations and at the end of every
        measurement batch, so an interrupt mid-batch loses at most
        ``checkpoint_interval`` measurements.
    checkpoint_interval:
        How many new measurements may accumulate before the
        checkpoint is rewritten mid-batch (default 16).
    label:
        Optional tag (usually the application name) stored in the
        checkpoint and validated on resume, so a sweep cannot silently
        resume from another application's times.
    sim_cache:
        Optional :class:`repro.sim.fingerprint.SimulationCache` whose
        counters are mirrored into :attr:`stats` after every
        measurement batch (``for_app`` wires up the application's
        cache automatically).  The engine never reads or writes the
        cache itself — the simulate callable owns it.
    """

    def __init__(
        self,
        evaluate: Evaluate,
        simulate: Simulate,
        workers: Optional[int] = 1,
        checkpoint_path: Optional[str] = None,
        label: Optional[str] = None,
        checkpoint_interval: int = 16,
        sim_cache=None,
    ) -> None:
        self._evaluate = evaluate
        self._simulate = simulate
        self._sim_cache = sim_cache
        self.workers = resolve_workers(workers)
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = max(1, int(checkpoint_interval))
        self._unsaved_times = 0
        self.label = label
        self.stats = EngineStats(workers=self.workers)
        self._static: Dict[Configuration, Tuple[Optional[MetricReport], Optional[str]]] = {}
        self._seconds: Dict[Configuration, float] = {}
        #: times loaded from disk, keyed by config_key, not yet claimed
        self._checkpoint_times: Dict[str, float] = {}
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_broken = False
        if checkpoint_path:
            self._load_checkpoint()

    @classmethod
    def for_app(
        cls,
        app,
        workers: Optional[int] = 1,
        checkpoint_path: Optional[str] = None,
    ) -> "ExecutionEngine":
        """Engine around an :class:`~repro.apps.base.Application`."""
        return cls(
            app.evaluate,
            app.simulate,
            workers=workers,
            checkpoint_path=checkpoint_path,
            label=app.name,
            sim_cache=getattr(app, "sim_cache", None),
        )

    # ------------------------------------------------------------------
    # Lifecycle.

    def close(self) -> None:
        """Shut down the worker pool (caches and stats survive)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Static stage.

    def evaluate_config(self, config: Configuration) -> EvaluatedConfig:
        """One configuration through the static-metric cache."""
        cached = self._static.get(config)
        if cached is None:
            try:
                cached = (self._evaluate(config), None)
            except LaunchError as error:
                cached = (None, str(error))
            self._static[config] = cached
            self.stats.static_evaluations += 1
        else:
            self.stats.static_cache_hits += 1
        metrics, reason = cached
        return EvaluatedConfig(config=config, metrics=metrics, invalid_reason=reason)

    def evaluate_all(self, configs: Sequence[Configuration]) -> List[EvaluatedConfig]:
        """Static metrics for every configuration; invalids recorded, kept.

        Each call returns fresh :class:`EvaluatedConfig` wrappers (so
        strategies can attach measured times independently) backed by
        the shared metric cache: the underlying ``evaluate`` runs at
        most once per configuration over the engine's lifetime.
        """
        started = time.perf_counter()
        entries = [self.evaluate_config(config) for config in configs]
        self.stats.evaluate_seconds += time.perf_counter() - started
        return entries

    # ------------------------------------------------------------------
    # Measurement stage.

    def seconds_for(self, configs: Sequence[Configuration]) -> List[float]:
        """Measured seconds for each configuration, in request order.

        Cache misses are simulated (through the pool when ``workers >
        1``); hits are returned from memory or the checkpoint.  The
        returned list always aligns with ``configs``, so callers see
        deterministic ordering regardless of worker count.
        """
        started = time.perf_counter()
        missing: List[Configuration] = []
        seen = set()
        for config in configs:
            if config in self._seconds:
                self.stats.simulation_cache_hits += 1
                continue
            restored = self._checkpoint_times.pop(config_key(config), None)
            if restored is not None:
                self._seconds[config] = restored
                self.stats.checkpoint_hits += 1
                continue
            if config not in seen:
                seen.add(config)
                missing.append(config)
        if missing:
            self._simulate_missing(missing)
            self._save_checkpoint()
        self.stats.simulate_seconds += time.perf_counter() - started
        self._sync_sim_stats()
        return [self._seconds[config] for config in configs]

    def time_entries(self, entries: Sequence[EvaluatedConfig]) -> float:
        """Fill ``entry.seconds`` for every entry; returns the summed time."""
        seconds = self.seconds_for([entry.config for entry in entries])
        total = 0.0
        for entry, value in zip(entries, seconds):
            entry.seconds = value
            total += value
        return total

    def _simulate_missing(self, configs: List[Configuration]) -> None:
        """Measure every config, recording (and checkpointing) as results
        arrive — an interrupt mid-batch loses at most
        ``checkpoint_interval`` measurements."""
        remaining = configs
        if self.workers > 1 and len(remaining) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                chunk = max(1, len(remaining) // (self.workers * 4))
                self.stats.pool_batches += 1
                try:
                    results = pool.map(_pool_simulate, remaining, chunksize=chunk)
                    for config, seconds in zip(remaining, results):
                        self._record_time(config, seconds)
                    return
                except concurrent.futures.process.BrokenProcessPool:
                    # A worker died (or the callable cannot cross the
                    # process boundary on this platform); fall back to
                    # in-process simulation for whatever is left.
                    self._pool_broken = True
                    self._pool = None
                    remaining = [c for c in remaining if c not in self._seconds]
        for config in remaining:
            self._record_time(config, self._simulate(config))

    def _sync_sim_stats(self) -> None:
        """Mirror the simulator cache's counters into the stats.

        Counters are absolute snapshots (the cache accumulates over
        its lifetime), so syncing is idempotent.  When simulations run
        in a process pool the workers' forked caches are not visible
        here; the stats then cover only in-process simulations.
        """
        cache = self._sim_cache
        if cache is None:
            return
        for name, value in cache.counters().items():
            setattr(self.stats, name, value)

    def _record_time(self, config: Configuration, seconds: float) -> None:
        self._seconds[config] = seconds
        self.stats.simulations += 1
        self._unsaved_times += 1
        if self.checkpoint_path and self._unsaved_times >= self.checkpoint_interval:
            self._save_checkpoint()

    def _ensure_pool(self) -> Optional[concurrent.futures.ProcessPoolExecutor]:
        if self._pool_broken:
            return None
        if self._pool is None:
            try:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_initializer,
                    initargs=(self._simulate,),
                )
            except (OSError, ValueError):
                self._pool_broken = True
                return None
        return self._pool

    # ------------------------------------------------------------------
    # Checkpointing.

    def _load_checkpoint(self) -> None:
        path = self.checkpoint_path
        if not path or not os.path.exists(path):
            return
        with open(path) as handle:
            data = json.load(handle)
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {path!r}: unsupported version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        stored_label = data.get("label")
        if self.label and stored_label and stored_label != self.label:
            raise ValueError(
                f"checkpoint {path!r} belongs to {stored_label!r}, "
                f"not {self.label!r}; refusing to resume from it"
            )
        times = data.get("times", {})
        if not isinstance(times, dict):
            raise ValueError(f"checkpoint {path!r}: malformed 'times' table")
        self._checkpoint_times = {str(key): float(value) for key, value in times.items()}

    def _save_checkpoint(self) -> None:
        path = self.checkpoint_path
        if not path:
            return
        times = dict(self._checkpoint_times)  # unclaimed entries survive
        times.update({config_key(c): s for c, s in self._seconds.items()})
        payload = {
            "version": CHECKPOINT_VERSION,
            "label": self.label,
            "times": times,
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self._unsaved_times = 0


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker count; ``None`` defers to ``REPRO_WORKERS``."""
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    return max(1, int(workers))
