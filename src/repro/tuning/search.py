"""Search strategies over a configuration space.

* ``full_exploration`` — time every valid configuration (what the
  paper did first, and what Table 4's "Evaluation Time" column costs);
* ``pareto_search`` — evaluate the static metrics everywhere, then
  time only the Pareto-optimal subset (the paper's contribution);
* ``random_search`` — time a random sample (the comparison the paper
  names as future work).

The strategies are decoupled from applications through two callables:

    evaluate(config) -> MetricReport      (static; cheap; may raise LaunchError)
    simulate(config) -> float seconds     (the expensive measurement)
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, List, Optional, Sequence

from repro.arch.occupancy import LaunchError
from repro.metrics.model import MetricReport
from repro.tuning.pareto import pareto_indices
from repro.tuning.space import Configuration

Evaluate = Callable[[Configuration], MetricReport]
Simulate = Callable[[Configuration], float]


@dataclasses.dataclass
class EvaluatedConfig:
    """One configuration's static metrics and (optional) measured time."""

    config: Configuration
    metrics: Optional[MetricReport] = None
    seconds: Optional[float] = None
    invalid_reason: Optional[str] = None

    @property
    def is_valid(self) -> bool:
        return self.invalid_reason is None


@dataclasses.dataclass
class SearchResult:
    """Outcome of one search strategy."""

    strategy: str
    evaluated: List[EvaluatedConfig]        # every configuration examined
    timed: List[EvaluatedConfig]            # the subset actually measured
    best: EvaluatedConfig                   # fastest measured configuration
    measured_seconds: float                 # sum of measured kernel times

    @property
    def space_size(self) -> int:
        return len(self.evaluated)

    @property
    def valid_count(self) -> int:
        return sum(1 for e in self.evaluated if e.is_valid)

    @property
    def timed_count(self) -> int:
        return len(self.timed)

    @property
    def space_reduction(self) -> float:
        """Fraction of the valid space the strategy avoided timing."""
        valid = self.valid_count
        if valid == 0:
            return 0.0
        return 1.0 - self.timed_count / valid


def evaluate_all(
    configs: Sequence[Configuration],
    evaluate: Evaluate,
) -> List[EvaluatedConfig]:
    """Static metrics for every configuration; invalids recorded, kept."""
    evaluated = []
    for config in configs:
        entry = EvaluatedConfig(config=config)
        try:
            entry.metrics = evaluate(config)
        except LaunchError as error:
            entry.invalid_reason = str(error)
        evaluated.append(entry)
    return evaluated


def _time_subset(
    entries: List[EvaluatedConfig],
    simulate: Simulate,
) -> float:
    total = 0.0
    for entry in entries:
        entry.seconds = simulate(entry.config)
        total += entry.seconds
    return total


def _best(timed: List[EvaluatedConfig], strategy: str) -> EvaluatedConfig:
    if not timed:
        raise ValueError(f"{strategy}: no configuration could be timed")
    return min(timed, key=lambda e: e.seconds)


def full_exploration(
    configs: Sequence[Configuration],
    evaluate: Evaluate,
    simulate: Simulate,
) -> SearchResult:
    """Measure every valid configuration."""
    evaluated = evaluate_all(configs, evaluate)
    timed = [e for e in evaluated if e.is_valid]
    total = _time_subset(timed, simulate)
    return SearchResult(
        strategy="exhaustive",
        evaluated=evaluated,
        timed=timed,
        best=_best(timed, "exhaustive"),
        measured_seconds=total,
    )


def pareto_search(
    configs: Sequence[Configuration],
    evaluate: Evaluate,
    simulate: Simulate,
    screen_bandwidth_bound: bool = False,
) -> SearchResult:
    """Measure only the Pareto-optimal subset of the metric plot.

    ``screen_bandwidth_bound`` applies the Section 5.3 advice: remove
    configurations the bandwidth estimate flags before drawing the
    curve ("One should screen away such points prior to defining the
    curve").
    """
    evaluated = evaluate_all(configs, evaluate)
    candidates = [e for e in evaluated if e.is_valid]
    pool = candidates
    if screen_bandwidth_bound:
        unscreened = [
            e for e in candidates
            if not e.metrics.bandwidth.is_bandwidth_bound()
        ]
        if unscreened:
            pool = unscreened
    points = [(e.metrics.efficiency, e.metrics.utilization) for e in pool]
    selected = [pool[i] for i in pareto_indices(points)]
    total = _time_subset(selected, simulate)
    return SearchResult(
        strategy="pareto",
        evaluated=evaluated,
        timed=selected,
        best=_best(selected, "pareto"),
        measured_seconds=total,
    )


def pareto_cluster_search(
    configs: Sequence[Configuration],
    evaluate: Evaluate,
    simulate: Simulate,
    relative_tolerance: float = 1e-9,
    seed: int = 0,
) -> SearchResult:
    """Pareto pruning plus cluster sampling (Section 5.2's refinement).

    "When several configurations have identical or nearly identical
    metrics, it may be sufficient to randomly select a single
    configuration from that cluster, rather than evaluating all the
    configurations."  The Pareto subset is computed as usual, then only
    one randomly-chosen representative per metric cluster is timed.
    """
    from repro.tuning.cluster import cluster_by_metrics

    evaluated = evaluate_all(configs, evaluate)
    candidates = [e for e in evaluated if e.is_valid]
    points = [(e.metrics.efficiency, e.metrics.utilization) for e in candidates]
    selected = [candidates[i] for i in pareto_indices(points)]
    clusters = cluster_by_metrics(selected, relative_tolerance)
    rng = random.Random(seed)
    representatives = [rng.choice(cluster) for cluster in clusters]
    total = _time_subset(representatives, simulate)
    return SearchResult(
        strategy="pareto+cluster",
        evaluated=evaluated,
        timed=representatives,
        best=_best(representatives, "pareto+cluster"),
        measured_seconds=total,
    )


def random_search(
    configs: Sequence[Configuration],
    evaluate: Evaluate,
    simulate: Simulate,
    sample_size: int,
    seed: int = 0,
) -> SearchResult:
    """Measure a uniform random sample of the valid space."""
    evaluated = evaluate_all(configs, evaluate)
    valid = [e for e in evaluated if e.is_valid]
    rng = random.Random(seed)
    sample = rng.sample(valid, min(sample_size, len(valid)))
    total = _time_subset(sample, simulate)
    return SearchResult(
        strategy="random",
        evaluated=evaluated,
        timed=sample,
        best=_best(sample, "random"),
        measured_seconds=total,
    )
