"""Search strategies over a configuration space.

* ``full_exploration`` — time every valid configuration (what the
  paper did first, and what Table 4's "Evaluation Time" column costs);
* ``pareto_search`` — evaluate the static metrics everywhere, then
  time only the Pareto-optimal subset (the paper's contribution);
* ``random_search`` — time a random sample (the comparison the paper
  names as future work).

The strategies are decoupled from applications through two callables:

    evaluate(config) -> MetricReport      (static; cheap; may raise LaunchError)
    simulate(config) -> float seconds     (the expensive measurement)

Every strategy runs on an :class:`~repro.tuning.engine.ExecutionEngine`
which memoizes both callables, so running several strategies over the
same space performs one static pass and never measures a configuration
twice.  Pass ``engine=`` to share one engine across strategies (what
``run_experiment`` does); without it each call builds a private
single-worker engine, preserving the original free-function behavior.
"""

from __future__ import annotations

import dataclasses
import logging
import random
from typing import List, Optional, Sequence, Tuple

from repro.tuning.engine import (
    Evaluate,
    EvaluatedConfig,
    ExecutionEngine,
    Simulate,
)
from repro.tuning.pareto import pareto_indices
from repro.tuning.space import Configuration
from repro.tuning.strategies.registry import selection_strategy_names

__all__ = [
    "EvaluatedConfig",
    "STRATEGIES",
    "SearchResult",
    "best_entry",
    "evaluate_all",
    "full_exploration",
    "pareto_cluster_search",
    "pareto_search",
    "random_search",
    "select_timed",
]

logger = logging.getLogger(__name__)


@dataclasses.dataclass
class SearchResult:
    """Outcome of one search strategy."""

    strategy: str
    evaluated: List[EvaluatedConfig]        # every configuration examined
    timed: List[EvaluatedConfig]            # the subset actually measured
    best: EvaluatedConfig                   # fastest measured configuration
    measured_seconds: float                 # sum of measured kernel times
    #: for sampling strategies: the caller-requested sample size, which
    #: may exceed what the valid space could provide (see timed_count
    #: for what was actually measured)
    requested_sample_size: Optional[int] = None
    #: budgeted (zoo) strategies record the best-seconds-so-far after
    #: every measurement: a list of ``(evaluations, best_seconds)``
    #: pairs — the budget-versus-quality curve of the run.  ``None``
    #: for the classic selection strategies, whose timed subset is a
    #: pure function of the static metrics.
    trajectory: Optional[List[Tuple[int, float]]] = None
    #: the evaluation budget the run was allowed (distinct measured
    #: configurations), after clamping to the candidate pool
    budget: Optional[int] = None
    #: the seed that makes a stochastic run reproducible
    seed: Optional[int] = None
    #: paper-style composition: "full" searched the whole valid space,
    #: "pareto" searched only the Pareto-pruned subset
    restrict: Optional[str] = None
    #: size of the candidate pool the strategy drew from
    pool_size: Optional[int] = None

    def evaluations_to_within(
        self, fraction: float, optimum_seconds: Optional[float] = None
    ) -> Optional[int]:
        """Evaluations until best-so-far was within ``fraction`` of the
        optimum (``None``: never, or no trajectory was recorded).

        ``optimum_seconds`` defaults to this run's own best — pass the
        full-exploration optimum for evaluations-to-optimum curves.
        """
        if not self.trajectory:
            return None
        target = optimum_seconds if optimum_seconds is not None else self.best.seconds
        target *= 1.0 + fraction
        for count, best in self.trajectory:
            if best <= target:
                return count
        return None

    @property
    def space_size(self) -> int:
        return len(self.evaluated)

    @property
    def valid_count(self) -> int:
        return sum(1 for e in self.evaluated if e.is_valid)

    @property
    def timed_count(self) -> int:
        return len(self.timed)

    @property
    def sample_shortfall(self) -> int:
        """How many requested samples the valid space could not supply."""
        if self.requested_sample_size is None:
            return 0
        return max(0, self.requested_sample_size - self.timed_count)

    @property
    def space_reduction(self) -> float:
        """Fraction of the valid space the strategy avoided timing.

        NaN when the space has no valid configuration at all — there
        was nothing to prune, which is not the same as pruning nothing.
        """
        valid = self.valid_count
        if valid == 0:
            return float("nan")
        return 1.0 - self.timed_count / valid


def _resolve_engine(
    engine: Optional[ExecutionEngine],
    evaluate: Optional[Evaluate],
    simulate: Optional[Simulate],
) -> ExecutionEngine:
    if engine is not None:
        return engine
    if evaluate is None or simulate is None:
        raise TypeError(
            "search strategies need either an engine= or both "
            "evaluate and simulate callables"
        )
    return ExecutionEngine(evaluate, simulate)


def evaluate_all(
    configs: Sequence[Configuration],
    evaluate: Optional[Evaluate] = None,
    engine: Optional[ExecutionEngine] = None,
) -> List[EvaluatedConfig]:
    """Static metrics for every configuration; invalids recorded, kept."""
    if engine is None:
        engine = ExecutionEngine(evaluate, lambda config: 0.0)
    return engine.evaluate_all(configs)


def best_entry(timed: List[EvaluatedConfig], strategy: str) -> EvaluatedConfig:
    """Fastest measured entry; raises when nothing could be timed."""
    if not timed:
        raise ValueError(f"{strategy}: no configuration could be timed")
    return min(timed, key=lambda e: e.seconds)


_best = best_entry

#: Strategy names accepted by :func:`select_timed` — the same strings
#: each strategy records on its :class:`SearchResult`.  Derived from
#: the strategy registry, the single source of truth shared with the
#: harness CLI and the service daemon (adaptive zoo strategies live
#: there too; they dispatch through
#: :meth:`repro.tuning.strategies.SearchStrategy.run`, not here).
STRATEGIES = selection_strategy_names()


def select_timed(
    strategy: str,
    evaluated: List[EvaluatedConfig],
    *,
    screen_bandwidth_bound: bool = False,
    relative_tolerance: float = 1e-9,
    sample_size: int = 0,
    seed: int = 0,
) -> List[EvaluatedConfig]:
    """The subset of ``evaluated`` the named strategy would time, in order.

    This is the single selection routine behind every search strategy;
    callers that need to drive timing themselves (the service daemon
    chunks timing so it can checkpoint and honor cancellation) use it
    directly and are guaranteed to pick exactly what the one-shot
    strategy functions pick.
    """
    if strategy == "exhaustive":
        return [e for e in evaluated if e.is_valid]
    if strategy == "pareto":
        candidates = [e for e in evaluated if e.is_valid]
        pool = candidates
        if screen_bandwidth_bound:
            unscreened = [
                e for e in candidates
                if not e.metrics.bandwidth.is_bandwidth_bound()
            ]
            if unscreened:
                pool = unscreened
        points = [(e.metrics.efficiency, e.metrics.utilization) for e in pool]
        return [pool[i] for i in pareto_indices(points)]
    if strategy == "pareto+cluster":
        from repro.tuning.cluster import cluster_by_metrics

        candidates = [e for e in evaluated if e.is_valid]
        points = [
            (e.metrics.efficiency, e.metrics.utilization) for e in candidates
        ]
        selected = [candidates[i] for i in pareto_indices(points)]
        clusters = cluster_by_metrics(selected, relative_tolerance)
        rng = random.Random(seed)
        return [rng.choice(cluster) for cluster in clusters]
    if strategy == "random":
        valid = [e for e in evaluated if e.is_valid]
        actual_size = min(sample_size, len(valid))
        if actual_size < sample_size:
            logger.warning(
                "random_search: sample_size %d exceeds the valid space (%d "
                "configurations); timing all %d",
                sample_size, len(valid), actual_size,
            )
        rng = random.Random(seed)
        return rng.sample(valid, actual_size)
    raise ValueError(
        f"unknown search strategy {strategy!r}; expected one of {STRATEGIES}"
    )


def full_exploration(
    configs: Sequence[Configuration],
    evaluate: Optional[Evaluate] = None,
    simulate: Optional[Simulate] = None,
    engine: Optional[ExecutionEngine] = None,
) -> SearchResult:
    """Measure every valid configuration."""
    engine = _resolve_engine(engine, evaluate, simulate)
    evaluated = engine.evaluate_all(configs)
    timed = select_timed("exhaustive", evaluated)
    total = engine.time_entries(timed)
    return SearchResult(
        strategy="exhaustive",
        evaluated=evaluated,
        timed=timed,
        best=_best(timed, "exhaustive"),
        measured_seconds=total,
    )


def pareto_search(
    configs: Sequence[Configuration],
    evaluate: Optional[Evaluate] = None,
    simulate: Optional[Simulate] = None,
    screen_bandwidth_bound: bool = False,
    engine: Optional[ExecutionEngine] = None,
) -> SearchResult:
    """Measure only the Pareto-optimal subset of the metric plot.

    ``screen_bandwidth_bound`` applies the Section 5.3 advice: remove
    configurations the bandwidth estimate flags before drawing the
    curve ("One should screen away such points prior to defining the
    curve").
    """
    engine = _resolve_engine(engine, evaluate, simulate)
    evaluated = engine.evaluate_all(configs)
    selected = select_timed(
        "pareto", evaluated, screen_bandwidth_bound=screen_bandwidth_bound,
    )
    total = engine.time_entries(selected)
    return SearchResult(
        strategy="pareto",
        evaluated=evaluated,
        timed=selected,
        best=_best(selected, "pareto"),
        measured_seconds=total,
    )


def pareto_cluster_search(
    configs: Sequence[Configuration],
    evaluate: Optional[Evaluate] = None,
    simulate: Optional[Simulate] = None,
    relative_tolerance: float = 1e-9,
    seed: int = 0,
    engine: Optional[ExecutionEngine] = None,
) -> SearchResult:
    """Pareto pruning plus cluster sampling (Section 5.2's refinement).

    "When several configurations have identical or nearly identical
    metrics, it may be sufficient to randomly select a single
    configuration from that cluster, rather than evaluating all the
    configurations."  The Pareto subset is computed as usual, then only
    one randomly-chosen representative per metric cluster is timed.
    """
    engine = _resolve_engine(engine, evaluate, simulate)
    evaluated = engine.evaluate_all(configs)
    representatives = select_timed(
        "pareto+cluster", evaluated,
        relative_tolerance=relative_tolerance, seed=seed,
    )
    total = engine.time_entries(representatives)
    return SearchResult(
        strategy="pareto+cluster",
        evaluated=evaluated,
        timed=representatives,
        best=_best(representatives, "pareto+cluster"),
        measured_seconds=total,
    )


def random_search(
    configs: Sequence[Configuration],
    evaluate: Optional[Evaluate] = None,
    simulate: Optional[Simulate] = None,
    sample_size: int = 0,
    seed: int = 0,
    engine: Optional[ExecutionEngine] = None,
) -> SearchResult:
    """Measure a uniform random sample of the valid space.

    When ``sample_size`` exceeds the valid space the sample is clamped
    — loudly: the shortfall is logged and the originally requested size
    is recorded on the result (``requested_sample_size``), so
    Table 4-style comparisons against another strategy's budget are not
    silently skewed.
    """
    engine = _resolve_engine(engine, evaluate, simulate)
    evaluated = engine.evaluate_all(configs)
    sample = select_timed(
        "random", evaluated, sample_size=sample_size, seed=seed,
    )
    total = engine.time_entries(sample)
    return SearchResult(
        strategy="random",
        evaluated=evaluated,
        timed=sample,
        best=_best(sample, "random"),
        measured_seconds=total,
        requested_sample_size=sample_size,
    )
