"""Pareto-optimal subset selection (paper Section 5.2).

"We choose the small set of configurations that have no superior in
both the efficiency and utilization metric.  This is the
Pareto-optimal subset ... Visually, each point in this set has no
other point both above and to the right of it."

Ties are kept: configurations with identical metric pairs (the MRI
clusters of Figure 6(b)) stand or fall together.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

Point = Tuple[float, float]


def _has_nan(point: Point) -> bool:
    return math.isnan(point[0]) or math.isnan(point[1])


def dominates(a: Point, b: Point) -> bool:
    """True when ``a`` is at least as good on both axes and better on one.

    A point with a NaN coordinate is incomparable: it neither dominates
    nor is dominated.  (Without this rule dominance is incoherent —
    ``(5, nan)`` would "dominate" ``(4, 1)`` through a False NaN
    comparison while being dominated by ``(6, 1)`` — and the sweep in
    :func:`pareto_indices` could disagree with the naive filter.)
    """
    if _has_nan(a) or _has_nan(b):
        return False
    if a[0] < b[0] or a[1] < b[1]:
        return False
    return a[0] > b[0] or a[1] > b[1]


def pareto_indices(points: Sequence[Point]) -> List[int]:
    """Indices of the non-dominated points, in input order.

    O(n log n): sweep by descending first coordinate; a point survives
    unless an already-seen point with a strictly greater first
    coordinate has a >= second coordinate, or an equal-first-coordinate
    point has a strictly greater second coordinate.

    Points with a NaN coordinate are incomparable under
    :func:`dominates`, so they always survive; the sweep runs over the
    finite points only (NaN keys would poison the sort ordering).
    """
    nan_survivors = [i for i, p in enumerate(points) if _has_nan(p)]
    if nan_survivors:
        finite = [i for i in range(len(points)) if not _has_nan(points[i])]
        return sorted(
            nan_survivors
            + [finite[j] for j in pareto_indices([points[i] for i in finite])]
        )
    order = sorted(range(len(points)), key=lambda i: (-points[i][0], -points[i][1]))
    survivors: List[int] = []
    best_y_strictly_left = float("-inf")   # max y among strictly greater x
    index = 0
    while index < len(order):
        # Process a group of equal x together.
        group_start = index
        x = points[order[index]][0]
        group_max_y = float("-inf")
        while index < len(order) and points[order[index]][0] == x:
            group_max_y = max(group_max_y, points[order[index]][1])
            index += 1
        for position in range(group_start, index):
            candidate = order[position]
            y = points[candidate][1]
            if y < group_max_y:
                continue  # dominated within the group
            if y < best_y_strictly_left:
                continue  # dominated by a point further right
            if y == best_y_strictly_left:
                # A point with strictly greater x and equal y dominates.
                continue
            survivors.append(candidate)
        best_y_strictly_left = max(best_y_strictly_left, group_max_y)
    return sorted(survivors)


def pareto_front(points: Sequence[Point]) -> List[Point]:
    """The non-dominated points themselves (sorted by first coordinate)."""
    return sorted(
        (points[i] for i in pareto_indices(points)), key=lambda p: p[0]
    )
