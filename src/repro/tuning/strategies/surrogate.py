"""Model-based search: an additive surrogate with argmin acquisition.

A deliberately simple "Bayesian-lite" searcher: fit a factorized
additive effect model on the log of the measured times (pure Python,
deterministic — no BLAS, no floating-point reduction-order surprises),
then measure the unmeasured candidate the model predicts fastest, with
an epsilon of random exploration to keep the model honest.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

from repro.tuning.engine import EvaluatedConfig
from repro.tuning.space import Configuration
from repro.tuning.strategies.base import BudgetedRun, PoolGeometry, SearchStrategy

__all__ = ["SurrogateSearch"]

#: shrinkage pseudo-count: effect estimates divide by (n + SHRINKAGE),
#: pulling thinly-observed parameter values toward the global mean
SHRINKAGE = 1.0


class SurrogateSearch(SearchStrategy):
    """Fit-predict-measure loop over the candidate pool.

    Starts from a seeded random sample, then alternates: refit the
    additive model on everything measured so far; pick the unmeasured
    pool member with the lowest predicted time (first-in-pool-order
    tie-break), or with probability ``explore`` a random unmeasured
    one; measure it; repeat until the budget is spent.
    """

    name = "surrogate"

    def search(
        self,
        run: BudgetedRun,
        rng: random.Random,
        *,
        init_sample: int = 0,
        explore: float = 0.1,
        passes: int = 2,
    ) -> None:
        pool = run.pool_configs
        geometry = PoolGeometry(pool)
        if not init_sample:
            init_sample = max(4, len(geometry.names) + 1)
        count = min(init_sample, len(pool), run.budget)
        starts = rng.sample(range(len(pool)), count)
        run.measure([pool[i] for i in starts])
        while not run.exhausted:
            fresh = run.unmeasured()
            if not fresh:
                return
            if rng.random() < explore:
                candidate = fresh[rng.randrange(len(fresh))]
            else:
                mean, effects = self._fit(run.timed, geometry, passes)
                candidate = min(
                    enumerate(fresh),
                    key=lambda pair: (
                        self._predict(pair[1], mean, effects), pair[0]
                    ),
                )[1]
            run.measure([candidate])

    @staticmethod
    def _fit(
        timed: List[EvaluatedConfig],
        geometry: PoolGeometry,
        passes: int,
    ) -> "tuple":
        """Backfit per-axis additive effects on log seconds."""
        logs = [math.log(max(entry.seconds, 1e-300)) for entry in timed]
        mean = sum(logs) / len(logs)
        effects: Dict[str, Dict[object, float]] = {
            name: {} for name in geometry.names
        }
        for _ in range(passes):
            for name in geometry.names:
                sums: Dict[object, float] = {}
                counts: Dict[object, int] = {}
                for entry, log_seconds in zip(timed, logs):
                    residual = log_seconds - mean
                    for other in geometry.names:
                        if other != name:
                            residual -= effects[other].get(
                                entry.config[other], 0.0
                            )
                    value = entry.config[name]
                    sums[value] = sums.get(value, 0.0) + residual
                    counts[value] = counts.get(value, 0) + 1
                effects[name] = {
                    value: sums[value] / (counts[value] + SHRINKAGE)
                    for value in sums
                }
        return mean, effects

    @staticmethod
    def _predict(
        config: Configuration,
        mean: float,
        effects: Dict[str, Dict[object, float]],
    ) -> float:
        predicted = mean
        for name, table in effects.items():
            predicted += table.get(config[name], 0.0)
        return predicted
