"""The strategy registry: one table, every consumer.

Both the harness ``--strategies`` choices and the service daemon's
``parse_sweep_request`` validation derive from :data:`SPECS` — add a
:class:`StrategySpec` here and the new strategy appears in the CLI, is
accepted (and validated) by the daemon, and is picked up by the
registry drift tests, with no other list to update.

Two kinds of strategy live side by side:

* ``selection`` — the classic paper strategies whose timed subset is a
  pure function of the static metrics; they dispatch through
  :func:`repro.tuning.search.select_timed`.
* ``adaptive`` — the zoo: budgeted algorithms that decide the next
  measurement from the previous ones.  Each is implemented by a
  :class:`~repro.tuning.strategies.base.SearchStrategy` subclass named
  by ``loader`` and imported lazily, so importing this module (which
  :mod:`repro.tuning.search` does to build ``STRATEGIES``) never pulls
  in the strategy implementations and cannot create an import cycle.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "ADAPTIVE_FIELDS",
    "RESTRICT_MODES",
    "SPECS",
    "StrategyError",
    "StrategySpec",
    "adaptive_strategy_names",
    "build_strategy",
    "get_spec",
    "request_fields",
    "request_kwargs",
    "selection_strategy_names",
    "strategy_names",
]


class StrategyError(ValueError):
    """A strategy name or parameterization that cannot be honored."""


#: the composition axis every adaptive strategy supports: search the
#: whole valid space, or only the Pareto-pruned subset (the paper's
#: pruning applied as a pre-filter to a modern search algorithm)
RESTRICT_MODES = ("full", "pareto")

#: request fields shared by every adaptive strategy
ADAPTIVE_FIELDS = ("seed", "budget", "restrict")


@dataclasses.dataclass(frozen=True)
class StrategySpec:
    """One registered search strategy."""

    name: str
    #: "selection" (timed subset is a pure function of the metrics) or
    #: "adaptive" (budgeted; decides measurements from prior results)
    kind: str
    summary: str
    #: request payload fields this strategy accepts beyond the base set
    fields: Tuple[str, ...] = ()
    #: "module:Class" for adaptive strategies, imported lazily
    loader: Optional[str] = None
    #: extra positive-integer tuning knobs: (field, minimum) pairs
    int_knobs: Tuple[Tuple[str, int], ...] = ()

    @property
    def is_adaptive(self) -> bool:
        return self.kind == "adaptive"


def _adaptive(
    name: str,
    summary: str,
    loader: str,
    int_knobs: Tuple[Tuple[str, int], ...] = (),
) -> StrategySpec:
    return StrategySpec(
        name=name,
        kind="adaptive",
        summary=summary,
        fields=ADAPTIVE_FIELDS + tuple(knob for knob, _ in int_knobs),
        loader=loader,
        int_knobs=int_knobs,
    )


#: the registry itself, in presentation order: paper strategies first,
#: then the zoo
SPECS: Tuple[StrategySpec, ...] = (
    StrategySpec(
        name="exhaustive",
        kind="selection",
        summary="time every valid configuration",
    ),
    StrategySpec(
        name="pareto",
        kind="selection",
        summary="time only the Pareto-optimal subset of the metric plot",
        fields=("screen_bandwidth_bound",),
    ),
    StrategySpec(
        name="pareto+cluster",
        kind="selection",
        summary="Pareto pruning plus one representative per metric cluster",
        fields=("relative_tolerance", "seed"),
    ),
    StrategySpec(
        name="random",
        kind="selection",
        summary="time a uniform random sample of the valid space",
        fields=("sample_size", "seed"),
    ),
    _adaptive(
        "anneal",
        "simulated annealing over one-parameter neighbor moves",
        "repro.tuning.strategies.anneal:SimulatedAnnealing",
    ),
    _adaptive(
        "genetic",
        "genetic search: tournaments, uniform crossover, mutation",
        "repro.tuning.strategies.genetic:GeneticSearch",
        int_knobs=(("population", 2),),
    ),
    _adaptive(
        "swarm",
        "particle swarm over per-parameter value indices",
        "repro.tuning.strategies.swarm:ParticleSwarm",
        int_knobs=(("particles", 2),),
    ),
    _adaptive(
        "basin",
        "basin hopping: greedy descent plus Metropolis-accepted jumps",
        "repro.tuning.strategies.basin:BasinHopping",
    ),
    _adaptive(
        "surrogate",
        "model-based search: additive surrogate fit, argmin acquisition",
        "repro.tuning.strategies.surrogate:SurrogateSearch",
        int_knobs=(("init_sample", 1),),
    ),
)

_BY_NAME: Dict[str, StrategySpec] = {spec.name: spec for spec in SPECS}


def strategy_names() -> Tuple[str, ...]:
    """Every registered strategy name, in registry order."""
    return tuple(spec.name for spec in SPECS)


def selection_strategy_names() -> Tuple[str, ...]:
    return tuple(spec.name for spec in SPECS if spec.kind == "selection")


def adaptive_strategy_names() -> Tuple[str, ...]:
    return tuple(spec.name for spec in SPECS if spec.kind == "adaptive")


def get_spec(name: str) -> StrategySpec:
    spec = _BY_NAME.get(name)
    if spec is None:
        raise StrategyError(
            f"unknown strategy {name!r}; expected one of "
            f"{list(strategy_names())}"
        )
    return spec


def build_strategy(name: str):
    """Instantiate the named adaptive strategy (lazily imported)."""
    spec = get_spec(name)
    if not spec.is_adaptive:
        raise StrategyError(
            f"{name!r} is a selection strategy, not an adaptive one; "
            "drive it through select_timed or the strategy functions"
        )
    module_name, _, class_name = spec.loader.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, class_name)()


def request_fields(spec: StrategySpec) -> Tuple[str, ...]:
    """Payload fields the strategy accepts beyond the base request set."""
    return spec.fields


def request_kwargs(spec: StrategySpec, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and extract the strategy's keyword arguments from a
    request payload.

    This is the single validation routine behind the daemon's
    ``parse_sweep_request`` and the ``run-local`` CLI — raises
    :class:`StrategyError` naming exactly what was wrong.  The returned
    kwargs feed :func:`repro.tuning.search.select_timed` (selection) or
    :meth:`SearchStrategy.run` (adaptive) unchanged on both paths, so
    daemon and CLI cannot drift.
    """
    if spec.kind == "selection":
        return _selection_kwargs(spec.name, payload)
    return _adaptive_kwargs(spec, payload)


def _selection_kwargs(name: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    if name == "pareto":
        screen = payload.get("screen_bandwidth_bound", False)
        if not isinstance(screen, bool):
            raise StrategyError("screen_bandwidth_bound must be a boolean")
        kwargs["screen_bandwidth_bound"] = screen
    elif name == "pareto+cluster":
        kwargs["relative_tolerance"] = float(
            payload.get("relative_tolerance", 1e-9)
        )
        kwargs["seed"] = int(payload.get("seed", 0))
    elif name == "random":
        sample_size = payload.get("sample_size")
        if not isinstance(sample_size, int) or sample_size < 1:
            raise StrategyError(
                "random strategy needs a positive integer sample_size"
            )
        kwargs["sample_size"] = sample_size
        kwargs["seed"] = int(payload.get("seed", 0))
    return kwargs


def _adaptive_kwargs(
    spec: StrategySpec, payload: Dict[str, Any]
) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {"seed": int(payload.get("seed", 0))}
    budget = payload.get("budget")
    if budget is not None:
        if isinstance(budget, bool) or not isinstance(budget, int) or budget < 1:
            raise StrategyError("budget must be a positive integer")
        kwargs["budget"] = budget
    restrict = payload.get("restrict", "full")
    if restrict not in RESTRICT_MODES:
        raise StrategyError(
            f"restrict must be one of {list(RESTRICT_MODES)}, "
            f"not {restrict!r}"
        )
    kwargs["restrict"] = restrict
    for knob, minimum in spec.int_knobs:
        value = payload.get(knob)
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
            raise StrategyError(f"{knob} must be an integer >= {minimum}")
        kwargs[knob] = value
    return kwargs
