"""The adaptive-strategy interface and its budgeted-run machinery.

Contract (see ``docs/search_strategies.md``):

* every strategy runs through an
  :class:`~repro.tuning.engine.ExecutionEngine`, so static metrics,
  simulator caches, scheduler fault tolerance, and the persistent
  store come for free and no configuration is ever measured twice;
* determinism under an explicit ``seed``: all randomness flows from
  one ``random.Random(seed)``, no draw depends on timing or
  measurement latency, so a seeded run reproduces exactly — serial or
  pooled (the engine guarantees pooled timing is bit-identical);
* a hard evaluation ``budget``: distinct measured configurations,
  never exceeded, defaulting to 25% of the valid space;
* paper-style composition via ``restrict``: ``"full"`` searches every
  valid configuration, ``"pareto"`` only the Pareto-pruned subset;
* the per-evaluation trajectory — ``(evaluations, best_seconds)``
  after every measurement — is recorded on the
  :class:`~repro.tuning.search.SearchResult`.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.tuning.engine import (
    Evaluate,
    EvaluatedConfig,
    ExecutionEngine,
    Simulate,
)
from repro.tuning.search import SearchResult, best_entry, select_timed
from repro.tuning.space import Configuration

__all__ = [
    "DEFAULT_BUDGET_FRACTION",
    "BudgetedRun",
    "PoolGeometry",
    "SearchStrategy",
]

#: default evaluation budget as a fraction of the valid space — the
#: acceptance bar the zoo benchmark gates on (<= 25% of full-space
#: evaluations to get within 5% of the optimum)
DEFAULT_BUDGET_FRACTION = 0.25

Progress = Callable[[int, int], None]


class PoolGeometry:
    """Axis structure of a candidate pool, for neighborhood moves.

    ``axes`` maps each parameter name to its distinct values in pool
    order (deterministic: pools preserve evaluation order, which
    preserves space construction order); ``members`` is the pool as a
    set for O(1) membership repair.
    """

    def __init__(self, configs: Sequence[Configuration]) -> None:
        if not configs:
            raise ValueError("pool geometry needs at least one configuration")
        self.names: List[str] = list(configs[0])
        self.axes: Dict[str, List] = {
            name: list(dict.fromkeys(config[name] for config in configs))
            for name in self.names
        }
        self.members = set(configs)

    def value_index(self, config: Configuration) -> Tuple[int, ...]:
        """The configuration as per-axis value indices."""
        return tuple(
            self.axes[name].index(config[name]) for name in self.names
        )

    def from_indices(self, indices: Sequence[int]) -> Configuration:
        return Configuration({
            name: self.axes[name][index]
            for name, index in zip(self.names, indices)
        })


class BudgetedRun:
    """Bookkeeping for one budgeted search: dedupe, budget, trajectory.

    Strategies call :meth:`measure` with candidate batches; the run
    silently drops already-measured candidates (a revisit costs no
    budget — the engine memo would serve it anyway), clips the batch to
    the remaining budget, and appends one ``(evaluations,
    best_so_far_seconds)`` trajectory point per *new* measurement.
    Batches go through ``engine.time_entries`` so a pooled engine
    fans each batch out across its workers.
    """

    def __init__(
        self,
        engine: ExecutionEngine,
        pool: Sequence[EvaluatedConfig],
        budget: int,
        progress: Optional[Progress] = None,
    ) -> None:
        self.engine = engine
        self.pool: List[EvaluatedConfig] = list(pool)
        self.pool_configs: List[Configuration] = [e.config for e in self.pool]
        self._entry_for: Dict[Configuration, EvaluatedConfig] = {
            entry.config: entry for entry in self.pool
        }
        self.budget = budget
        self.timed: List[EvaluatedConfig] = []
        self.trajectory: List[Tuple[int, float]] = []
        self._measured: Dict[Configuration, float] = {}
        self._best: Optional[EvaluatedConfig] = None
        self._progress = progress
        if progress is not None:
            progress(0, budget)

    # ------------------------------------------------------------------
    # State queries.

    @property
    def remaining(self) -> int:
        return self.budget - len(self.timed)

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    @property
    def best(self) -> Optional[EvaluatedConfig]:
        return self._best

    def seconds(self, config: Configuration) -> Optional[float]:
        """Measured seconds, or ``None`` if not yet measured."""
        return self._measured.get(config)

    def is_measured(self, config: Configuration) -> bool:
        return config in self._measured

    def in_pool(self, config: Configuration) -> bool:
        return config in self._entry_for

    def unmeasured(self) -> List[Configuration]:
        """Pool members without a measurement, in pool order."""
        return [
            config for config in self.pool_configs
            if config not in self._measured
        ]

    # ------------------------------------------------------------------
    # Measurement.

    def measure(self, configs: Sequence[Configuration]) -> None:
        """Measure new in-pool candidates, within the remaining budget.

        Duplicates (within the batch or against earlier measurements)
        and out-of-pool candidates are dropped; the rest is clipped to
        the remaining budget and measured in one engine batch.
        """
        batch: List[EvaluatedConfig] = []
        for config in configs:
            if len(batch) >= self.remaining:
                break
            if config in self._measured:
                continue
            entry = self._entry_for.get(config)
            if entry is None or any(e.config == config for e in batch):
                continue
            batch.append(entry)
        if not batch:
            return
        self.engine.time_entries(batch)
        for entry in batch:
            self._measured[entry.config] = entry.seconds
            self.timed.append(entry)
            if self._best is None or entry.seconds < self._best.seconds:
                self._best = entry
            self.trajectory.append((len(self.timed), self._best.seconds))
        if self._progress is not None:
            self._progress(len(self.timed), self.budget)

    def force_explore(self, rng: random.Random) -> Optional[Configuration]:
        """Measure one random unmeasured pool member — the stall escape
        every move-based strategy uses when its proposals keep landing
        on already-measured configurations."""
        fresh = self.unmeasured()
        if not fresh or self.exhausted:
            return None
        choice = fresh[rng.randrange(len(fresh))]
        self.measure([choice])
        return choice


class SearchStrategy(abc.ABC):
    """One budgeted search algorithm; subclasses implement :meth:`search`.

    The template method :meth:`run` owns everything the algorithms
    share — static evaluation, pool restriction, budget resolution,
    result assembly — so a subclass only decides *which configuration
    to measure next*.
    """

    #: the registry name, recorded on the SearchResult
    name: str = ""

    def run(
        self,
        configs: Sequence[Configuration],
        engine: Optional[ExecutionEngine] = None,
        *,
        evaluate: Optional[Evaluate] = None,
        simulate: Optional[Simulate] = None,
        seed: int = 0,
        budget: Optional[int] = None,
        restrict: str = "full",
        progress: Optional[Progress] = None,
        **params,
    ) -> SearchResult:
        """Execute the strategy over ``configs``.

        ``budget`` counts distinct measured configurations and defaults
        to 25% of the valid space (at least 1), clamped to the pool
        size.  ``restrict="pareto"`` searches only the Pareto-pruned
        subset — exactly what ``select_timed("pareto", ...)`` would
        time.  ``progress(done, total)`` fires at batch boundaries; a
        caller that needs cancellation raises from it (the service
        daemon raises :class:`~repro.service.registry.SweepCancelled`).
        """
        engine = _resolve_engine(engine, evaluate, simulate)
        evaluated = engine.evaluate_all(configs)
        pool = _restrict_pool(evaluated, restrict)
        valid_count = sum(1 for e in evaluated if e.is_valid)
        resolved = _resolve_budget(budget, valid_count, len(pool))
        run = BudgetedRun(engine, pool, resolved, progress)
        rng = random.Random(seed)
        if pool and resolved > 0:
            self.search(run, rng, **params)
        total = 0.0
        for entry in run.timed:
            total += entry.seconds
        return SearchResult(
            strategy=self.name,
            evaluated=evaluated,
            timed=run.timed,
            best=best_entry(run.timed, self.name),
            measured_seconds=total,
            trajectory=list(run.trajectory),
            budget=resolved,
            seed=seed,
            restrict=restrict,
            pool_size=len(pool),
        )

    @abc.abstractmethod
    def search(self, run: BudgetedRun, rng: random.Random, **params) -> None:
        """Spend ``run``'s budget; called once, with a seeded RNG."""


def _resolve_engine(
    engine: Optional[ExecutionEngine],
    evaluate: Optional[Evaluate],
    simulate: Optional[Simulate],
) -> ExecutionEngine:
    if engine is not None:
        return engine
    if evaluate is None or simulate is None:
        raise TypeError(
            "adaptive strategies need either an engine= or both "
            "evaluate and simulate callables"
        )
    return ExecutionEngine(evaluate, simulate)


def _restrict_pool(
    evaluated: List[EvaluatedConfig], restrict: str
) -> List[EvaluatedConfig]:
    if restrict == "full":
        return [e for e in evaluated if e.is_valid]
    if restrict == "pareto":
        return select_timed("pareto", evaluated)
    raise ValueError(
        f"unknown restrict mode {restrict!r}; expected 'full' or 'pareto'"
    )


def _resolve_budget(
    budget: Optional[int], valid_count: int, pool_size: int
) -> int:
    if budget is None:
        budget = max(1, round(DEFAULT_BUDGET_FRACTION * valid_count))
    elif budget < 1:
        raise ValueError("budget must be a positive integer")
    return min(budget, pool_size)
