"""Simulated annealing over one-parameter neighbor moves."""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.tuning.space import Configuration
from repro.tuning.strategies.base import BudgetedRun, PoolGeometry, SearchStrategy

__all__ = ["SimulatedAnnealing"]

#: proposals landing on already-measured configurations in a row
#: before the walk force-measures a fresh random pool member
STALL_LIMIT = 25


class SimulatedAnnealing(SearchStrategy):
    """Metropolis walk with a geometric cooling schedule.

    A move changes one parameter to another of its pool values; an
    uphill move of relative slowdown ``d`` is accepted with probability
    ``exp(-d / T)``, where the temperature ``T`` cools geometrically
    from ``t_initial`` to ``t_final`` over the budget.  Revisits cost
    no budget (the run memo serves them), so the walk may cross its own
    path freely; a stall counter keeps a nearly-exhausted neighborhood
    from spinning without spending budget.
    """

    name = "anneal"

    def search(
        self,
        run: BudgetedRun,
        rng: random.Random,
        *,
        t_initial: float = 0.5,
        t_final: float = 0.02,
        neighbor_tries: int = 8,
    ) -> None:
        geometry = PoolGeometry(run.pool_configs)
        current = run.pool_configs[rng.randrange(len(run.pool_configs))]
        run.measure([current])
        stalled = 0
        while not run.exhausted:
            fraction = len(run.timed) / run.budget
            temperature = t_initial * (t_final / t_initial) ** fraction
            candidate = self._neighbor(geometry, current, rng, neighbor_tries)
            if candidate is None or stalled >= STALL_LIMIT:
                candidate = run.force_explore(rng)
                stalled = 0
                if candidate is None:
                    return
            spent = not run.is_measured(candidate)
            if spent:
                run.measure([candidate])
            candidate_seconds = run.seconds(candidate)
            if candidate_seconds is None:  # budget ran out mid-measure
                return
            stalled = 0 if spent else stalled + 1
            current_seconds = run.seconds(current)
            if candidate_seconds <= current_seconds:
                current = candidate
            else:
                slowdown = (candidate_seconds - current_seconds) / current_seconds
                if rng.random() < math.exp(-slowdown / temperature):
                    current = candidate

    @staticmethod
    def _neighbor(
        geometry: PoolGeometry,
        current: Configuration,
        rng: random.Random,
        tries: int,
    ) -> Optional[Configuration]:
        """A random in-pool one-axis move, or ``None`` after ``tries``."""
        for _ in range(tries):
            axis = geometry.names[rng.randrange(len(geometry.names))]
            values = geometry.axes[axis]
            if len(values) < 2:
                continue
            value = values[rng.randrange(len(values))]
            if value == current[axis]:
                continue
            candidate = current.replace(**{axis: value})
            if candidate in geometry.members:
                return candidate
        return None
