"""Basin hopping: greedy local descent plus Metropolis-accepted jumps."""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.tuning.space import Configuration
from repro.tuning.strategies.base import BudgetedRun, PoolGeometry, SearchStrategy

__all__ = ["BasinHopping"]

#: hops landing on already-measured configurations in a row before the
#: search force-measures a fresh random pool member
STALL_LIMIT = 10


class BasinHopping(SearchStrategy):
    """Descend to a local minimum, hop, repeat.

    The descent step measures every axis-adjacent neighbor (value index
    ±1, in-pool only) as one engine batch and moves to the best one
    while it improves; at a local minimum the search hops — perturbs
    ``hop_axes`` random parameters to random values — and accepts the
    hop with the Metropolis rule at fixed ``hop_temperature``, so a bad
    basin can still be escaped.
    """

    name = "basin"

    def search(
        self,
        run: BudgetedRun,
        rng: random.Random,
        *,
        hop_axes: int = 2,
        hop_temperature: float = 0.1,
        hop_tries: int = 8,
    ) -> None:
        geometry = PoolGeometry(run.pool_configs)
        current = run.pool_configs[rng.randrange(len(run.pool_configs))]
        run.measure([current])
        stalled = 0
        while not run.exhausted:
            current = self._descend(run, geometry, current)
            if run.exhausted:
                return
            hop = self._hop(geometry, current, rng, hop_axes, hop_tries)
            if hop is None or stalled >= STALL_LIMIT:
                hop = run.force_explore(rng)
                stalled = 0
                if hop is None:
                    return
            spent = not run.is_measured(hop)
            if spent:
                run.measure([hop])
            hop_seconds = run.seconds(hop)
            if hop_seconds is None:  # budget ran out mid-measure
                return
            stalled = 0 if spent else stalled + 1
            current_seconds = run.seconds(current)
            if hop_seconds <= current_seconds:
                current = hop
            else:
                slowdown = (hop_seconds - current_seconds) / current_seconds
                if rng.random() < math.exp(-slowdown / hop_temperature):
                    current = hop

    @staticmethod
    def _descend(
        run: BudgetedRun, geometry: PoolGeometry, current: Configuration
    ) -> Configuration:
        """Greedy best-neighbor descent; returns the local minimum."""
        while not run.exhausted:
            neighbors = BasinHopping._neighbors(geometry, current)
            run.measure([n for n in neighbors if not run.is_measured(n)])
            best, best_seconds = current, run.seconds(current)
            for neighbor in neighbors:
                seconds = run.seconds(neighbor)
                if seconds is not None and seconds < best_seconds:
                    best, best_seconds = neighbor, seconds
            if best == current:
                return current
            current = best
        return current

    @staticmethod
    def _neighbors(
        geometry: PoolGeometry, current: Configuration
    ) -> List[Configuration]:
        """Axis-adjacent in-pool neighbors, in deterministic axis order."""
        found: List[Configuration] = []
        for name in geometry.names:
            values = geometry.axes[name]
            at = values.index(current[name])
            for step in (-1, 1):
                position = at + step
                if 0 <= position < len(values):
                    candidate = current.replace(**{name: values[position]})
                    if candidate in geometry.members:
                        found.append(candidate)
        return found

    @staticmethod
    def _hop(
        geometry: PoolGeometry,
        current: Configuration,
        rng: random.Random,
        hop_axes: int,
        tries: int,
    ) -> Optional[Configuration]:
        """A random multi-axis in-pool jump, or ``None`` after ``tries``."""
        axes = min(hop_axes, len(geometry.names))
        for _ in range(tries):
            chosen = rng.sample(geometry.names, axes)
            updates = {}
            for name in chosen:
                values = geometry.axes[name]
                updates[name] = values[rng.randrange(len(values))]
            candidate = current.replace(**updates)
            if candidate != current and candidate in geometry.members:
                return candidate
        return None
