"""Genetic search: tournaments, uniform crossover, per-axis mutation."""

from __future__ import annotations

import random
from typing import List

from repro.tuning.engine import EvaluatedConfig
from repro.tuning.space import Configuration
from repro.tuning.strategies.base import BudgetedRun, PoolGeometry, SearchStrategy

__all__ = ["GeneticSearch"]

#: crossover/mutation attempts per wanted child before giving up on
#: producing an unseen configuration and force-exploring instead
ATTEMPTS_PER_CHILD = 10


class GeneticSearch(SearchStrategy):
    """Elitist generational GA over the candidate pool.

    Each generation ranks every measurement so far (stable sort on
    seconds — ties break by measurement order, keeping the run
    deterministic), takes the best ``population`` as parents, and
    breeds children by tournament selection, uniform crossover, and
    per-axis mutation.  Children outside the pool repair to a random
    pool member; children already measured are discarded (a duplicate
    would cost no budget and learn nothing).  Generations are measured
    as one engine batch, so a pooled engine fans them out.
    """

    name = "genetic"

    def search(
        self,
        run: BudgetedRun,
        rng: random.Random,
        *,
        population: int = 8,
        tournament: int = 2,
        mutation_rate: float = 0.0,
    ) -> None:
        pool = run.pool_configs
        geometry = PoolGeometry(pool)
        if not mutation_rate:
            mutation_rate = 1.0 / max(1, len(geometry.names))
        size = min(population, len(pool), run.budget)
        seeds = rng.sample(range(len(pool)), size)
        run.measure([pool[i] for i in seeds])
        while not run.exhausted:
            ranked = sorted(run.timed, key=lambda entry: entry.seconds)
            parents = ranked[:size]
            children = self._breed(
                run, rng, geometry, parents, size, tournament, mutation_rate
            )
            if not children:
                if run.force_explore(rng) is None:
                    return
                continue
            run.measure(children)

    @staticmethod
    def _breed(
        run: BudgetedRun,
        rng: random.Random,
        geometry: PoolGeometry,
        parents: List[EvaluatedConfig],
        size: int,
        tournament: int,
        mutation_rate: float,
    ) -> List[Configuration]:
        def pick_parent() -> Configuration:
            contenders = [
                parents[rng.randrange(len(parents))]
                for _ in range(min(tournament, len(parents)))
            ]
            return min(contenders, key=lambda entry: entry.seconds).config

        children: List[Configuration] = []
        attempts = 0
        wanted = min(size, run.remaining)
        while len(children) < wanted and attempts < wanted * ATTEMPTS_PER_CHILD:
            attempts += 1
            mother, father = pick_parent(), pick_parent()
            genes = {}
            for name in geometry.names:
                genes[name] = (mother if rng.random() < 0.5 else father)[name]
                if rng.random() < mutation_rate:
                    values = geometry.axes[name]
                    genes[name] = values[rng.randrange(len(values))]
            child = Configuration(genes)
            if child not in geometry.members:
                child = run.pool_configs[rng.randrange(len(run.pool_configs))]
            if run.is_measured(child) or child in children:
                continue
            children.append(child)
        return children
