"""The search-strategy zoo.

This package hosts the budgeted ("adaptive") search algorithms —
simulated annealing, genetic, particle swarm, basin hopping, and a
surrogate-model searcher — behind the :class:`SearchStrategy`
interface, plus the registry that is the single source of truth for
strategy names across the harness CLI and the service daemon.

Importing the package pulls in only the registry; the strategy
implementations (and :mod:`~repro.tuning.strategies.base`, which
imports :mod:`repro.tuning.search`) load lazily on first attribute
access, so :mod:`repro.tuning.search` can derive ``STRATEGIES`` from
the registry without an import cycle.
"""

from repro.tuning.strategies.registry import (
    ADAPTIVE_FIELDS,
    RESTRICT_MODES,
    SPECS,
    StrategyError,
    StrategySpec,
    adaptive_strategy_names,
    build_strategy,
    get_spec,
    request_fields,
    request_kwargs,
    selection_strategy_names,
    strategy_names,
)

__all__ = [
    "ADAPTIVE_FIELDS",
    "BudgetedRun",
    "DEFAULT_BUDGET_FRACTION",
    "RESTRICT_MODES",
    "SPECS",
    "SearchStrategy",
    "StrategyError",
    "StrategySpec",
    "adaptive_strategy_names",
    "build_strategy",
    "get_spec",
    "request_fields",
    "request_kwargs",
    "selection_strategy_names",
    "strategy_names",
]

_LAZY_BASE = ("SearchStrategy", "BudgetedRun", "DEFAULT_BUDGET_FRACTION")


def __getattr__(name):
    if name in _LAZY_BASE:
        from repro.tuning.strategies import base

        return getattr(base, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
