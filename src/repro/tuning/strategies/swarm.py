"""Particle swarm optimization over per-parameter value indices."""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.tuning.space import Configuration
from repro.tuning.strategies.base import BudgetedRun, PoolGeometry, SearchStrategy

__all__ = ["ParticleSwarm"]


class ParticleSwarm(SearchStrategy):
    """PSO on the integer lattice of per-axis value indices.

    Each particle's position is a vector of value indices (one per
    parameter); velocities update with the standard inertia /
    cognitive / social rule, positions round and clamp back onto the
    lattice, and off-pool points snap to the nearest pool member by L1
    index distance (first-in-pool-order tie-break — deterministic).
    Each iteration measures the whole swarm as one engine batch.
    """

    name = "swarm"

    def search(
        self,
        run: BudgetedRun,
        rng: random.Random,
        *,
        particles: int = 6,
        inertia: float = 0.6,
        cognitive: float = 1.2,
        social: float = 1.6,
    ) -> None:
        pool = run.pool_configs
        geometry = PoolGeometry(pool)
        lattice: List[Tuple[Tuple[int, ...], Configuration]] = [
            (geometry.value_index(config), config) for config in pool
        ]
        count = min(particles, len(pool), run.budget)
        starts = rng.sample(range(len(pool)), count)
        positions = [list(lattice[i][0]) for i in starts]
        velocities = [
            [rng.uniform(-1.0, 1.0) for _ in geometry.names]
            for _ in range(count)
        ]
        run.measure([pool[i] for i in starts])

        personal: List[Tuple[Configuration, float]] = []
        for i in starts:
            config = pool[i]
            seconds = run.seconds(config)
            if seconds is None:  # budget smaller than the swarm
                seconds = float("inf")
            personal.append((config, seconds))
        best_config, best_seconds = min(
            personal, key=lambda pair: pair[1]
        )

        while not run.exhausted:
            for index in range(count):
                if run.exhausted:
                    return
                position = positions[index]
                velocity = velocities[index]
                own = geometry.value_index(personal[index][0])
                goal = geometry.value_index(best_config)
                for axis in range(len(geometry.names)):
                    r_cognitive, r_social = rng.random(), rng.random()
                    velocity[axis] = (
                        inertia * velocity[axis]
                        + cognitive * r_cognitive * (own[axis] - position[axis])
                        + social * r_social * (goal[axis] - position[axis])
                    )
                    moved = position[axis] + velocity[axis]
                    limit = len(geometry.axes[geometry.names[axis]]) - 1
                    position[axis] = min(limit, max(0, int(moved + 0.5)))
                candidate = self._snap(lattice, position)
                if run.is_measured(candidate):
                    candidate = run.force_explore(rng)
                    if candidate is None:
                        return
                else:
                    run.measure([candidate])
                seconds = run.seconds(candidate)
                if seconds is None:
                    return
                positions[index] = list(geometry.value_index(candidate))
                if seconds < personal[index][1]:
                    personal[index] = (candidate, seconds)
                if seconds < best_seconds:
                    best_config, best_seconds = candidate, seconds

    @staticmethod
    def _snap(
        lattice: List[Tuple[Tuple[int, ...], Configuration]],
        position: List[int],
    ) -> Configuration:
        """Nearest pool member by L1 index distance (stable tie-break)."""
        best_config = lattice[0][1]
        best_distance = None
        for indices, config in lattice:
            distance = sum(
                abs(a - b) for a, b in zip(indices, position)
            )
            if best_distance is None or distance < best_distance:
                best_distance, best_config = distance, config
                if distance == 0:
                    break
        return best_config
