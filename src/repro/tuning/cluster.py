"""Metric clustering (paper Section 5.2, Figure 6(b)).

"configurations tend to be clustered in groups ... when several
configurations have identical or nearly identical metrics, it may be
sufficient to randomly select a single configuration from that
cluster, rather than evaluating all the configurations."
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.tuning.search import EvaluatedConfig


def _cluster_key(entry: EvaluatedConfig, relative_tolerance: float) -> Tuple:
    def quantize(value: float) -> float:
        if value == 0.0 or relative_tolerance == 0.0:
            return value
        # Snap to a relative grid so near-identical metrics collide.
        import math

        magnitude = 10 ** math.floor(math.log10(abs(value)))
        step = magnitude * relative_tolerance
        return round(value / step) * step

    metrics = entry.metrics
    return (quantize(metrics.efficiency), quantize(metrics.utilization))


def cluster_by_metrics(
    entries: Sequence[EvaluatedConfig],
    relative_tolerance: float = 1e-9,
) -> List[List[EvaluatedConfig]]:
    """Group valid configurations whose metric pairs coincide."""
    groups: Dict[Tuple, List[EvaluatedConfig]] = {}
    for entry in entries:
        if not entry.is_valid:
            continue
        groups.setdefault(_cluster_key(entry, relative_tolerance), []).append(entry)
    return sorted(groups.values(), key=len, reverse=True)


def cluster_representatives(
    entries: Sequence[EvaluatedConfig],
    relative_tolerance: float = 1e-9,
    seed: int = 0,
) -> List[EvaluatedConfig]:
    """One randomly-chosen configuration per metric cluster."""
    rng = random.Random(seed)
    return [
        rng.choice(cluster)
        for cluster in cluster_by_metrics(entries, relative_tolerance)
    ]
