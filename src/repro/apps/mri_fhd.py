"""MRI-FHD — computation of F^H d for non-Cartesian MRI reconstruction.

Each voxel accumulates, over every k-space sample, a sine/cosine term
of the phase 2*pi*(kx*x + ky*y + kz*z) weighted by the sample's
complex density (Stone et al. [24]).  Sample data lives in constant
memory; sin/cos run on the SFUs.

Optimization space (Table 4): block size, unroll factor, work per
kernel invocation — 5 x 5 x 7 = 175 configurations.  Splitting the
voxel grid across invocations changes neither the per-thread
instruction stream nor the total thread count, so each (block, unroll)
pair yields seven configurations with identical metrics: the clusters
of seven in Figure 6(b).

The ``layout`` option reproduces the Section 5.3 anecdote: the
array-of-structures layout makes deeper unrolling thrash the
single-ported constant cache, degrading performance while the metrics
stay flat.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.apps.base import Application, Arrays, ConfigurationError, Scalars
from repro.arch.memory import MemorySpace
from repro.ir.builder import CTAID_X, TID_X, KernelBuilder
from repro.ir.kernel import Dim3, Kernel
from repro.ir.types import DataType
from repro.metrics.model import MetricReport
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.transforms.pipeline import standard_cleanup
from repro.transforms.unroll import unroll
from repro.tuning.space import ConfigSpace, Configuration

BLOCK_SIZES = (64, 128, 256, 320, 512)
UNROLL_FACTORS = (1, 2, 4, 8, 16)
INVOCATION_SPLITS = (1, 2, 4, 8, 16, 32, 64)
TWO_PI = 2.0 * math.pi

#: Per-launch driver/runtime overhead (seconds).  CUDA 1.0 kernel
#: launches cost a few microseconds; this is what separates the seven
#: otherwise-identical configurations of one metric cluster.
LAUNCH_OVERHEAD_SECONDS = 2.0e-6

GOOD_LAYOUT = "soa"
CONFLICTED_LAYOUT = "aos"


class MriFhd(Application):
    """F^H d accumulation over k-space samples for every voxel."""

    name = "mri-fhd"
    paper_speedup = 228.0
    paper_space_size = 175
    paper_selected = 30
    paper_reduction_percent = 77
    output_names = ("rFHd", "iFHd")

    # libm sin/cos dominate the single-thread baseline (DESIGN.md).
    cpu_effective_ops_per_second = 0.55e9

    def __init__(
        self,
        # Divisible by every (block x invocations x 16 SMs) combination,
        # so launches always fill whole SM waves and the only
        # intra-cluster timing difference is launch overhead.
        num_voxels: int = 2_621_440,
        num_samples: int = 512,
        layout: str = GOOD_LAYOUT,
    ) -> None:
        super().__init__()
        if layout not in (GOOD_LAYOUT, CONFLICTED_LAYOUT):
            raise ValueError(f"unknown layout {layout!r}")
        self.num_voxels = num_voxels
        self.num_samples = num_samples
        self.layout = layout

    # ------------------------------------------------------------------

    def space(self) -> ConfigSpace:
        voxels = self.num_voxels

        def valid(config: Configuration) -> bool:
            per_launch = voxels // config["invocations"]
            if voxels % config["invocations"]:
                return False
            return per_launch % config["block"] == 0

        return ConfigSpace(
            {
                "block": list(BLOCK_SIZES),
                "unroll": list(UNROLL_FACTORS),
                "invocations": list(INVOCATION_SPLITS),
            },
            is_valid=valid,
        )

    def build_kernel(self, config: Configuration) -> Kernel:
        block = config["block"]
        invocations = config["invocations"]
        if block not in BLOCK_SIZES or invocations not in INVOCATION_SPLITS:
            raise ConfigurationError(f"unsupported mri config {config}")
        kernel = self._baseline(block, invocations)
        kernel = unroll(kernel, config["unroll"], label="samples")
        return standard_cleanup(kernel)

    def trace_group_key(self, config: Configuration):
        # The invocation split changes only the grid (voxels per
        # launch); the per-launch kernel body — and therefore the
        # trace program — is a function of (block, unroll) alone, so
        # all seven splits of a pair batch into one replay group.
        return (config["block"], config["unroll"])

    def _baseline(self, block: int, invocations: int) -> Kernel:
        voxels_per_launch = self.num_voxels // invocations
        samples = self.num_samples
        builder = KernelBuilder(
            f"fhd_b{block}_i{invocations}",
            block_dim=Dim3(block),
            grid_dim=Dim3(voxels_per_launch // block),
        )
        coords = builder.param_ptr("coords", DataType.F32)
        kdata = builder.param_ptr("kdata", DataType.F32,
                                  space=MemorySpace.CONSTANT)
        r_out = builder.param_ptr("rFHd", DataType.F32)
        i_out = builder.param_ptr("iFHd", DataType.F32)
        voxel_offset = builder.param_scalar("voxel_offset", DataType.S32)

        local_index = builder.mad(CTAID_X, block, TID_X)
        voxel = builder.add(local_index, voxel_offset)
        x = builder.ld(coords, voxel, offset=0)
        y = builder.ld(coords, voxel, offset=self.num_voxels)
        z = builder.ld(coords, voxel, offset=2 * self.num_voxels)
        r_total = builder.mov(0.0)
        i_total = builder.mov(0.0)

        with builder.loop(0, samples, label="samples") as k:
            if self.layout == GOOD_LAYOUT:
                # Structure of arrays: kx | ky | kz | rMu | iMu planes.
                base, stride = k, samples
            else:
                # Array of structures: 5-float records.
                base, stride = builder.mul(k, 5), 1
            kx = builder.ld(kdata, base, offset=0 * stride)
            ky = builder.ld(kdata, base, offset=1 * stride)
            kz = builder.ld(kdata, base, offset=2 * stride)
            r_mu = builder.ld(kdata, base, offset=3 * stride)
            i_mu = builder.ld(kdata, base, offset=4 * stride)
            t1 = builder.mul(kx, x)
            t2 = builder.mad(ky, y, t1)
            t3 = builder.mad(kz, z, t2)
            arg = builder.mul(t3, TWO_PI)
            cos_arg = builder.cos(arg)
            sin_arg = builder.sin(arg)
            builder.mad(r_mu, cos_arg, r_total, dest=r_total)
            builder.mad(i_mu, sin_arg, r_total, dest=r_total)
            builder.mad(i_mu, cos_arg, i_total, dest=i_total)
            cross = builder.mul(r_mu, sin_arg)
            builder.sub(i_total, cross, dest=i_total)
        builder.st(r_out, voxel, r_total)
        builder.st(i_out, voxel, i_total)
        return builder.finish()

    # ------------------------------------------------------------------
    # Metric/time aggregation across invocations.

    def evaluate(self, config: Configuration) -> MetricReport:
        """Metrics are invocation-independent (the Figure 6(b) clusters).

        The per-thread instruction stream and the total thread count do
        not depend on how the voxel grid is split across launches, so
        the metrics are computed on the single-launch kernel; the base
        class's compile tier then collapses the seven invocation splits
        of each (block, unroll) pair onto one evaluation.
        """
        return super().evaluate(config.replace(invocations=1))

    def sim_config(self, config: Configuration) -> SimConfig:
        if self.layout == GOOD_LAYOUT:
            return DEFAULT_SIM_CONFIG
        # AoS records interleave five streams; unrolling multiplies the
        # distinct lines fighting over the single-ported constant cache.
        import dataclasses

        ways = min(int(config["unroll"]) * 2, 16)
        return dataclasses.replace(
            DEFAULT_SIM_CONFIG, constant_conflict_ways=ways
        )

    def _total_seconds(self, config: Configuration, result) -> float:
        """Whole-computation time: per-launch simulation times the
        invocation count, plus launch overhead.  (``simulate_detailed``
        still reports a single launch.)"""
        invocations = config["invocations"]
        return (
            result.seconds * invocations
            + LAUNCH_OVERHEAD_SECONDS * invocations
        )

    def run_config(self, config, arrays, scalars=None, engine="scalar"):
        """Execute every invocation so all voxels are covered."""
        from repro.interp import launch, launch_vectorized

        runner = {"scalar": launch, "vectorized": launch_vectorized}[engine]
        work = {name: array.copy() for name, array in arrays.items()}
        invocations = config["invocations"]
        voxels_per_launch = self.num_voxels // invocations
        for launch_index in range(invocations):
            runner(self.kernel(config), work,
                   {"voxel_offset": launch_index * voxels_per_launch})
        return {name: work[name] for name in self.output_names}

    # ------------------------------------------------------------------

    def test_instance(self) -> "MriFhd":
        return MriFhd(num_voxels=2048, num_samples=16, layout=self.layout)

    def make_inputs(self, rng: np.random.Generator) -> Tuple[Arrays, Scalars]:
        coords = rng.uniform(-1.0, 1.0, 3 * self.num_voxels).astype(np.float32)
        kdata = rng.uniform(-0.5, 0.5, 5 * self.num_samples).astype(np.float32)
        return (
            {
                "coords": coords,
                "kdata": kdata,
                "rFHd": np.zeros(self.num_voxels, dtype=np.float32),
                "iFHd": np.zeros(self.num_voxels, dtype=np.float32),
            },
            {"voxel_offset": 0},
        )

    def reference(self, arrays: Arrays, scalars: Scalars) -> Arrays:
        voxels, samples = self.num_voxels, self.num_samples
        coords = arrays["coords"].astype(np.float64)
        x, y, z = coords[:voxels], coords[voxels:2 * voxels], coords[2 * voxels:]
        kdata = arrays["kdata"].astype(np.float64)
        if self.layout == GOOD_LAYOUT:
            kx, ky, kz = kdata[:samples], kdata[samples:2 * samples], kdata[2 * samples:3 * samples]
            r_mu, i_mu = kdata[3 * samples:4 * samples], kdata[4 * samples:]
        else:
            records = kdata.reshape(samples, 5)
            kx, ky, kz, r_mu, i_mu = records.T
        arg = TWO_PI * (
            np.outer(x, kx) + np.outer(y, ky) + np.outer(z, kz)
        )
        cos_arg, sin_arg = np.cos(arg), np.sin(arg)
        r_fhd = cos_arg @ r_mu + sin_arg @ i_mu
        i_fhd = cos_arg @ i_mu - sin_arg @ r_mu
        return {
            "rFHd": r_fhd.astype(np.float32),
            "iFHd": i_fhd.astype(np.float32),
        }

    def work_operations(self) -> float:
        return 16.0 * self.num_voxels * self.num_samples

    def default_configuration(self) -> Configuration:
        """The paper's hand-optimized starting point analogue."""
        return Configuration({"block": 256, "unroll": 1, "invocations": 4})
