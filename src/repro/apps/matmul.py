"""Dense matrix multiplication (paper Sections 3.1-3.2, Figures 2-3).

The kernel family follows Figure 2 exactly: a block computes a
``tile x tile*rect`` output tile; threads cooperatively stage square
input tiles through shared memory; each thread accumulates ``rect``
output elements (1xN rectangular thread tiling, Figure 2(b)); the
inner product loop can be unrolled (Figure 2(c)); global loads can be
prefetched one tile ahead (Figure 2(d)); and registers can be
proactively spilled (Section 3.1, resource balancing).

Optimization space (Table 4): tile/block size, rectangular tile
dimension, unroll factor, prefetching, register spilling.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.base import Application, Arrays, ConfigurationError, Scalars
from repro.ir.builder import CTAID_X, CTAID_Y, TID_X, TID_Y, KernelBuilder
from repro.ir.kernel import Dim3, Kernel
from repro.ir.types import DataType
from repro.transforms.pipeline import standard_cleanup
from repro.transforms.prefetch import prefetch_global_loads
from repro.transforms.spill import spill_registers
from repro.transforms.unroll import COMPLETE, unroll
from repro.tuning.space import ConfigSpace, Configuration

TILE_SIZES = (8, 16)
RECT_TILINGS = (1, 2, 4)
UNROLL_FACTORS = (1, 2, 4, COMPLETE)
SPILL_COUNT = 2

#: Minimum contiguous half-warp span for coalesced DRAM access: 8-wide
#: tiles leave half-warps straddling rows, defeating coalescing.
COALESCE_MIN_WIDTH = 16


class MatMul(Application):
    """C = A * B for dense N x N single-precision matrices."""

    name = "matmul"
    paper_speedup = 6.98
    paper_space_size = 93
    paper_selected = 11
    paper_reduction_percent = 88
    output_names = ("C",)

    # MKL SGEMM on the paper's 2.66 GHz Core2 runs near SIMD peak;
    # see DESIGN.md "Substitutions" for the Table 3 CPU model.
    cpu_effective_ops_per_second = 17.0e9

    def __init__(self, n: int = 1024) -> None:
        super().__init__()
        if n % (max(TILE_SIZES) * max(RECT_TILINGS)) != 0:
            raise ValueError(
                f"matrix size {n} must be a multiple of "
                f"{max(TILE_SIZES) * max(RECT_TILINGS)}"
            )
        self.n = n

    # ------------------------------------------------------------------

    def space(self) -> ConfigSpace:
        return ConfigSpace({
            "tile": list(TILE_SIZES),
            "rect": list(RECT_TILINGS),
            "unroll": list(UNROLL_FACTORS),
            "prefetch": [False, True],
            "spill": [False, True],
        })

    def build_kernel(self, config: Configuration) -> Kernel:
        tile = config["tile"]
        rect = config["rect"]
        if tile not in TILE_SIZES or rect not in RECT_TILINGS:
            raise ConfigurationError(f"unsupported matmul config {config}")
        kernel = self._baseline(tile, rect)
        kernel = unroll(kernel, config["unroll"], label="inner")
        if config["prefetch"]:
            kernel = prefetch_global_loads(kernel, label="ktile")
        kernel = standard_cleanup(kernel)
        if config["spill"]:
            kernel = spill_registers(kernel, SPILL_COUNT)
        return kernel

    def _baseline(self, tile: int, rect: int) -> Kernel:
        """The Figure 2(a)/(b) kernel for one tiling choice."""
        n = self.n
        wide = tile * rect
        coalesced = tile >= COALESCE_MIN_WIDTH
        builder = KernelBuilder(
            f"mm_{tile}x{tile}_1x{rect}",
            block_dim=Dim3(tile, tile),
            grid_dim=Dim3(n // wide, n // tile),
        )
        a_param = builder.param_ptr("A", DataType.F32)
        b_param = builder.param_ptr("B", DataType.F32)
        c_param = builder.param_ptr("C", DataType.F32)
        a_tile = builder.shared("As", DataType.F32, (tile, tile))
        b_tile = builder.shared("Bs", DataType.F32, (tile, wide))

        row = builder.mad(CTAID_Y, tile, TID_Y)
        col = builder.mad(CTAID_X, wide, TID_X)
        index_a = builder.mad(row, n, TID_X)
        index_b = builder.mad(TID_Y, n, col)
        index_c = builder.mad(row, n, col)
        shared_idx = builder.mad(TID_Y, tile, TID_X)
        b_shared_idx = (
            shared_idx if rect == 1 else builder.mad(TID_Y, wide, TID_X)
        )
        a_row_base = builder.mul(TID_Y, tile)
        accumulators = [builder.mov(0.0) for _ in range(rect)]

        with builder.loop(0, n // tile, label="ktile") as _:
            a_value = builder.ld(a_param, index_a, coalesced=coalesced)
            b_values = [
                builder.ld(b_param, index_b, coalesced=coalesced, offset=r * tile)
                for r in range(rect)
            ]
            builder.st(a_tile, shared_idx, a_value)
            for r, value in enumerate(b_values):
                builder.st(b_tile, b_shared_idx, value, offset=r * tile)
            builder.add(index_a, tile, dest=index_a)
            builder.add(index_b, tile * n, dest=index_b)
            builder.bar()
            with builder.loop(0, tile, label="inner") as i:
                a_idx = builder.add(a_row_base, i)
                a_elem = builder.ld(a_tile, a_idx)
                b_idx = builder.mad(i, wide, TID_X)
                for r in range(rect):
                    b_elem = builder.ld(b_tile, b_idx, offset=r * tile)
                    builder.mad(a_elem, b_elem, accumulators[r],
                                dest=accumulators[r])
            builder.bar()
        for r, acc in enumerate(accumulators):
            builder.st(c_param, index_c, acc, coalesced=coalesced,
                       offset=r * tile)
        return builder.finish()

    # ------------------------------------------------------------------

    def test_instance(self) -> "MatMul":
        return MatMul(n=64)

    def make_inputs(self, rng: np.random.Generator) -> Tuple[Arrays, Scalars]:
        n = self.n
        return (
            {
                "A": rng.standard_normal(n * n, dtype=np.float32),
                "B": rng.standard_normal(n * n, dtype=np.float32),
                "C": np.zeros(n * n, dtype=np.float32),
            },
            {},
        )

    def reference(self, arrays: Arrays, scalars: Scalars) -> Arrays:
        n = self.n
        a = arrays["A"].reshape(n, n).astype(np.float64)
        b = arrays["B"].reshape(n, n).astype(np.float64)
        return {"C": (a @ b).astype(np.float32).ravel()}

    def work_operations(self) -> float:
        return 2.0 * self.n ** 3

    def default_configuration(self) -> Configuration:
        """A typical hand-written starting point: plain 16x16 tiling."""
        return Configuration({
            "tile": 16, "rect": 1, "unroll": 1,
            "prefetch": False, "spill": False,
        })
