"""The application protocol shared by the paper's four benchmarks.

Each application (Table 3) supplies:

* its optimization space (Table 4's "Parameters Varied"),
* a kernel generator mapping a configuration to IR,
* static-metric and simulated-time entry points for the search
  strategies (overridable — MRI-FHD aggregates across kernel
  invocations),
* a numpy reference and input generator for correctness testing, and
* a modeled single-thread-CPU time for the Table 3 speedup comparison.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cubin.resources import ResourceUsage
from repro.ir.kernel import Kernel
from repro.metrics.model import MetricReport, evaluate_kernel
from repro.obs.trace import span
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.sim.fingerprint import SimulationCache
from repro.sim.gpu import SimulationResult, simulate_kernel
from repro.tuning.space import ConfigSpace, Configuration

Arrays = Dict[str, np.ndarray]
Scalars = Dict[str, float]


class ConfigurationError(ValueError):
    """A configuration outside the application's space was requested."""


class Application(abc.ABC):
    """One benchmark and its optimization space."""

    #: short identifier used in tables and reports
    name: str = ""
    #: Table 3 speedup the paper measured over single-thread CPU
    paper_speedup: float = 0.0
    #: Table 4 columns for comparison in reports
    paper_space_size: int = 0
    paper_selected: int = 0
    paper_reduction_percent: int = 0

    def __init__(self) -> None:
        self._metric_cache: Dict[Configuration, MetricReport] = {}
        self._kernel_cache: Dict[Configuration, Kernel] = {}
        self._time_cache: Dict[Configuration, float] = {}
        self._sim_cache = SimulationCache()

    # ------------------------------------------------------------------
    # Space and kernel generation.

    @abc.abstractmethod
    def space(self) -> ConfigSpace:
        """The optimization space of Table 4."""

    @abc.abstractmethod
    def build_kernel(self, config: Configuration) -> Kernel:
        """Generate the kernel for one configuration."""

    def kernel(self, config: Configuration) -> Kernel:
        """Cached kernel generation."""
        if config not in self._kernel_cache:
            self._kernel_cache[config] = self.build_kernel(config)
        return self._kernel_cache[config]

    def sim_config(self, config: Configuration) -> SimConfig:
        """Simulator cost model for one configuration."""
        del config
        return DEFAULT_SIM_CONFIG

    # ------------------------------------------------------------------
    # Search-strategy entry points.

    def evaluate(self, config: Configuration) -> MetricReport:
        """Static metrics (Equations 1-2); raises LaunchError if invalid."""
        if config not in self._metric_cache:
            self._metric_cache[config] = evaluate_kernel(self.kernel(config))
        return self._metric_cache[config]

    @property
    def sim_cache(self) -> SimulationCache:
        """Content-addressed simulator cache shared across this app's space."""
        return self._sim_cache

    def _resources_for(self, config: Configuration) -> Optional[ResourceUsage]:
        """Compile results the static stage already produced, if any."""
        report = self._metric_cache.get(config)
        return report.resources if report is not None else None

    def _total_seconds(
        self, config: Configuration, result: SimulationResult
    ) -> float:
        """Whole-workload seconds from one launch's simulation.

        The default workload is a single launch; applications that run
        the kernel repeatedly (MRI-FHD's invocation split) override
        this to aggregate.
        """
        del config
        return result.seconds

    def simulate(self, config: Configuration) -> float:
        """Simulated execution time in seconds for the full workload."""
        if config not in self._time_cache:
            self.simulate_detailed(config)
        return self._time_cache[config]

    def simulate_detailed(self, config: Configuration) -> SimulationResult:
        """Full simulation evidence for one launch of one configuration.

        Shares every cache ``simulate`` uses: compile results are
        threaded in from the static stage, the fingerprint cache reuses
        traces and SM replays across configurations, and the scalar
        time derived from the result lands in ``_time_cache`` so a
        later ``simulate`` call does no work at all.
        """
        with span("app.simulate", cat="app", app=self.name,
                  config=dict(config)):
            result = simulate_kernel(
                self.kernel(config),
                self.sim_config(config),
                resources=self._resources_for(config),
                cache=self._sim_cache,
            )
        self._time_cache.setdefault(config, self._total_seconds(config, result))
        return result

    def search_engine(self, workers: Optional[int] = 1,
                      checkpoint_path: Optional[str] = None):
        """An :class:`~repro.tuning.engine.ExecutionEngine` over this app.

        The engine memoizes ``evaluate``/``simulate`` and (for
        ``workers > 1``) fans simulations out across a process pool;
        share one engine across search strategies to avoid re-measuring
        the same configurations.
        """
        from repro.tuning.engine import ExecutionEngine

        return ExecutionEngine.for_app(
            self, workers=workers, checkpoint_path=checkpoint_path
        )

    # ------------------------------------------------------------------
    # Correctness oracle support (run at reduced problem sizes).

    @abc.abstractmethod
    def test_instance(self) -> "Application":
        """A small-problem copy suitable for the functional interpreter."""

    @abc.abstractmethod
    def make_inputs(self, rng: np.random.Generator) -> Tuple[Arrays, Scalars]:
        """Random input buffers for this problem size."""

    @abc.abstractmethod
    def reference(self, arrays: Arrays, scalars: Scalars) -> Arrays:
        """Expected contents of the output arrays (numpy oracle)."""

    #: names of the output pointer parameters checked by tests
    output_names: Tuple[str, ...] = ()

    def run_config(
        self,
        config: Configuration,
        arrays: Arrays,
        scalars: Optional[Scalars] = None,
        engine: str = "scalar",
    ) -> Arrays:
        """Execute one configuration in the functional interpreter.

        ``engine`` selects the scalar reference interpreter or the
        faster vectorized one.  Returns the output arrays (inputs are
        not modified).
        """
        from repro.interp import launch, launch_vectorized

        runner = {"scalar": launch, "vectorized": launch_vectorized}[engine]
        work = {name: array.copy() for name, array in arrays.items()}
        runner(self.kernel(config), work, scalars or {})
        return {name: work[name] for name in self.output_names}

    # ------------------------------------------------------------------
    # Table 3 support.

    @abc.abstractmethod
    def work_operations(self) -> float:
        """Total arithmetic operations of the computation."""

    #: modeled effective single-thread CPU throughput (operations per
    #: second) for the paper's baseline — see DESIGN.md, Substitutions.
    cpu_effective_ops_per_second: float = 1e9

    def cpu_time_model_seconds(self) -> float:
        """Modeled optimized single-thread CPU time (Table 3 baseline)."""
        return self.work_operations() / self.cpu_effective_ops_per_second

    # ------------------------------------------------------------------

    def default_configuration(self) -> Configuration:
        """A reasonable hand-written starting configuration."""
        return next(iter(self.space()))

    def clear_caches(self) -> None:
        self._metric_cache.clear()
        self._kernel_cache.clear()
        self._time_cache.clear()
        self._sim_cache.clear()

    def __getstate__(self) -> dict:
        # Keep pickles (process-pool workers, checkpoint tooling) small
        # and robust: caches are recomputed on the other side.
        state = dict(self.__dict__)
        state["_metric_cache"] = {}
        state["_kernel_cache"] = {}
        state["_time_cache"] = {}
        state["_sim_cache"] = SimulationCache()
        return state
