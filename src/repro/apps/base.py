"""The application protocol shared by the paper's four benchmarks.

Each application (Table 3) supplies:

* its optimization space (Table 4's "Parameters Varied"),
* a kernel generator mapping a configuration to IR,
* static-metric and simulated-time entry points for the search
  strategies (overridable — MRI-FHD aggregates across kernel
  invocations),
* a numpy reference and input generator for correctness testing, and
* a modeled single-thread-CPU time for the Table 3 speedup comparison.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

import numpy as np

import dataclasses

from repro.cubin.resources import ResourceUsage
from repro.ir.kernel import Kernel
from repro.metrics.efficiency import efficiency
from repro.metrics.model import MetricReport, evaluate_kernel
from repro.obs.trace import span
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.sim.fingerprint import SimulationCache, kernel_fingerprint
from repro.sim.gpu import SimulationResult, simulate_kernel
from repro.tuning.space import ConfigSpace, Configuration

Arrays = Dict[str, np.ndarray]
Scalars = Dict[str, float]


class ConfigurationError(ValueError):
    """A configuration outside the application's space was requested."""


class Application(abc.ABC):
    """One benchmark and its optimization space."""

    #: short identifier used in tables and reports
    name: str = ""
    #: Table 3 speedup the paper measured over single-thread CPU
    paper_speedup: float = 0.0
    #: Table 4 columns for comparison in reports
    paper_space_size: int = 0
    paper_selected: int = 0
    paper_reduction_percent: int = 0

    def __init__(self) -> None:
        self._kernel_cache: Dict[Configuration, Kernel] = {}
        self._fingerprint_cache: Dict[Configuration, str] = {}
        self._time_cache: Dict[Configuration, float] = {}
        self._sim_cache = SimulationCache()

    # ------------------------------------------------------------------
    # Space and kernel generation.

    @abc.abstractmethod
    def space(self) -> ConfigSpace:
        """The optimization space of Table 4."""

    @abc.abstractmethod
    def build_kernel(self, config: Configuration) -> Kernel:
        """Generate the kernel for one configuration."""

    def kernel(self, config: Configuration) -> Kernel:
        """Cached kernel generation."""
        if config not in self._kernel_cache:
            self._kernel_cache[config] = self.build_kernel(config)
        return self._kernel_cache[config]

    #: optional ``dataclasses.replace`` overrides applied on top of
    #: :meth:`sim_config` everywhere this application consumes it
    #: (fingerprints, compiles, traces, replays).  Set before first
    #: use — e.g. ``{"wave_convergence_rtol": 0.05}`` switches a fresh
    #: app instance into convergence mode; benchmarks and the
    #: convergence test suite use this instead of subclassing.
    sim_overrides: Optional[Dict[str, object]] = None

    def sim_config(self, config: Configuration) -> SimConfig:
        """Simulator cost model for one configuration."""
        del config
        return DEFAULT_SIM_CONFIG

    def effective_sim_config(self, config: Configuration) -> SimConfig:
        """:meth:`sim_config` with :attr:`sim_overrides` applied."""
        base = self.sim_config(config)
        if self.sim_overrides:
            base = dataclasses.replace(base, **self.sim_overrides)
        return base

    def trace_group_key(self, config: Configuration):
        """Batching key: configurations with equal keys share a trace
        program, so the engine may ship them to the scheduler as one
        group replayed through :meth:`simulate_group` (one compiled
        trace, one pool task).  ``None`` (the default) means "no
        grouping known" — every configuration is dispatched alone.
        Applications whose spaces contain parameter axes that do not
        change the per-launch kernel body override this (MRI-FHD's
        invocation split).  Keys must be hashable and picklable.
        """
        del config
        return None

    # ------------------------------------------------------------------
    # Search-strategy entry points.

    def evaluate(self, config: Configuration) -> MetricReport:
        """Static metrics (Equations 1-2); raises LaunchError if invalid.

        Content-addressed: the post-transform kernel is fingerprinted
        and the full static result (ptx accounting, resources, the
        assembled report) is shared through ``sim_cache``'s compile
        tier, so configurations whose generated kernels coincide never
        recompile.  Only ``efficiency`` and ``threads`` depend on the
        grid (the fingerprint deliberately excludes it); a hit
        re-specializes those two fields from this kernel — bit-identical
        to a fresh :func:`~repro.metrics.model.evaluate_kernel` run.

        There is deliberately no per-configuration memo here: the
        :class:`~repro.tuning.engine.ExecutionEngine` is the single
        owner of per-config caching, so its ``static_evaluations`` /
        ``compile_*`` telemetry counts real work instead of being
        absorbed by a shadow cache (it used to undercount).
        """
        kernel = self.kernel(config)
        fingerprint = self._fingerprint_cache.get(config)
        if fingerprint is None:
            fingerprint = kernel_fingerprint(
                kernel, self.effective_sim_config(config)
            )
            self._fingerprint_cache[config] = fingerprint
        cached = self._sim_cache.lookup_compile(fingerprint)
        if cached is not None:
            return self._specialize_report(cached, kernel)
        report = evaluate_kernel(kernel)
        self._sim_cache.store_compile(fingerprint, report)
        return report

    @staticmethod
    def _specialize_report(report: MetricReport, kernel: Kernel) -> MetricReport:
        """Adapt a fingerprint-shared report to this kernel's grid.

        Everything except ``efficiency`` and ``threads`` is a function
        of the fingerprint alone; those two are recomputed exactly the
        way ``evaluate_kernel`` computes them, so the specialized
        report is bit-identical to an uncached evaluation.
        """
        total_threads = kernel.total_threads
        if report.threads == total_threads:
            return report
        return dataclasses.replace(
            report,
            efficiency=efficiency(report.profile.instructions, total_threads),
            threads=total_threads,
        )

    @property
    def sim_cache(self) -> SimulationCache:
        """Content-addressed simulator cache shared across this app's space."""
        return self._sim_cache

    @sim_cache.setter
    def sim_cache(self, cache: SimulationCache) -> None:
        # Benchmarks (the warm-sweep phase) hand a fresh app instance a
        # pre-populated cache to measure pure cache-hit throughput.
        self._sim_cache = cache

    def _resources_for(self, config: Configuration) -> Optional[ResourceUsage]:
        """Compile results the static stage already produced, if any."""
        fingerprint = self._fingerprint_cache.get(config)
        if fingerprint is None:
            return None
        report = self._sim_cache.peek_compile(fingerprint)
        return report.resources if report is not None else None

    def _total_seconds(
        self, config: Configuration, result: SimulationResult
    ) -> float:
        """Whole-workload seconds from one launch's simulation.

        The default workload is a single launch; applications that run
        the kernel repeatedly (MRI-FHD's invocation split) override
        this to aggregate.
        """
        del config
        return result.seconds

    def simulate(self, config: Configuration) -> float:
        """Simulated execution time in seconds for the full workload."""
        if config not in self._time_cache:
            self.simulate_detailed(config)
        return self._time_cache[config]

    def simulate_detailed(self, config: Configuration) -> SimulationResult:
        """Full simulation evidence for one launch of one configuration.

        Shares every cache ``simulate`` uses: compile results are
        threaded in from the static stage, the fingerprint cache reuses
        traces and SM replays across configurations, and the scalar
        time derived from the result lands in ``_time_cache`` so a
        later ``simulate`` call does no work at all.
        """
        with span("app.simulate", cat="app", app=self.name,
                  config=dict(config)):
            result = simulate_kernel(
                self.kernel(config),
                self.effective_sim_config(config),
                resources=self._resources_for(config),
                cache=self._sim_cache,
            )
        self._time_cache.setdefault(config, self._total_seconds(config, result))
        return result

    def simulate_group(self, configs) -> list:
        """Batched :meth:`simulate` over configurations that (per
        :meth:`trace_group_key`) share a trace program.

        Returns the same seconds, and increments the same cache
        counters, as calling :meth:`simulate` on each configuration in
        order — pinned by tests/sim/test_batch_replay.py — while
        paying one compiled-trace linearization for the whole group.
        """
        from repro.sim.batch import simulate_kernel_batch

        pending = [c for c in configs if c not in self._time_cache]
        if pending:
            items = [
                (self.kernel(c), self.effective_sim_config(c),
                 self._resources_for(c))
                for c in pending
            ]
            with span("app.simulate_group", cat="app", app=self.name,
                      group_size=len(pending)):
                batch = simulate_kernel_batch(items, cache=self._sim_cache)
            for config, result in zip(pending, batch):
                self._time_cache.setdefault(
                    config, self._total_seconds(config, result)
                )
        return [self._time_cache[config] for config in configs]

    def search_engine(self, workers: Optional[int] = 1,
                      checkpoint_path: Optional[str] = None,
                      retry_policy=None, fault_spec: Optional[str] = None,
                      store=None):
        """An :class:`~repro.tuning.engine.ExecutionEngine` over this app.

        The engine memoizes ``evaluate``/``simulate`` and (for
        ``workers > 1``) fans simulations out across the fault-tolerant
        sweep scheduler; share one engine across search strategies to
        avoid re-measuring the same configurations.  ``retry_policy``
        and ``fault_spec`` are forwarded to the scheduler (``None``
        reads ``REPRO_TASK_TIMEOUT``/``REPRO_TASK_RETRIES`` and
        ``REPRO_FAULTS`` from the environment); ``store`` — a
        :class:`~repro.store.ResultStore` or directory path, with
        ``None`` reading ``REPRO_STORE`` — layers the persistent
        result store under this app's ``sim_cache``.
        """
        from repro.tuning.engine import ExecutionEngine

        return ExecutionEngine.for_app(
            self, workers=workers, checkpoint_path=checkpoint_path,
            retry_policy=retry_policy, fault_spec=fault_spec, store=store,
        )

    # ------------------------------------------------------------------
    # Correctness oracle support (run at reduced problem sizes).

    @abc.abstractmethod
    def test_instance(self) -> "Application":
        """A small-problem copy suitable for the functional interpreter."""

    @abc.abstractmethod
    def make_inputs(self, rng: np.random.Generator) -> Tuple[Arrays, Scalars]:
        """Random input buffers for this problem size."""

    @abc.abstractmethod
    def reference(self, arrays: Arrays, scalars: Scalars) -> Arrays:
        """Expected contents of the output arrays (numpy oracle)."""

    #: names of the output pointer parameters checked by tests
    output_names: Tuple[str, ...] = ()

    def run_config(
        self,
        config: Configuration,
        arrays: Arrays,
        scalars: Optional[Scalars] = None,
        engine: str = "scalar",
    ) -> Arrays:
        """Execute one configuration in the functional interpreter.

        ``engine`` selects the scalar reference interpreter or the
        faster vectorized one.  Returns the output arrays (inputs are
        not modified).
        """
        from repro.interp import launch, launch_vectorized

        runner = {"scalar": launch, "vectorized": launch_vectorized}[engine]
        work = {name: array.copy() for name, array in arrays.items()}
        runner(self.kernel(config), work, scalars or {})
        return {name: work[name] for name in self.output_names}

    # ------------------------------------------------------------------
    # Table 3 support.

    @abc.abstractmethod
    def work_operations(self) -> float:
        """Total arithmetic operations of the computation."""

    #: modeled effective single-thread CPU throughput (operations per
    #: second) for the paper's baseline — see DESIGN.md, Substitutions.
    cpu_effective_ops_per_second: float = 1e9

    def cpu_time_model_seconds(self) -> float:
        """Modeled optimized single-thread CPU time (Table 3 baseline)."""
        return self.work_operations() / self.cpu_effective_ops_per_second

    # ------------------------------------------------------------------

    def default_configuration(self) -> Configuration:
        """A reasonable hand-written starting configuration."""
        return next(iter(self.space()))

    def clear_caches(self) -> None:
        self._kernel_cache.clear()
        self._fingerprint_cache.clear()
        self._time_cache.clear()
        self._sim_cache.clear()

    def __getstate__(self) -> dict:
        # Keep pickles (process-pool workers, checkpoint tooling) small
        # and robust: caches are recomputed on the other side.  The
        # attached result store (if any) survives — it holds no open
        # handles and is exactly what a remote copy should read from.
        state = dict(self.__dict__)
        state["_kernel_cache"] = {}
        state["_fingerprint_cache"] = {}
        state["_time_cache"] = {}
        state["_sim_cache"] = SimulationCache(store=self._sim_cache.store)
        return state
