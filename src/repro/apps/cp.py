"""Coulombic Potential (CP) — electric potential over a grid of points.

Derived from the "Unroll8y" kernel of Stone et al. that the paper
cites [23]: atom data lives in constant memory, each thread computes
the potential at ``tiling`` grid points spaced so that the per-atom
y/z distance work is shared across them, and the reciprocal square
root runs on the SFUs.

Optimization space (Table 4): block size, per-thread tiling,
coalescing of output — 40 raw points, of which the two heavy-register
tiling=16 configurations cannot launch with 384-thread blocks,
matching the paper's 38.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.apps.base import Application, Arrays, ConfigurationError, Scalars
from repro.arch.memory import MemorySpace
from repro.ir.builder import CTAID_X, TID_X, KernelBuilder
from repro.ir.kernel import Dim3, Kernel
from repro.ir.types import DataType
from repro.transforms.pipeline import standard_cleanup
from repro.tuning.space import ConfigSpace, Configuration

BLOCK_SIZES = (64, 128, 256, 384)
TILING_FACTORS = (1, 2, 4, 8, 16)
GRID_SPACING = 0.5


class CoulombicPotential(Application):
    """V[p] = sum_j q_j / |p - atom_j| over a line of grid points."""

    name = "cp"
    paper_speedup = 647.0
    paper_space_size = 38
    paper_selected = 10
    paper_reduction_percent = 74
    output_names = ("V",)

    # Scalar x87 code paying a divide/sqrt per atom-point pair; the
    # GPU's SFU rsqrt is the source of the paper's 647x (DESIGN.md).
    cpu_effective_ops_per_second = 0.42e9

    def __init__(self, num_points: int = 196608, num_atoms: int = 128) -> None:
        super().__init__()
        # The default point count (2^16 * 3) divides every block x
        # tiling span, so the full 40-point space of the paper exists;
        # smaller test instances simply have fewer valid launches.
        if num_points % min(BLOCK_SIZES) != 0:
            raise ValueError(f"num_points must be a multiple of {min(BLOCK_SIZES)}")
        self.num_points = num_points
        self.num_atoms = num_atoms

    # ------------------------------------------------------------------

    def space(self) -> ConfigSpace:
        points = self.num_points

        def valid(config: Configuration) -> bool:
            return points % (config["block"] * config["tiling"]) == 0

        return ConfigSpace(
            {
                "block": list(BLOCK_SIZES),
                "tiling": list(TILING_FACTORS),
                "coalesce_output": [False, True],
            },
            is_valid=valid,
        )

    def build_kernel(self, config: Configuration) -> Kernel:
        block = config["block"]
        tiling = config["tiling"]
        if block not in BLOCK_SIZES or tiling not in TILING_FACTORS:
            raise ConfigurationError(f"unsupported cp config {config}")
        kernel = self._baseline(block, tiling, config["coalesce_output"])
        return standard_cleanup(kernel)

    def _baseline(self, block: int, tiling: int, coalesce: bool) -> Kernel:
        points, atoms = self.num_points, self.num_atoms
        span = block * tiling
        builder = KernelBuilder(
            f"cp_b{block}_t{tiling}{'_c' if coalesce else ''}",
            block_dim=Dim3(block),
            grid_dim=Dim3(points // span),
        )
        atom_data = builder.param_ptr("atoms", DataType.F32,
                                      space=MemorySpace.CONSTANT)
        volume = builder.param_ptr("V", DataType.F32)
        y0 = builder.param_scalar("y0", DataType.F32)
        z0 = builder.param_scalar("z0", DataType.F32)

        # Coalesced layout strides threads across the span so warp
        # stores hit consecutive addresses; the uncoalesced layout
        # gives each thread a contiguous run of points.  At tiling 1
        # the two layouts coincide, so the stores coalesce either way.
        if coalesce:
            first_point = builder.mad(CTAID_X, span, TID_X)
            point_stride = block
        else:
            scaled_tid = builder.mul(TID_X, tiling)
            first_point = builder.mad(CTAID_X, span, scaled_tid)
            point_stride = 1
        stores_coalesce = coalesce or tiling == 1

        x_first = builder.mul(builder.cvt(first_point, DataType.F32),
                              GRID_SPACING)
        accumulators = [builder.mov(0.0) for _ in range(tiling)]

        with builder.loop(0, atoms, label="atoms") as k:
            base = builder.mul(k, 4)
            ax = builder.ld(atom_data, base, offset=0)
            ay = builder.ld(atom_data, base, offset=1)
            az = builder.ld(atom_data, base, offset=2)
            charge = builder.ld(atom_data, base, offset=3)
            dy = builder.sub(y0, ay)
            dz = builder.sub(z0, az)
            dz2 = builder.mul(dz, dz)
            dyz2 = builder.mad(dy, dy, dz2)
            dx_first = builder.sub(x_first, ax)
            for r in range(tiling):
                # Point r sits r*stride grid cells to the right; the
                # offset folds to an immediate, so no per-point
                # coordinate registers are needed.
                dx = builder.add(dx_first, float(r * point_stride * GRID_SPACING))
                dist2 = builder.mad(dx, dx, dyz2)
                inv = builder.rsqrt(dist2)
                builder.mad(charge, inv, accumulators[r],
                            dest=accumulators[r])
        for r, acc in enumerate(accumulators):
            builder.st(volume, first_point, acc, coalesced=stores_coalesce,
                       offset=r * point_stride)
        return builder.finish()

    # ------------------------------------------------------------------

    def test_instance(self) -> "CoulombicPotential":
        return CoulombicPotential(num_points=3072, num_atoms=8)

    def make_inputs(self, rng: np.random.Generator) -> Tuple[Arrays, Scalars]:
        # Atoms placed off the sampled line so distances never vanish.
        atoms = rng.uniform(1.0, 8.0, size=(self.num_atoms, 4)).astype(np.float32)
        return (
            {
                "atoms": atoms.ravel(),
                "V": np.zeros(self.num_points, dtype=np.float32),
            },
            {"y0": 10.0, "z0": -10.0},
        )

    def reference(self, arrays: Arrays, scalars: Scalars) -> Arrays:
        atoms = arrays["atoms"].reshape(self.num_atoms, 4).astype(np.float64)
        x = np.arange(self.num_points, dtype=np.float64) * GRID_SPACING
        dx = x[:, None] - atoms[None, :, 0]
        dy = scalars["y0"] - atoms[:, 1]
        dz = scalars["z0"] - atoms[:, 2]
        dist = np.sqrt(dx * dx + (dy * dy + dz * dz)[None, :])
        potential = (atoms[:, 3][None, :] / dist).sum(axis=1)
        return {"V": potential.astype(np.float32)}

    def work_operations(self) -> float:
        # ~10 scalar operations per atom-point pair, sqrt included.
        return 10.0 * self.num_points * self.num_atoms

    def default_configuration(self) -> Configuration:
        return Configuration({"block": 128, "tiling": 1, "coalesce_output": True})


def expected_invalid_configurations() -> int:
    """The heavy-register configurations that cannot launch (38 = 40 - 2)."""
    return 2
