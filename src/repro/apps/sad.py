"""Sum of Absolute Differences (SAD) — MPEG motion-estimation kernel.

"SADs are computed between 4x4 pixel blocks in two QCIF-size images
over a 32 pixel square search area" (Table 3).  Both frames are read
through the texture cache, whose clamped edge addressing handles the
search positions that fall off the frame (Table 1: "configurable
returned-value behavior at the edges of textures ... useful in certain
applications such as video encoders").

Optimization space (Table 4): per-thread tiling (search positions per
thread), unroll factors for the three loops (search positions, block
rows, block columns), and work per thread block.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.apps.base import Application, Arrays, ConfigurationError, Scalars
from repro.arch.memory import MemorySpace
from repro.ir.builder import CTAID_X, CTAID_Y, TID_X, KernelBuilder
from repro.ir.kernel import Dim3, Kernel
from repro.ir.types import DataType
from repro.transforms.pipeline import standard_cleanup
from repro.transforms.unroll import unroll
from repro.tuning.space import ConfigSpace, Configuration

BLOCK_EDGE = 4                       # 4x4 pixel blocks
POSITIONS_PER_BLOCK = (32, 64, 128, 256, 512, 1024)
TILING_FACTORS = (1, 2, 4, 8, 16)
SEARCH_UNROLLS = (1, 2, 4, 8)
ROW_UNROLLS = (1, 2, 4)
COL_UNROLLS = (1, 2, 4)
MIN_THREADS = 16
MAX_THREADS = 512


class SumOfAbsoluteDifferences(Application):
    """SADs of every 4x4 block against a square search area."""

    name = "sad"
    paper_speedup = 5.51
    paper_space_size = 908
    paper_selected = 16
    paper_reduction_percent = 98
    output_names = ("sad",)

    # PSADBW-style SIMD absolute differences run extremely fast on the
    # CPU, which is why the paper's speedup is only 5.51x (DESIGN.md).
    cpu_effective_ops_per_second = 12.0e9

    def __init__(
        self,
        width: int = 176,
        height: int = 144,
        search_width: int = 32,
    ) -> None:
        super().__init__()
        if width % BLOCK_EDGE or height % BLOCK_EDGE:
            raise ValueError("frame dimensions must be multiples of 4")
        self.width = width
        self.height = height
        self.search_width = search_width
        self.positions = search_width * search_width
        self.blocks_x = width // BLOCK_EDGE
        self.blocks_y = height // BLOCK_EDGE
        self.num_macroblocks = self.blocks_x * self.blocks_y

    # ------------------------------------------------------------------

    def space(self) -> ConfigSpace:
        positions = self.positions

        def valid(config: Configuration) -> bool:
            per_block = config["positions_per_block"]
            tiling = config["tiling"]
            if per_block > positions or positions % per_block:
                return False
            if per_block % tiling:
                return False
            threads = per_block // tiling
            return MIN_THREADS <= threads <= MAX_THREADS

        return ConfigSpace(
            {
                "positions_per_block": [
                    p for p in POSITIONS_PER_BLOCK if p <= positions
                ],
                "tiling": list(TILING_FACTORS),
                "unroll_search": list(SEARCH_UNROLLS),
                "unroll_rows": list(ROW_UNROLLS),
                "unroll_cols": list(COL_UNROLLS),
            },
            is_valid=valid,
        )

    def build_kernel(self, config: Configuration) -> Kernel:
        per_block = config["positions_per_block"]
        tiling = config["tiling"]
        if per_block % tiling:
            raise ConfigurationError(f"invalid sad config {config}")
        kernel = self._baseline(per_block, tiling)
        kernel = unroll(kernel, config["unroll_cols"], label="cols")
        kernel = unroll(kernel, config["unroll_rows"], label="rows")
        kernel = unroll(kernel, config["unroll_search"], label="search")
        return standard_cleanup(kernel)

    def _baseline(self, per_block: int, tiling: int) -> Kernel:
        width = self.width
        search = self.search_width
        half = search // 2
        threads = per_block // tiling
        builder = KernelBuilder(
            f"sad_p{per_block}_t{tiling}",
            block_dim=Dim3(threads),
            grid_dim=Dim3(self.positions // per_block, self.num_macroblocks),
        )
        cur = builder.param_ptr("cur", DataType.S32, space=MemorySpace.TEXTURE)
        ref = builder.param_ptr("ref", DataType.S32, space=MemorySpace.TEXTURE)
        out = builder.param_ptr("sad", DataType.S32)

        block_x = builder.rem(CTAID_Y, self.blocks_x)
        block_y = builder.div(CTAID_Y, self.blocks_x)
        cur_x = builder.mul(block_x, BLOCK_EDGE)
        cur_y = builder.mul(block_y, BLOCK_EDGE)
        position_base = builder.mad(CTAID_X, per_block, TID_X)
        out_base = builder.mad(CTAID_Y, self.positions, position_base)

        with builder.loop(0, tiling, label="search") as r:
            position = builder.mad(r, threads, position_base)
            delta_y = builder.sub(builder.div(position, search), half)
            delta_x = builder.sub(builder.rem(position, search), half)
            ref_x = builder.add(cur_x, delta_x)
            ref_y = builder.add(cur_y, delta_y)
            total = builder.mov(0, dtype=DataType.S32)
            with builder.loop(0, BLOCK_EDGE, label="rows") as i:
                cur_row = builder.mul(builder.add(cur_y, i), width)
                ref_row = builder.mul(builder.add(ref_y, i), width)
                cur_row_base = builder.add(cur_row, cur_x)
                ref_row_base = builder.add(ref_row, ref_x)
                with builder.loop(0, BLOCK_EDGE, label="cols") as j:
                    cur_idx = builder.add(cur_row_base, j)
                    ref_idx = builder.add(ref_row_base, j)
                    cur_px = builder.ld(cur, cur_idx)
                    ref_px = builder.ld(ref, ref_idx)
                    diff = builder.sub(cur_px, ref_px)
                    builder.add(total, builder.abs(diff), dest=total)
            store_idx = builder.mad(r, threads, out_base)
            builder.st(out, store_idx, total)
        return builder.finish()

    # ------------------------------------------------------------------

    def test_instance(self) -> "SumOfAbsoluteDifferences":
        return SumOfAbsoluteDifferences(width=32, height=16, search_width=8)

    def make_inputs(self, rng: np.random.Generator) -> Tuple[Arrays, Scalars]:
        pixels = self.width * self.height
        return (
            {
                "cur": rng.integers(0, 256, pixels).astype(np.int32),
                "ref": rng.integers(0, 256, pixels).astype(np.int32),
                "sad": np.zeros(self.num_macroblocks * self.positions,
                                dtype=np.int32),
            },
            {},
        )

    def reference(self, arrays: Arrays, scalars: Scalars) -> Arrays:
        width, height, search = self.width, self.height, self.search_width
        half = search // 2
        cur = arrays["cur"]
        ref = arrays["ref"]
        limit = width * height - 1

        positions = np.arange(self.positions)
        delta_y = positions // search - half
        delta_x = positions % search - half
        i = np.arange(BLOCK_EDGE)
        j = np.arange(BLOCK_EDGE)

        result = np.zeros((self.num_macroblocks, self.positions), dtype=np.int64)
        for macroblock in range(self.num_macroblocks):
            block_y, block_x = divmod(macroblock, self.blocks_x)
            cur_y, cur_x = block_y * BLOCK_EDGE, block_x * BLOCK_EDGE
            cur_idx = ((cur_y + i)[:, None] * width + cur_x + j[None, :])
            cur_block = cur[np.clip(cur_idx, 0, limit)]
            # Flat reference index is clamped exactly like the texture
            # model in the interpreter/hardware.
            ref_idx = (
                (cur_y + delta_y[:, None, None] + i[None, :, None]) * width
                + cur_x + delta_x[:, None, None] + j[None, None, :]
            )
            ref_block = ref[np.clip(ref_idx, 0, limit)]
            result[macroblock] = np.abs(
                cur_block[None].astype(np.int64) - ref_block
            ).sum(axis=(1, 2))
        return {"sad": result.astype(np.int32).ravel()}

    def work_operations(self) -> float:
        pixels = BLOCK_EDGE * BLOCK_EDGE
        return 3.0 * pixels * self.positions * self.num_macroblocks

    def default_configuration(self) -> Configuration:
        return Configuration({
            "positions_per_block": 256, "tiling": 4,
            "unroll_search": 1, "unroll_rows": 1, "unroll_cols": 1,
        })


def unroll_labels() -> List[str]:
    """The three unrollable loops of Table 4."""
    return ["search", "rows", "cols"]
