"""The paper's application suite (Table 3)."""

from repro.apps.base import Application, ConfigurationError
from repro.apps.cp import CoulombicPotential
from repro.apps.matmul import MatMul
from repro.apps.mri_fhd import MriFhd
from repro.apps.sad import SumOfAbsoluteDifferences


def all_applications():
    """Fresh instances of the full suite, in Table 3 order."""
    return [MatMul(), CoulombicPotential(), SumOfAbsoluteDifferences(), MriFhd()]


__all__ = [
    "Application",
    "ConfigurationError",
    "CoulombicPotential",
    "MatMul",
    "MriFhd",
    "SumOfAbsoluteDifferences",
    "all_applications",
]
