"""Discrete-event timing simulator of the GeForce 8800 (wall-clock substitute)."""

from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.sim.fingerprint import SimulationCache, kernel_fingerprint
from repro.sim.gpu import SimulationResult, simulate_kernel, simulate_seconds
from repro.sim.memory_system import MemorySystem
from repro.sim.sm import SimulationDeadlock, SMResult, simulate_sm
from repro.sim.trace import (
    BARRIER,
    COMPUTE,
    LOAD,
    SFU,
    STORE,
    USE,
    WarpTrace,
    build_trace,
)

__all__ = [
    "BARRIER",
    "COMPUTE",
    "DEFAULT_SIM_CONFIG",
    "LOAD",
    "MemorySystem",
    "SFU",
    "STORE",
    "SMResult",
    "SimConfig",
    "SimulationCache",
    "SimulationDeadlock",
    "SimulationResult",
    "USE",
    "WarpTrace",
    "build_trace",
    "kernel_fingerprint",
    "simulate_kernel",
    "simulate_seconds",
    "simulate_sm",
]
