"""Batched SM replay across configurations sharing a trace program.

Configuration spaces contain clusters of configurations whose
post-transform kernels have the *same trace program* but different
launch parameters — MRI-FHD's invocation splits are the canonical
case: one per-launch body, seven grid sizes.  The fingerprint tier
(:mod:`repro.sim.fingerprint`) already collapses equal-fingerprint
work onto single compile/trace/replay artifacts; this module adds the
batch layer on top:

* :func:`simulate_kernel_batch` replays a whole group through one
  shared :func:`~repro.sim.sm.compile_trace` linearization — the
  per-event constant folding is paid once per trace program instead of
  once per replayed variant — and returns results **bit-identical and
  counter-identical** to calling
  :func:`~repro.sim.gpu.simulate_kernel` sequentially in the same
  order (a duplicate inside the batch is an ``sm_hits`` cache hit
  either way, so worker-count/batching never changes telemetry);
* :func:`steady_state_bounds` computes the analytic convergence
  roofline for every resident-block/occupancy variant of a compiled
  trace in one vectorized numpy pass, bit-equal to the scalar
  per-replay computation inside :func:`~repro.sim.sm.simulate_sm`
  (``numpy.float64`` arithmetic is IEEE-754 double — Python-float
  arithmetic — and the operation order matches).

The execution engine groups pending configurations by
``Application.trace_group_key`` and ships each group as a single
scheduler task (see :mod:`repro.tuning.engine`), so the pool pays one
dispatch, one pickle round-trip, and one compiled trace per trace
program rather than per configuration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.kernel import Kernel
from repro.sim.config import SimConfig
from repro.sim.fingerprint import SimulationCache
from repro.sim.gpu import SimulationResult, simulate_kernel
from repro.sim.sm import CompiledTrace

#: one batch item: the kernel, its cost model, and optionally the
#: compile results a static stage already produced for it.
BatchItem = Tuple[Kernel, SimConfig, Optional[object]]


def simulate_kernel_batch(
    items: Sequence[BatchItem],
    cache: Optional[SimulationCache] = None,
) -> List[SimulationResult]:
    """Simulate a group of kernels sharing (mostly) one trace program.

    Equivalent to ``[simulate_kernel(k, c, r, cache) for k, c, r in
    items]`` — same results, same cache-counter increments, in the
    same order — except that every replay of the same trace object
    reuses a single compiled linearization.  Mixed groups are fine:
    items that turn out not to share a trace simply compile their own.
    """
    compiled_cache: dict = {}
    return [
        simulate_kernel(
            kernel, config, resources=resources, cache=cache,
            compiled_cache=compiled_cache,
        )
        for kernel, config, resources in items
    ]


def steady_state_bounds(
    compiled: CompiledTrace,
    warps_per_block: Sequence[int],
    config: SimConfig,
) -> np.ndarray:
    """Vectorized analytic steady-state cycles-per-block roofline.

    For each occupancy variant ``w`` of one compiled trace:
    ``max(w * port_cycles, w * dram_bytes / share)`` — the issue-port
    serialization bound against the sustained-bandwidth bound.  One
    numpy pass over the whole batch, elementwise bit-equal to the
    scalar computation the replay loop performs (pinned by
    tests/sim/test_batch_replay.py).
    """
    w = np.asarray(warps_per_block, dtype=np.float64)
    share = config.bandwidth_bytes_per_cycle_per_sm
    issue_bound = w * float(compiled.port_cycles)
    bw_bound = w * compiled.dram_bytes / share
    return np.maximum(issue_bound, bw_bound)


__all__ = ["BatchItem", "simulate_kernel_batch", "steady_state_bounds"]
