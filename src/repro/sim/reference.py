"""Reference simulator pipeline: the straightforward implementations.

Two pre-optimization implementations, kept simple on purpose:

* :func:`build_trace_reference` — flat trace building over the fully
  expanded dynamic instruction stream, no loop compression;
* :func:`simulate_sm_reference` — the plain event loop: one global
  heap ordered by ``(ready_at, sequence)``, warp state held in
  objects, every dynamic event visited one at a time, the DRAM token
  bucket delegated to :class:`~repro.sim.memory_system.MemorySystem`.

It exists as the *oracle* for differential testing: the optimized
replay in :mod:`repro.sim.sm` (locals-bound hot loop, FIFO/heap
scheduler split, inlined memory arithmetic, loop-compressed segment
walking, steady-state wave extrapolation) must agree with this loop —
bit-for-bit in exact mode — on any well-formed trace.  See
``tests/sim/test_differential.py`` and docs/simulator.md.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from repro.ir.instructions import Instruction
from repro.ir.kernel import Kernel
from repro.ir.values import VirtualRegister
from repro.ptx.analysis import ControlOp, expand_dynamic
from repro.ptx.isa import InstrClass, classify
from repro.sim.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.sim.memory_system import MemorySystem
from repro.sim.sm import SimulationDeadlock, SMResult
from repro.sim.trace import (
    BARRIER,
    COMPUTE,
    LOAD,
    SFU,
    STORE,
    USE,
    WarpTrace,
    _warp_bytes,
)


def build_trace_reference(
    kernel: Kernel, config: SimConfig = DEFAULT_SIM_CONFIG
) -> WarpTrace:
    """Flat trace building: one event stream, no loop compression.

    Walks the fully expanded dynamic instruction sequence
    (``expand_dynamic``) and appends events one at a time — O(dynamic
    instruction count) in time and memory, where
    :func:`repro.sim.trace.build_trace` is O(static code size).  Loads
    and SFU results are tagged serially; the optimized builder's
    stable per-register slots name the same producer/consumer pairs,
    so both traces replay identically.
    """
    threads = min(kernel.threads_per_block, config.device.warp_size)
    events: List[tuple] = []
    pending: dict = {}          # dest register -> tag
    compute_run = 0
    issue_slots = 0
    dram_bytes = 0.0
    next_tag = 0

    def flush_compute() -> None:
        nonlocal compute_run
        if compute_run:
            events.append((COMPUTE, compute_run, 0))
            compute_run = 0

    def note_uses(instr: Instruction) -> None:
        for value in instr.reads:
            if isinstance(value, VirtualRegister) and value in pending:
                flush_compute()
                events.append((USE, pending.pop(value), 0))

    for op in expand_dynamic(kernel):
        if isinstance(op, ControlOp):
            compute_run += 1
            issue_slots += 1
            continue
        cls = classify(op)
        note_uses(op)
        issue_slots += 1
        if cls in (InstrClass.GLOBAL_LOAD, InstrClass.LOCAL_LOAD,
                   InstrClass.TEXTURE_LOAD):
            flush_compute()
            if cls is InstrClass.TEXTURE_LOAD:
                bytes_ = 0.0
                latency = config.texture_latency_cycles
            else:
                bytes_ = _warp_bytes(op, threads, config)
                latency = config.global_latency_cycles
                dram_bytes += bytes_
            tag = next_tag
            next_tag += 1
            if op.dest is not None:
                pending[op.dest] = tag
            events.append((LOAD, tag, (bytes_, latency)))
        elif cls in (InstrClass.GLOBAL_STORE, InstrClass.LOCAL_STORE):
            flush_compute()
            bytes_ = _warp_bytes(op, threads, config)
            dram_bytes += bytes_
            events.append((STORE, 0, bytes_))
        elif cls is InstrClass.BARRIER:
            flush_compute()
            events.append((BARRIER, 0, 0))
        elif cls is InstrClass.SFU:
            flush_compute()
            tag = next_tag
            next_tag += 1
            if op.dest is not None:
                pending[op.dest] = tag
            events.append((SFU, tag, 0))
        elif cls is InstrClass.CONST_LOAD:
            # Constant-cache hits cost like ALU ops unless conflicted.
            compute_run += config.constant_conflict_ways
        elif cls in (InstrClass.SHARED_LOAD, InstrClass.SHARED_STORE):
            # Bank-conflict-free by default (Table 1); serialized
            # accesses replay the instruction per conflicting bank.
            compute_run += config.shared_bank_conflict_ways
        else:
            # Remaining ALU work: one issue slot.
            compute_run += 1
    flush_compute()
    return WarpTrace.from_events(events, issue_slots=issue_slots,
                                 dram_bytes=dram_bytes)


class _Warp:
    __slots__ = ("index", "block", "pos", "ready_at", "pending", "done",
                 "at_barrier")

    def __init__(self, index: int, block: "_Block") -> None:
        self.index = index
        self.block = block
        self.reset(0.0)

    def reset(self, start_time: float) -> None:
        self.pos = 0
        self.ready_at = start_time
        self.pending: Dict[int, float] = {}
        self.done = False
        self.at_barrier = False


class _Block:
    __slots__ = ("warps", "arrived", "barrier_time", "done_count", "finish_time")

    def __init__(self) -> None:
        self.warps: List[_Warp] = []
        self.arrived = 0
        self.barrier_time = 0.0
        self.done_count = 0
        self.finish_time = 0.0


def simulate_sm_reference(
    trace: WarpTrace,
    warps_per_block: int,
    blocks_resident: int,
    total_blocks: int,
    config: SimConfig,
) -> SMResult:
    """Replay ``total_blocks`` copies of a block's warps on one SM.

    Semantics identical to :func:`repro.sim.sm.simulate_sm` in exact
    mode (``wave_convergence_rtol == 0``); the convergence knob is not
    implemented here — the reference always replays every block.
    """
    if total_blocks < blocks_resident:
        blocks_resident = total_blocks
    memory = MemorySystem(config)
    events = trace.events
    issue_cost = config.issue_cycles_per_instruction
    sfu_cost = config.sfu_cycles_per_instruction

    blocks = [_Block() for _ in range(blocks_resident)]
    heap: List[tuple] = []
    sequence = 0
    for block in blocks:
        for _ in range(warps_per_block):
            warp = _Warp(sequence, block)
            block.warps.append(warp)
            heapq.heappush(heap, (0.0, sequence, warp))
            sequence += 1

    port_free = 0.0
    sfu_free = 0.0
    issue_busy = 0.0
    finished_blocks = 0
    blocks_started = blocks_resident
    finish_time = 0.0

    def settle(warp: _Warp) -> bool:
        """Advance through non-port events; True if warp can issue."""
        nonlocal finished_blocks, blocks_started, finish_time, sequence
        while True:
            if warp.pos >= len(events):
                warp.done = True
                block = warp.block
                block.done_count += 1
                block.finish_time = max(block.finish_time, warp.ready_at)
                if block.done_count == len(block.warps):
                    finished_blocks += 1
                    finish_time = max(finish_time, block.finish_time)
                    if blocks_started < total_blocks:
                        blocks_started += 1
                        restart = block.finish_time
                        block.done_count = 0
                        block.arrived = 0
                        block.barrier_time = 0.0
                        block.finish_time = 0.0
                        for w in block.warps:
                            w.reset(restart)
                            sequence += 1
                            heapq.heappush(heap, (restart, sequence, w))
                return False
            kind, a, b = events[warp.pos]
            if kind == USE:
                warp.ready_at = max(warp.ready_at, warp.pending.pop(a, 0.0))
                warp.pos += 1
                continue
            if kind == BARRIER:
                block = warp.block
                block.arrived += 1
                block.barrier_time = max(block.barrier_time, warp.ready_at)
                warp.at_barrier = True
                warp.pos += 1
                if block.arrived == len(block.warps):
                    release = block.barrier_time
                    block.arrived = 0
                    block.barrier_time = 0.0
                    for w in block.warps:
                        w.at_barrier = False
                        w.ready_at = max(w.ready_at, release)
                        sequence += 1
                        heapq.heappush(heap, (w.ready_at, sequence, w))
                return False
            return True

    while heap:
        _, _, warp = heapq.heappop(heap)
        if warp.done or warp.at_barrier:
            continue
        if not settle(warp):
            continue
        kind, a, b = events[warp.pos]
        start = max(port_free, warp.ready_at)
        if kind == COMPUTE:
            duration = a * issue_cost
            warp.ready_at = start + duration
        elif kind == SFU:
            # Issue occupies the port briefly; the SFU pipeline is a
            # separate throughput-limited resource, and the result is
            # scoreboarded until its latency elapses.
            duration = issue_cost
            sfu_free = max(sfu_free, start + duration) + sfu_cost
            warp.pending[a] = sfu_free + config.sfu_result_latency
            warp.ready_at = start + duration
        elif kind == LOAD:
            duration = issue_cost
            bytes_, latency = b
            completion = memory.request(start + duration, bytes_, latency)
            warp.pending[a] = completion
            warp.ready_at = start + duration
        elif kind == STORE:
            duration = issue_cost
            memory.request(start + duration, b, 0.0)
            warp.ready_at = start + duration
        else:
            raise SimulationDeadlock(f"unexpected event kind {kind}")
        port_free = start + duration
        issue_busy += duration
        warp.pos += 1
        sequence += 1
        heapq.heappush(heap, (warp.ready_at, sequence, warp))

    if finished_blocks < total_blocks:
        raise SimulationDeadlock(
            f"completed {finished_blocks}/{total_blocks} blocks"
        )
    return SMResult(
        # A block is not done until its outstanding stores drain; the
        # pipe term is what makes store-bound kernels bandwidth-bound.
        cycles=max(finish_time, port_free, memory.pipe_free_at),
        blocks_completed=finished_blocks,
        issue_busy_cycles=issue_busy,
        dram_bytes=memory.total_bytes,
        dram_busy_cycles=memory.busy_cycles,
    )


__all__ = ["build_trace_reference", "simulate_sm_reference"]
