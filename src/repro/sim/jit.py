"""Optional JIT replay engine (``REPRO_JIT=1``).

The default replay loop in :mod:`repro.sim.sm` interprets small Python
tuples; this module provides the same event loop written against flat
numpy arrays in the numba-compatible subset of Python:

* the compiled trace becomes six parallel arrays (opcode, scoreboard
  slot, and four float operand columns), built once per
  :class:`~repro.sim.sm.CompiledTrace` and cached on it;
* scoreboards are a dense ``[warps, slots]`` float array instead of
  per-warp dicts;
* the FIFO is a ring buffer and the heap is a manual binary heap over
  ``(ready_at, arrival_seq)`` keys with warp/position payload arrays.

When ``numba`` is importable the kernel is ``njit``-compiled on first
use (the usual ~1 s compile cost amortizes across a sweep); when it is
not — the supported configuration for this repo, which vendors no
dependencies — the *same function* runs under CPython over numpy
scalars.  ``numpy.float64`` arithmetic is IEEE-754 double precision,
i.e. exactly Python-float arithmetic, and the loop performs the same
operations in the same order as the tuple interpreter, so both forms
are bit-identical to the default engine; tests pin this.

Profiling note (the reason this tier is optional): on CPython the
array form is *slower* than the tuple interpreter — scalar reads from
numpy arrays box a fresh ``np.float64`` per access, where the tuple
loop reuses interned objects.  The array form exists because it is
what numba can compile; enable ``REPRO_JIT`` only where numba is
actually installed, or to exercise the equivalence suite.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

_DEADLOCK = -1  # converged_mode sentinel from the kernel

_MODE_NAMES = {0: "", 1: "analytic", 2: "wave"}

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    _HAVE_NUMBA = True
except ImportError:
    _HAVE_NUMBA = False

    def _njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


def jit_available() -> bool:
    """True when numba will actually compile the kernel."""
    return _HAVE_NUMBA


def jit_enabled() -> bool:
    """True when ``REPRO_JIT`` selects the array engine."""
    return os.environ.get("REPRO_JIT", "").strip().lower() in ("1", "true", "on")


def replay_engine():
    """The active alternate replay engine, or ``None`` for the default.

    Called by :func:`repro.sim.sm.simulate_sm` per replay; returns a
    callable with the same signature/result contract as the default
    ``_replay`` when ``REPRO_JIT`` is set.
    """
    if not jit_enabled():
        return None
    return _replay_jit


def _arrays_for(compiled):
    """Columnar (SoA) form of a compiled trace, cached on it."""
    cached = compiled.jit_arrays
    if cached is not None:
        return cached
    n = compiled.n
    op = np.zeros(n, dtype=np.int64)
    slot = np.zeros(n, dtype=np.int64)
    f0 = np.zeros(n, dtype=np.float64)
    f1 = np.zeros(n, dtype=np.float64)
    f2 = np.zeros(n, dtype=np.float64)
    f3 = np.zeros(n, dtype=np.float64)
    for i, event in enumerate(compiled.events):
        kind = event[0]
        op[i] = kind
        if kind == 0:        # COMPUTE: duration
            f0[i] = event[1]
        elif kind == 1:      # LOAD: slot, bytes, burst, sustained, latency
            slot[i] = event[1]
            f0[i] = event[2]
            f1[i] = event[3]
            f2[i] = event[4]
            f3[i] = event[5]
        elif kind == 2:      # STORE: bytes, burst, sustained
            f0[i] = event[1]
            f1[i] = event[2]
            f2[i] = event[3]
        elif kind == 3 or kind == 4:   # SFU / USE: slot
            slot[i] = event[1]
        elif kind == 6:      # TEXLOAD: slot, latency
            slot[i] = event[1]
            f3[i] = event[2]
    arrays = (op, slot, f0, f1, f2, f3)
    compiled.jit_arrays = arrays
    return arrays


def _replay_jit(compiled, warps_per_block, blocks_resident, total_blocks,
                config):
    """Adapter: unpack config/trace into arrays, run the kernel."""
    from repro.sim.sm import SimulationDeadlock

    op, slot, f0, f1, f2, f3 = _arrays_for(compiled)
    share = config.bandwidth_bytes_per_cycle_per_sm
    rtol = config.wave_convergence_rtol
    steady_cpb = 0.0
    if rtol > 0.0:
        issue_bound = float(warps_per_block * compiled.port_cycles)
        bw_bound = warps_per_block * compiled.dram_bytes / share
        steady_cpb = issue_bound if issue_bound > bw_bound else bw_bound
    state = _kernel(
        op, slot, f0, f1, f2, f3, compiled.n,
        warps_per_block, blocks_resident, total_blocks,
        config.issue_cycles_per_instruction,
        config.sfu_cycles_per_instruction,
        config.sfu_result_latency,
        rtol, share,
        config.burst_window_bytes / share,
        steady_cpb, compiled.slot_count,
    )
    (cycles, finished, issue_busy, mem_bytes, mem_busy,
     extrapolated, converged_wave, mode) = state
    if mode == _DEADLOCK:
        raise SimulationDeadlock(
            f"completed {finished}/{total_blocks} blocks"
        )
    return (float(cycles), int(finished), float(issue_busy),
            float(mem_bytes), float(mem_busy), int(extrapolated),
            int(converged_wave), _MODE_NAMES[int(mode)])


@_njit(cache=True)
def _kernel(op, slot, f0, f1, f2, f3, n,
            warps_per_block, blocks_resident, total_blocks,
            issue_cost, sfu_cost, sfu_latency,
            rtol, share, window_cycles, steady_cpb, nslots):
    if total_blocks < blocks_resident:
        blocks_resident = total_blocks
    num_warps = blocks_resident * warps_per_block

    # Scoreboards: pending[w, s] is the cycle load s becomes usable
    # (0.0 = nothing outstanding, matching dict-pop's default).
    pending = np.zeros((num_warps, max(nslots, 1)), dtype=np.float64)
    w_pos = np.zeros(num_warps, dtype=np.int64)     # barrier-parked position
    w_ready = np.zeros(num_warps, dtype=np.float64)

    blk_arrived = np.zeros(blocks_resident, dtype=np.int64)
    blk_barrier = np.zeros(blocks_resident, dtype=np.float64)
    blk_done = np.zeros(blocks_resident, dtype=np.int64)
    blk_finish = np.zeros(blocks_resident, dtype=np.float64)

    # FIFO ring buffer (monotone pushes only) and a manual binary heap
    # keyed lexicographically on (ready_at, arrival_seq); each warp is
    # in at most one queue entry, so capacity num_warps suffices.
    fifo_ready = np.zeros(num_warps, dtype=np.float64)
    fifo_seq = np.zeros(num_warps, dtype=np.int64)
    fifo_warp = np.zeros(num_warps, dtype=np.int64)
    fifo_pos = np.zeros(num_warps, dtype=np.int64)
    fifo_head = 0
    fifo_count = 0
    heap_ready = np.zeros(num_warps, dtype=np.float64)
    heap_seq = np.zeros(num_warps, dtype=np.int64)
    heap_warp = np.zeros(num_warps, dtype=np.int64)
    heap_pos = np.zeros(num_warps, dtype=np.int64)
    heap_size = 0

    sequence = 0
    for w in range(num_warps):
        tail = (fifo_head + fifo_count) % num_warps
        fifo_ready[tail] = 0.0
        fifo_seq[tail] = sequence
        fifo_warp[tail] = w
        fifo_pos[tail] = 0
        fifo_count += 1
        sequence += 1

    mem_burst_free = 0.0
    mem_sustained_end = 0.0
    mem_total_bytes = 0.0
    mem_busy = 0.0
    port_free = 0.0
    sfu_free = 0.0
    issue_busy = 0.0
    finished_blocks = 0
    blocks_started = blocks_resident
    finish_time = 0.0

    converged = False
    converged_wave = 0
    converged_mode = 0
    prev_cpb = -1.0
    prev_backlog = -1.0
    last_cpb = 0.0
    wave_prev_finish = 0.0
    wave_prev_issue = 0.0
    wave_prev_busy = 0.0
    wave_prev_bytes = 0.0
    wave_issue_pb = 0.0
    wave_busy_pb = 0.0
    wave_bytes_pb = 0.0

    warp = -1
    pos = 0
    ready = 0.0

    while True:
        if warp < 0:
            if fifo_count > 0:
                take_heap = False
                if heap_size > 0:
                    hr = heap_ready[0]
                    fr = fifo_ready[fifo_head]
                    if hr < fr or (hr == fr and heap_seq[0] < fifo_seq[fifo_head]):
                        take_heap = True
                if take_heap:
                    ready = heap_ready[0]
                    warp = heap_warp[0]
                    pos = heap_pos[0]
                    heap_size -= 1
                    if heap_size > 0:
                        mr = heap_ready[heap_size]
                        ms = heap_seq[heap_size]
                        mw = heap_warp[heap_size]
                        mp = heap_pos[heap_size]
                        i = 0
                        while True:
                            child = 2 * i + 1
                            if child >= heap_size:
                                break
                            right = child + 1
                            if right < heap_size and (
                                heap_ready[right] < heap_ready[child]
                                or (heap_ready[right] == heap_ready[child]
                                    and heap_seq[right] < heap_seq[child])
                            ):
                                child = right
                            if (heap_ready[child] < mr
                                    or (heap_ready[child] == mr
                                        and heap_seq[child] < ms)):
                                heap_ready[i] = heap_ready[child]
                                heap_seq[i] = heap_seq[child]
                                heap_warp[i] = heap_warp[child]
                                heap_pos[i] = heap_pos[child]
                                i = child
                            else:
                                break
                        heap_ready[i] = mr
                        heap_seq[i] = ms
                        heap_warp[i] = mw
                        heap_pos[i] = mp
                else:
                    ready = fifo_ready[fifo_head]
                    warp = fifo_warp[fifo_head]
                    pos = fifo_pos[fifo_head]
                    fifo_head = (fifo_head + 1) % num_warps
                    fifo_count -= 1
            elif heap_size > 0:
                ready = heap_ready[0]
                warp = heap_warp[0]
                pos = heap_pos[0]
                heap_size -= 1
                if heap_size > 0:
                    mr = heap_ready[heap_size]
                    ms = heap_seq[heap_size]
                    mw = heap_warp[heap_size]
                    mp = heap_pos[heap_size]
                    i = 0
                    while True:
                        child = 2 * i + 1
                        if child >= heap_size:
                            break
                        right = child + 1
                        if right < heap_size and (
                            heap_ready[right] < heap_ready[child]
                            or (heap_ready[right] == heap_ready[child]
                                and heap_seq[right] < heap_seq[child])
                        ):
                            child = right
                        if (heap_ready[child] < mr
                                or (heap_ready[child] == mr
                                    and heap_seq[child] < ms)):
                            heap_ready[i] = heap_ready[child]
                            heap_seq[i] = heap_seq[child]
                            heap_warp[i] = heap_warp[child]
                            heap_pos[i] = heap_pos[child]
                            i = child
                        else:
                            break
                    heap_ready[i] = mr
                    heap_seq[i] = ms
                    heap_warp[i] = mw
                    heap_pos[i] = mp
            else:
                break

        if pos == n:
            block = warp // warps_per_block
            blk_done[block] += 1
            if ready > blk_finish[block]:
                blk_finish[block] = ready
            if blk_done[block] == warps_per_block:
                finished_blocks += 1
                if blk_finish[block] > finish_time:
                    finish_time = blk_finish[block]
                if (rtol > 0.0 and not converged
                        and finished_blocks % blocks_resident == 0):
                    cpb = (finish_time - wave_prev_finish) / blocks_resident
                    wave_issue_pb = (issue_busy - wave_prev_issue) / blocks_resident
                    wave_busy_pb = (mem_busy - wave_prev_busy) / blocks_resident
                    wave_bytes_pb = (mem_total_bytes - wave_prev_bytes) / blocks_resident
                    backlog = mem_sustained_end - finish_time
                    if backlog < 0.0:
                        backlog = 0.0
                    if abs(cpb - steady_cpb) <= rtol * cpb:
                        converged = True
                        converged_mode = 1
                    elif (prev_cpb >= 0.0
                            and abs(cpb - prev_cpb) <= rtol * cpb
                            and abs(backlog - prev_backlog)
                            <= rtol * cpb * blocks_resident):
                        converged = True
                        converged_mode = 2
                    if converged:
                        last_cpb = cpb
                        converged_wave = finished_blocks // blocks_resident
                    prev_cpb = cpb
                    prev_backlog = backlog
                    wave_prev_finish = finish_time
                    wave_prev_issue = issue_busy
                    wave_prev_busy = mem_busy
                    wave_prev_bytes = mem_total_bytes
                if blocks_started < total_blocks and not converged:
                    blocks_started += 1
                    restart = blk_finish[block]
                    blk_done[block] = 0
                    blk_arrived[block] = 0
                    blk_barrier[block] = 0.0
                    blk_finish[block] = 0.0
                    base = block * warps_per_block
                    for w in range(base, base + warps_per_block):
                        for s in range(pending.shape[1]):
                            pending[w, s] = 0.0
                        # heap push (restart, sequence, w, 0)
                        i = heap_size
                        heap_size += 1
                        while i > 0:
                            parent = (i - 1) // 2
                            if (heap_ready[parent] > restart
                                    or (heap_ready[parent] == restart
                                        and heap_seq[parent] > sequence)):
                                heap_ready[i] = heap_ready[parent]
                                heap_seq[i] = heap_seq[parent]
                                heap_warp[i] = heap_warp[parent]
                                heap_pos[i] = heap_pos[parent]
                                i = parent
                            else:
                                break
                        heap_ready[i] = restart
                        heap_seq[i] = sequence
                        heap_warp[i] = w
                        heap_pos[i] = 0
                        sequence += 1
            warp = -1
            continue

        kind = op[pos]

        if kind == 0:        # COMPUTE
            duration = f0[pos]
            start = port_free if port_free > ready else ready
        elif kind == 4:      # USE
            s = slot[pos]
            t = pending[warp, s]
            pending[warp, s] = 0.0
            if t > ready:
                ready = t
            pos += 1
            continue
        elif kind == 1:      # LOAD
            duration = float(issue_cost)
            start = port_free if port_free > ready else ready
            now = start + duration
            burst_start = mem_burst_free if mem_burst_free > now else now
            burst_end = burst_start + f1[pos]
            mem_sustained_end = (
                (mem_sustained_end if mem_sustained_end > now else now)
                + f2[pos]
            )
            throttled = mem_sustained_end - window_cycles
            service_end = burst_end if burst_end > throttled else throttled
            mem_total_bytes += f0[pos]
            mem_busy += service_end - burst_start
            mem_burst_free = service_end
            pending[warp, slot[pos]] = service_end + f3[pos]
        elif kind == 2:      # STORE
            duration = float(issue_cost)
            start = port_free if port_free > ready else ready
            now = start + duration
            burst_start = mem_burst_free if mem_burst_free > now else now
            burst_end = burst_start + f1[pos]
            mem_sustained_end = (
                (mem_sustained_end if mem_sustained_end > now else now)
                + f2[pos]
            )
            throttled = mem_sustained_end - window_cycles
            service_end = burst_end if burst_end > throttled else throttled
            mem_total_bytes += f0[pos]
            mem_busy += service_end - burst_start
            mem_burst_free = service_end
        elif kind == 3:      # SFU
            duration = float(issue_cost)
            start = port_free if port_free > ready else ready
            t = start + duration
            sfu_free = (sfu_free if sfu_free > t else t) + sfu_cost
            pending[warp, slot[pos]] = sfu_free + sfu_latency
        elif kind == 5:      # BARRIER
            pos += 1
            w_pos[warp] = pos
            w_ready[warp] = ready
            block = warp // warps_per_block
            blk_arrived[block] += 1
            if ready > blk_barrier[block]:
                blk_barrier[block] = ready
            if blk_arrived[block] == warps_per_block:
                release = blk_barrier[block]
                blk_arrived[block] = 0
                blk_barrier[block] = 0.0
                base = block * warps_per_block
                for w in range(base, base + warps_per_block):
                    wr = w_ready[w]
                    if release > wr:
                        wr = release
                        w_ready[w] = release
                    # heap push (wr, sequence, w, w_pos[w])
                    wp = w_pos[w]
                    i = heap_size
                    heap_size += 1
                    while i > 0:
                        parent = (i - 1) // 2
                        if (heap_ready[parent] > wr
                                or (heap_ready[parent] == wr
                                    and heap_seq[parent] > sequence)):
                            heap_ready[i] = heap_ready[parent]
                            heap_seq[i] = heap_seq[parent]
                            heap_warp[i] = heap_warp[parent]
                            heap_pos[i] = heap_pos[parent]
                            i = parent
                        else:
                            break
                    heap_ready[i] = wr
                    heap_seq[i] = sequence
                    heap_warp[i] = w
                    heap_pos[i] = wp
                    sequence += 1
            warp = -1
            continue
        else:                # TEXLOAD
            duration = float(issue_cost)
            start = port_free if port_free > ready else ready
            pending[warp, slot[pos]] = start + duration + f3[pos]

        ready = start + duration
        port_free = ready
        issue_busy += duration
        pos += 1
        have_head = True
        head = 0.0
        if fifo_count > 0:
            head = fifo_ready[fifo_head]
            if heap_size > 0 and heap_ready[0] < head:
                head = heap_ready[0]
        elif heap_size > 0:
            head = heap_ready[0]
        else:
            have_head = False
        if have_head and head <= ready:
            tail = (fifo_head + fifo_count) % num_warps
            fifo_ready[tail] = ready
            fifo_seq[tail] = sequence
            fifo_warp[tail] = warp
            fifo_pos[tail] = pos
            fifo_count += 1
            sequence += 1
            warp = -1
        continue

    extrapolated_blocks = total_blocks - finished_blocks
    if extrapolated_blocks > 0 and not converged:
        return (0.0, finished_blocks, 0.0, 0.0, 0.0,
                extrapolated_blocks, 0, -1)
    cycles = finish_time
    if port_free > cycles:
        cycles = port_free
    if mem_burst_free > cycles:
        cycles = mem_burst_free
    if extrapolated_blocks > 0:
        cycles += extrapolated_blocks * last_cpb
        issue_busy += extrapolated_blocks * wave_issue_pb
        mem_busy += extrapolated_blocks * wave_busy_pb
        mem_total_bytes += extrapolated_blocks * wave_bytes_pb
    return (cycles, finished_blocks, issue_busy, mem_total_bytes, mem_busy,
            extrapolated_blocks, converged_wave, converged_mode)
